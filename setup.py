"""Setuptools entry point so that ``pip install -e .`` works offline.

The package has no third-party runtime dependencies; the test suite needs
only pytest (benchmarks additionally use pytest-benchmark).
"""

from setuptools import find_packages, setup

setup(
    name="repro-fanbsv08-tori",
    version="1.0.0",
    description=(
        "Reproduction of Fan, Batina, Sakiyama, Verbauwhede (DATE 2008): "
        "FPGA design for algebraic tori-based public-key cryptography"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    license="MIT",
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Security :: Cryptography",
        "Intended Audience :: Science/Research",
    ],
)
