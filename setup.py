"""Setuptools shim so that legacy installs (python setup.py develop) work offline."""
from setuptools import setup

setup()
