"""Channel demo: handshake once, then many cheap authenticated records.

Walks the stateful session layer end to end against an in-process
:class:`repro.serve.server.ServeServer`:

1. **Open a channel** on CEILIDH-170 — one key agreement, after which both
   sides hold directional keystream/tag keys derived through the serving
   KDF — and on RSA-1024, which has no key agreement and bootstraps
   KEM-style (the client encrypts a fresh seed to the server's key), so
   the same opcode covers the whole registry.
2. **Stream authenticated records.**  Every record binds a monotonic
   sequence number and the channel epoch into its tag; the client rekeys
   transparently after a small budget, invisible except as a counter.
3. **Drive a seeded traffic mix** (`zipf-bursty`) and print the number the
   subsystem exists for: steady-state records per second over the one-shot
   key-agreement rate — the amortisation a session layer buys.

Run:  python examples/pkc_channel_demo.py
"""

from __future__ import annotations

import asyncio
import random

from repro.serve.client import ChannelSession, ServeClient
from repro.serve.server import ServeServer
from repro.traffic import get_mix, run_traffic

MESSAGES = 24
REKEY_AFTER = 8  # force transparent rekeys well inside the demo's stream


async def channel_walkthrough(host: str, port: int, scheme: str) -> None:
    client = ServeClient(host, port)
    await client.connect()
    try:
        await client.negotiate(scheme)
        session = ChannelSession(
            client, rng=random.Random(0xC0FFEE),
            rekey_after_messages=REKEY_AFTER,
        )
        handshake_s = await session.open()
        print(f"  {scheme}: channel open in {handshake_s * 1e3:.2f} ms "
              f"(id {session.channel_id.hex()})")
        total_s = 0.0
        for index in range(MESSAGES):
            total_s += await session.send(f"record {index}".encode())
        await session.close()
        print(f"  {scheme}: {MESSAGES} authenticated records, "
              f"mean {total_s / MESSAGES * 1e3:.2f} ms each, "
              f"{session.rekeys} transparent rekey(s)")
        assert session.rekeys >= 1, "the demo budget must force a rekey"
    finally:
        await client.close()


async def demo() -> None:
    server = ServeServer(max_batch=16, queue_size=128)
    host, port = await server.start()
    print(f"server listening on {host}:{port} "
          f"[{server.scheme_host.backend} backend]\n")
    try:
        print("channel walkthrough (handshake once, stream records):")
        await channel_walkthrough(host, port, "ceilidh-170")
        await channel_walkthrough(host, port, "rsa-1024")

        mix = get_mix("zipf-bursty")
        print(f"\ntraffic mix '{mix.name}': Zipf popularity over "
              f"{', '.join(mix.schemes)}, bursty arrivals, "
              f"{mix.channel_weight:.0%} channel sessions")
        report = await run_traffic(host, port, mix, clients=4,
                                   sessions_per_client=6, seed=1)
        assert report.accounted, "submitted must equal responses + explicit errors"
        print(f"  {report.submitted} requests in {report.wall_seconds:.2f}s: "
              f"{report.responses} responses, {report.explicit_errors} explicit "
              f"errors, {report.channels_opened} channels, "
              f"{report.channel_messages} records, {report.rekeys} rekeys")
        handshake = report.handshake_histogram()
        steady = report.steady_state_histogram()
        print(f"  handshake p50 {handshake.percentile(0.5) * 1e3:.2f} ms vs "
              f"steady-state record p50 {steady.percentile(0.5) * 1e3:.2f} ms")
        for scheme in mix.schemes:
            records = report.rate_of(scheme, "channel-message")
            oneshot = report.rate_of(scheme, "key-agreement")
            if records and oneshot:
                print(f"  {scheme}: {records:.0f} records/s vs {oneshot:.1f} "
                      f"one-shot KA/s — amortisation x{records / oneshot:.0f}")
    finally:
        await server.stop()

    table = server.channels.stats
    print(f"\nchannel table: {table.opened} opened, {table.messages} records, "
          f"{table.rekeys} rekeys, {table.rejected_quota} quota refusals, "
          f"{server.protocol_errors} protocol errors")


if __name__ == "__main__":
    asyncio.run(demo())
