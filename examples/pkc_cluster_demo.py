"""Cluster demo: shared-port worker processes, a crash, a rolling restart.

Boots a :class:`repro.serve.cluster.ClusterSupervisor` with two worker
processes sharing one listen port (``SO_REUSEPORT`` where the kernel has
it, the consistent-hash front router elsewhere), then drives it with
concurrent clients while exercising the lifecycle story:

1. a load run against the healthy cluster,
2. a load run during which one worker is **killed** mid-flight — the
   supervisor restarts it with backoff and the clients' retry/reconnect
   layer hides the gap (zero client-visible errors),
3. a load run during a **rolling restart** — workers recycle one at a
   time, the port keeps serving, and every worker PID changes.

All three runs must complete every session with zero errors; the final
table shows sessions/s and latency percentiles per phase.

Run:  python examples/pkc_cluster_demo.py
"""

from __future__ import annotations

import asyncio

from repro.serve.client import LoadPlan, run_load
from repro.serve.cluster import ClusterSupervisor

PLAN = LoadPlan.from_mix([
    ("ceilidh-toy32", "key-agreement"),
    ("ecdh-p160", "key-agreement"),
])

WORKERS = 2
CLIENTS = 4
SESSIONS_PER_CLIENT = 6


async def demo() -> None:
    cluster = ClusterSupervisor(workers=WORKERS, schemes=PLAN.schemes())
    host, port = await cluster.start()
    print(f"cluster listening on {host}:{port} "
          f"[{cluster.mode} mode, {WORKERS} workers, "
          f"pids {cluster.worker_pids()}]")

    results = {}
    try:
        results["steady state"] = await run_load(
            host, port, plan=PLAN, clients=CLIENTS,
            sessions_per_client=SESSIONS_PER_CLIENT,
        )

        load = asyncio.ensure_future(run_load(
            host, port, plan=PLAN, clients=CLIENTS,
            sessions_per_client=SESSIONS_PER_CLIENT,
        ))
        await asyncio.sleep(0.2)
        victim = cluster.worker_pids()[0]
        print(f"\nkilling worker pid {victim} mid-load ...")
        await cluster.kill_worker(0)
        results["worker crash"] = await load
        while not (cluster.total_restarts >= 1
                   and cluster.worker_phases() == ["running"] * WORKERS):
            await asyncio.sleep(0.05)
        print(f"supervisor restarted it: pids now {cluster.worker_pids()}, "
              f"{cluster.total_restarts} restart(s)")

        before = cluster.worker_pids()
        load = asyncio.ensure_future(run_load(
            host, port, plan=PLAN, clients=CLIENTS,
            sessions_per_client=SESSIONS_PER_CLIENT,
        ))
        await asyncio.sleep(0.2)
        print("\nrolling restart while serving ...")
        await cluster.rolling_restart()
        results["rolling restart"] = await load
        print(f"every worker recycled: {before} -> {cluster.worker_pids()}")
    finally:
        await cluster.stop()

    print(f"\n{'phase':16} {'scheme':14} {'sessions':>8} {'err':>4} "
          f"{'reconn':>6} {'sess/s':>8} {'p99 ms':>8}")
    for phase_name, report in results.items():
        for entry in report.entries.values():
            digest = entry.histogram.summary()
            print(f"{phase_name:16} {entry.scheme:14} {entry.sessions:>8} "
                  f"{entry.errors:>4} {entry.reconnects:>6} "
                  f"{entry.sessions_per_second:>8.1f} {digest['p99_ms']:>8.2f}")
        assert report.total_errors == 0, f"{phase_name}: every session must verify"
    print("\nzero client-visible errors across crash, restart and rolling "
          "restart — the lifecycle is invisible to clients.")


if __name__ == "__main__":
    asyncio.run(demo())
