"""Secure messaging with CEILIDH: hybrid encryption plus signatures.

The scenario the paper's introduction motivates — constrained embedded
devices exchanging short, authenticated, confidential messages — using the
torus so every transmitted group element is a third of its raw size:

* Bob publishes a compressed public key.
* Alice encrypts a message to Bob (hashed-ElGamal: compressed ephemeral key,
  XOR body, confirmation tag) and signs it with her own key (Schnorr over the
  torus).
* Bob verifies and decrypts.

Run:  python examples/ceilidh_secure_messaging.py
"""

from __future__ import annotations

import random

from repro import CeilidhSystem
from repro.torus.encoding import compressed_size_bytes, encode_compressed


def main() -> None:
    system = CeilidhSystem("ceilidh-170")
    rng = random.Random(42)

    alice = system.generate_keypair(rng)
    bob = system.generate_keypair(rng)
    print("key pairs generated (private exponents in [1, q), public keys compressed)")

    message = b"Meet at the Kasteelpark Arenberg at 10:00."
    ciphertext = system.encrypt(bob.public, message, rng)
    signature = system.sign(alice, ciphertext.body, rng)

    element_bytes = compressed_size_bytes(system.params)
    total_wire = element_bytes + len(ciphertext.body) + len(ciphertext.tag)
    print(f"\nmessage               : {len(message)} bytes")
    print(f"ephemeral key (rho)   : {element_bytes} bytes "
          f"({len(encode_compressed(system.params, ciphertext.ephemeral))} encoded)")
    print(f"ciphertext body + tag : {len(ciphertext.body)} + {len(ciphertext.tag)} bytes")
    print(f"total ciphertext      : {total_wire} bytes "
          f"(an RSA-1024 hybrid header alone would be 128 bytes)")

    assert system.verify(alice.public, ciphertext.body, signature), "signature rejected"
    recovered = system.decrypt(bob, ciphertext)
    assert recovered == message
    print("\nsignature verified and message decrypted successfully:")
    print("  ", recovered.decode())

    # Tampering is detected.
    try:
        import dataclasses

        corrupted = dataclasses.replace(
            ciphertext, body=bytes([ciphertext.body[0] ^ 0xFF]) + ciphertext.body[1:]
        )
        system.decrypt(bob, corrupted)
    except Exception as exc:  # DecryptionError
        print(f"tampered ciphertext rejected as expected: {type(exc).__name__}")


if __name__ == "__main__":
    main()
