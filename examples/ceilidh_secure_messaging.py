"""Secure messaging with CEILIDH: hybrid encryption plus signatures.

The scenario the paper's introduction motivates — constrained embedded
devices exchanging short, authenticated, confidential messages — driven
through the unified scheme API, so every value that travels is already in
its canonical wire encoding (and swapping ``"ceilidh-170"`` for
``"ecdh-p160"`` runs the same scenario over secp160r1):

* Bob publishes a compressed public key (two Fp values, 44 bytes).
* Alice encrypts a message to Bob (hashed-ElGamal: compressed ephemeral key,
  XOR body, confirmation tag) and signs the ciphertext with her own key
  (Schnorr over the torus).
* Bob verifies and decrypts.

Run:  python examples/ceilidh_secure_messaging.py
"""

from __future__ import annotations

import random

from repro import get_scheme
from repro.errors import DecryptionError


def main() -> None:
    scheme = get_scheme("ceilidh-170")
    rng = random.Random(42)

    alice = scheme.keygen(rng)
    bob = scheme.keygen(rng)
    print("key pairs generated (private exponents in [1, q), public keys compressed)")

    message = b"Meet at the Kasteelpark Arenberg at 10:00."
    ciphertext = scheme.encrypt(bob.public_wire, message, rng)
    signature = scheme.sign(alice, ciphertext, rng)

    header = len(ciphertext) - len(message)
    print(f"\nmessage               : {len(message)} bytes")
    print(f"ciphertext            : {len(ciphertext)} bytes "
          f"({header} bytes ephemeral key + tag header; an RSA-1024 hybrid "
          f"header alone would be 128 bytes)")
    print(f"signature             : {len(signature)} bytes")

    assert scheme.verify(alice.public_wire, ciphertext, signature), "signature rejected"
    recovered = scheme.decrypt(bob, ciphertext)
    assert recovered == message
    print("\nsignature verified and message decrypted successfully:")
    print("  ", recovered.decode())

    # Tampering is detected.
    corrupted = ciphertext[:-1] + bytes([ciphertext[-1] ^ 0xFF])
    try:
        scheme.decrypt(bob, corrupted)
    except DecryptionError as exc:
        print(f"tampered ciphertext rejected as expected: {type(exc).__name__}")
    else:
        raise AssertionError("tampering was not detected")


if __name__ == "__main__":
    main()
