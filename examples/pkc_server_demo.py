"""Serving demo: one async PKC server, many concurrent clients, live stats.

Boots a :class:`repro.serve.server.ServeServer` in-process (thread pool,
bounded queue), then drives it with concurrent clients across three of the
paper's cryptosystems — CEILIDH key agreement, ECDH key agreement and
RSA-1024 hybrid decryption — the online version of the Table 3 comparison.
Each client performs the full client half locally (ephemeral keygen,
derivation, hybrid encryption) and checks the server's answers, so every
completed session is a verified protocol round trip.

Afterwards the server's scheduler statistics show the serving story: how
many requests merged into each same-scheme batch, and the batched
server-side throughput per scheme (requests per second of worker-pool busy
time) with per-request latency percentiles from the clients' side.

Run:  python examples/pkc_server_demo.py
"""

from __future__ import annotations

import asyncio

from repro.serve.client import run_load
from repro.serve.server import ServeServer

#: scheme -> the protocol the demo drives (its first Table 3 operation).
MIX = [
    ("ceilidh-170", "key-agreement"),
    ("ecdh-p160", "key-agreement"),
    ("rsa-1024", "encryption"),
]

CLIENTS = 6
SESSIONS_PER_CLIENT = 4


async def demo() -> None:
    server = ServeServer(max_batch=16, queue_size=128)
    host, port = await server.start()
    print(f"server listening on {host}:{port} "
          f"[{server.scheme_host.backend} backend, thread pool "
          f"x{server.scheduler.workers}]")
    print(f"driving {CLIENTS} concurrent clients x {SESSIONS_PER_CLIENT} "
          f"sessions per scheme\n")
    try:
        report = await run_load(
            host, port, MIX, clients=CLIENTS, sessions_per_client=SESSIONS_PER_CLIENT
        )
    finally:
        await server.stop()

    print(f"{'scheme':12} {'operation':14} {'sessions':>8} {'sess/s':>8} "
          f"{'p50 ms':>8} {'p99 ms':>8}")
    for entry in report.entries.values():
        digest = entry.histogram.summary()
        print(f"{entry.scheme:12} {entry.operation:14} {entry.sessions:>8} "
              f"{entry.sessions_per_second:>8.1f} {digest['p50_ms']:>8.2f} "
              f"{digest['p99_ms']:>8.2f}")
    assert report.total_errors == 0, "every session must verify"

    print("\nserver-side batching (same-scheme requests merged per executor call):")
    for (scheme_name, kind), group in sorted(server.scheduler.stats.groups.items()):
        print(f"  {scheme_name:12} {kind:14} {group.served:>4} requests in "
              f"{group.batches:>3} batches (largest {group.largest_batch}), "
              f"batched {group.served_per_second:.1f} req/s")
    stats = server.scheduler.stats
    print(f"\ntotals: {stats.served} served, {stats.rejected} overload-rejected, "
          f"{server.connections} connections, "
          f"{server.protocol_errors} protocol errors")


if __name__ == "__main__":
    asyncio.run(demo())
