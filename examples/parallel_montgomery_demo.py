"""Inside the coprocessor: the Fig. 5 multi-core Montgomery multiplication.

Shows what the microcode generated for the paper's Fig. 5 schedule actually
does: how the result words are split over the cores, how many word
multiplications each core performs, how many words cross core boundaries per
multiplication, and how the cycle count falls as cores are added — including
the 2.96x-style speed-up of reference [4] for the 256-bit case.

Run:  python examples/parallel_montgomery_demo.py
"""

from __future__ import annotations

import random

from repro.analysis.report import render_table
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.parallel import parallel_fios_report
from repro.soc.engine import ModularEngine
from repro.torus.params import CEILIDH_170


def main() -> None:
    p = CEILIDH_170.p
    rng = random.Random(5)
    domain = MontgomeryDomain(p, word_bits=16)
    x, y = rng.randrange(p), rng.randrange(p)
    xb, yb = domain.to_montgomery(x), domain.to_montgomery(y)

    report = parallel_fios_report(domain, xb, yb, num_cores=4)
    print(f"170-bit operand: {domain.num_words} words of {domain.word_bits} bits "
          f"on {report.schedule.num_cores} cores")
    print(render_table(
        ["core", "result words owned", "word multiplications per product"],
        [
            (core, f"{lo}..{hi}", report.word_mults_per_core[core])
            for core, (lo, hi) in enumerate(report.schedule.blocks)
        ],
        title="word ownership (core-local carries, Fig. 5)",
    ))
    print(f"inter-core word transfers per multiplication : {report.inter_core_transfers}")
    print(f"deferred-carry re-injections                 : {report.deferred_carry_events}")
    assert report.result == domain.mont_mul(xb, yb)
    print("functional check against the big-integer reference: OK\n")

    rows = []
    for cores in (1, 2, 4, 8):
        engine = ModularEngine(p, num_cores=cores)
        value, cycles = engine.mont_mul(xb, yb)
        assert value == domain.mont_mul(xb, yb)
        rows.append((cores, engine.multiplier.num_active_cores,
                     engine.measure_multiplication().cycles))
    baseline = rows[0][2]
    print(render_table(
        ["requested cores", "active cores", "cycles per 170-bit multiplication", "speedup"],
        [(c, a, cycles, round(baseline / cycles, 2)) for c, a, cycles in rows],
        title="cycle-accurate microcode vs core count (paper Table 1: 193 cycles on the FPGA)",
    ))


if __name__ == "__main__":
    main()
