"""Quickstart: CEILIDH key agreement with compressed torus elements.

This is the smallest end-to-end use of the library's public API:

1. pick a parameter set (the paper's 170-bit size),
2. generate two key pairs,
3. exchange the *compressed* public keys (two Fp values, ~43 bytes),
4. derive the same shared key on both sides.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import CeilidhSystem, get_parameters
from repro.torus.encoding import bandwidth_summary, compressed_size_bytes


def main() -> None:
    params = get_parameters("ceilidh-170")
    system = CeilidhSystem(params)
    rng = random.Random(2008)

    print(f"parameter set  : {params.name}")
    print(f"  p             ~ 2^{params.p_bits} (p = 2 mod 9)")
    print(f"  subgroup order~ 2^{params.q_bits}")
    compressed_bits, uncompressed_bits, factor = bandwidth_summary(params)
    print(f"  torus element : {uncompressed_bits} bits raw -> {compressed_bits} bits "
          f"compressed (factor {factor})")

    alice = system.generate_keypair(rng)
    bob = system.generate_keypair(rng)
    print(f"\npublic key size on the wire: {compressed_size_bytes(params)} bytes "
          f"(vs {6 * compressed_size_bytes(params) // 2} bytes uncompressed, "
          f"128 bytes for RSA-1024)")

    alice_key = system.derive_key(alice, bob.public, info=b"quickstart")
    bob_key = system.derive_key(bob, alice.public, info=b"quickstart")
    assert alice_key == bob_key, "key agreement failed"
    print(f"shared key (both sides agree): {alice_key.hex()}")


if __name__ == "__main__":
    main()
