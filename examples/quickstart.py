"""Quickstart: CEILIDH key agreement through the unified scheme registry.

This is the smallest end-to-end use of the library's public API:

1. look the scheme up by name (the paper's 170-bit size),
2. generate two key pairs,
3. exchange the *compressed* public keys (two Fp values, ~44 bytes),
4. derive the same shared key on both sides.

Swap the name for ``"ecdh-p160"``, ``"xtr-170"`` (or ``"rsa-1024"`` for the
encryption/signature protocols) and the same calls drive any other scheme.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import get_scheme
from repro.torus.encoding import bandwidth_summary


def main() -> None:
    scheme = get_scheme("ceilidh-170")
    params = scheme.params
    rng = random.Random(2008)

    print(f"scheme          : {scheme.name} (capabilities: {', '.join(sorted(scheme.capabilities))})")
    print(f"  p             ~ 2^{params.p_bits} (p = 2 mod 9)")
    print(f"  subgroup order~ 2^{params.q_bits}")
    compressed_bits, uncompressed_bits, factor = bandwidth_summary(params)
    print(f"  torus element : {uncompressed_bits} bits raw -> {compressed_bits} bits "
          f"compressed (factor {factor})")

    alice = scheme.keygen(rng)
    bob = scheme.keygen(rng)
    print(f"\npublic key size on the wire: {scheme.public_key_size()} bytes "
          f"(vs {3 * scheme.public_key_size()} bytes uncompressed, "
          f"128 bytes for RSA-1024)")

    alice_key = scheme.key_agreement(alice, bob.public_wire, info=b"quickstart")
    bob_key = scheme.key_agreement(bob, alice.public_wire, info=b"quickstart")
    assert alice_key == bob_key, "key agreement failed"
    print(f"shared key (both sides agree): {alice_key.hex()}")


if __name__ == "__main__":
    main()
