"""CEILIDH vs ECC vs RSA: bandwidth and platform latency for a key exchange.

Combines the two halves of the paper's argument:

* **bandwidth** (Section 1): a CEILIDH public value is two Fp elements —
  a third of the raw Fp6 size and roughly a third of an RSA-1024 value;
* **latency** (Table 3): on the same platform a torus exponentiation is ~5x
  faster than RSA-1024 and ~2x slower than 160-bit ECC.

The script performs one real key exchange with each system (CEILIDH, ECDH,
RSA key transport) and reports the transmitted bytes together with the
simulated platform time for the underlying group operation.

Run:  python examples/pkc_bandwidth_latency_comparison.py
"""

from __future__ import annotations

import random

from repro import CeilidhSystem
from repro.analysis.report import render_table
from repro.ecc.curves import SECP160R1
from repro.ecc.ecdh import ecdh_generate, ecdh_shared_secret
from repro.rsa.keygen import generate_rsa_keypair
from repro.rsa.rsa import rsa_decrypt, rsa_encrypt
from repro.soc.system import Platform
from repro.torus.params import CEILIDH_170


def main() -> None:
    rng = random.Random(7)
    platform = Platform()

    # --- CEILIDH -----------------------------------------------------------
    ceilidh = CeilidhSystem(CEILIDH_170)
    alice = ceilidh.generate_keypair(rng)
    bob = ceilidh.generate_keypair(rng)
    assert ceilidh.derive_key(alice, bob.public) == ceilidh.derive_key(bob, alice.public)
    ceilidh_bytes = len(alice.public_bytes(CEILIDH_170))
    ceilidh_ms = platform.torus_exponentiation_timing(CEILIDH_170).milliseconds

    # --- ECDH on secp160r1 --------------------------------------------------
    ecdh_alice = ecdh_generate(SECP160R1, rng)
    ecdh_bob = ecdh_generate(SECP160R1, rng)
    assert ecdh_shared_secret(ecdh_alice, ecdh_bob.public) == ecdh_shared_secret(
        ecdh_bob, ecdh_alice.public
    )
    ecdh_bytes = len(ecdh_alice.public_bytes())
    ecdh_ms = platform.ecc_scalar_multiplication_timing(SECP160R1).milliseconds

    # --- RSA-1024 key transport ----------------------------------------------
    print("generating an RSA-1024 key pair (pure Python, a few seconds)...")
    rsa_keypair = generate_rsa_keypair(1024, rng=rng)
    session_key = bytes(rng.randrange(256) for _ in range(32))
    wrapped = rsa_encrypt(rsa_keypair, session_key)
    assert rsa_decrypt(rsa_keypair, wrapped) == session_key
    rsa_bytes = len(wrapped)
    rsa_ms = platform.rsa_exponentiation_timing(1024).milliseconds

    print()
    print(render_table(
        ["system", "transmitted bytes / message", "platform time per operation (ms)"],
        [
            ("CEILIDH 170-bit (compressed torus)", ceilidh_bytes, round(ceilidh_ms, 1)),
            ("ECDH secp160r1 (uncompressed point)", ecdh_bytes, round(ecdh_ms, 1)),
            ("RSA-1024 key transport", rsa_bytes, round(rsa_ms, 1)),
        ],
        title="Key exchange: bandwidth vs simulated platform latency (paper Table 3: 20 / 9.4 / 96 ms)",
    ))
    print("\nCEILIDH keeps the bandwidth of ECC-class systems while replacing the")
    print("elliptic-curve group law with plain Fp6 arithmetic, and beats RSA on both axes.")


if __name__ == "__main__":
    main()
