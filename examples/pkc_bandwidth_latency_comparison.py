"""CEILIDH vs ECC vs RSA vs XTR: bandwidth and platform latency, one loop.

Combines the two halves of the paper's argument:

* **bandwidth** (Section 1): a CEILIDH public value is two Fp elements —
  a third of the raw Fp6 size and roughly a third of an RSA-1024 value;
* **latency** (Table 3): on the same platform a torus exponentiation is ~5x
  faster than RSA-1024 and ~2x slower than 160-bit ECC.

Since the unified scheme layer, the whole comparison is one generic loop:
every registered scheme is profiled by the same call path — real protocol
runs for the operation tallies and wire sizes, one executed headline
exponentiation projected onto the simulated platform for the latency — with
no scheme-specific branches anywhere below.

Run:  python examples/pkc_bandwidth_latency_comparison.py
"""

from __future__ import annotations

import random

from repro import Platform
from repro.analysis.report import render_table
from repro.analysis.tables import TABLE3_SCHEMES, table3_profiles


def main() -> None:
    platform = Platform()
    print("profiling every registered scheme (RSA keygen takes a moment)...")
    profiles = table3_profiles(platform, TABLE3_SCHEMES, rng=random.Random(7))

    print()
    print(render_table(
        ["scheme", "bits", "public key B", "protocols", "projected ms", "paper ms"],
        [
            (
                p.scheme,
                p.bit_length,
                p.wire_bytes["public_key"],
                ", ".join(sorted(p.capabilities)),
                round(p.projected_ms, 1),
                p.paper_ms if p.paper_ms is not None else "-",
            )
            for p in profiles
        ],
        title="Key exchange: bandwidth vs simulated platform latency "
              "(paper Table 3: 20 / 96 / 9.4 ms; XTR projected only)",
    ))
    print("\nCEILIDH keeps the bandwidth of ECC-class systems while replacing the")
    print("elliptic-curve group law with plain Fp6 arithmetic, and beats RSA on both")
    print("axes; XTR transmits the same two Fp values per message.")


if __name__ == "__main__":
    main()
