"""Reproduce the paper's evaluation on the simulated multicore platform.

Builds the MicroBlaze + multicore-coprocessor model, measures the Table 1
modular-operation cycle counts on the cycle-accurate microcode, composes
Tables 2 and 3 through the Type-A/Type-B hierarchies, and shows the Fig. 3/4
communication-vs-compute breakdown — the complete quantitative story of the
paper, regenerated in one script.

Run:  python examples/platform_cycle_analysis.py
"""

from __future__ import annotations

import random

from repro.analysis import (
    fig34_hierarchy_breakdown,
    fig5_parallel_speedup,
    render_table,
    table1,
    table2,
    table3,
)
from repro.field.fp import PrimeField
from repro.field.fp6 import make_fp6
from repro.soc.system import Platform
from repro.torus.params import get_parameters


def main() -> None:
    platform = Platform()
    print(platform)
    print(f"MicroBlaze round trip: {platform.interrupt_round_trip_cycles} cycles "
          f"(paper: 184)\n")

    rows1 = table1(platform)
    print(render_table(
        ["bits", "label", "operation", "measured", "paper"],
        [(r.bit_length or "-", r.label, r.operation, r.measured_cycles, r.paper_cycles)
         for r in rows1],
        title="Table 1 - modular operation cycle counts",
    ))

    rows2 = table2(platform)
    print()
    print(render_table(
        ["architecture", "operation", "measured", "paper"],
        [(r.architecture, r.operation, r.measured_cycles, r.paper_cycles) for r in rows2],
        title="Table 2 - level-2 operations under Type-A / Type-B",
    ))

    rows3 = table3(platform)
    print()
    print(render_table(
        ["system", "measured ms", "paper ms"],
        [(r.system, round(r.measured_ms, 1), r.paper_ms) for r in rows3],
        title="Table 3 - full public-key operations at 74 MHz",
    ))

    print()
    breakdowns = fig34_hierarchy_breakdown(platform)
    print(render_table(
        ["hierarchy", "operation", "communication share"],
        [(b.hierarchy, b.operation, f"{100 * b.communication_fraction:.1f}%")
         for b in breakdowns],
        title="Figs. 3/4 - where the cycles go",
    ))

    print()
    points = fig5_parallel_speedup(256, [1, 2, 4])
    print(render_table(
        ["cores", "cycles", "speedup"],
        [(p.num_cores, p.cycles, round(p.speedup_vs_single_core, 2)) for p in points],
        title="Fig. 5 - 256-bit Montgomery multiplication vs cores (ref [4]: 2.96x on 4)",
    ))

    # Finally, run one Fp6 multiplication *functionally* through the
    # cycle-accurate coprocessor at a toy size and check it against the
    # pure-math field arithmetic.
    params = get_parameters("toy-64")
    fp6 = make_fp6(PrimeField(params.p))
    rng = random.Random(1)
    a, b = fp6.random_element(rng), fp6.random_element(rng)
    result, cycles = platform.run_fp6_multiplication(fp6, a, b, cycle_accurate=True)
    assert result == fp6.mul(a, b)
    print(f"\ncycle-accurate check: one {params.p_bits}-bit Fp6 multiplication ran through "
          f"the coprocessor microcode in {cycles} cycles and matches the field arithmetic")


if __name__ == "__main__":
    main()
