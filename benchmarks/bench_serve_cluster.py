"""Cluster scaling sweep: the same serving load at 1, 2 (and 4) workers.

The single-server benchmark (``bench_serve``) measures the batching
scheduler inside one process; this one measures the orthogonal axis —
N independent worker processes sharing the listen port through
``repro.serve.cluster``.  The same plan runs against a fresh cluster at
each worker count and every cell lands under ``serve-cluster:`` keys with
the measured ``scaling_efficiency`` (sessions/s at N workers over N times
the single-worker rate) in its meta.

The sweep asserts *correctness* (zero session errors at every worker
count), never a scaling floor: efficiency is a property of the machine the
sweep ran on — on a single-core container N workers time-slice one core
and efficiency sits near 1/N by construction — so the honest output is the
measured number next to ``cpu_count``, not a gate that only passes on big
hardware.
"""

from __future__ import annotations

import asyncio
import os

from repro.perf import PerfRecord
from repro.serve.client import LoadPlan, run_load
from repro.serve.cluster import ClusterSupervisor

#: The focus cell of the scaling story: the paper's headline scheme under
#: its headline protocol, same as the serving acceptance gate.
CLUSTER_SCHEME = "ceilidh-170"
CLUSTER_OPERATION = "key-agreement"

CLIENTS = 8


async def _run_sweep(counts, sessions_per_client: int):
    plan = LoadPlan.from_mix([(CLUSTER_SCHEME, CLUSTER_OPERATION)])
    results = {}
    modes = {}
    for count in counts:
        cluster = ClusterSupervisor(
            workers=count, schemes=(CLUSTER_SCHEME,), max_batch=16
        )
        host, port = await cluster.start()
        try:
            results[count] = await run_load(
                host, port, plan=plan, clients=CLIENTS,
                sessions_per_client=sessions_per_client,
            )
            modes[count] = cluster.mode
        finally:
            await cluster.stop()
    return results, modes


def bench_serve_cluster_scaling(record_table, record_perf, quick):
    """The same load against 1, 2 (and, full mode, 4) shared-port workers."""
    counts = (1, 2) if quick else (1, 2, 4)
    sessions_per_client = 2 if quick else 8
    results, modes = asyncio.run(_run_sweep(counts, sessions_per_client))

    key = f"{CLUSTER_SCHEME}:{CLUSTER_OPERATION}"
    single_rate = results[1].entries[key].sessions_per_second
    cores = os.cpu_count() or 1

    rows = []
    for count in counts:
        report = results[count]
        entry = report.entries[key]
        assert report.total_errors == 0
        digest = entry.histogram.summary()
        efficiency = (entry.sessions_per_second / (count * single_rate)
                      if count > 1 and single_rate > 0 else None)
        rows.append(
            (
                count,
                modes[count],
                entry.sessions,
                entry.reconnects,
                round(entry.sessions_per_second, 1),
                f"{efficiency:.2f}" if efficiency is not None else "-",
                digest["p50_ms"],
                digest["p99_ms"],
            )
        )
        record_perf(
            PerfRecord(
                scheme=f"serve-cluster:{CLUSTER_SCHEME}",
                operation=f"{CLUSTER_OPERATION}@w{count}",
                sessions=entry.sessions,
                wall_seconds=entry.wall_seconds,
                ops_per_second=entry.sessions_per_second,
                ms_per_op=(entry.wall_seconds * 1e3 / entry.sessions
                           if entry.sessions else 0.0),
                latency_ms=digest,
                meta={
                    "workers": count,
                    "mode": modes[count],
                    "cpu_count": cores,
                    "clients": report.clients,
                    "backend": "plain",
                    "quick": quick,
                    "scaling_efficiency": efficiency,
                    "single_worker_sessions_per_second": single_rate,
                    "overload_rejections": entry.overload_rejections,
                    "reconnects": entry.reconnects,
                },
            )
        )

    record_table(
        "serve_cluster_scaling",
        ["workers", "mode", "sessions", "reconnects", "sess/s",
         "efficiency", "p50 ms", "p99 ms"],
        rows,
        title=(f"Cluster scaling: {CLUSTER_SCHEME} {CLUSTER_OPERATION}, "
               f"{CLIENTS} clients, measured on {cores} core(s)"),
    )
    # Every sweep point completed every session.
    assert all(
        results[count].entries[key].sessions == CLIENTS * sessions_per_client
        for count in counts
    )
