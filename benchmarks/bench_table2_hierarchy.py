"""Table 2 — Type-A vs Type-B cycle counts of the level-2 operations.

Regenerates the paper's Table 2: one Fp6 (T6) multiplication and one ECC
point addition/doubling under both execution hierarchies, composed from the
Table 1 measurements exactly as the real system composes them, and checks
the headline speed-ups (3.78x for the torus multiplication, ~2.2-2.5x for the
point operations).
"""

from __future__ import annotations

from repro.analysis.tables import table2
from repro.ecc.curves import SECP160R1
from repro.torus.params import CEILIDH_170


def bench_table2_reproduction(benchmark, platform, record_table):
    """Regenerate Table 2 and check the Type-A/Type-B relationships."""
    rows = benchmark.pedantic(table2, args=(platform,), rounds=1, iterations=1)
    record_table("table2_hierarchy",
        ["architecture", "operation", "measured cycles", "paper cycles", "ratio"],
        [(r.architecture, r.operation, r.measured_cycles, r.paper_cycles, r.ratio) for r in rows],
        title="Table 2 - level-2 operations under Type-A and Type-B (measured vs paper)",
    )

    by_key = {(r.architecture, r.operation): r.measured_cycles for r in rows}
    for operation in ("T6 multiplication", "ECC point addition", "ECC point doubling"):
        assert by_key[("Type-B", operation)] < by_key[("Type-A", operation)]
    t6_speedup = by_key[("Type-A", "T6 multiplication")] / by_key[("Type-B", "T6 multiplication")]
    pd_speedup = by_key[("Type-A", "ECC point doubling")] / by_key[("Type-B", "ECC point doubling")]
    # Paper: 3.78x and 2.17x.  The reproduction's heavier multiplier compresses
    # the ratios but preserves the ordering and the >2x improvement.
    assert t6_speedup > 2.0
    assert pd_speedup > 1.7
    assert t6_speedup > pd_speedup


def bench_fp6_sequence_cost_composition(benchmark, platform):
    """Wall-clock cost of composing the Fp6 multiplication sequence cost."""
    result = benchmark(platform.fp6_multiplication_cost, CEILIDH_170.p)
    assert result.operations == 82


def bench_ecc_sequence_cost_composition(benchmark, platform):
    """Wall-clock cost of composing the ECC point-operation costs."""
    result = benchmark(platform.ecc_point_costs, SECP160R1.p)
    assert result[0].type_a_cycles > result[1].type_b_cycles
