"""Table 3 — full public-key operations: torus vs RSA vs ECC on one platform.

Regenerates the paper's headline comparison: a 170-bit T6 exponentiation
(paper: 20 ms), a 1024-bit RSA exponentiation (96 ms) and a 160-bit ECC
scalar multiplication (9.4 ms) on the same 5419-slice, 74 MHz platform, and
additionally wall-clock-benchmarks the corresponding software-level
operations of the library (torus exponentiation, RSA decryption, ECC scalar
multiplication) so the run also documents the pure-Python costs.
"""

from __future__ import annotations

import random

from repro.analysis.report import render_table
from repro.analysis.tables import table3
from repro.ecc.curves import SECP160R1
from repro.ecc.scalar import scalar_mult_binary
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.exponent import montgomery_exponent
from repro.soc.system import default_rsa_modulus
from repro.torus.params import CEILIDH_170
from repro.torus.t6 import T6Group


def bench_table3_reproduction(benchmark, platform, record_table):
    """Regenerate Table 3 and check the paper's ordering and factors."""
    rows = benchmark.pedantic(table3, args=(platform,), rounds=1, iterations=1)
    text = render_table(
        ["system", "bits", "slices", "MHz", "measured ms", "paper ms", "ratio"],
        [
            (r.system, r.bit_length, r.area_slices, r.frequency_mhz, r.measured_ms, r.paper_ms, r.ratio)
            for r in rows
        ],
        title="Table 3 - full public-key operations on the platform (measured vs paper)",
    )
    record_table("table3_pkc_comparison", text)

    by_name = {r.system: r for r in rows}
    torus = by_name["170-bit torus (CEILIDH)"]
    rsa = by_name["1024-bit RSA"]
    ecc = by_name["160-bit ECC"]
    # Paper: ECC (9.4 ms) < torus (20 ms) < RSA (96 ms); torus ~5x faster than
    # RSA and ~2x slower than ECC; same area and clock for all three.
    assert ecc.measured_ms < torus.measured_ms < rsa.measured_ms
    assert rsa.measured_ms / torus.measured_ms > 2.5
    assert 1.5 < torus.measured_ms / ecc.measured_ms < 3.5
    assert torus.area_slices == rsa.area_slices == ecc.area_slices == 5419


def bench_torus_exponentiation_software(benchmark):
    """Pure-software 170-bit torus exponentiation (the paper's 20 ms operation)."""
    group = T6Group(CEILIDH_170)
    generator = group.generator()
    exponent = random.Random(5).getrandbits(170)
    result = benchmark(lambda: generator ** exponent)
    assert group.contains(result)


def bench_rsa_exponentiation_software(benchmark):
    """Pure-software 1024-bit modular exponentiation (the paper's 96 ms operation)."""
    modulus = default_rsa_modulus(1024)
    domain = MontgomeryDomain(modulus, word_bits=16)
    rng = random.Random(6)
    base = rng.randrange(modulus)
    exponent = rng.getrandbits(1024)
    result = benchmark(montgomery_exponent, domain, base, exponent)
    assert result == pow(base, exponent, modulus)


def bench_ecc_scalar_multiplication_software(benchmark):
    """Pure-software 160-bit scalar multiplication (the paper's 9.4 ms operation)."""
    _, generator = SECP160R1.build()
    scalar = random.Random(7).getrandbits(160)
    result = benchmark(scalar_mult_binary, generator, scalar)
    assert not result.is_infinity()
