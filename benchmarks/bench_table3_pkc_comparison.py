"""Table 3 — full public-key operations: torus vs RSA vs ECC on one platform.

Regenerates the paper's headline comparison: a 170-bit T6 exponentiation
(paper: 20 ms), a 1024-bit RSA exponentiation (96 ms) and a 160-bit ECC
scalar multiplication (9.4 ms) on the same 5419-slice, 74 MHz platform, and
additionally wall-clock-benchmarks the corresponding software-level
operations of the library (torus exponentiation, RSA decryption, ECC scalar
multiplication) so the run also documents the pure-Python costs.

The registry benchmark regenerates the same table through the unified
scheme layer instead: one generic loop over ``repro.pkc`` scheme names — no
scheme-specific branches — yielding executed operation tallies, wire sizes
and projected platform cycles per row (plus the XTR column the paper only
cites).
"""

from __future__ import annotations

import random

from repro.analysis.tables import TABLE3_SCHEMES, table3, table3_profiles
from repro.ecc.curves import SECP160R1
from repro.ecc.scalar import scalar_mult_binary
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.exponent import montgomery_exponent
from repro.soc.system import default_rsa_modulus
from repro.torus.params import CEILIDH_170
from repro.torus.t6 import T6Group


def bench_table3_reproduction(benchmark, platform, record_table):
    """Regenerate Table 3 and check the paper's ordering and factors."""
    rows = benchmark.pedantic(table3, args=(platform,), rounds=1, iterations=1)
    record_table("table3_pkc_comparison",
        ["system", "bits", "slices", "MHz", "measured ms", "paper ms", "ratio"],
        [
            (r.system, r.bit_length, r.area_slices, r.frequency_mhz, r.measured_ms, r.paper_ms, r.ratio)
            for r in rows
        ],
        title="Table 3 - full public-key operations on the platform (measured vs paper)",
    )

    by_name = {r.system: r for r in rows}
    torus = by_name["170-bit torus (CEILIDH)"]
    rsa = by_name["1024-bit RSA"]
    ecc = by_name["160-bit ECC"]
    # Paper: ECC (9.4 ms) < torus (20 ms) < RSA (96 ms); torus ~5x faster than
    # RSA and ~2x slower than ECC; same area and clock for all three.
    assert ecc.measured_ms < torus.measured_ms < rsa.measured_ms
    assert rsa.measured_ms / torus.measured_ms > 2.5
    assert 1.5 < torus.measured_ms / ecc.measured_ms < 3.5
    assert torus.area_slices == rsa.area_slices == ecc.area_slices == 5419


def bench_table3_registry_profiles(benchmark, platform, record_table, quick):
    """Table 3 through the unified registry: one generic loop, four schemes."""
    rng = random.Random(0x7AB1E3)
    profiles = benchmark.pedantic(
        table3_profiles,
        args=(platform,),
        kwargs={"rng": rng, "include_protocols": not quick},
        rounds=1,
        iterations=1,
    )
    record_table("table3_registry_profiles",
        ["scheme", "bits", "sq", "mul", "public key B", "projected cycles",
         "projected ms", "paper ms"],
        [
            (
                p.scheme,
                p.bit_length,
                p.headline_trace.squarings,
                p.headline_trace.multiplications,
                p.wire_bytes["public_key"],
                p.projected_cycles,
                round(p.projected_ms, 2),
                p.paper_ms if p.paper_ms is not None else "-",
            )
            for p in profiles
        ],
        title="Table 3 via repro.pkc registry (generic loop; XTR projected, not in paper)",
    )

    by_name = {p.scheme: p for p in profiles}
    torus, rsa, ecc = by_name["ceilidh-170"], by_name["rsa-1024"], by_name["ecdh-p160"]
    # Same orderings and factors the direct Table 3 reproduction asserts.
    assert ecc.projected_ms < torus.projected_ms < rsa.projected_ms
    assert rsa.projected_ms / torus.projected_ms > 2.5
    assert 1.5 < torus.projected_ms / ecc.projected_ms < 3.5
    assert all(p.area_slices == 5419 for p in profiles)
    # The bandwidth half: a compressed torus element is a third of an RSA
    # message and in the same class as an (uncompressed) ECC point.
    assert rsa.wire_bytes["public_key"] > 2.8 * torus.wire_bytes["public_key"]
    assert by_name["xtr-170"].wire_bytes["public_key"] == torus.wire_bytes["public_key"]


def bench_torus_exponentiation_software(benchmark):
    """Pure-software 170-bit torus exponentiation (the paper's 20 ms operation)."""
    group = T6Group(CEILIDH_170)
    generator = group.generator()
    exponent = random.Random(5).getrandbits(170)
    result = benchmark(lambda: generator ** exponent)
    assert group.contains(result)


def bench_rsa_exponentiation_software(benchmark):
    """Pure-software 1024-bit modular exponentiation (the paper's 96 ms operation)."""
    modulus = default_rsa_modulus(1024)
    domain = MontgomeryDomain(modulus, word_bits=16)
    rng = random.Random(6)
    base = rng.randrange(modulus)
    exponent = rng.getrandbits(1024)
    result = benchmark(montgomery_exponent, domain, base, exponent)
    assert result == pow(base, exponent, modulus)


def bench_ecc_scalar_multiplication_software(benchmark):
    """Pure-software 160-bit scalar multiplication (the paper's 9.4 ms operation)."""
    _, generator = SECP160R1.build()
    scalar = random.Random(7).getrandbits(160)
    result = benchmark(scalar_mult_binary, generator, scalar)
    assert not result.is_infinity()
