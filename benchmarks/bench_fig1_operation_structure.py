"""Fig. 1 — structure of the T6(Fp) operations.

The figure shows which operations exist at each level of the tower (add, mul,
inv in Fp, Fp3, Fp6) and the maps between representations (tau, tau^-1, rho,
psi).  The quantitative content reproduced here is the base-field operation
count of every box, including the 18M + ~60A figure for the Fp6
multiplication that drives the whole cost analysis.
"""

from __future__ import annotations

import random

from repro.analysis.figures import fig1_operation_counts
from repro.field.fp import PrimeField
from repro.field.fp6 import make_fp6
from repro.field.towers import F1ToF2Map
from repro.torus.params import CEILIDH_170


def bench_fig1_operation_counts(benchmark, record_table):
    """Profile every Fig. 1 box in base-field operations."""
    profiles = benchmark.pedantic(
        fig1_operation_counts, args=(CEILIDH_170,), rounds=1, iterations=1
    )
    record_table("fig1_operation_structure",
        ["level", "operation", "Fp mult (M)", "Fp add/sub (A)", "Fp inv"],
        [
            (p.level, p.operation, p.counts.mul, p.counts.additions_total, p.counts.inv)
            for p in profiles
        ],
        title="Fig. 1 - operation structure of T6(Fp) (Fp operation counts per box)",
    )

    by_key = {(p.level, p.operation): p.counts for p in profiles}
    fp6_mul = by_key[("Fp6 (F1)", "mul (18M)")]
    assert fp6_mul.mul == 18                      # the paper's 18M
    assert 55 <= fp6_mul.additions_total <= 75    # the paper's ~60A
    assert by_key[("Fp6 (F1)", "add")].additions_total == 6
    assert by_key[("F1 <-> F2", "tau")].mul <= 40  # linear basis change
    assert by_key[("T6", "rho (compress)")].inv >= 1


def bench_fp6_multiplication_software(benchmark):
    """Wall-clock cost of one 170-bit Fp6 multiplication (18M algorithm)."""
    rng = random.Random(8)
    fp6 = make_fp6(PrimeField(CEILIDH_170.p))
    a, b = fp6.random_element(rng), fp6.random_element(rng)
    result = benchmark(fp6.mul_paper, a, b)
    assert result == fp6.mul_schoolbook(a, b)


def bench_representation_conversion(benchmark):
    """Wall-clock cost of the tau map (F1 -> F2 conversion)."""
    rng = random.Random(9)
    fp6 = make_fp6(PrimeField(CEILIDH_170.p))
    converter = F1ToF2Map(fp6)
    a = fp6.random_element(rng)
    result = benchmark(converter.to_f2, a)
    assert converter.to_f1(result) == a
