"""Design-choice ablations called out in DESIGN.md.

* number of coprocessor cores vs the 170-bit Montgomery multiplication and
  the resulting Table 3 torus time (the platform's main scaling knob);
* exponentiation strategy on the torus (binary, as in the paper, vs NAF and
  windowed — both attractive because torus inversion is a free Frobenius);
* Montgomery word-scanning variant (FIOS, as in the paper, vs SOS and CIOS)
  in terms of word-level operation counts.
"""

from __future__ import annotations

import random

from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.fios import fios_trace
from repro.soc.engine import ModularEngine
from repro.soc.system import Platform, PlatformConfig
from repro.torus.exponentiation import multiplication_counts
from repro.torus.params import CEILIDH_170


def bench_core_count_ablation(benchmark, record_table):
    """Platform cost of the 170-bit torus exponentiation vs number of cores."""
    def sweep():
        rows = []
        for cores in (1, 2, 4, 8):
            platform = Platform(PlatformConfig(num_cores=cores))
            mm = platform.measure_operation_costs(CEILIDH_170.p).modular_mult
            timing = platform.torus_exponentiation_timing(CEILIDH_170)
            area = platform.area_report()
            rows.append((cores, mm, round(timing.milliseconds, 2), area.total_slices,
                         round(area.frequency_mhz, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table("ablation_core_count",
        ["cores", "170-bit MM cycles", "torus exponentiation ms", "slices", "MHz"],
        rows,
        title="Ablation - core count vs multiplication cycles, torus time and area",
    )
    mm_cycles = [row[1] for row in rows]
    assert mm_cycles[0] > mm_cycles[2]  # 4 cores beat 1 core
    areas = [row[3] for row in rows]
    assert areas == sorted(areas)  # more cores, more slices


def bench_exponentiation_strategy_ablation(benchmark, platform, record_table):
    """Torus exponentiation cost under binary / NAF / windowed recoding."""
    sequence = platform.fp6_multiplication_cost(CEILIDH_170.p)
    costs = platform.measure_operation_costs(CEILIDH_170.p)
    model = platform.cost_model(costs)

    def sweep():
        rows = []
        for strategy in ("binary", "naf", "window4", "wnaf4", "sliding4"):
            counts = multiplication_counts(170, strategy)
            cycles = model.exponentiation_cycles(
                sequence.type_b_cycles, counts.squarings, counts.multiplications
            )
            rows.append((strategy, counts.squarings, counts.multiplications,
                         cycles, round(model.cycles_to_ms(cycles), 2)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table("ablation_exponentiation_strategy",
        ["strategy", "squarings", "multiplications", "cycles", "ms @ 74 MHz"],
        rows,
        title="Ablation - torus exponentiation strategy (Type-B, 170-bit exponent)",
    )
    by_strategy = {row[0]: row[3] for row in rows}
    assert by_strategy["naf"] < by_strategy["binary"]


def bench_montgomery_variant_ablation(benchmark, record_table):
    """FIOS (the paper's choice) vs the closed-form costs of one multiplication."""
    domain = MontgomeryDomain(CEILIDH_170.p, word_bits=16)
    rng = random.Random(30)
    p = CEILIDH_170.p
    xb, yb = rng.randrange(p), rng.randrange(p)

    def analyse():
        trace = fios_trace(domain, xb, yb)
        s = domain.num_words
        return [
            ("FIOS (paper)", trace.word_mults, trace.word_adds),
            ("SOS (separated)", 2 * s * s + s, 4 * s * s + 4 * s + 2),
            ("CIOS (coarse)", 2 * s * s + s, 4 * s * s + 4 * s + 2),
        ]

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    record_table("ablation_montgomery_variants",
        ["variant", "word multiplications", "word additions"],
        rows,
        title="Ablation - Montgomery word-scanning variants (170-bit operand, w = 16)",
    )
    assert rows[0][1] == rows[1][1]  # all variants share the 2s^2+s multiplication count


def bench_register_file_pressure(benchmark, record_table):
    """Smallest register file that still fits each operand size (4 cores)."""
    def sweep():
        rows = []
        for bits, modulus in ((170, CEILIDH_170.p), (1024, None)):
            if modulus is None:
                from repro.soc.system import default_rsa_modulus

                modulus = default_rsa_modulus(bits)
            engine = ModularEngine(modulus, num_cores=4)
            words = engine.num_words
            per_core = max(hi - lo + 1 for lo, hi in engine.multiplier.schedule_blocks.blocks)
            needed = 3 * per_core + 10
            rows.append((bits, words, per_core, needed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table("ablation_register_pressure",
        ["operand bits", "words", "words per core", "registers needed per core"],
        rows,
        title="Ablation - per-core register-file pressure (4 cores, w = 16)",
    )
    assert rows[-1][3] <= 80  # the default register file covers 1024-bit RSA
