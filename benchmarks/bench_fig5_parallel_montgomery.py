"""Fig. 5 — parallelised Montgomery multiplication on the multicore array.

The figure shows the 256-bit Montgomery multiplication distributed over four
cores with core-local carries and the per-iteration word transfers; the
associated result (from the paper's reference [4]) is a 2.96x speed-up over a
single core.  The reproduction sweeps the core count on the cycle-accurate
microcode and reports cycles, speed-up and the number of inter-core
transfers, plus the same sweep at the paper's three operand sizes.
"""

from __future__ import annotations

import random

from repro.analysis.figures import fig5_parallel_speedup
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.parallel import parallel_fios_multiply
from repro.soc.engine import ModularEngine
from repro.torus.params import CEILIDH_170


def bench_fig5_core_count_sweep(benchmark, record_table):
    """256-bit Montgomery multiplication vs core count (the Fig. 5 setting)."""
    points = benchmark.pedantic(
        fig5_parallel_speedup, args=(256, [1, 2, 4, 8]), rounds=1, iterations=1
    )
    record_table("fig5_parallel_montgomery",
        ["requested cores", "active cores", "cycles", "speedup vs 1 core",
         "inter-core transfers per mult"],
        [
            (p.num_cores, p.active_cores, p.cycles, p.speedup_vs_single_core,
             p.inter_core_transfers_per_mult)
            for p in points
        ],
        title="Fig. 5 - 256-bit Montgomery multiplication vs core count "
              "(paper/ref [4]: 2.96x on 4 cores)",
    )

    by_cores = {p.num_cores: p for p in points}
    assert by_cores[4].cycles < by_cores[2].cycles < by_cores[1].cycles
    # Reference [4] reports 2.96x on 4 cores; the reproduction lands in the
    # same regime (>2x, below the ideal 4x).
    assert 1.9 < by_cores[4].speedup_vs_single_core <= 4.0
    assert by_cores[1].inter_core_transfers_per_mult == 0
    assert by_cores[4].inter_core_transfers_per_mult > 0


def bench_fig5_operand_size_sweep(benchmark, record_table):
    """Four-core speed-up at the paper's operand sizes (160/170/256/1024 bits)."""
    def sweep():
        rows = []
        for bits in (160, 170, 256, 1024):
            modulus = (1 << bits) - random.Random(bits).randrange(3, 1 << 12, 2)
            single = ModularEngine(modulus, num_cores=1) if bits <= 256 else None
            quad = ModularEngine(modulus, num_cores=4)
            quad_cycles = quad.measure_multiplication().cycles
            single_cycles = single.measure_multiplication().cycles if single else None
            speedup = single_cycles / quad_cycles if single_cycles else None
            rows.append((bits, single_cycles, quad_cycles, speedup))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table("fig5_operand_size_sweep",
        ["bits", "1-core cycles", "4-core cycles", "speedup"],
        rows,
        title="Fig. 5 (extended) - multi-core Montgomery speedup vs operand size",
    )
    assert all(row[2] > 0 for row in rows)


def bench_parallel_fios_functional_model(benchmark):
    """Wall-clock cost of the word-level parallel-FIOS functional model."""
    domain = MontgomeryDomain(CEILIDH_170.p, word_bits=16)
    rng = random.Random(10)
    p = CEILIDH_170.p
    xb, yb = rng.randrange(p), rng.randrange(p)
    result = benchmark(parallel_fios_multiply, domain, xb, yb, 4)
    assert result == domain.mont_mul(xb, yb)
