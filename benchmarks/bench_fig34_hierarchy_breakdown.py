"""Figs. 3 & 4 — the Type-A and Type-B execution hierarchies.

The figures illustrate where the cycles go: under Type-A the MicroBlaze pays
a register-access + interrupt round trip for every one of the ~78 modular
operations of an Fp6 multiplication (the paper calls this the system
bottleneck); under Type-B the sequence is driven from InsRom1 and the round
trip is paid once.  The reproduction quantifies exactly that communication /
computation split.
"""

from __future__ import annotations

from repro.analysis.figures import fig34_hierarchy_breakdown


def bench_fig34_hierarchy_breakdown(benchmark, platform, record_table):
    """Cycle breakdown (interface vs compute) under both hierarchies."""
    breakdowns = benchmark.pedantic(
        fig34_hierarchy_breakdown, args=(platform,), rounds=1, iterations=1
    )
    record_table("fig34_hierarchy_breakdown",
        ["hierarchy", "operation", "total cycles", "interface cycles", "compute cycles",
         "communication share"],
        [
            (b.hierarchy, b.operation, b.total_cycles, b.interface_cycles, b.compute_cycles,
             f"{100 * b.communication_fraction:.1f}%")
            for b in breakdowns
        ],
        title="Figs. 3/4 - communication vs computation per level-2 operation",
    )

    by_key = {(b.hierarchy, b.operation): b for b in breakdowns}
    t6_a = by_key[("type-a", "T6 multiplication")]
    t6_b = by_key[("type-b", "T6 multiplication")]
    # Under Type-A the interface dominates (the paper's stated bottleneck);
    # under Type-B it drops to a few percent.
    assert t6_a.communication_fraction > 0.4
    assert t6_b.communication_fraction < 0.15
    assert t6_a.total_cycles > 2 * t6_b.total_cycles


def bench_interface_cost_ablation(benchmark, platform, record_table):
    """Ablation: how the Type-A/Type-B gap reacts to a faster interface."""
    from repro.soc.cost import CostModel
    from repro.soc.sequences import fp6_multiplication_program
    from repro.torus.params import CEILIDH_170

    costs = platform.measure_operation_costs(CEILIDH_170.p)

    def sweep():
        rows = []
        for factor in (1.0, 0.5, 0.25, 0.1):
            interface = platform.config.interface.scaled(factor)
            model = CostModel(costs, interface=interface)
            cost = model.sequence_cost(fp6_multiplication_program())
            rows.append((factor, interface.round_trip_cycles, cost.type_a_cycles,
                         cost.type_b_cycles, cost.speedup))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table("fig34_interface_ablation",
        ["interface scale", "round trip cycles", "Type-A cycles", "Type-B cycles", "speedup"],
        rows,
        title="Ablation - Type-A/Type-B gap vs MicroBlaze interface cost (Fp6 multiplication)",
    )
    # The faster the interface, the smaller the benefit of Type-B.
    speedups = [row[4] for row in rows]
    assert speedups == sorted(speedups, reverse=True)
