"""Table 1 — clock cycles of the modular operations.

Regenerates every row of the paper's Table 1 (interrupt handling, modular
multiplication/addition/subtraction at 170, 160 and 1024 bits) from the
cycle-accurate coprocessor model, reports them next to the paper's numbers,
and wall-clock-benchmarks the underlying simulated operations.
"""

from __future__ import annotations

import random

from repro.analysis.tables import table1
from repro.soc.system import default_rsa_modulus
from repro.torus.params import CEILIDH_170


def bench_table1_reproduction(benchmark, platform, record_table):
    """Regenerate Table 1 and check the paper's qualitative shape."""
    rows = benchmark.pedantic(table1, args=(platform,), rounds=1, iterations=1)
    record_table("table1_modular_ops",
        ["bits", "label", "operation", "measured cycles", "paper cycles", "ratio"],
        [
            (r.bit_length or "-", r.label, r.operation, r.measured_cycles, r.paper_cycles, r.ratio)
            for r in rows
        ],
        title="Table 1 - cycles per modular operation (measured vs paper)",
    )

    by_key = {(r.bit_length, r.operation): r.measured_cycles for r in rows}
    mult170 = by_key[(170, "modular multiplication")]
    add170 = by_key[(170, "modular addition")]
    sub170 = by_key[(170, "modular subtraction")]
    mult160 = by_key[(160, "modular multiplication")]
    mult1024 = by_key[(1024, "modular multiplication")]
    # The paper's shape: MM >> MS >= MA; 160-bit slightly cheaper than
    # 170-bit; 1024-bit more than an order of magnitude above 170-bit.
    assert mult170 > sub170 >= add170
    assert mult160 <= mult170
    assert 10 < mult1024 / mult170 < 35  # paper: 23x


def bench_170_bit_modular_multiplication(benchmark, platform):
    """Wall-clock cost of simulating one 170-bit Montgomery multiplication."""
    engine = platform.engine_for(CEILIDH_170.p)
    rng = random.Random(1)
    p = CEILIDH_170.p
    x, y = rng.randrange(p), rng.randrange(p)
    result = benchmark(engine.mont_mul, x, y)
    assert result[0] == engine.domain.mont_mul(x, y)


def bench_170_bit_modular_addition(benchmark, platform):
    """Wall-clock cost of simulating one 170-bit modular addition."""
    engine = platform.engine_for(CEILIDH_170.p)
    rng = random.Random(2)
    p = CEILIDH_170.p
    a, b = rng.randrange(p), rng.randrange(p)
    result = benchmark(engine.mod_add, a, b)
    assert result[0] == (a + b) % p


def bench_170_bit_modular_subtraction(benchmark, platform):
    """Wall-clock cost of simulating one 170-bit modular subtraction."""
    engine = platform.engine_for(CEILIDH_170.p)
    rng = random.Random(4)
    p = CEILIDH_170.p
    a, b = rng.randrange(p), rng.randrange(p)
    result = benchmark(engine.mod_sub, a, b)
    assert result[0] == (a - b) % p


def bench_1024_bit_modular_multiplication(benchmark, platform):
    """Wall-clock cost of simulating one 1024-bit Montgomery multiplication."""
    modulus = default_rsa_modulus(1024)
    engine = platform.engine_for(modulus)
    rng = random.Random(3)
    x, y = rng.randrange(modulus), rng.randrange(modulus)
    result = benchmark(engine.mont_mul, x, y)
    assert result[0] == engine.domain.mont_mul(x, y)
