"""Shared fixtures for the benchmark harness.

Every benchmark hands its table to :func:`record_table` as structured rows;
the ``repro.perf`` emitter is the single writer behind it, rendering each
table twice — the historical aligned-ASCII ``benchmarks/results/<name>.txt``
and JSON rows in ``<name>.json`` beside it (one writer, two renderers, so
the formats cannot drift).  Scheme-level throughput measurements are
additionally collected through :func:`record_perf` and merged into the
persistent ``BENCH_pkc.json`` at the repo root when the session ends.

``--quick`` puts the harness into smoke mode: benchmarks consult the
``quick`` fixture to shrink expensive parameters (fewer batch sessions,
profile projections without the full protocol legs) so CI can execute every
``bench_*.py`` end to end — combined with pytest-benchmark's
``--benchmark-disable`` this keeps the figure/table scripts from silently
rotting without paying for real timing runs.
"""

from __future__ import annotations

import pathlib
from typing import List

import pytest

from repro.perf import PerfRecord, bench_path, update_bench, write_result
from repro.soc.system import Platform

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

_PERF_RECORDS: List[PerfRecord] = []


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke mode: run every benchmark with minimal workloads",
    )


@pytest.fixture(scope="session")
def quick(request):
    """True when the harness runs in ``--quick`` smoke mode."""
    return request.config.getoption("--quick", default=False)


@pytest.fixture(scope="session")
def platform():
    """One shared simulated platform (engines are cached inside)."""
    return Platform()


@pytest.fixture(scope="session")
def record_table():
    """Write a table (txt + json, one writer) to the results directory and echo it."""

    def _record(name: str, headers, rows, title: str = "") -> None:
        text = write_result(RESULTS_DIR, name, headers, rows, title=title)
        print()
        print(text)

    return _record


@pytest.fixture(scope="session")
def record_perf():
    """Queue a :class:`PerfRecord` for the end-of-session BENCH_pkc.json merge."""

    def _record(record: PerfRecord) -> None:
        _PERF_RECORDS.append(record)

    return _record


def pytest_sessionfinish(session, exitstatus):
    """Merge every queued record into the repo-root trajectory file.

    Two guards protect the committed baseline:

    * a failed run (including one the regression gate itself failed) never
      overwrites the file — otherwise the gate would erase its own
      reference and pass on the next run;
    * ``--quick`` smoke numbers (tiny, noisy workloads) are kept out of
      the baseline unless ``REPRO_BENCH_WRITE_QUICK`` is set, which the CI
      smoke job does so its uploaded artifact reflects the fresh run.
    """
    import os

    if not _PERF_RECORDS:
        return
    records, _PERF_RECORDS[:] = list(_PERF_RECORDS), []
    if exitstatus != 0:
        print("\nperf trajectory NOT updated (run failed)")
        return
    quick = session.config.getoption("--quick", default=False)
    if quick and not os.environ.get("REPRO_BENCH_WRITE_QUICK"):
        print("\nperf trajectory NOT updated (--quick; set REPRO_BENCH_WRITE_QUICK=1 to force)")
        return
    path = bench_path(REPO_ROOT)
    update_bench(path, records)
    print(f"\nperf trajectory updated: {path} ({len(records)} records)")
