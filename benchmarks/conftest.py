"""Shared fixtures for the benchmark harness.

Every benchmark writes its paper-vs-measured table both to stdout (visible
with ``pytest -s`` / in verbose CI logs) and to ``benchmarks/results/`` so a
plain ``pytest benchmarks/ --benchmark-only`` run leaves a permanent record
next to the timing numbers.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.soc.system import Platform

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def platform():
    """One shared simulated platform (engines are cached inside)."""
    return Platform()


@pytest.fixture(scope="session")
def record_table():
    """Write a rendered table to the results directory and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + os.linesep)
        print()
        print(text)

    return _record
