"""Shared fixtures for the benchmark harness.

Every benchmark writes its paper-vs-measured table both to stdout (visible
with ``pytest -s`` / in verbose CI logs) and to ``benchmarks/results/`` so a
full ``pytest -c benchmarks/pytest.ini benchmarks/`` run leaves a permanent
record next to the timing numbers.

``--quick`` puts the harness into smoke mode: benchmarks consult the
``quick`` fixture to shrink expensive parameters (fewer batch sessions,
profile projections without the full protocol legs) so CI can execute every
``bench_*.py`` end to end — combined with pytest-benchmark's
``--benchmark-disable`` this keeps the figure/table scripts from silently
rotting without paying for real timing runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.soc.system import Platform

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke mode: run every benchmark with minimal workloads",
    )


@pytest.fixture(scope="session")
def quick(request):
    """True when the harness runs in ``--quick`` smoke mode."""
    return request.config.getoption("--quick", default=False)


@pytest.fixture(scope="session")
def platform():
    """One shared simulated platform (engines are cached inside)."""
    return Platform()


@pytest.fixture(scope="session")
def record_table():
    """Write a rendered table to the results directory and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + os.linesep)
        print()
        print(text)

    return _record
