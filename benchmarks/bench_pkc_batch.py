"""Batched multi-session serving runs through the unified scheme registry.

The ROADMAP's heavy-traffic story: N independent protocol sessions per
scheme against one long-lived server key, with the fixed-base generator
tables (CEILIDH, ECDH) and the RSA key pair amortised across the batch.
One generic loop over the registry produces the cross-scheme serving
comparison — sessions/second, group operations and wire bytes per session —
and ``bench_perf_tracking`` reports every headline ``scheme x operation``
cell through the ``repro.perf`` emitter into the persistent
``BENCH_pkc.json``, gated against the committed baseline.
"""

from __future__ import annotations

import os
import pathlib
import random

# bench_path is aliased so pytest's python_functions = bench_* rule does not
# collect the imported library helper as a benchmark.
from repro.field.native import native_substrate_name
from repro.perf import (
    bench_path as perf_bench_path,
    compare,
    format_regressions,
    load_bench,
    record_from_batch,
)
from repro.pkc import get_scheme, measured_headline_projection
from repro.pkc.bench import BATCH_OPERATIONS, registry_batch_comparison, run_batch

REPO_ROOT = pathlib.Path(__file__).parent.parent

#: Schemes whose serving behaviour the comparison tracks.
BATCH_SCHEMES = ("ceilidh-170", "xtr-170", "ecdh-p160", "rsa-1024")

#: Throughput tolerance of the baseline gate (fraction below baseline).
BASELINE_TOLERANCE = 0.2

#: Non-default backends whose serving throughput gets its own BENCH rows.
#: ``native`` rows only exist where a substrate (gmpy2 or the compiled FIOS
#: kernel) is actually available — without one the native backend degrades
#: to plain and its row would just duplicate the baseline cell.
EXTRA_BACKENDS = ("montgomery",) + (("native",) if native_substrate_name() else ())

#: Measured-vs-analytic agreement bound of the Table 3 projection check.
PROJECTION_TOLERANCE = 0.05


def _render(results, record_table, name: str, title: str) -> None:
    record_table(
        name,
        ["scheme", "sessions", "ms/session", "sessions/s", "group ops/session",
         "wire B/session"],
        [
            (
                r.scheme,
                r.sessions,
                round(r.ms_per_session, 2),
                round(r.sessions_per_second, 1),
                round(r.ops_per_session, 1),
                round(r.wire_bytes_per_session, 1),
            )
            for r in results
        ],
        title=title,
    )


def bench_batch_key_agreement(record_table, quick):
    """N key agreements per scheme (every scheme that implements the protocol)."""
    sessions = 2 if quick else 16
    results = registry_batch_comparison(
        BATCH_SCHEMES, "key-agreement", sessions, rng=random.Random(30)
    )
    _render(results, record_table, "batch_key_agreement",
            f"Batched key agreement ({sessions} sessions, amortized fixed-base tables)")
    # RSA advertises no key agreement; the other three all ran.
    assert sorted(r.scheme for r in results) == ["ceilidh-170", "ecdh-p160", "xtr-170"]
    assert all(r.sessions == sessions for r in results)


def bench_batch_encryption(record_table, quick):
    """N hybrid encrypt+decrypt sessions per scheme."""
    sessions = 2 if quick else 16
    results = registry_batch_comparison(
        BATCH_SCHEMES, "encryption", sessions, rng=random.Random(31)
    )
    _render(results, record_table, "batch_encryption",
            f"Batched hybrid encryption ({sessions} sessions)")
    assert sorted(r.scheme for r in results) == ["ceilidh-170", "ecdh-p160", "rsa-1024"]


def bench_batch_amortization(benchmark, quick):
    """Fixed-base amortisation: the second CEILIDH batch reuses the tables.

    The registry caches scheme instances, so the generator squaring chain is
    built during the warm-up batch and later batches pay only the
    multiplications — the steady-state serving cost the benchmark times.
    """
    sessions = 2 if quick else 8
    scheme = get_scheme("ceilidh-170")
    rng = random.Random(32)
    server = scheme.keygen(rng)
    run_batch(scheme, "key-agreement", 1, rng=rng, server=server)  # warm tables
    result = benchmark.pedantic(
        run_batch,
        args=(scheme, "key-agreement", sessions),
        kwargs={"rng": rng, "server": server},
        rounds=1,
        iterations=1,
    )
    # Client keygens ride the fixed-base table: zero squarings there, so the
    # per-session squaring count is bounded by the two online derivations.
    assert result.ops.squarings < result.ops.total
    assert result.sessions == sessions


def bench_untraced_fast_path(record_table, quick):
    """Tracing off vs on for the batched CEILIDH serving path.

    With ``collect_ops=False`` the engine takes its null-trace fast path
    (direct bound group methods, zero bookkeeping); the result element
    stream is identical, so the shared keys still agree — the batch itself
    asserts that per session.
    """
    sessions = 2 if quick else 16
    scheme = get_scheme("ceilidh-170")
    rng = random.Random(33)
    server = scheme.keygen(rng)
    run_batch(scheme, "key-agreement", 1, rng=rng, server=server)  # warm tables
    traced = run_batch(scheme, "key-agreement", sessions, rng=rng, server=server)
    untraced = run_batch(
        scheme, "key-agreement", sessions, rng=rng, server=server, collect_ops=False
    )
    record_table(
        "untraced_fast_path",
        ["mode", "sessions", "ms/session", "sessions/s", "group ops recorded"],
        [
            ("traced", traced.sessions, round(traced.ms_per_session, 2),
             round(traced.sessions_per_second, 1), traced.ops.total),
            ("untraced", untraced.sessions, round(untraced.ms_per_session, 2),
             round(untraced.sessions_per_second, 1), untraced.ops.total),
        ],
        title="ceilidh-170 key agreement: OpTrace bookkeeping on vs off",
    )
    assert traced.ops.total > 0
    assert untraced.ops.total == 0  # the fast path records nothing


def bench_perf_tracking(record_table, record_perf, platform, quick):
    """Every headline ``scheme x operation`` cell into BENCH_pkc.json.

    Runs each of the four Table 3 schemes through every protocol it
    supports, emits one PerfRecord per cell (merged into the repo-root
    ``BENCH_pkc.json`` at session end) and compares the fresh throughputs
    against the committed baseline.  The gate *fails* the benchmark on a
    >20% regression when ``REPRO_BENCH_ENFORCE`` is set (the CI smoke job
    sets it together with ``REPRO_BENCH_CALIBRATE`` to cancel machine-speed
    differences); otherwise regressions are only reported.
    """
    # Quick mode shrinks the batch, so noise per timed region grows: take
    # the best of three runs per cell (standard minimum-of-N timing) to
    # keep the enforced gate from flagging scheduler jitter as regression.
    sessions = 4 if quick else 16
    repeats = 3 if quick else 1
    rng = random.Random(34)
    current = {}
    rows = []
    for name in BATCH_SCHEMES:
        # The unsuffixed BENCH keys are the *plain* baseline by contract;
        # pin the backend so an env-steered run (REPRO_FIELD_BACKEND=...)
        # cannot time another substrate into them or trip the gate.
        scheme = get_scheme(name, backend="plain")
        for operation in sorted(BATCH_OPERATIONS):
            if BATCH_OPERATIONS[operation] not in scheme.capabilities:
                continue
            result = min(
                (run_batch(scheme, operation, sessions, rng=rng) for _ in range(repeats)),
                key=lambda r: r.wall_seconds,
            )
            record = record_from_batch(
                result, scheme=scheme, platform=platform, quick=quick, sessions=sessions
            )
            record_perf(record)
            current[record.key] = record
            rows.append(
                (
                    record.scheme,
                    record.operation,
                    record.sessions,
                    round(record.ops_per_second, 1),
                    round(record.ms_per_op, 2),
                    record.squarings + record.multiplications,
                    record.projected_cycles,
                )
            )
    record_table(
        "perf_tracking",
        ["scheme", "operation", "sessions", "ops/s", "ms/op", "group ops",
         "projected cycles"],
        rows,
        title="Perf tracking - headline scheme x operation cells (-> BENCH_pkc.json)",
    )
    # All four schemes produced at least one cell each.
    assert {record.scheme for record in current.values()} == set(BATCH_SCHEMES)

    baseline = load_bench(perf_bench_path(REPO_ROOT))
    regressions = compare(
        current,
        baseline,
        tolerance=BASELINE_TOLERANCE,
        calibrate=bool(os.environ.get("REPRO_BENCH_CALIBRATE")),
    )
    report = format_regressions(regressions, tolerance=BASELINE_TOLERANCE)
    if report:
        print(report)
    if os.environ.get("REPRO_BENCH_ENFORCE"):
        assert not regressions, report


def bench_backend_throughput(record_table, record_perf, platform, quick):
    """Per-backend serving throughput rows for ``BENCH_pkc.json``.

    The plain backend's cells are the existing (unsuffixed) baseline keys;
    this benchmark adds one row per headline scheme and non-default backend
    under a ``scheme+backend`` key (e.g. ``ceilidh-170+montgomery:
    key-agreement``), so the resident-Montgomery serving cost is tracked
    over time without disturbing the plain baseline or its regression gate
    (the comparator skips keys absent from either side).
    """
    sessions = 2 if quick else 8
    rng = random.Random(35)
    rows = []
    emitted = []
    for name in BATCH_SCHEMES:
        for backend in EXTRA_BACKENDS:
            scheme = get_scheme(name, backend=backend)
            operation = next(
                (op for op in ("key-agreement", "encryption", "signature")
                 if BATCH_OPERATIONS[op] in scheme.capabilities),
                None,
            )
            if operation is None:  # pragma: no cover - every scheme has one
                continue
            result = run_batch(scheme, operation, sessions, rng=rng)
            # Native rows also record which substrate actually ran (gmpy2
            # vs the compiled FIOS kernel) — the throughputs differ.
            extra = {"substrate": native_substrate_name()} if backend == "native" else {}
            record = record_from_batch(
                result, scheme=scheme, platform=platform, quick=quick,
                sessions=sessions, backend=backend, **extra,
            )
            record.scheme = f"{record.scheme}+{backend}"
            record_perf(record)
            emitted.append(record.key)
            rows.append(
                (
                    record.scheme,
                    record.operation,
                    record.sessions,
                    round(record.ops_per_second, 1),
                    round(record.ms_per_op, 2),
                )
            )
    record_table(
        "backend_throughput",
        ["scheme+backend", "operation", "sessions", "ops/s", "ms/op"],
        rows,
        title="Per-backend serving throughput (suffixed BENCH_pkc.json keys)",
    )
    # The suffixed keys never collide with the plain baseline cells.
    assert all("+" in key.split(":")[0] for key in emitted)
    assert len(emitted) == len(BATCH_SCHEMES) * len(EXTRA_BACKENDS)


def bench_batch_vectorized_throughput(record_table, record_perf, platform, quick):
    """Coalesced (vectorised) key-agreement throughput per scheme and backend.

    Each row is one ``scheme+backend:batch-ka`` BENCH key: ``sessions``
    sessions served through the batch entry points — ``keygen_many``, the
    clients' ``key_agreement_with_many`` against the one server public
    (shared fixed-base table) and the server's ``key_agreement_many``
    (batched inversions) — in one coalesced call.  The plain rows measure
    the vectorised path on the default substrate; RSA advertises no key
    agreement and is skipped.  New keys are invisible to the regression
    gate until a baseline holds them (the comparator skips keys absent from
    either side).
    """
    sessions = 2 if quick else 8
    rng = random.Random(36)
    rows = []
    emitted = []
    for name in BATCH_SCHEMES:
        for backend in ("plain",) + EXTRA_BACKENDS:
            scheme = get_scheme(name, backend=backend)
            if BATCH_OPERATIONS["key-agreement"] not in scheme.capabilities:
                continue
            result = run_batch(scheme, "key-agreement", sessions, rng=rng, coalesce=True)
            assert result.coalesced and result.batch_size == sessions
            extra = {"substrate": native_substrate_name()} if backend == "native" else {}
            record = record_from_batch(
                result, scheme=scheme, platform=platform, quick=quick,
                sessions=sessions, backend=backend, **extra,
            )
            record.scheme = f"{record.scheme}+{backend}"
            record.operation = "batch-ka"
            record_perf(record)
            emitted.append(record.key)
            rows.append(
                (
                    record.scheme,
                    record.sessions,
                    record.batch_size,
                    round(record.ops_per_second, 1),
                    round(record.ms_per_op, 2),
                )
            )
    record_table(
        "batch_vectorized_throughput",
        ["scheme+backend", "sessions", "batch", "ops/s", "ms/op"],
        rows,
        title="Vectorised key agreement (coalesced batch entry points, batch-ka keys)",
    )
    ka_schemes = [name for name in BATCH_SCHEMES if name != "rsa-1024"]
    assert all(key.endswith(":batch-ka") for key in emitted)
    assert len(emitted) == len(ka_schemes) * (1 + len(EXTRA_BACKENDS))


def bench_measured_vs_analytic_projection(record_table, platform, quick):
    """Table 3 projections from *measured* word-op streams vs the analytic
    composition — asserted to agree within 5% for every headline scheme.

    Quick mode swaps RSA-1024 for RSA-512 (the word-level FIOS execution of
    1534 x 64-word products is the one genuinely slow measurement); the full
    run covers the exact paper sizes.
    """
    names = list(BATCH_SCHEMES)
    if quick:
        names[names.index("rsa-1024")] = "rsa-512"
    rows = []
    for name in names:
        projection = measured_headline_projection(name, platform=platform)
        rows.append(
            (
                name,
                projection.bit_length,
                projection.analytic_cycles,
                projection.measured_cycles,
                f"{projection.relative_error:.4%}",
                projection.stream["modular_mults"],
                projection.stream["word_mults"],
            )
        )
        assert projection.relative_error <= PROJECTION_TOLERANCE, (
            f"{name}: measured {projection.measured_cycles} vs analytic "
            f"{projection.analytic_cycles} "
            f"({projection.relative_error:.2%} > {PROJECTION_TOLERANCE:.0%})"
        )
    record_table(
        "measured_vs_analytic",
        ["scheme", "bits", "analytic cycles", "measured cycles", "error",
         "modular mults", "word mults"],
        rows,
        title="Table 3 projection: measured word-op streams vs analytic composition",
    )
