"""Batched multi-session serving runs through the unified scheme registry.

The first step toward the ROADMAP's heavy-traffic story: N independent
protocol sessions per scheme against one long-lived server key, with the
fixed-base generator tables (CEILIDH, ECDH) and the RSA key pair amortised
across the batch.  One generic loop over the registry produces the
cross-scheme serving comparison — sessions/second, group operations and
wire bytes per session.
"""

from __future__ import annotations

import random

from repro.analysis.report import render_table
from repro.pkc import get_scheme
from repro.pkc.bench import registry_batch_comparison, run_batch

#: Schemes whose serving behaviour the comparison tracks.
BATCH_SCHEMES = ("ceilidh-170", "xtr-170", "ecdh-p160", "rsa-1024")


def _render(results, record_table, name: str, title: str) -> None:
    text = render_table(
        ["scheme", "sessions", "ms/session", "sessions/s", "group ops/session",
         "wire B/session"],
        [
            (
                r.scheme,
                r.sessions,
                round(r.ms_per_session, 2),
                round(r.sessions_per_second, 1),
                round(r.ops_per_session, 1),
                round(r.wire_bytes_per_session, 1),
            )
            for r in results
        ],
        title=title,
    )
    record_table(name, text)


def bench_batch_key_agreement(record_table, quick):
    """N key agreements per scheme (every scheme that implements the protocol)."""
    sessions = 2 if quick else 16
    results = registry_batch_comparison(
        BATCH_SCHEMES, "key-agreement", sessions, rng=random.Random(30)
    )
    _render(results, record_table, "batch_key_agreement",
            f"Batched key agreement ({sessions} sessions, amortized fixed-base tables)")
    # RSA advertises no key agreement; the other three all ran.
    assert sorted(r.scheme for r in results) == ["ceilidh-170", "ecdh-p160", "xtr-170"]
    assert all(r.sessions == sessions for r in results)


def bench_batch_encryption(record_table, quick):
    """N hybrid encrypt+decrypt sessions per scheme."""
    sessions = 2 if quick else 16
    results = registry_batch_comparison(
        BATCH_SCHEMES, "encryption", sessions, rng=random.Random(31)
    )
    _render(results, record_table, "batch_encryption",
            f"Batched hybrid encryption ({sessions} sessions)")
    assert sorted(r.scheme for r in results) == ["ceilidh-170", "ecdh-p160", "rsa-1024"]


def bench_batch_amortization(benchmark, quick):
    """Fixed-base amortisation: the second CEILIDH batch reuses the tables.

    The registry caches scheme instances, so the generator squaring chain is
    built during the warm-up batch and later batches pay only the
    multiplications — the steady-state serving cost the benchmark times.
    """
    sessions = 2 if quick else 8
    scheme = get_scheme("ceilidh-170")
    rng = random.Random(32)
    server = scheme.keygen(rng)
    run_batch(scheme, "key-agreement", 1, rng=rng, server=server)  # warm tables
    result = benchmark.pedantic(
        run_batch,
        args=(scheme, "key-agreement", sessions),
        kwargs={"rng": rng, "server": server},
        rounds=1,
        iterations=1,
    )
    # Client keygens ride the fixed-base table: zero squarings there, so the
    # per-session squaring count is bounded by the two online derivations.
    assert result.ops.squarings < result.ops.total
    assert result.sessions == sessions
