"""Online serving runs through ``repro.serve`` — the networked Table 3.

The offline harness (``bench_pkc_batch``) measures batched sessions in a
plain loop; this benchmark measures the same sessions *through the serving
stack*: framed loopback TCP, per-connection sessions, the bounded-queue
scheduler batching same-scheme requests into a worker pool.  One load run
per headline scheme yields round-trip throughput, client-side latency
percentiles and the server-side batching statistics; every cell is emitted
into ``BENCH_pkc.json`` under ``serve:`` keys (the offline plain-baseline
keys are never touched, and the regression comparator skips keys absent
from either side).
"""

from __future__ import annotations

import asyncio

from repro.perf import PerfRecord
from repro.serve.client import run_load
from repro.serve.server import ServeServer

#: The served mix: each headline scheme under its first Table 3 protocol.
SERVE_MIX = [
    ("ceilidh-170", "key-agreement"),
    ("ecdh-p160", "key-agreement"),
    ("rsa-1024", "encryption"),
    ("xtr-170", "key-agreement"),
]

CLIENTS = 8


async def _run(sessions_per_client: int):
    server = ServeServer(max_batch=16, queue_size=256)
    host, port = await server.start()
    try:
        report = await run_load(
            host, port, SERVE_MIX, clients=CLIENTS,
            sessions_per_client=sessions_per_client,
        )
    finally:
        await server.stop()
    return report, server


def bench_serve_load(record_table, record_perf, quick):
    """N concurrent clients per scheme against one in-process server."""
    sessions_per_client = 2 if quick else 8
    report, server = asyncio.run(_run(sessions_per_client))
    assert report.total_errors == 0
    assert server.protocol_errors == 0

    rows = []
    for entry in report.entries.values():
        digest = entry.histogram.summary()
        kind = "decrypt" if entry.operation == "encryption" else entry.operation
        group = server.scheduler.stats.group(entry.scheme, kind)
        rows.append(
            (
                entry.scheme,
                entry.operation,
                entry.sessions,
                round(entry.sessions_per_second, 1),
                round(group.served_per_second, 1),
                group.largest_batch,
                digest["p50_ms"],
                digest["p99_ms"],
            )
        )
        record = PerfRecord(
            scheme=f"serve:{entry.scheme}",
            operation=entry.operation,
            sessions=entry.sessions,
            wall_seconds=entry.wall_seconds,
            ops_per_second=entry.sessions_per_second,
            ms_per_op=(entry.wall_seconds * 1e3 / entry.sessions
                       if entry.sessions else 0.0),
            latency_ms=digest,
            meta={"clients": report.clients, "quick": quick,
                  "executor": server.scheduler.executor_kind,
                  "backend": server.scheme_host.backend},
        )
        record_perf(record)

    record_table(
        "serve_load",
        ["scheme", "operation", "sessions", "round-trip sess/s",
         "server batched req/s", "largest batch", "p50 ms", "p99 ms"],
        rows,
        title=(f"Online serving: {CLIENTS} concurrent clients per scheme "
               f"(framed TCP, batching scheduler)"),
    )
    # All four headline schemes completed every session.
    assert {entry.scheme for entry in report.entries.values()} == {
        name for name, _ in SERVE_MIX
    }
    assert all(entry.sessions == CLIENTS * sessions_per_client
               for entry in report.entries.values())
