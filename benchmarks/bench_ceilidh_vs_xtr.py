"""CEILIDH versus XTR — the comparison the paper builds on (its reference [5]).

Granger, Page and Stam compared CEILIDH and XTR on a PC and concluded that
"CEILIDH is not much slower than XTR"; the paper uses that result to justify
implementing CEILIDH.  Both systems live in the same order-q subgroup of Fp6*
and transmit ~2 log p bits per element; they differ in how an exponentiation
is computed (full Fp6 arithmetic, 18 Fp multiplications per group operation,
versus Fp2 trace recurrences, ~4 Fp2 multiplications per exponent bit).

This benchmark reproduces that comparison on this library: identical
bandwidth, Fp-multiplication counts per exponentiation, and wall-clock times
of the two software implementations.
"""

from __future__ import annotations

import random

from repro.field.opcount import CountingPrimeField
from repro.torus.ceilidh import CeilidhSystem
from repro.torus.encoding import compressed_size_bytes
from repro.torus.exponentiation import multiplication_counts
from repro.torus.params import CEILIDH_170, get_parameters
from repro.xtr.keyagreement import XtrSystem
from repro.xtr.trace import XtrContext


def bench_ceilidh_vs_xtr_operation_counts(benchmark, record_table):
    """Bandwidth and Fp-operation counts per 170-bit exponentiation."""
    def analyse():
        exponent_bits = 170
        ceilidh_counts = multiplication_counts(exponent_bits, "binary")
        ceilidh_fp_muls = 18 * ceilidh_counts.total
        xtr_fp2_muls = XtrContext(CEILIDH_170).ladder_multiplication_count(exponent_bits)
        xtr_fp_muls = 3 * xtr_fp2_muls  # Karatsuba Fp2 multiplication = 3 Fp products
        element_bytes = compressed_size_bytes(CEILIDH_170)
        return [
            ("CEILIDH (compressed torus)", element_bytes, ceilidh_counts.total,
             f"{ceilidh_fp_muls} Fp mults"),
            ("XTR (trace over Fp2)", element_bytes, exponent_bits,
             f"~{xtr_fp_muls} Fp mults"),
        ]

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    record_table("ceilidh_vs_xtr",
        ["system", "bytes per public value", "group ops / ladder steps", "Fp multiplication cost"],
        rows,
        title="CEILIDH vs XTR - bandwidth and arithmetic cost per 170-bit exponentiation "
              "(paper reference [5])",
    )
    assert rows[0][1] == rows[1][1]  # identical bandwidth


def bench_ceilidh_exponentiation_fp_mult_count(benchmark):
    """Measured Fp multiplications of one CEILIDH exponentiation (toy size)."""
    params = get_parameters("toy-32")

    def run():
        field = CountingPrimeField(params.p, check_prime=False)
        from repro.field.fp6 import make_fp6
        from repro.torus.t6 import T6Group

        group = T6Group(params)
        group.fp = field
        group.fp6 = make_fp6(field)
        element = group.fp6.project_to_torus(group.fp6([3, 1]))
        field.reset_counts()
        group.fp6.pow(element, (1 << 32) - 5)
        return field.counts.mul

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    # 32-bit exponent, ~1.5 * 32 group operations, 18 M each.
    assert 600 < count < 1200


def bench_xtr_key_agreement_software(benchmark):
    """Wall-clock cost of one XTR shared-secret derivation at 170 bits."""
    system = XtrSystem(CEILIDH_170)
    rng = random.Random(31)
    alice = system.generate_keypair(rng)
    bob = system.generate_keypair(rng)
    shared = benchmark(system.shared_trace, alice, bob.public)
    assert shared == system.shared_trace(bob, alice.public)


def bench_ceilidh_key_agreement_vs_xtr_wallclock(benchmark):
    """Wall-clock cost of one CEILIDH shared-secret derivation (same subgroup)."""
    system = CeilidhSystem(CEILIDH_170)
    rng = random.Random(32)
    alice = system.generate_keypair(rng)
    bob = system.generate_keypair(rng)
    shared = benchmark(system.shared_secret, alice, bob.public)
    assert shared == system.shared_secret(bob, alice.public)
