"""Section 1/2 claims — bandwidth compression and protocol message sizes.

The paper's motivation for torus cryptography is the factor n/phi(n) = 3
compression: the security of Fp6 while transmitting two Fp elements, i.e.
keys a third the size of RSA's at the same security level.  This benchmark
reproduces the transmitted-bits accounting and measures the end-to-end
CEILIDH protocol operations of the library.
"""

from __future__ import annotations

import random

from repro.analysis.figures import bandwidth_comparison
from repro.analysis.report import render_table
from repro.torus.ceilidh import CeilidhSystem
from repro.torus.params import CEILIDH_170


def bench_bandwidth_comparison(benchmark, record_table):
    """Transmitted bits per group element: CEILIDH vs raw Fp6 vs RSA vs ECC."""
    rows = benchmark.pedantic(bandwidth_comparison, args=(CEILIDH_170,), rounds=1, iterations=1)
    text = render_table(
        ["system", "security reference", "transmitted bits", "compression vs raw Fp6"],
        [(r.system, r.security_equivalent, r.transmitted_bits, r.compression_vs_fp6) for r in rows],
        title="Bandwidth - transmitted bits per element (Section 1 claim: factor 3)",
    )
    record_table("bandwidth_compression", text)

    by_system = {r.system: r for r in rows}
    ceilidh = by_system["CEILIDH (compressed T6)"]
    raw = by_system["raw Fp6 element"]
    rsa = by_system["RSA-1024 (modulus-sized message)"]
    assert raw.transmitted_bits == 3 * ceilidh.transmitted_bits
    # Roughly a third of the 1024-bit RSA message at comparable security.
    assert 2.8 < rsa.transmitted_bits / ceilidh.transmitted_bits < 3.3


def bench_ceilidh_keypair_generation(benchmark):
    """Wall-clock cost of generating a 170-bit CEILIDH key pair."""
    system = CeilidhSystem(CEILIDH_170)
    rng = random.Random(20)
    keypair = benchmark(system.generate_keypair, rng)
    assert 1 <= keypair.private < CEILIDH_170.q


def bench_ceilidh_key_agreement(benchmark):
    """Wall-clock cost of one CEILIDH shared-secret derivation at 170 bits."""
    system = CeilidhSystem(CEILIDH_170)
    rng = random.Random(21)
    alice = system.generate_keypair(rng)
    bob = system.generate_keypair(rng)
    shared = benchmark(system.derive_key, alice, bob.public)
    assert shared == system.derive_key(bob, alice.public)


def bench_ceilidh_signature(benchmark):
    """Wall-clock cost of one CEILIDH (Schnorr-style) signature at 170 bits."""
    system = CeilidhSystem(CEILIDH_170)
    rng = random.Random(22)
    keypair = system.generate_keypair(rng)
    signature = benchmark(system.sign, keypair, b"benchmark message", rng)
    assert system.verify(keypair.public, b"benchmark message", signature)
