"""Section 1/2 claims — bandwidth compression and protocol message sizes.

The paper's motivation for torus cryptography is the factor n/phi(n) = 3
compression: the security of Fp6 while transmitting two Fp elements, i.e.
keys a third the size of RSA's at the same security level.  This benchmark
reproduces the transmitted-bits accounting and measures the end-to-end
CEILIDH protocol operations of the library.
"""

from __future__ import annotations

import random

from repro.analysis.figures import bandwidth_comparison
from repro.pkc import get_scheme
from repro.torus.params import CEILIDH_170


def bench_bandwidth_comparison(benchmark, record_table):
    """Transmitted bits per group element: CEILIDH vs raw Fp6 vs RSA vs ECC."""
    rows = benchmark.pedantic(bandwidth_comparison, args=(CEILIDH_170,), rounds=1, iterations=1)
    record_table("bandwidth_compression",
        ["system", "security reference", "transmitted bits", "compression vs raw Fp6"],
        [(r.system, r.security_equivalent, r.transmitted_bits, r.compression_vs_fp6) for r in rows],
        title="Bandwidth - transmitted bits per element (Section 1 claim: factor 3)",
    )

    by_system = {r.system: r for r in rows}
    ceilidh = by_system["CEILIDH (compressed T6)"]
    raw = by_system["raw Fp6 element"]
    rsa = by_system["RSA-1024 (modulus-sized message)"]
    assert raw.transmitted_bits == 3 * ceilidh.transmitted_bits
    # Roughly a third of the 1024-bit RSA message at comparable security.
    assert 2.8 < rsa.transmitted_bits / ceilidh.transmitted_bits < 3.3


def bench_wire_sizes_registry(record_table):
    """Protocol message sizes for every registered Table 3 scheme.

    One generic loop over the unified registry: each scheme reports the wire
    bytes of the messages it actually supports (public key always, plus
    ciphertext overhead and signature where implemented).
    """
    rows = []
    for name in ("ceilidh-170", "xtr-170", "ecdh-p160", "rsa-1024"):
        scheme = get_scheme(name)
        rows.append(
            (
                scheme.name,
                scheme.bit_length,
                scheme.public_key_size(),
                ", ".join(sorted(scheme.capabilities)),
            )
        )
    record_table("wire_sizes_registry",
        ["scheme", "bits", "public key bytes", "capabilities"],
        rows,
        title="Wire sizes and capabilities via the repro.pkc registry",
    )
    by_name = dict((r[0], r) for r in rows)
    # CEILIDH and XTR transmit the same two Fp values; RSA is ~3x larger.
    assert by_name["ceilidh-170"][2] == by_name["xtr-170"][2]
    assert by_name["rsa-1024"][2] > 2.8 * by_name["ceilidh-170"][2]


def bench_ceilidh_keypair_generation(benchmark):
    """Wall-clock cost of generating a 170-bit CEILIDH key pair."""
    scheme = get_scheme("ceilidh-170")
    rng = random.Random(20)
    keypair = benchmark(scheme.keygen, rng)
    assert 1 <= keypair.native.private < CEILIDH_170.q


def bench_ceilidh_key_agreement(benchmark):
    """Wall-clock cost of one CEILIDH shared-secret derivation at 170 bits."""
    scheme = get_scheme("ceilidh-170")
    rng = random.Random(21)
    alice = scheme.keygen(rng)
    bob = scheme.keygen(rng)
    shared = benchmark(scheme.key_agreement, alice, bob.public_wire)
    assert shared == scheme.key_agreement(bob, alice.public_wire)


def bench_ceilidh_signature(benchmark):
    """Wall-clock cost of one CEILIDH (Schnorr-style) signature at 170 bits."""
    scheme = get_scheme("ceilidh-170")
    rng = random.Random(22)
    keypair = scheme.keygen(rng)
    signature = benchmark(scheme.sign, keypair, b"benchmark message", rng)
    assert scheme.verify(keypair.public_wire, b"benchmark message", signature)
