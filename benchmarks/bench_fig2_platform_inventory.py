"""Fig. 2 — the platform block diagram, as a resource inventory.

The figure is structural (MicroBlaze, register interface, decoder, DataRAM,
instruction ROMs, cores); the quantitative content reproduced here is the
component inventory with the area/frequency budget of Table 3's platform
column (5419 slices, 3285 of them in the coprocessor, 74 MHz) and its scaling
with the number of cores.
"""

from __future__ import annotations

from repro.analysis.figures import fig2_platform_inventory
from repro.soc.area import AreaModel


def bench_fig2_platform_inventory(benchmark, platform, record_table):
    """Report the platform inventory and area budget."""
    inventory = benchmark.pedantic(
        fig2_platform_inventory, args=(platform,), rounds=1, iterations=1
    )
    record_table("fig2_platform_inventory",
        ["component / parameter", "value"],
        sorted((str(k), str(v)) for k, v in inventory.items()),
        title="Fig. 2 - platform inventory (simulated)",
    )
    assert inventory["core_instruction_count"] == 7
    assert inventory["area_slices_total"] == 5419
    assert inventory["area_slices_coprocessor"] == 3285
    assert inventory["frequency_mhz"] == 74.0


def bench_area_scaling_with_cores(benchmark, record_table):
    """Area/frequency scaling of the parametric model (core-count ablation)."""
    model = AreaModel()
    reports = benchmark.pedantic(
        lambda: [model.report(cores) for cores in (1, 2, 4, 8, 16)], rounds=1, iterations=1
    )
    record_table("fig2_area_scaling",
        ["cores", "coprocessor slices", "total slices", "frequency MHz", "block RAMs"],
        [
            (r.num_cores, r.coprocessor_slices, r.total_slices, r.frequency_mhz, r.block_rams)
            for r in reports
        ],
        title="Fig. 2 (scaling) - area model vs number of cores",
    )
    assert reports[2].total_slices == 5419  # the paper's 4-core configuration
