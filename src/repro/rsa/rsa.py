"""RSA operations on top of the Montgomery exponentiation layer.

The integer-level primitives (``rsa_encrypt_int`` and friends) are exactly
what the platform executes — a modular exponentiation over Montgomery
multiplications, routed through the unified engine (sliding-window recoding
by default: ~30% fewer Montgomery products than square-and-multiply at
RSA exponent sizes, with the same operation unit the paper counts).  The byte-level helpers add a minimal
deterministic padding scheme so the examples can round-trip real messages;
they are not a substitute for OAEP/PSS and say so.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

from repro.errors import DecryptionError, ParameterError
from repro.exp.trace import OpTrace
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.exponent import montgomery_power, montgomery_power_many
from repro.rsa.keygen import RsaKeyPair, RsaPublicKey

PublicLike = Union[RsaKeyPair, RsaPublicKey]


def _public(key: PublicLike) -> RsaPublicKey:
    return key.public() if isinstance(key, RsaKeyPair) else key


def rsa_encrypt_int(
    key: PublicLike,
    message: int,
    word_bits: int = 16,
    trace: Optional[OpTrace] = None,
    domain: Optional[MontgomeryDomain] = None,
) -> int:
    """Raw RSA: message^e mod n via Montgomery exponentiation.

    ``domain`` optionally supplies a prebuilt (possibly word-counting)
    Montgomery domain for ``n`` — the backend-aware scheme adapter passes
    its own so the word-operation stream of the exponentiation is observable.
    """
    public = _public(key)
    if not 0 <= message < public.n:
        raise ParameterError("message representative out of range")
    if domain is None:
        domain = MontgomeryDomain(public.n, word_bits=word_bits)
    elif domain.modulus != public.n:
        raise ParameterError("injected domain modulus does not match the key")
    return montgomery_power(domain, message, public.e, trace=trace)


def rsa_decrypt_int(
    key: RsaKeyPair,
    ciphertext: int,
    word_bits: int = 16,
    trace: Optional[OpTrace] = None,
    domain: Optional[MontgomeryDomain] = None,
) -> int:
    """Raw RSA decryption without CRT (the paper's 1024-bit exponentiation)."""
    if not 0 <= ciphertext < key.n:
        raise ParameterError("ciphertext representative out of range")
    if domain is None:
        domain = MontgomeryDomain(key.n, word_bits=word_bits)
    elif domain.modulus != key.n:
        raise ParameterError("injected domain modulus does not match the key")
    return montgomery_power(domain, ciphertext, key.d, trace=trace)


def rsa_decrypt_int_crt(
    key: RsaKeyPair,
    ciphertext: int,
    word_bits: int = 16,
    trace: Optional[OpTrace] = None,
    domains: Optional[tuple] = None,
) -> int:
    """CRT decryption: two half-size exponentiations plus recombination.

    ``domains`` optionally supplies prebuilt ``(domain_p, domain_q)`` —
    possibly word-counting — Montgomery domains for the two prime halves.
    """
    if not 0 <= ciphertext < key.n:
        raise ParameterError("ciphertext representative out of range")
    if domains is None:
        domain_p = MontgomeryDomain(key.p, word_bits=word_bits)
        domain_q = MontgomeryDomain(key.q, word_bits=word_bits)
    else:
        domain_p, domain_q = domains
        if domain_p.modulus != key.p or domain_q.modulus != key.q:  # audit: allow[CT103] config validation; injected domain and key prime share one trust domain
            raise ParameterError("injected CRT domains do not match the key's primes")
    m_p = montgomery_power(domain_p, ciphertext % key.p, key.d_p, trace=trace)
    m_q = montgomery_power(domain_q, ciphertext % key.q, key.d_q, trace=trace)
    h = key.q_inv * (m_p - m_q) % key.p
    return m_q + h * key.q


# ---------------------------------------------------------------------------
# Byte-level helpers with a simple deterministic padding.
# ---------------------------------------------------------------------------

_PAD_MARKER = b"\x00\x01"


def _modulus_bytes(n: int) -> int:
    return (n.bit_length() + 7) // 8


def _pad(message: bytes, n: int) -> int:
    """Fixed-pattern padding 0x00 0x01 0xFF.. 0x00 || message (PKCS#1 v1.5 shape).

    Deterministic (no random filler) — sufficient for the examples and tests,
    explicitly not a secure encryption padding.
    """
    k = _modulus_bytes(n)
    if len(message) > k - 11:
        raise ParameterError(f"message too long for a {k}-byte modulus")
    filler = b"\xff" * (k - len(message) - 3)
    block = _PAD_MARKER + filler + b"\x00" + message
    return int.from_bytes(block, "big")


def _unpad(value: int, n: int) -> bytes:
    k = _modulus_bytes(n)
    block = value.to_bytes(k, "big")
    if not block.startswith(_PAD_MARKER):
        raise DecryptionError("bad padding header")
    try:
        separator = block.index(b"\x00", 2)
    except ValueError:
        raise DecryptionError("missing padding separator") from None
    return block[separator + 1 :]


def rsa_encrypt(key: PublicLike, message: bytes, trace: Optional[OpTrace] = None) -> bytes:
    """Encrypt a short message with the deterministic padding."""
    public = _public(key)
    value = rsa_encrypt_int(public, _pad(message, public.n), trace=trace)
    return value.to_bytes(_modulus_bytes(public.n), "big")


def rsa_decrypt(
    key: RsaKeyPair,
    ciphertext: bytes,
    use_crt: bool = True,
    trace: Optional[OpTrace] = None,
) -> bytes:
    """Decrypt and strip the padding."""
    value = int.from_bytes(ciphertext, "big")
    if value >= key.n:
        raise DecryptionError("ciphertext out of range")
    plain = (
        rsa_decrypt_int_crt(key, value, trace=trace)
        if use_crt
        else rsa_decrypt_int(key, value, trace=trace)
    )
    return _unpad(plain, key.n)


def rsa_sign(
    key: RsaKeyPair,
    message: bytes,
    trace: Optional[OpTrace] = None,
    domains: Optional[tuple] = None,
) -> bytes:
    """Hash-then-sign (SHA-256 digest, deterministic padding)."""
    digest = hashlib.sha256(message).digest()
    value = rsa_decrypt_int_crt(key, _pad(digest, key.n), trace=trace, domains=domains)
    return value.to_bytes(_modulus_bytes(key.n), "big")


def rsa_sign_many(
    key: RsaKeyPair,
    messages,
    trace: Optional[OpTrace] = None,
    domains: Optional[tuple] = None,
    word_bits: int = 16,
) -> "list[bytes]":
    """N hash-then-sign signatures batching the CRT exponentiations.

    The padding is deterministic and no RNG is involved, so the two
    half-size exponentiation streams (mod p with ``d_p``, mod q with
    ``d_q``) can run as two :func:`montgomery_power_many` batches — one
    Montgomery domain pair, one engine batch per prime — and the signatures
    stay byte-identical to N :func:`rsa_sign` calls.
    """
    messages = list(messages)
    padded = [
        _pad(hashlib.sha256(message).digest(), key.n) for message in messages
    ]
    if domains is None:
        domain_p = MontgomeryDomain(key.p, word_bits=word_bits)
        domain_q = MontgomeryDomain(key.q, word_bits=word_bits)
    else:
        domain_p, domain_q = domains
        if domain_p.modulus != key.p or domain_q.modulus != key.q:  # audit: allow[CT103] config validation; injected domain and key prime share one trust domain
            raise ParameterError("injected CRT domains do not match the key's primes")
    m_ps = montgomery_power_many(
        domain_p, [c % key.p for c in padded], [key.d_p] * len(padded), trace=trace
    )
    m_qs = montgomery_power_many(
        domain_q, [c % key.q for c in padded], [key.d_q] * len(padded), trace=trace
    )
    width = _modulus_bytes(key.n)
    signatures = []
    for m_p, m_q in zip(m_ps, m_qs):
        h = key.q_inv * (m_p - m_q) % key.p
        signatures.append((m_q + h * key.q).to_bytes(width, "big"))
    return signatures


def rsa_verify(
    key: PublicLike,
    message: bytes,
    signature: bytes,
    trace: Optional[OpTrace] = None,
    domain=None,
) -> bool:
    """Verify a hash-then-sign signature."""
    public = _public(key)
    value = int.from_bytes(signature, "big")
    if value >= public.n:
        return False
    try:
        recovered = _unpad(
            rsa_encrypt_int(public, value, trace=trace, domain=domain), public.n
        )
    except DecryptionError:
        return False
    return recovered == hashlib.sha256(message).digest()
