"""RSA under the unified PKC layer.

Hybrid encryption is RSA-KEM shaped: a random residue is wrapped with the
public exponentiation and the KDF of its fixed-width encoding drives the
same XOR-keystream + confirmation-tag body as the torus and curve schemes,
so every scheme's ciphertext differs only in the header it transmits.
Signatures reuse the hash-then-sign helpers.  Diffie-Hellman-style key
agreement is deliberately *not* advertised — the capability set is how the
generic comparison loop knows — and the Table 3 headline is the full-length
private-key Montgomery exponentiation, one MicroBlaze round trip per
multiplication, exactly as the paper composes the 96 ms row.

Key generation is lazy and cached on the adapter: an RSA key pair is orders
of magnitude more expensive than a discrete-log one (two random primes), and
a served deployment holds one long-lived key rather than one per session, so
``keygen`` returns the cached pair unless asked for a ``fresh`` draw.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.errors import DecryptionError, ParameterError
from repro.exp.trace import OpTrace
from repro.montgomery.domain import MontgomeryDomain
from repro.nt.sampling import resolve_rng
from repro.montgomery.exponent import montgomery_power
from repro.pkc.base import (
    ENCRYPTION,
    SIGNATURE,
    TAG_BYTES,
    PkcScheme,
    SchemeKeyPair,
    open_body,
    seal_body,
)
from repro.pkc.profile import canonical_exponent
from repro.rsa.keygen import RsaKeyPair, RsaPublicKey, generate_rsa_keypair
from repro.rsa.rsa import (
    rsa_decrypt_int_crt,
    rsa_encrypt_int,
    rsa_sign,
    rsa_sign_many,
    rsa_verify,
)
from repro.soc.system import default_rsa_modulus

__all__ = ["RsaScheme"]

#: Bytes used for the public exponent in the wire encoding of a public key.
EXPONENT_BYTES = 4


class RsaScheme(PkcScheme):
    """RSA-n encryption + signatures as a registry scheme."""

    capabilities = frozenset({ENCRYPTION, SIGNATURE})
    headline_operation = "RSA private-key exponentiation (Montgomery, binary)"

    def __init__(
        self,
        modulus_bits: int = 1024,
        name: Optional[str] = None,
        security_bits: int = 80,
        paper_ms: Optional[float] = None,
        public_exponent: int = 65537,
        backend=None,
    ):
        from repro.field.backend import get_backend

        # RSA's arithmetic *is* the Montgomery domain already (the paper's
        # point); the plain and montgomery backends therefore share one code
        # path and produce identical wire bytes, while the word-counting
        # backend swaps in domains whose products stream FIOS word tallies.
        self.field_backend = get_backend(backend)
        self.modulus_bits = modulus_bits
        self.bit_length = modulus_bits
        self.name = name or f"rsa-{modulus_bits}"
        self.security_bits = security_bits
        self.paper_ms = paper_ms
        self.public_exponent = public_exponent
        self._keypair: Optional[RsaKeyPair] = None
        self._modulus_width = (modulus_bits + 7) // 8
        self._domains: dict = {}

    def _domain_for(self, modulus: int):
        """A cached per-modulus domain when the backend is word-counting.

        Returns ``None`` for the plain/montgomery backends so the legacy
        entry points keep constructing their own plain domains.
        """
        if self.field_backend.name != "word-counting":
            return None
        if modulus not in self._domains:
            self._domains[modulus] = self.field_backend.bind(modulus).counting_domain
        return self._domains[modulus]

    def _crt_domains(self, key: RsaKeyPair):
        """Counting domains for the CRT prime halves (None on other backends)."""
        if self.field_backend.name != "word-counting":
            return None
        return (self._domain_for(key.p), self._domain_for(key.q))

    # -- keys -------------------------------------------------------------------

    def _wrap(self, keypair: RsaKeyPair) -> SchemeKeyPair:
        return SchemeKeyPair(
            scheme=self.name,
            public_wire=self.encode_public(keypair.public()),
            native=keypair,
        )

    def keygen(
        self,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
        fresh: bool = False,
    ) -> SchemeKeyPair:
        """The scheme's (cached) key pair; ``fresh=True`` forces a regeneration.

        Prime generation is trial-division + Miller-Rabin, not an
        exponentiation loop, so ``trace`` records no group operations here —
        faithfully: the paper's Table 3 costs RSA by its exponentiation, not
        its keygen.
        """
        if fresh or self._keypair is None:
            self._keypair = generate_rsa_keypair(
                self.modulus_bits, e=self.public_exponent, rng=rng
            )
        return self._wrap(self._keypair)

    def public_key_size(self) -> int:
        return self._modulus_width + EXPONENT_BYTES

    def decode_public(self, data: bytes) -> RsaPublicKey:
        expected = self.public_key_size()
        if len(data) != expected:
            raise ParameterError(f"an RSA-{self.modulus_bits} public key is {expected} bytes")
        n = int.from_bytes(data[: self._modulus_width], "big")
        e = int.from_bytes(data[self._modulus_width :], "big")
        if n.bit_length() != self.modulus_bits:
            raise ParameterError("modulus has the wrong bit length")
        if e < 3 or e % 2 == 0:
            raise ParameterError("public exponent must be an odd integer >= 3")
        return RsaPublicKey(n=n, e=e)

    def encode_public(self, public: RsaPublicKey) -> bytes:
        return public.n.to_bytes(self._modulus_width, "big") + public.e.to_bytes(
            EXPONENT_BYTES, "big"
        )

    # -- hybrid encryption (RSA-KEM) ---------------------------------------------

    def encrypt(
        self,
        recipient_public: bytes,
        plaintext: bytes,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        rng = resolve_rng(rng)
        public = self.decode_public(recipient_public)
        seed = rng.randrange(2, public.n - 1)
        wrapped = rsa_encrypt_int(public, seed, trace=trace, domain=self._domain_for(public.n))
        secret = seed.to_bytes(self._modulus_width, "big")
        body, tag = seal_body(secret, b"rsa-kem", plaintext)
        return wrapped.to_bytes(self._modulus_width, "big") + tag + body

    def decrypt(
        self, own: SchemeKeyPair, ciphertext: bytes, trace: Optional[OpTrace] = None
    ) -> bytes:
        header = self._modulus_width + TAG_BYTES
        if len(ciphertext) < header:
            raise ParameterError(f"ciphertext shorter than the {header}-byte RSA-KEM header")
        wrapped = int.from_bytes(ciphertext[: self._modulus_width], "big")
        key: RsaKeyPair = own.native
        if wrapped >= key.n:
            raise DecryptionError("wrapped seed out of range")
        tag = ciphertext[self._modulus_width : header]
        body = ciphertext[header:]
        seed = rsa_decrypt_int_crt(key, wrapped, trace=trace, domains=self._crt_domains(key))
        secret = seed.to_bytes(self._modulus_width, "big")
        return open_body(secret, b"rsa-kem", body, tag)

    # -- signatures -----------------------------------------------------------------

    def sign(
        self,
        own: SchemeKeyPair,
        message: bytes,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        return rsa_sign(own.native, message, trace=trace, domains=self._crt_domains(own.native))

    def sign_many(
        self,
        own: SchemeKeyPair,
        messages,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """N deterministic signatures as two CRT exponentiation batches.

        No RNG draws are involved (hash-then-sign with fixed padding), so
        batching through :func:`repro.rsa.rsa.rsa_sign_many` is
        byte-identical to looping :meth:`sign`.
        """
        return rsa_sign_many(
            own.native, messages, trace=trace, domains=self._crt_domains(own.native)
        )

    def verify(
        self,
        public: bytes,
        message: bytes,
        signature: bytes,
        trace: Optional[OpTrace] = None,
    ) -> bool:
        try:
            parsed = self.decode_public(public)
        except ParameterError:
            return False
        if len(signature) != self._modulus_width:
            return False
        return rsa_verify(
            parsed, message, signature, trace=trace, domain=self._domain_for(parsed.n)
        )

    # -- platform projection ---------------------------------------------------------

    def headline_exponentiation(self, trace: OpTrace) -> None:
        """One full-length binary Montgomery exponentiation (the 96 ms row)."""
        modulus = default_rsa_modulus(self.modulus_bits)
        domain = self._domain_for(modulus) or MontgomeryDomain(modulus, word_bits=16)
        montgomery_power(
            domain,
            0xC0FFEE % modulus,
            canonical_exponent(self.modulus_bits),
            strategy="binary",
            trace=trace,
        )

    def platform_cycles_per_operation(self, platform) -> Tuple[int, int]:
        costs = platform.measure_operation_costs(
            default_rsa_modulus(self.modulus_bits), label="RSA"
        )
        per_op = costs.modular_mult + platform.config.interface.round_trip_cycles
        return per_op, per_op

    def headline_modulus(self) -> int:
        return default_rsa_modulus(self.modulus_bits)
