"""RSA key generation."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.audit.annotations import Secret
from repro.errors import ParameterError
from repro.nt.modular import modinv
from repro.nt.primegen import random_prime
from repro.nt.sampling import resolve_rng


@dataclass
class RsaKeyPair:
    """An RSA key pair with the CRT components needed for fast decryption."""

    n: int
    e: int
    d: Secret[int]
    p: Secret[int]
    q: Secret[int]
    d_p: Secret[int]
    d_q: Secret[int]
    q_inv: Secret[int]

    @property
    def modulus_bits(self) -> int:
        return self.n.bit_length()

    def public(self) -> "RsaPublicKey":
        return RsaPublicKey(n=self.n, e=self.e)


@dataclass
class RsaPublicKey:
    """Just the public half (n, e)."""

    n: int
    e: int


def generate_rsa_keypair(
    bits: int = 1024, e: int = 65537, rng: Optional[random.Random] = None
) -> RsaKeyPair:
    """Generate an RSA key pair with an exactly ``bits``-bit modulus.

    1024-bit generation in pure Python takes a couple of seconds; tests use
    smaller sizes, and the Table 3 benchmark uses a fixed pre-generated
    modulus so that timing runs are deterministic.
    """
    if bits < 16:
        raise ParameterError("RSA modulus must be at least 16 bits")
    if e % 2 == 0 or e < 3:
        raise ParameterError("public exponent must be an odd integer >= 3")
    rng = resolve_rng(rng)
    half = bits // 2
    for _ in range(200):
        p = random_prime(bits - half, rng)
        q = random_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if math.gcd(e, phi) != 1:
            continue
        d = modinv(e, phi)
        return RsaKeyPair(
            n=n,
            e=e,
            d=d,
            p=p,
            q=q,
            d_p=d % (p - 1),
            d_q=d % (q - 1),
            q_inv=modinv(q, p),
        )
    raise ParameterError(f"failed to generate a {bits}-bit RSA key")
