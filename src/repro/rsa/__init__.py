"""RSA, the paper's 1024-bit baseline.

RSA on the platform is a square-and-multiply loop of 1024-bit Montgomery
modular multiplications (Section 3.2); this package provides key generation,
raw and padded RSA operations, and CRT-accelerated private-key operations,
all driven by the same :mod:`repro.montgomery` layer whose word-level
behaviour the coprocessor microcode reproduces.
"""

from repro.rsa.keygen import RsaKeyPair, generate_rsa_keypair
from repro.rsa.rsa import (
    rsa_encrypt_int,
    rsa_decrypt_int,
    rsa_decrypt_int_crt,
    rsa_encrypt,
    rsa_decrypt,
    rsa_sign,
    rsa_sign_many,
    rsa_verify,
)

__all__ = [
    "RsaKeyPair",
    "generate_rsa_keypair",
    "rsa_encrypt_int",
    "rsa_decrypt_int",
    "rsa_decrypt_int_crt",
    "rsa_encrypt",
    "rsa_decrypt",
    "rsa_sign",
    "rsa_sign_many",
    "rsa_verify",
]
