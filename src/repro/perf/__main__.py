"""Command-line access to the perf trajectory.

``python -m repro.perf show [path]``
    Render the entries of a ``BENCH_pkc.json`` as a table.

``python -m repro.perf compare CURRENT BASELINE [--tolerance 0.2] [--calibrate]``
    Exit non-zero when any shared ``scheme:operation`` cell regresses
    beyond the tolerance — the same gate the CI benchmark-smoke job runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.report import render_table
from repro.perf.baseline import compare, format_regressions
from repro.perf.emitter import DEFAULT_BENCH_FILENAME, load_bench


def _record_backend(record) -> str:
    """The substrate a record was measured on.

    Suffixed cells carry it in ``meta["backend"]``; older suffixed rows
    (``scheme+backend:operation``) fall back to parsing the key; unsuffixed
    cells are the plain baseline by contract.
    """
    backend = record.meta.get("backend")
    if backend:
        return str(backend)
    if "+" in record.scheme:
        return record.scheme.rsplit("+", 1)[1]
    return "plain"


def _show(path: str) -> int:
    entries = load_bench(path)
    if not entries:
        print(f"{path}: no entries")
        return 1
    rows = [
        (
            record.scheme,
            record.operation,
            _record_backend(record),
            record.meta.get("workers", "-"),
            record.sessions,
            round(record.ops_per_second, 2),
            round(record.ms_per_op, 3),
            record.squarings + record.multiplications,
            record.batch_size if record.batch_size is not None else "-",
            record.projected_cycles if record.projected_cycles is not None else "-",
            record.latency_ms.get("p50_ms", "-") if record.latency_ms else "-",
            record.latency_ms.get("p99_ms", "-") if record.latency_ms else "-",
        )
        for record in (entries[key] for key in sorted(entries))
    ]
    print(
        render_table(
            ["scheme", "operation", "backend", "workers", "sessions", "ops/s", "ms/op",
             "group ops", "batch", "projected cycles", "p50 ms", "p99 ms"],
            rows,
            title=f"Perf trajectory: {path}",
        )
    )
    _show_scaling_table(entries)
    _show_traffic_table(entries)
    _show_audit_summary(path)
    return 0


def _show_scaling_table(entries) -> None:
    """Render the cluster scaling-efficiency table when cluster rows exist.

    Groups ``serve-cluster:`` rows by their base cell (scheme + operation
    with the ``@w<N>`` suffix stripped) and shows throughput against worker
    count with the measured efficiency — alongside the core count the sweep
    ran on, without which the efficiency number is uninterpretable.
    """
    cluster = {
        key: record
        for key, record in entries.items()
        if record.scheme.startswith("serve-cluster:")
    }
    if not cluster:
        return
    rows = []
    cores = set()
    for key in sorted(cluster):
        record = cluster[key]
        operation, _, workers_tag = record.operation.rpartition("@w")
        efficiency = record.meta.get("scaling_efficiency")
        cores.add(record.meta.get("cpu_count"))
        rows.append(
            (
                record.scheme[len("serve-cluster:"):],
                operation or record.operation,
                record.meta.get("mode", "-"),
                record.meta.get("workers", workers_tag or "-"),
                round(record.ops_per_second, 2),
                f"{efficiency:.2f}" if isinstance(efficiency, (int, float)) else "-",
            )
        )
    cores_note = ", ".join(str(core) for core in sorted(cores, key=str))
    print(
        render_table(
            ["scheme", "operation", "mode", "workers", "sess/s", "efficiency"],
            rows,
            title=f"Cluster scaling (measured on {cores_note} core(s); "
                  f"efficiency = sess/s at N workers / N x single-worker)",
        )
    )


def _show_traffic_table(entries) -> None:
    """Render the traffic-mix digest when ``traffic:`` rows exist.

    One line per ``traffic:<mix>`` *summary* row (operation ``all``, or
    ``all@w<N>`` for cluster sweeps): steady-state tail latencies next to
    the behaviour counters — transparent rekeys, explicit quota/overload
    rejections — and the strict accounting identity the engine enforces
    (``submitted == responses + explicit errors``).
    """
    summaries = {
        key: record
        for key, record in entries.items()
        if record.scheme.startswith("traffic:")
        and record.operation.split("@w")[0] == "all"
    }
    if not summaries:
        return
    rows = []
    for key in sorted(summaries):
        record = summaries[key]
        latency = record.latency_ms or {}
        meta = record.meta
        rejected = (meta.get("rejected_quota", 0) or 0) + (
            meta.get("overload_rejections", 0) or 0
        )
        accounted = meta.get("submitted") == (
            (meta.get("responses") or 0) + (meta.get("explicit_errors") or 0)
        )
        rows.append(
            (
                record.scheme[len("traffic:"):],
                meta.get("workers", "-"),
                meta.get("clients", "-"),
                round(record.ops_per_second, 2),
                latency.get("p50_ms", "-"),
                latency.get("p99_ms", "-"),
                latency.get("p999_ms", "-"),
                meta.get("rekeys", "-"),
                rejected,
                "ok" if accounted else "MISMATCH",
            )
        )
    print(
        render_table(
            ["mix", "workers", "clients", "resp/s", "p50 ms", "p99 ms",
             "p999 ms", "rekeys", "rejected", "accounting"],
            rows,
            title="Traffic mixes (latencies are steady-state channel records; "
                  "rejected = explicit quota + overload answers)",
        )
    )


def _show_audit_summary(bench_path: str) -> None:
    """Append the static-analysis digest when a report sits next to the bench.

    The audit JSON report (``python -m repro.audit --json AUDIT_report.json``)
    leads with a ``summary`` block exactly so pipelines like this one can
    surface it without parsing findings.
    """
    report_path = os.path.join(
        os.path.dirname(os.path.abspath(bench_path)), "AUDIT_report.json"
    )
    if not os.path.exists(report_path):
        return
    try:
        with open(report_path, "r", encoding="utf-8") as handle:
            summary = json.load(handle).get("summary", {})
    except (OSError, ValueError):
        return
    print(
        f"audit: {summary.get('rules_run', '?')} rules over "
        f"{summary.get('modules_scanned', '?')} modules — "
        f"{summary.get('new', '?')} new, {summary.get('baselined', '?')} baselined, "
        f"{summary.get('suppressed', '?')} suppressed"
    )


def _compare(current: str, baseline: str, tolerance: float, calibrate: bool,
             skip_prefixes=None) -> int:
    regressions = compare(
        load_bench(current), load_bench(baseline), tolerance=tolerance,
        calibrate=calibrate, skip_prefixes=skip_prefixes,
    )
    if regressions:
        print(format_regressions(regressions, tolerance=tolerance))
        return 1
    print(f"no throughput regressions beyond {tolerance:.0%} tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.perf", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    show = commands.add_parser("show", help="render a BENCH_*.json as a table")
    show.add_argument("path", nargs="?", default=DEFAULT_BENCH_FILENAME)

    comparison = commands.add_parser("compare", help="gate a run against a baseline")
    comparison.add_argument("current")
    comparison.add_argument("baseline")
    comparison.add_argument("--tolerance", type=float, default=0.2)
    comparison.add_argument(
        "--calibrate",
        action="store_true",
        help="scale the baseline by the median speed ratio (cross-machine runs)",
    )
    comparison.add_argument(
        "--skip-prefix",
        action="append",
        default=None,
        metavar="PREFIX",
        help="exclude keys starting with PREFIX (repeatable); e.g. serve: and "
             "serve-cluster: rows, which are gated on correctness, not throughput",
    )

    args = parser.parse_args(argv)
    if args.command == "show":
        return _show(args.path)
    return _compare(args.current, args.baseline, args.tolerance, args.calibrate,
                    skip_prefixes=args.skip_prefix)


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
