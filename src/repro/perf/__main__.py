"""Command-line access to the perf trajectory.

``python -m repro.perf show [path]``
    Render the entries of a ``BENCH_pkc.json`` as a table.

``python -m repro.perf compare CURRENT BASELINE [--tolerance 0.2] [--calibrate]``
    Exit non-zero when any shared ``scheme:operation`` cell regresses
    beyond the tolerance — the same gate the CI benchmark-smoke job runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.report import render_table
from repro.perf.baseline import compare, format_regressions
from repro.perf.emitter import DEFAULT_BENCH_FILENAME, load_bench


def _record_backend(record) -> str:
    """The substrate a record was measured on.

    Suffixed cells carry it in ``meta["backend"]``; older suffixed rows
    (``scheme+backend:operation``) fall back to parsing the key; unsuffixed
    cells are the plain baseline by contract.
    """
    backend = record.meta.get("backend")
    if backend:
        return str(backend)
    if "+" in record.scheme:
        return record.scheme.rsplit("+", 1)[1]
    return "plain"


def _show(path: str) -> int:
    entries = load_bench(path)
    if not entries:
        print(f"{path}: no entries")
        return 1
    rows = [
        (
            record.scheme,
            record.operation,
            _record_backend(record),
            record.sessions,
            round(record.ops_per_second, 2),
            round(record.ms_per_op, 3),
            record.squarings + record.multiplications,
            record.batch_size if record.batch_size is not None else "-",
            record.projected_cycles if record.projected_cycles is not None else "-",
            record.latency_ms.get("p50_ms", "-") if record.latency_ms else "-",
            record.latency_ms.get("p99_ms", "-") if record.latency_ms else "-",
        )
        for record in (entries[key] for key in sorted(entries))
    ]
    print(
        render_table(
            ["scheme", "operation", "backend", "sessions", "ops/s", "ms/op", "group ops",
             "batch", "projected cycles", "p50 ms", "p99 ms"],
            rows,
            title=f"Perf trajectory: {path}",
        )
    )
    _show_audit_summary(path)
    return 0


def _show_audit_summary(bench_path: str) -> None:
    """Append the static-analysis digest when a report sits next to the bench.

    The audit JSON report (``python -m repro.audit --json AUDIT_report.json``)
    leads with a ``summary`` block exactly so pipelines like this one can
    surface it without parsing findings.
    """
    report_path = os.path.join(
        os.path.dirname(os.path.abspath(bench_path)), "AUDIT_report.json"
    )
    if not os.path.exists(report_path):
        return
    try:
        with open(report_path, "r", encoding="utf-8") as handle:
            summary = json.load(handle).get("summary", {})
    except (OSError, ValueError):
        return
    print(
        f"audit: {summary.get('rules_run', '?')} rules over "
        f"{summary.get('modules_scanned', '?')} modules — "
        f"{summary.get('new', '?')} new, {summary.get('baselined', '?')} baselined, "
        f"{summary.get('suppressed', '?')} suppressed"
    )


def _compare(current: str, baseline: str, tolerance: float, calibrate: bool) -> int:
    regressions = compare(
        load_bench(current), load_bench(baseline), tolerance=tolerance, calibrate=calibrate
    )
    if regressions:
        print(format_regressions(regressions, tolerance=tolerance))
        return 1
    print(f"no throughput regressions beyond {tolerance:.0%} tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.perf", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    show = commands.add_parser("show", help="render a BENCH_*.json as a table")
    show.add_argument("path", nargs="?", default=DEFAULT_BENCH_FILENAME)

    comparison = commands.add_parser("compare", help="gate a run against a baseline")
    comparison.add_argument("current")
    comparison.add_argument("baseline")
    comparison.add_argument("--tolerance", type=float, default=0.2)
    comparison.add_argument(
        "--calibrate",
        action="store_true",
        help="scale the baseline by the median speed ratio (cross-machine runs)",
    )

    args = parser.parse_args(argv)
    if args.command == "show":
        return _show(args.path)
    return _compare(args.current, args.baseline, args.tolerance, args.calibrate)


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
