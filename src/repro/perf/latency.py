"""Latency distributions — the serving layer's measurement vocabulary.

Throughput alone cannot describe an online service: the serving acceptance
story is written in percentiles (how slow the slowest clients were), so the
perf layer gains a :class:`LatencyHistogram` — per-request latency samples
with percentile extraction and a JSON-shaped summary that travels inside a
:class:`~repro.perf.record.PerfRecord`'s ``latency_ms`` field.

The implementation keeps the raw samples (a serving-harness run is at most
a few thousand requests) and computes exact percentiles by linear
interpolation over the sorted sample set — no bucketing error at the scale
this library measures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = ["LatencyHistogram", "SUMMARY_PERCENTILES"]

#: The percentiles a summary reports, as (label, quantile) pairs.  p999
#: is the traffic engine's tail metric — with bursty arrivals the p99 sits
#: inside the burst plateau and only the 99.9th exposes the queue spikes.
SUMMARY_PERCENTILES = (
    ("p50_ms", 0.50),
    ("p90_ms", 0.90),
    ("p99_ms", 0.99),
    ("p999_ms", 0.999),
)


class LatencyHistogram:
    """Per-request latency samples with percentile extraction.

    >>> hist = LatencyHistogram()
    >>> for seconds in (0.010, 0.020, 0.030):
    ...     hist.add(seconds)
    >>> hist.percentile(0.5)
    0.02
    >>> hist.summary()["count"]
    3
    """

    __slots__ = ("_samples", "_sorted")

    def __init__(self, samples: Optional[Iterable[float]] = None):
        self._samples: List[float] = list(samples or ())
        self._sorted = False

    def add(self, seconds: float) -> None:
        """Record one request's latency in seconds."""
        self._samples.append(seconds)
        self._sorted = False

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        self._samples.extend(other._samples)
        self._sorted = False

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total_seconds(self) -> float:
        return sum(self._samples)

    @property
    def mean_seconds(self) -> float:
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    @property
    def max_seconds(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def percentile(self, quantile: float) -> float:
        """The ``quantile``-th latency in seconds (linear interpolation).

        ``quantile`` is a fraction in [0, 1]; an empty histogram reports 0.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile {quantile} outside [0, 1]")
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        position = quantile * (len(self._samples) - 1)
        low = int(position)
        high = min(low + 1, len(self._samples) - 1)
        fraction = position - low
        return self._samples[low] * (1 - fraction) + self._samples[high] * fraction

    def summary(self) -> Dict[str, float]:
        """The JSON-shaped digest stored in ``PerfRecord.latency_ms``.

        Milliseconds throughout: ``p50_ms`` / ``p90_ms`` / ``p99_ms`` /
        ``p999_ms`` / ``max_ms`` / ``mean_ms``, plus the sample ``count``.
        """
        digest: Dict[str, float] = {
            label: round(self.percentile(quantile) * 1e3, 4)
            for label, quantile in SUMMARY_PERCENTILES
        }
        digest["max_ms"] = round(self.max_seconds * 1e3, 4)
        digest["mean_ms"] = round(self.mean_seconds * 1e3, 4)
        digest["count"] = len(self._samples)
        return digest
