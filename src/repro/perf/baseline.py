"""Baseline comparison: is this run slower than the committed trajectory?

:func:`compare` takes the entries of a fresh run and of a baseline
``BENCH_pkc.json`` and reports every shared ``scheme:operation`` cell whose
throughput fell by more than the tolerance.  Because absolute ops/sec moves
with the host machine, ``calibrate=True`` first scales the baseline by the
median speed ratio across all shared cells — a per-scheme regression (one
code path got slower) still sticks out, while a uniformly faster or slower
host cancels.  CI runs with calibration on; a developer comparing two runs
on one machine can compare raw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.perf.record import PerfRecord

__all__ = ["Regression", "compare", "format_regressions"]


@dataclass
class Regression:
    """One cell that fell below the tolerated fraction of the baseline."""

    key: str
    baseline_ops_per_second: float
    current_ops_per_second: float
    #: current / (possibly calibrated) baseline throughput; < 1 is slower.
    ratio: float

    def describe(self) -> str:
        return (
            f"{self.key}: {self.current_ops_per_second:.2f} ops/s vs "
            f"baseline {self.baseline_ops_per_second:.2f} ops/s "
            f"(x{self.ratio:.2f})"
        )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def compare(
    current: Dict[str, PerfRecord],
    baseline: Dict[str, PerfRecord],
    tolerance: float = 0.2,
    keys: Optional[Sequence[str]] = None,
    calibrate: bool = False,
    skip_prefixes: Optional[Sequence[str]] = None,
) -> List[Regression]:
    """Regressions of ``current`` against ``baseline``.

    A cell regresses when its throughput is below ``(1 - tolerance)`` times
    the (calibrated) baseline throughput.  ``keys`` restricts the check to
    specific ``scheme:operation`` cells; by default every cell present in
    both runs is compared.  Cells missing from either side are skipped — a
    new scheme has no baseline yet, and a baseline-only cell just was not
    re-measured.  ``skip_prefixes`` drops whole key families from the
    check: serving rows (``serve:``, ``serve-cluster:``) measure wall-clock
    through a concurrent harness whose numbers move with machine load and
    worker topology, so CI gates them separately (on correctness) rather
    than on throughput.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    skip = tuple(skip_prefixes or ())
    shared = [
        key
        for key in (keys if keys is not None else sorted(current))
        if key in current and key in baseline and baseline[key].ops_per_second > 0
        and not any(key.startswith(prefix) for prefix in skip)
    ]
    if not shared:
        return []
    scale = 1.0
    if calibrate:
        scale = _median(
            [current[key].ops_per_second / baseline[key].ops_per_second for key in shared]
        )
        if scale <= 0:  # pragma: no cover - throughput is never negative
            scale = 1.0
    regressions: List[Regression] = []
    for key in shared:
        reference = baseline[key].ops_per_second * scale
        ratio = current[key].ops_per_second / reference
        if ratio < 1 - tolerance:
            regressions.append(
                Regression(
                    key=key,
                    baseline_ops_per_second=reference,
                    current_ops_per_second=current[key].ops_per_second,
                    ratio=ratio,
                )
            )
    regressions.sort(key=lambda r: r.ratio)
    return regressions


def format_regressions(regressions: Sequence[Regression], tolerance: float = 0.2) -> str:
    """A human-readable regression report (empty string when clean)."""
    if not regressions:
        return ""
    lines = [f"throughput regressions beyond {tolerance:.0%} tolerance:"]
    lines.extend(f"  - {regression.describe()}" for regression in regressions)
    return "\n".join(lines)
