"""The performance subsystem: timer, machine-readable emitter, baseline gate.

The ROADMAP's serving story needs a measured trajectory, not one-off
``.txt`` tables: every benchmark run reports through this layer into a
single ``BENCH_pkc.json`` at the repo root — one entry per
``scheme x operation`` with throughput, wall-clock, group-operation counts
and projected SoC cycles — and the committed state of that file is the
baseline the next run is gated against.

Typical round trip::

    from repro import perf

    result = run_batch(scheme, "key-agreement", sessions)
    record = perf.record_from_batch(result, scheme=scheme, platform=platform)
    perf.update_bench(perf.bench_path(repo_root), [record])

    regressions = perf.compare(current, perf.load_bench(path), tolerance=0.2)

``python -m repro.perf show|compare`` exposes the same operations from the
command line.

Online serving runs (:mod:`repro.serve`) additionally collect per-request
latencies into a :class:`~repro.perf.latency.LatencyHistogram`, whose
percentile digest rides in ``PerfRecord.latency_ms`` under the ``serve:``
trajectory keys.
"""

from repro.perf.baseline import Regression, compare, format_regressions
from repro.perf.latency import LatencyHistogram
from repro.perf.emitter import (
    DEFAULT_BENCH_FILENAME,
    bench_path,
    load_bench,
    update_bench,
    write_result,
)
from repro.perf.record import SCHEMA_VERSION, PerfRecord, Timer, record_from_batch

__all__ = [
    "SCHEMA_VERSION",
    "Timer",
    "PerfRecord",
    "record_from_batch",
    "DEFAULT_BENCH_FILENAME",
    "bench_path",
    "load_bench",
    "update_bench",
    "write_result",
    "Regression",
    "compare",
    "format_regressions",
    "LatencyHistogram",
]
