"""Perf records and timing — the measurement vocabulary of ``repro.perf``.

A :class:`PerfRecord` is one benchmarked ``scheme x operation`` cell: the
throughput and wall-clock of a batched run, the group-operation tally it
executed, the wire bytes it moved, and (when a platform is supplied) the
projected SoC cycle cost of the same work on the paper's hardware.  Records
are JSON-shaped by construction so the emitter can persist them to
``BENCH_pkc.json`` without a serialisation layer in between.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["SCHEMA_VERSION", "Timer", "PerfRecord", "record_from_batch"]

#: Bumped when the on-disk shape of a record changes incompatibly.
SCHEMA_VERSION = 1


class Timer:
    """A minimal ``perf_counter`` context manager.

    >>> with Timer() as t:
    ...     do_work()
    >>> t.seconds  # doctest: +SKIP
    0.0123
    """

    __slots__ = ("seconds", "_started")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.seconds = time.perf_counter() - self._started


@dataclass
class PerfRecord:
    """One benchmarked ``scheme x operation`` cell.

    ``ops_per_second`` / ``ms_per_op`` treat one protocol session as the
    unit of work (a full key agreement, an encrypt+decrypt round trip, a
    sign+verify round trip).  ``projected_cycles`` is the whole batch's
    group-operation tally priced through the simulated platform's
    per-operation cycle costs — the bridge from wall-clock trends back to
    the paper's hardware numbers.
    """

    scheme: str
    operation: str
    sessions: int
    wall_seconds: float
    ops_per_second: float
    ms_per_op: float
    squarings: int = 0
    multiplications: int = 0
    inversions: int = 0
    wire_bytes: int = 0
    projected_cycles: Optional[int] = None
    #: Sessions per vectorised batch call when the run executed coalesced
    #: (the batch entry points served all sessions in one call); ``None``
    #: for per-session loop runs and for records predating the field.
    batch_size: Optional[int] = None
    #: Latency percentile digest of an online serving run (the
    #: :meth:`repro.perf.latency.LatencyHistogram.summary` shape); ``None``
    #: for offline batch cells, whose latency is uniform by construction.
    latency_ms: Optional[Dict[str, float]] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """The ``entries`` key this record lives under: ``scheme:operation``."""
        return f"{self.scheme}:{self.operation}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "operation": self.operation,
            "sessions": self.sessions,
            "wall_seconds": self.wall_seconds,
            "ops_per_second": self.ops_per_second,
            "ms_per_op": self.ms_per_op,
            "squarings": self.squarings,
            "multiplications": self.multiplications,
            "inversions": self.inversions,
            "wire_bytes": self.wire_bytes,
            "projected_cycles": self.projected_cycles,
            "batch_size": self.batch_size,
            "latency_ms": dict(self.latency_ms) if self.latency_ms else None,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PerfRecord":
        known = {name for name in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{key: value for key, value in data.items() if key in known})


def record_from_batch(result, scheme=None, platform=None, **meta: Any) -> PerfRecord:
    """Build a :class:`PerfRecord` from a ``repro.pkc.bench.BatchResult``.

    ``result`` is duck-typed (this module never imports the PKC layer).
    With both ``scheme`` and ``platform`` given, the batch's executed
    squarings/multiplications are priced through
    ``scheme.platform_cycles_per_operation`` into ``projected_cycles``.
    Extra keyword arguments land in ``meta`` (e.g. ``quick=True``,
    ``workers=4``).
    """
    projected: Optional[int] = None
    if scheme is not None and platform is not None:
        cost_sq, cost_mul = scheme.platform_cycles_per_operation(platform)
        projected = result.ops.squarings * cost_sq + result.ops.multiplications * cost_mul
    return PerfRecord(
        scheme=result.scheme,
        operation=result.operation,
        sessions=result.sessions,
        wall_seconds=result.wall_seconds,
        ops_per_second=result.sessions_per_second,
        ms_per_op=result.ms_per_session,
        squarings=result.ops.squarings,
        multiplications=result.ops.multiplications,
        inversions=result.ops.inversions,
        wire_bytes=result.wire_bytes,
        projected_cycles=projected,
        batch_size=getattr(result, "batch_size", None),
        meta=dict(meta),
    )
