"""The machine-readable emitter: one writer, two renderers.

Two artefacts, one code path each:

* **``BENCH_pkc.json``** — the persistent perf-trajectory file at the repo
  root.  :func:`update_bench` read-modify-writes it: each benchmarked
  ``scheme:operation`` cell is replaced by its newest
  :class:`~repro.perf.record.PerfRecord` while untouched cells survive, so
  the file accumulates the full scheme x operation matrix across partial
  runs and its committed state is the baseline the next run is compared
  against.

* **``benchmarks/results/<name>.{txt,json}``** — every benchmark table is
  written once as structured rows and rendered twice, as the historical
  aligned-ASCII ``.txt`` and as JSON rows beside it
  (:func:`write_result`).  There is no second writer to drift from the
  first: the txt and json views are projections of the same call.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.report import render_table
from repro.perf.record import SCHEMA_VERSION, PerfRecord

__all__ = [
    "DEFAULT_BENCH_FILENAME",
    "bench_path",
    "load_bench",
    "update_bench",
    "write_result",
]

DEFAULT_BENCH_FILENAME = "BENCH_pkc.json"

#: Environment override for the trajectory file location.
BENCH_PATH_ENV = "REPRO_BENCH_PATH"


def bench_path(root: "Optional[pathlib.Path | str]" = None) -> pathlib.Path:
    """Where the trajectory file lives: ``$REPRO_BENCH_PATH`` or ``root/BENCH_pkc.json``."""
    override = os.environ.get(BENCH_PATH_ENV)
    if override:
        return pathlib.Path(override)
    return pathlib.Path(root or ".") / DEFAULT_BENCH_FILENAME


def load_bench(path: "pathlib.Path | str") -> Dict[str, PerfRecord]:
    """The trajectory file's entries, keyed ``scheme:operation``.

    A missing file is an empty trajectory (first run ever); a malformed one
    raises — silently discarding a corrupt baseline would let regressions
    through unnoticed.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return {}
    document = json.loads(path.read_text())
    entries = document.get("entries", {})
    return {key: PerfRecord.from_dict(value) for key, value in entries.items()}


def update_bench(
    path: "pathlib.Path | str", records: Iterable[PerfRecord]
) -> Dict[str, PerfRecord]:
    """Merge ``records`` into the trajectory file and rewrite it.

    Existing cells not re-measured by this run are preserved, so partial
    runs (a quick CI smoke, a single-scheme investigation) never erase the
    rest of the matrix.  Returns the merged entries.
    """
    path = pathlib.Path(path)
    merged = load_bench(path)
    for record in records:
        merged[record.key] = record
    document = {
        "schema": SCHEMA_VERSION,
        "generated_unix": int(time.time()),
        "entries": {key: merged[key].as_dict() for key in sorted(merged)},
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return merged


def write_result(
    directory: "pathlib.Path | str",
    name: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Write one benchmark table as ``<name>.txt`` and ``<name>.json``.

    The single structured-rows entry point behind every benchmark table:
    the ASCII rendering (for eyes and the historical results directory) and
    the JSON rows (for tooling) cannot drift because both are derived here
    from the same data.  Returns the rendered text.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rows = [list(row) for row in rows]
    text = render_table(headers, rows, title=title)
    (directory / f"{name}.txt").write_text(text + os.linesep)
    document = {
        "title": title,
        "columns": list(headers),
        "rows": [dict(zip(headers, row)) for row in rows],
    }
    (directory / f"{name}.json").write_text(
        json.dumps(document, indent=2, default=str) + "\n"
    )
    return text
