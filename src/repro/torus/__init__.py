"""The algebraic torus T6(Fp) and the CEILIDH public-key cryptosystem.

This is the paper's primary contribution layer: arithmetic in the torus
T6(Fp) (the subgroup of Fp6* of order Phi_6(p) = p^2 - p + 1), the
Rubin-Silverberg style compression of torus elements to two Fp values
(factor-3 bandwidth compression), exponentiation strategies, parameter
generation, and the CEILIDH protocols built on top (Diffie-Hellman key
agreement, hashed-ElGamal encryption and Schnorr-style signatures).
"""

from repro.torus.params import (
    TorusParameters,
    generate_parameters,
    get_parameters,
    NAMED_PARAMETERS,
)
from repro.torus.t6 import T6Group, TorusElement
from repro.torus.compression import TorusCompressor, CompressedElement
from repro.torus.exponentiation import (
    ExponentiationCount,
    exponentiate_binary,
    exponentiate_double,
    exponentiate_ladder,
    exponentiate_naf,
    exponentiate_sliding,
    exponentiate_window,
    exponentiate_wnaf,
    multiplication_counts,
)
from repro.torus.ceilidh import (
    CeilidhKeyPair,
    CeilidhSystem,
    CeilidhCiphertext,
    CeilidhSignature,
)
from repro.torus.encoding import (
    encode_compressed,
    decode_compressed,
    encode_fp6,
    decode_fp6,
    compressed_size_bytes,
)

__all__ = [
    "TorusParameters",
    "generate_parameters",
    "get_parameters",
    "NAMED_PARAMETERS",
    "T6Group",
    "TorusElement",
    "TorusCompressor",
    "CompressedElement",
    "ExponentiationCount",
    "exponentiate_binary",
    "exponentiate_naf",
    "exponentiate_wnaf",
    "exponentiate_sliding",
    "exponentiate_window",
    "exponentiate_ladder",
    "exponentiate_double",
    "multiplication_counts",
    "CeilidhKeyPair",
    "CeilidhSystem",
    "CeilidhCiphertext",
    "CeilidhSignature",
    "encode_compressed",
    "decode_compressed",
    "encode_fp6",
    "decode_fp6",
    "compressed_size_bytes",
]
