"""The algebraic torus T6(Fp) as a group.

T6(Fp) is the subgroup of Fp6* of order Phi_6(p) = p^2 - p + 1 — equivalently
the elements whose norms to both proper subfields Fp2 and Fp3 equal 1.  The
group object wraps the F1 field representation (where all the paper's
exponentiation arithmetic happens), exposes membership tests, generators of
the prime-order subgroup, cheap inversion via the Frobenius (for alpha in T6,
alpha^-1 = alpha^(p^3)) and compression/decompression via
:mod:`repro.torus.compression`.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import NotInTorusError, ParameterError
from repro.exp.group import TorusExpGroup
from repro.exp.strategies import (
    FixedBaseTable,
    double_exponentiate,
    exponentiate,
    exponentiate_many,
    exponentiate_shared_base,
)
from repro.exp.trace import OpTrace
from repro.field.extension import ExtElement
from repro.nt.sampling import resolve_rng
from repro.field.fp import PrimeField
from repro.field.fp6 import Fp6Field, make_fp6
from repro.torus.params import TorusParameters


class TorusElement:
    """An element of T6(Fp), wrapping its F1 (z-basis) representation."""

    __slots__ = ("group", "value")

    def __init__(self, group: "T6Group", value: ExtElement, check: bool = False):
        self.group = group
        self.value = value
        if check and not group.contains_raw(value):
            raise NotInTorusError(f"{value!r} is not in T6(Fp)")

    # -- group operations ------------------------------------------------------

    def __mul__(self, other: "TorusElement") -> "TorusElement":
        if not isinstance(other, TorusElement) or other.group.params != self.group.params:
            raise ParameterError("torus elements belong to different groups")
        return TorusElement(self.group, self.group.fp6.mul(self.value, other.value))

    def __truediv__(self, other: "TorusElement") -> "TorusElement":
        return self * other.inverse()

    def __pow__(self, exponent: int) -> "TorusElement":
        return self.group.exponentiate(self, exponent)

    def inverse(self) -> "TorusElement":
        """Inverse via the Frobenius: alpha^-1 = alpha^(p^3) on the torus.

        T6(Fp) lies inside the norm-1 subgroup of Fp6 over Fp3, i.e.
        alpha * alpha^(p^3) = 1, so inversion costs one (linear) Frobenius map
        instead of an extended-gcd inversion.
        """
        return TorusElement(self.group, self.group.fp6.frobenius(self.value, 3))

    def square(self) -> "TorusElement":
        return TorusElement(self.group, self.group.fp6.sqr(self.value))

    def frobenius(self, k: int = 1) -> "TorusElement":
        """alpha -> alpha^(p^k); stays inside the torus."""
        return TorusElement(self.group, self.group.fp6.frobenius(self.value, k))

    # -- predicates / conversions ---------------------------------------------

    def is_identity(self) -> bool:
        return self.value.is_one()

    def coefficients(self) -> tuple:
        """The six Fp coordinates in the basis {1, z, ..., z^5}."""
        return self.value.coeffs

    def compress(self):
        """Compress to two Fp values (delegates to the group's compressor)."""
        return self.group.compressor.compress(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TorusElement)
            and self.group.params == other.group.params
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.group.params.p, self.value.coeffs))

    def __repr__(self) -> str:
        return f"TorusElement({self.value.coeffs})"


class T6Group:
    """T6(Fp) with a distinguished prime-order subgroup of order q."""

    def __init__(self, params: TorusParameters, validate: bool = False, backend=None):
        if validate:
            params.validate()
        self.params = params
        self.fp = PrimeField(params.p, check_prime=False, backend=backend)
        self.fp6: Fp6Field = make_fp6(self.fp)
        self._generator: Optional[TorusElement] = None
        self._compressor = None
        self._exp_group: Optional[TorusExpGroup] = None
        self._generator_table: Optional[FixedBaseTable] = None

    # -- derived objects --------------------------------------------------------

    @property
    def compressor(self):
        """The rho/psi compression map object (built lazily)."""
        if self._compressor is None:
            from repro.torus.compression import TorusCompressor

            self._compressor = TorusCompressor(self)
        return self._compressor

    @property
    def order(self) -> int:
        """|T6(Fp)| = p^2 - p + 1."""
        return self.params.torus_order

    @property
    def subgroup_order(self) -> int:
        """Order q of the working prime-order subgroup."""
        return self.params.q

    def identity(self) -> TorusElement:
        return TorusElement(self, self.fp6.one())

    # -- membership --------------------------------------------------------------

    def contains_raw(self, value: ExtElement) -> bool:
        """Membership test on a raw Fp6 element."""
        return self.fp6.is_in_torus(value)

    def contains(self, element: TorusElement) -> bool:
        return self.contains_raw(element.value)

    def element(self, value: ExtElement, check: bool = True) -> TorusElement:
        """Wrap a raw Fp6 element, optionally verifying torus membership."""
        return TorusElement(self, value, check=check)

    # -- element generation --------------------------------------------------------

    def random_element(self, rng: Optional[random.Random] = None) -> TorusElement:
        """Uniformly random element of T6(Fp) (cofactor projection of a random unit)."""
        rng = resolve_rng(rng)
        while True:
            candidate = self.fp6.random_nonzero(rng)
            projected = self.fp6.project_to_torus(candidate)
            if not projected.is_zero():
                return TorusElement(self, projected)

    def random_subgroup_element(self, rng: Optional[random.Random] = None) -> TorusElement:
        """Random element of the order-q subgroup: generator^k for random k."""
        from repro.nt.sampling import sample_exponent

        exponent = sample_exponent(self.params.q, rng)
        return self.generator_power(exponent)

    def generator(self) -> TorusElement:
        """A fixed generator of the order-q subgroup.

        Deterministic: project the element z + 3 of Fp6* into the torus and
        raise it to (p^2 - p + 1)/q; retry with z + 4, z + 5, ... in the
        (astronomically unlikely) case the result is the identity.
        """
        if self._generator is not None:
            return self._generator
        shift = 3
        while True:
            seed = self.fp6([shift, 1])
            candidate = self.fp6.project_to_torus(seed)
            candidate = self.fp6.pow(candidate, self.params.cofactor)
            if not candidate.is_one():
                self._generator = TorusElement(self, candidate)
                return self._generator
            shift += 1
            if shift > 64:  # pragma: no cover - would indicate broken parameters
                raise ParameterError("could not find a subgroup generator")

    # -- exponentiation -------------------------------------------------------------

    def exp_group(self) -> TorusExpGroup:
        """T6(Fp) as a :class:`repro.exp` group (cheap Frobenius inversion)."""
        if self._exp_group is None:
            self._exp_group = TorusExpGroup(self)
        return self._exp_group

    def exponentiate(
        self,
        element: TorusElement,
        exponent: int,
        strategy: str = "auto",
        count: Optional[OpTrace] = None,
    ) -> TorusElement:
        """Exponentiation in the torus through the unified engine.

        The default strategy is wNAF — inversion is a free Frobenius map, so
        signed digits cost nothing and the multiplication count drops to
        ~n/(w+1).  Negative exponents use the same cheap inversion.
        """
        return exponentiate(
            self.exp_group(), element, exponent, strategy=strategy, trace=count
        )

    def exponentiate_many(
        self,
        elements,
        exponents,
        strategy: str = "auto",
        count: Optional[OpTrace] = None,
    ) -> list:
        """Index-aligned batch exponentiation through the engine's batch entry.

        Runs sharing a base (the server's public value across a coalesced
        group, say) amortize one fixed-base table; value-identical to a loop
        of :meth:`exponentiate` calls.
        """
        return exponentiate_many(
            self.exp_group(), elements, exponents, strategy=strategy, trace=count
        )

    def exponentiate_shared_base(
        self,
        element: TorusElement,
        exponents,
        strategy: str = "auto",
        count: Optional[OpTrace] = None,
    ) -> list:
        """``element^e`` for many exponents with one shared squaring chain."""
        return exponentiate_shared_base(
            self.exp_group(), element, exponents, strategy=strategy, trace=count
        )

    def generator_power(
        self, exponent: int, count: Optional[OpTrace] = None
    ) -> TorusElement:
        """``generator^exponent`` from a cached fixed-base table.

        The squaring chain is precomputed once per group (sized by the
        subgroup order q), so each call needs only ~popcount(exponent) - 1
        Fp6 multiplications and no squarings — the fast path for key
        generation, ephemeral DH values and Schnorr commitments.
        """
        if self._generator_table is None:
            self._generator_table = FixedBaseTable(
                self.exp_group(), self.generator(), self.params.q.bit_length()
            )
        return self._generator_table.power(exponent, trace=count)

    def generator_powers(
        self, exponents, count: Optional[OpTrace] = None
    ) -> list:
        """``generator^e`` for many exponents off the one cached table.

        The squaring chain is already shared group-wide, so the batch form
        is simply the loop — it exists so batch callers (``keygen_many``)
        read the same way at every layer.
        """
        return [self.generator_power(e, count=count) for e in exponents]

    def double_exponentiate(
        self,
        element_a: TorusElement,
        exponent_a: int,
        element_b: TorusElement,
        exponent_b: int,
        count: Optional[OpTrace] = None,
    ) -> TorusElement:
        """Shamir/Straus ``a^ea * b^eb`` on one shared squaring chain."""
        return double_exponentiate(
            self.exp_group(), element_a, exponent_a, element_b, exponent_b, trace=count
        )

    def __repr__(self) -> str:
        return f"T6Group({self.params!r})"
