"""The CEILIDH public-key cryptosystem.

Rubin and Silverberg's CEILIDH consists of the classical discrete-log
protocols instantiated in the compressed torus T6(Fp): every transmitted
group element travels as a compressed (u, v) pair, so key-agreement messages,
ciphertext headers and signature commitments are a third of the size of the
corresponding Fp6 (or RSA-modulus) encodings at the same security level.

Implemented protocols:

* **Key generation** — private x in [1, q), public key rho(g^x).
* **Diffie-Hellman key agreement** with a SHA-256 based key-derivation step.
* **Hashed-ElGamal hybrid encryption** (ephemeral DH + XOR keystream + MAC-less
  integrity check via key confirmation tag).
* **Schnorr-style signatures** over the order-q subgroup.

Exponent-blinded variants are not required by the paper and are out of scope.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.audit.annotations import Secret
from repro.errors import CompressionError, DecryptionError, ParameterError, SignatureError
from repro.exp.trace import OpTrace
from repro.nt.sampling import resolve_rng, sample_exponent
from repro.torus.compression import CompressedElement
from repro.torus.encoding import encode_compressed
from repro.torus.params import TorusParameters, get_parameters
from repro.torus.t6 import T6Group, TorusElement


@dataclass
class CeilidhKeyPair:
    """A CEILIDH key pair: private exponent and compressed public key."""

    private: Secret[int]
    public: CompressedElement

    def public_bytes(self, params: TorusParameters) -> bytes:
        return encode_compressed(params, self.public)


@dataclass
class CeilidhCiphertext:
    """Hashed-ElGamal ciphertext: compressed ephemeral key, body, confirmation tag."""

    ephemeral: CompressedElement
    body: bytes
    tag: bytes


@dataclass
class CeilidhSignature:
    """Schnorr-style signature (challenge, response)."""

    challenge: int
    response: int


class CeilidhSystem:
    """All CEILIDH protocol operations for one parameter set."""

    def __init__(
        self,
        params: TorusParameters | str = "ceilidh-170",
        validate: bool = False,
        backend=None,
    ):
        if isinstance(params, str):
            params = get_parameters(params)
        self.params = params
        self.group = T6Group(params, validate=validate, backend=backend)
        self.compressor = self.group.compressor

    # -- key management ---------------------------------------------------------

    def generate_keypair(
        self, rng: Optional[random.Random] = None, count: Optional[OpTrace] = None
    ) -> CeilidhKeyPair:
        """Generate a key pair; retries on the (O(1/p)) exceptional compressions."""
        rng = resolve_rng(rng)
        for _ in range(64):
            private = sample_exponent(self.params.q, rng)
            # Fixed-base table on the generator: no online squarings.
            public_element = self.group.generator_power(private, count=count)
            try:
                public = self.compressor.compress(public_element.value)
            except CompressionError:
                continue
            return CeilidhKeyPair(private=private, public=public)
        raise ParameterError("could not generate a compressible public key")  # pragma: no cover

    def public_element(self, keypair_or_public) -> TorusElement:
        """Decompress a public key back into the torus."""
        public = (
            keypair_or_public.public
            if isinstance(keypair_or_public, CeilidhKeyPair)
            else keypair_or_public
        )
        return self.compressor.decompress_to_element(public)

    # -- Diffie-Hellman -----------------------------------------------------------

    def _encode_shared(self, value) -> bytes:
        """Canonical shared-secret encoding: rho, or the uncompressed fallback."""
        try:
            compressed = self.compressor.compress(value)
        except CompressionError:
            # Exceptional shared point: fall back to the uncompressed encoding.
            from repro.torus.encoding import encode_fp6

            return encode_fp6(self.params, value)
        return encode_compressed(self.params, compressed)

    def shared_secret(
        self,
        own: CeilidhKeyPair,
        peer_public: CompressedElement,
        count: Optional[OpTrace] = None,
    ) -> bytes:
        """Raw DH shared secret: canonical encoding of rho((g^y)^x)."""
        peer_element = self.compressor.decompress_to_element(peer_public)
        shared = self.group.exponentiate(peer_element, own.private, count=count)
        return self._encode_shared(shared.value)

    def shared_secret_many(
        self,
        own: CeilidhKeyPair,
        peer_publics,
        count: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """:meth:`shared_secret` against N peers with batched inversions.

        The N psi decompressions and N rho compressions each run through
        the batch maps (two batch inversions per direction instead of 2N);
        the exponentiations are unchanged, so byte output and trace tallies
        match N single calls.  An exceptional *shared* point (O(1/p))
        re-runs only the cheap compression step per item, keeping the
        per-item fallback encoding; an exceptional *peer* raises just as
        :meth:`shared_secret` would.
        """
        peers = self.compressor.decompress_many(peer_publics)
        shared_values = [
            element.value
            for element in self.group.exponentiate_many(
                [TorusElement(self.group, peer) for peer in peers],
                [own.private] * len(peers),
                count=count,
            )
        ]
        try:
            compressed = self.compressor.compress_many(shared_values)
        except CompressionError:
            return [self._encode_shared(value) for value in shared_values]
        return [encode_compressed(self.params, c) for c in compressed]

    def shared_secret_with_many(
        self,
        owns,
        peer_public: CompressedElement,
        count: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """Shared secrets of N *own* keys against one peer — the client phase
        of a coalesced batch, where every session exponentiates the same
        server public key.

        The peer is decompressed **once** and the N exponentiations share a
        single fixed-base squaring chain
        (:meth:`~repro.torus.t6.T6Group.exponentiate_shared_base`), so the
        per-session cost drops to the multiplications.  Byte-identical to
        looping :meth:`shared_secret`; trace tallies reflect the shared
        table (fewer squarings), like ``inv_many`` reflects its one
        inversion.
        """
        owns = list(owns)
        peer_element = self.compressor.decompress_to_element(peer_public)
        shared_values = [
            element.value
            for element in self.group.exponentiate_shared_base(
                peer_element, [own.private for own in owns], count=count
            )
        ]
        try:
            compressed = self.compressor.compress_many(shared_values)
        except CompressionError:
            return [self._encode_shared(value) for value in shared_values]
        return [encode_compressed(self.params, c) for c in compressed]

    def derive_key(
        self,
        own: CeilidhKeyPair,
        peer_public: CompressedElement,
        info: bytes = b"",
        length: int = 32,
        count: Optional[OpTrace] = None,
    ) -> bytes:
        """DH followed by a SHA-256 based KDF (counter mode)."""
        secret = self.shared_secret(own, peer_public, count=count)
        return _kdf(secret, info, length)

    def derive_key_many(
        self,
        own: CeilidhKeyPair,
        peer_publics,
        info: bytes = b"",
        length: int = 32,
        count: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """:meth:`derive_key` against N peers (batched, byte-identical)."""
        return [
            _kdf(secret, info, length)
            for secret in self.shared_secret_many(own, peer_publics, count=count)
        ]

    def derive_key_with_many(
        self,
        owns,
        peer_public: CompressedElement,
        info: bytes = b"",
        length: int = 32,
        count: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """:meth:`derive_key` of N own keys against one peer (shared-base)."""
        return [
            _kdf(secret, info, length)
            for secret in self.shared_secret_with_many(owns, peer_public, count=count)
        ]

    # -- hashed ElGamal -------------------------------------------------------------

    def encrypt(
        self,
        recipient_public: CompressedElement,
        plaintext: bytes,
        rng: Optional[random.Random] = None,
        count: Optional[OpTrace] = None,
    ) -> CeilidhCiphertext:
        """Hybrid encryption to a compressed public key."""
        rng = resolve_rng(rng)
        recipient = self.compressor.decompress_to_element(recipient_public)
        for _ in range(64):
            ephemeral_exponent = sample_exponent(self.params.q, rng)
            ephemeral_element = self.group.generator_power(ephemeral_exponent, count=count)
            try:
                ephemeral = self.compressor.compress(ephemeral_element.value)
                shared = self.group.exponentiate(recipient, ephemeral_exponent, count=count)
                shared_compressed = self.compressor.compress(shared.value)
            except CompressionError:
                continue
            from repro.pkc.base import seal_body

            shared_bytes = encode_compressed(self.params, shared_compressed)
            body, tag = seal_body(shared_bytes, b"ceilidh-elgamal", plaintext)
            return CeilidhCiphertext(ephemeral=ephemeral, body=body, tag=tag)
        raise ParameterError("could not find a compressible ephemeral key")  # pragma: no cover

    def decrypt(
        self,
        own: CeilidhKeyPair,
        ciphertext: CeilidhCiphertext,
        count: Optional[OpTrace] = None,
    ) -> bytes:
        """Decrypt a hashed-ElGamal ciphertext; raises on tag mismatch."""
        ephemeral_element = self.compressor.decompress_to_element(ciphertext.ephemeral)
        shared = self.group.exponentiate(ephemeral_element, own.private, count=count)
        try:
            shared_compressed = self.compressor.compress(shared.value)
        except CompressionError as exc:  # pragma: no cover - sender avoided these
            raise DecryptionError("shared point is exceptional") from exc
        from repro.pkc.base import open_body

        shared_bytes = encode_compressed(self.params, shared_compressed)
        return open_body(shared_bytes, b"ceilidh-elgamal", ciphertext.body, ciphertext.tag)

    # -- Schnorr signatures -----------------------------------------------------------

    def sign(
        self,
        own: CeilidhKeyPair,
        message: bytes,
        rng: Optional[random.Random] = None,
        count: Optional[OpTrace] = None,
    ) -> CeilidhSignature:
        """Schnorr signature: commitment in the torus, challenge from SHA-256."""
        rng = resolve_rng(rng)
        for _ in range(64):
            nonce = sample_exponent(self.params.q, rng)
            commitment = self.group.generator_power(nonce, count=count)
            try:
                commitment_compressed = self.compressor.compress(commitment.value)
            except CompressionError:
                continue
            challenge = self._challenge(commitment_compressed, own.public, message)
            response = (nonce + challenge * own.private) % self.params.q
            return CeilidhSignature(challenge=challenge, response=response)
        raise SignatureError("could not find a compressible commitment")  # pragma: no cover

    def verify(
        self,
        public: CompressedElement,
        message: bytes,
        signature: CeilidhSignature,
        count: Optional[OpTrace] = None,
    ) -> bool:
        """Verify a Schnorr signature against a compressed public key."""
        if not 0 <= signature.challenge < self.params.q:
            return False
        if not 0 <= signature.response < self.params.q:
            return False
        generator = self.group.generator()
        public_element = self.compressor.decompress_to_element(public)
        # r' = g^s * (pub)^(-e) as one Shamir double exponentiation; on the
        # torus the inverse is a Frobenius map, so negating e is free.
        candidate = self.group.double_exponentiate(
            generator, signature.response, public_element, -signature.challenge, count=count
        )
        try:
            candidate_compressed = self.compressor.compress(candidate.value)
        except CompressionError:
            return False
        return self._challenge(candidate_compressed, public, message) == signature.challenge

    def _challenge(
        self, commitment: CompressedElement, public: CompressedElement, message: bytes
    ) -> int:
        digest = hashlib.sha256()
        digest.update(encode_compressed(self.params, commitment))
        digest.update(encode_compressed(self.params, public))
        digest.update(message)
        return int.from_bytes(digest.digest(), "big") % self.params.q


def _kdf(secret: bytes, info: bytes, length: int) -> bytes:
    """SHA-256 counter-mode key derivation (the library-wide construction)."""
    from repro.pkc.base import kdf

    return kdf(secret, info, length)
