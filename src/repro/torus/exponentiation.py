"""Exponentiation strategies in T6(Fp).

The platform performs torus exponentiation as a sequence of Fp6
multiplications (each 18M + ~60A in Fp); the number of Fp6 multiplications is
what the Table 3 timing scales with.  This module provides the square-and-
multiply strategy the paper uses, plus two cheaper-on-average strategies
(signed NAF — attractive on the torus because inversion is a free Frobenius —
and sliding windows), together with closed-form multiplication counts used by
the analytical cost model and the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ParameterError
from repro.torus.t6 import T6Group, TorusElement


@dataclass
class ExponentiationCount:
    """Number of Fp6 squarings and general multiplications used."""

    squarings: int
    multiplications: int

    @property
    def total(self) -> int:
        return self.squarings + self.multiplications


def exponentiate_binary(
    element: TorusElement, exponent: int, count: ExponentiationCount = None
) -> TorusElement:
    """Left-to-right binary square-and-multiply (the paper's strategy)."""
    if exponent < 0:
        return exponentiate_binary(element.inverse(), -exponent, count)
    group = element.group
    if exponent == 0:
        return group.identity()
    result = element
    for bit in bin(exponent)[3:]:
        result = result.square()
        if count is not None:
            count.squarings += 1
        if bit == "1":
            result = result * element
            if count is not None:
                count.multiplications += 1
    return result


def _naf_digits(exponent: int) -> List[int]:
    """Non-adjacent form, least-significant digit first (digits in {-1, 0, 1})."""
    digits: List[int] = []
    while exponent > 0:
        if exponent & 1:
            digit = 2 - (exponent % 4)
            exponent -= digit
        else:
            digit = 0
        digits.append(digit)
        exponent >>= 1
    return digits


def exponentiate_naf(
    element: TorusElement, exponent: int, count: ExponentiationCount = None
) -> TorusElement:
    """Signed-digit (NAF) exponentiation.

    On the torus the inverse of the base is one Frobenius application, so the
    negative digits cost the same as positive ones — the average number of
    general multiplications drops from n/2 to n/3.
    """
    if exponent < 0:
        return exponentiate_naf(element.inverse(), -exponent, count)
    group = element.group
    if exponent == 0:
        return group.identity()
    inverse = element.inverse()
    digits = _naf_digits(exponent)
    result = group.identity()
    for digit in reversed(digits):
        if not result.is_identity():
            result = result.square()
            if count is not None:
                count.squarings += 1
        if digit == 1:
            result = result * element if not result.is_identity() else element
            if count is not None and not (result is element):
                count.multiplications += 1
        elif digit == -1:
            result = result * inverse
            if count is not None:
                count.multiplications += 1
    return result


def exponentiate_window(
    element: TorusElement,
    exponent: int,
    window_bits: int = 4,
    count: ExponentiationCount = None,
) -> TorusElement:
    """Fixed-window exponentiation with a precomputed table of 2^w entries."""
    if exponent < 0:
        return exponentiate_window(element.inverse(), -exponent, window_bits, count)
    if not 1 <= window_bits <= 8:
        raise ParameterError("window width must be between 1 and 8 bits")
    group = element.group
    if exponent == 0:
        return group.identity()

    table = [group.identity(), element]
    for _ in range((1 << window_bits) - 2):
        table.append(table[-1] * element)
        if count is not None:
            count.multiplications += 1

    digits = []
    e = exponent
    while e:
        digits.append(e & ((1 << window_bits) - 1))
        e >>= window_bits
    digits.reverse()

    result = table[digits[0]]
    for digit in digits[1:]:
        for _ in range(window_bits):
            result = result.square()
            if count is not None:
                count.squarings += 1
        if digit:
            result = result * table[digit]
            if count is not None:
                count.multiplications += 1
    return result


def multiplication_counts(exponent_bits: int, strategy: str = "binary") -> ExponentiationCount:
    """Expected Fp6 squaring/multiplication counts for an ``exponent_bits``-bit exponent.

    These closed forms feed the analytical Table 3 cost model:

    * ``binary``: (n-1) squarings and ~(n-1)/2 multiplications,
    * ``naf``: (n) squarings and ~n/3 multiplications,
    * ``window4``: n squarings, n/4 multiplications plus 14 table entries.
    """
    n = exponent_bits
    if strategy == "binary":
        return ExponentiationCount(squarings=n - 1, multiplications=(n - 1) // 2)
    if strategy == "naf":
        return ExponentiationCount(squarings=n, multiplications=n // 3)
    if strategy == "window4":
        return ExponentiationCount(squarings=n, multiplications=n // 4 + 14)
    raise ParameterError(f"unknown strategy {strategy!r}")
