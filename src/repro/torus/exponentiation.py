"""Exponentiation strategies in T6(Fp) — thin wrappers over :mod:`repro.exp`.

The platform performs torus exponentiation as a sequence of Fp6
multiplications (each 18M + ~60A in Fp); the number of Fp6 multiplications is
what the Table 3 timing scales with.  All strategies now run on the unified
engine with the torus group adapter — inversion is a free Frobenius, so the
signed-digit recodings (NAF, wNAF) are the profitable fast path here — and
every function keeps its historical signature, emitting the unified
:class:`~repro.exp.trace.OpTrace` through the ``ExponentiationCount`` alias.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParameterError
from repro.exp.strategies import (
    double_exponentiate as _double_exponentiate,
    expected_counts,
    exponentiate as _exponentiate,
)
from repro.exp.trace import ExponentiationCount
from repro.torus.t6 import TorusElement

__all__ = [
    "ExponentiationCount",
    "exponentiate_binary",
    "exponentiate_naf",
    "exponentiate_wnaf",
    "exponentiate_sliding",
    "exponentiate_window",
    "exponentiate_ladder",
    "exponentiate_double",
    "multiplication_counts",
]


def _run(
    element: TorusElement,
    exponent: int,
    strategy: str,
    count: Optional[ExponentiationCount],
    window_bits: Optional[int] = None,
) -> TorusElement:
    return _exponentiate(
        element.group.exp_group(),
        element,
        exponent,
        strategy=strategy,
        trace=count,
        window_bits=window_bits,
    )


def exponentiate_binary(
    element: TorusElement, exponent: int, count: Optional[ExponentiationCount] = None
) -> TorusElement:
    """Left-to-right binary square-and-multiply (the paper's strategy)."""
    return _run(element, exponent, "binary", count)


def exponentiate_naf(
    element: TorusElement, exponent: int, count: Optional[ExponentiationCount] = None
) -> TorusElement:
    """Signed-digit (NAF) exponentiation.

    On the torus the inverse of the base is one Frobenius application, so the
    negative digits cost the same as positive ones — the average number of
    general multiplications drops from n/2 to n/3.
    """
    return _run(element, exponent, "naf", count)


def exponentiate_wnaf(
    element: TorusElement,
    exponent: int,
    window_bits: Optional[int] = None,
    count: Optional[ExponentiationCount] = None,
) -> TorusElement:
    """Width-w NAF with an odd-power table: ~n/(w+1) multiplications.

    The default fast path for torus exponentiation (free Frobenius inversion
    makes the signed digits costless).
    """
    return _run(element, exponent, "wnaf", count, window_bits)


def exponentiate_sliding(
    element: TorusElement,
    exponent: int,
    window_bits: Optional[int] = None,
    count: Optional[ExponentiationCount] = None,
) -> TorusElement:
    """Sliding-window exponentiation over an odd-power table."""
    return _run(element, exponent, "sliding", count, window_bits)


def exponentiate_window(
    element: TorusElement,
    exponent: int,
    window_bits: int = 4,
    count: Optional[ExponentiationCount] = None,
) -> TorusElement:
    """Fixed-window exponentiation with a precomputed table of 2^w entries."""
    return _run(element, exponent, "window", count, window_bits)


def exponentiate_ladder(
    element: TorusElement, exponent: int, count: Optional[ExponentiationCount] = None
) -> TorusElement:
    """Montgomery-ladder exponentiation (regular operation pattern)."""
    return _run(element, exponent, "ladder", count)


def exponentiate_double(
    element_a: TorusElement,
    exponent_a: int,
    element_b: TorusElement,
    exponent_b: int,
    count: Optional[ExponentiationCount] = None,
) -> TorusElement:
    """Shamir/Straus simultaneous exponentiation ``a^ea * b^eb``.

    One shared squaring chain instead of two — the fast path for CEILIDH
    signature verification (``g^s * y^c``)."""
    return _double_exponentiate(
        element_a.group.exp_group(),
        element_a,
        exponent_a,
        element_b,
        exponent_b,
        trace=count,
    )


def multiplication_counts(exponent_bits: int, strategy: str = "binary") -> ExponentiationCount:
    """Expected Fp6 squaring/multiplication counts for an ``exponent_bits``-bit exponent.

    These closed forms feed the analytical Table 3 cost model:

    * ``binary``: (n-1) squarings and ~(n-1)/2 multiplications,
    * ``naf``: (n) squarings and ~n/3 multiplications,
    * ``window4``: n squarings, n/4 multiplications plus 14 table entries,
    * ``wnaf4`` / ``sliding4``: n squarings, ~n/5 multiplications plus the
      odd-power table,
    * ``ladder``: n squarings and n multiplications.
    """
    n = exponent_bits
    if strategy == "binary":
        return ExponentiationCount(squarings=n - 1, multiplications=(n - 1) // 2)
    if strategy == "naf":
        return ExponentiationCount(squarings=n, multiplications=n // 3)
    if strategy == "window4":
        return ExponentiationCount(squarings=n, multiplications=n // 4 + 14)
    if strategy in ("wnaf", "wnaf4", "sliding", "sliding4", "ladder", "fixed_base", "shamir"):
        base = strategy[:-1] if strategy.endswith("4") else strategy
        generic = expected_counts(base, n, window_bits=4)
        return ExponentiationCount(
            squarings=generic.squarings, multiplications=generic.multiplications
        )
    raise ParameterError(f"unknown strategy {strategy!r}")
