"""CEILIDH under the unified PKC layer.

The adapter wraps :class:`~repro.torus.ceilidh.CeilidhSystem` — which stays
the implementation of record — and speaks the byte-level protocol interface:
public keys travel as compressed (u, v) pairs, ciphertexts as
``ephemeral || tag || body`` and Schnorr signatures as two fixed-width
subgroup scalars.  All three protocols are supported; the Table 3 headline
operation is a ``p_bits``-bit torus exponentiation costed by the Type-B Fp6
multiplication sequence.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.errors import DecryptionError, ParameterError, ReproError
from repro.exp.trace import OpTrace
from repro.pkc.base import (
    ENCRYPTION,
    KEY_AGREEMENT,
    SIGNATURE,
    TAG_BYTES,
    PkcScheme,
    SchemeKeyPair,
    decode_scalar_pair,
    encode_scalar_pair,
)
from repro.pkc.profile import canonical_exponent
from repro.torus.ceilidh import CeilidhCiphertext, CeilidhSignature, CeilidhSystem
from repro.torus.compression import CompressedElement
from repro.torus.encoding import compressed_size_bytes, decode_compressed, encode_compressed
from repro.torus.params import TorusParameters

__all__ = ["CeilidhScheme"]


class CeilidhScheme(PkcScheme):
    """Compressed-torus CEILIDH as a registry scheme."""

    capabilities = frozenset({KEY_AGREEMENT, ENCRYPTION, SIGNATURE})
    headline_operation = "torus exponentiation (T6, binary)"

    def __init__(
        self,
        params: "TorusParameters | str" = "ceilidh-170",
        name: Optional[str] = None,
        security_bits: int = 80,
        paper_ms: Optional[float] = None,
        backend=None,
    ):
        from repro.field.backend import get_backend

        self.field_backend = get_backend(backend)
        self.system = CeilidhSystem(params, backend=self.field_backend)
        self.params = self.system.params
        self.name = name or self.params.name
        self.bit_length = self.params.p_bits
        self.security_bits = security_bits
        self.paper_ms = paper_ms
        self._scalar_width = (self.params.q.bit_length() + 7) // 8

    # -- keys -------------------------------------------------------------------

    def keygen(
        self, rng: Optional[random.Random] = None, trace: Optional[OpTrace] = None
    ) -> SchemeKeyPair:
        keypair = self.system.generate_keypair(rng, count=trace)
        return SchemeKeyPair(
            scheme=self.name,
            public_wire=encode_compressed(self.params, keypair.public),
            native=keypair,
        )

    def public_key_size(self) -> int:
        return compressed_size_bytes(self.params)

    def decode_public(self, data: bytes) -> CompressedElement:
        compressed = decode_compressed(self.params, data)
        # Decompression doubles as the membership check.
        self.system.compressor.decompress_to_element(compressed)
        return compressed

    def encode_public(self, public: CompressedElement) -> bytes:
        return encode_compressed(self.params, public)

    # -- key agreement -----------------------------------------------------------

    def key_agreement(
        self,
        own: SchemeKeyPair,
        peer_public: bytes,
        info: bytes = b"",
        length: int = 32,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        peer = decode_compressed(self.params, peer_public)
        return self.system.derive_key(own.native, peer, info=info, length=length, count=trace)

    def key_agreement_many(
        self,
        own: SchemeKeyPair,
        peer_publics,
        info: bytes = b"",
        length: int = 32,
        trace: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """N derivations sharing batched psi/rho inversions (byte-identical)."""
        peers = [decode_compressed(self.params, peer) for peer in peer_publics]
        return self.system.derive_key_many(
            own.native, peers, info=info, length=length, count=trace
        )

    def key_agreement_with_many(
        self,
        owns,
        peer_public: bytes,
        info: bytes = b"",
        length: int = 32,
        trace: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """N own keys against one peer: one decompression, one shared
        fixed-base squaring chain across the batch (byte-identical)."""
        peer = decode_compressed(self.params, peer_public)
        return self.system.derive_key_with_many(
            [own.native for own in owns], peer, info=info, length=length, count=trace
        )

    # -- hybrid encryption ---------------------------------------------------------

    def encrypt(
        self,
        recipient_public: bytes,
        plaintext: bytes,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        recipient = decode_compressed(self.params, recipient_public)
        ciphertext = self.system.encrypt(recipient, plaintext, rng, count=trace)
        return (
            encode_compressed(self.params, ciphertext.ephemeral)
            + ciphertext.tag
            + ciphertext.body
        )

    def decrypt(
        self, own: SchemeKeyPair, ciphertext: bytes, trace: Optional[OpTrace] = None
    ) -> bytes:
        element_bytes = compressed_size_bytes(self.params)
        header = element_bytes + TAG_BYTES
        if len(ciphertext) < header:
            raise ParameterError(
                f"ciphertext shorter than the {header}-byte CEILIDH header"
            )
        try:
            parsed = CeilidhCiphertext(
                ephemeral=decode_compressed(self.params, ciphertext[:element_bytes]),
                tag=ciphertext[element_bytes:header],
                body=ciphertext[header:],
            )
            return self.system.decrypt(own.native, parsed, count=trace)
        except DecryptionError:
            raise
        except ReproError as exc:
            # Out-of-range or exceptional-set ephemerals (CompressionError
            # from psi) are attacker-controlled input, not internal errors.
            raise DecryptionError("malformed ephemeral element") from exc

    # -- signatures -----------------------------------------------------------------

    def sign(
        self,
        own: SchemeKeyPair,
        message: bytes,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        signature = self.system.sign(own.native, message, rng, count=trace)
        return encode_scalar_pair(
            signature.challenge, signature.response, self._scalar_width
        )

    def verify(
        self,
        public: bytes,
        message: bytes,
        signature: bytes,
        trace: Optional[OpTrace] = None,
    ) -> bool:
        scalars = decode_scalar_pair(signature, self._scalar_width)
        if scalars is None:
            return False
        parsed = CeilidhSignature(challenge=scalars[0], response=scalars[1])
        try:
            public_element = decode_compressed(self.params, public)
            return self.system.verify(public_element, message, parsed, count=trace)
        except ReproError:
            # Covers exceptional-set publics too (CompressionError raised by
            # psi inside system.verify): malformed input reports False.
            return False

    # -- platform projection ---------------------------------------------------------

    def headline_exponentiation(self, trace: OpTrace) -> None:
        """One ``p_bits``-bit binary torus exponentiation (the 20 ms row)."""
        group = self.system.group
        group.exponentiate(
            group.generator(), canonical_exponent(self.bit_length), strategy="binary",
            count=trace,
        )

    def platform_cycles_per_operation(self, platform) -> Tuple[int, int]:
        cost = platform.fp6_multiplication_cost(self.params.p)
        return cost.type_b_cycles, cost.type_b_cycles

    def headline_modulus(self) -> int:
        return self.params.p
