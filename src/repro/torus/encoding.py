"""Wire encodings for torus elements.

CEILIDH's selling point (Section 1) is bandwidth: a T6(Fp) element is sent as
two Fp values — ~340 bits at the 170-bit parameter size — instead of the six
values of the raw Fp6 representation or the 1024 bits of an RSA modulus-sized
message.  These helpers define the canonical byte encodings used by the
protocols, the bandwidth benchmark and the test-suite.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ParameterError
from repro.field.extension import ExtElement
from repro.field.fp6 import Fp6Field
from repro.torus.compression import CompressedElement
from repro.torus.params import TorusParameters


def _field_byte_length(p: int) -> int:
    """Number of bytes needed for one Fp value."""
    return (p.bit_length() + 7) // 8


def compressed_size_bytes(params: TorusParameters) -> int:
    """Size in bytes of one compressed torus element (two Fp values)."""
    return 2 * _field_byte_length(params.p)


def uncompressed_size_bytes(params: TorusParameters) -> int:
    """Size in bytes of one raw Fp6 element (six Fp values)."""
    return 6 * _field_byte_length(params.p)


def encode_compressed(params: TorusParameters, compressed: CompressedElement) -> bytes:
    """Serialise (u, v) as fixed-width big-endian bytes: u || v."""
    width = _field_byte_length(params.p)
    for label, value in (("u", compressed.u), ("v", compressed.v)):
        if not 0 <= value < params.p:
            raise ParameterError(f"{label} = {value} is not a reduced Fp value")
    return compressed.u.to_bytes(width, "big") + compressed.v.to_bytes(width, "big")


def decode_compressed(params: TorusParameters, data: bytes) -> CompressedElement:
    """Inverse of :func:`encode_compressed`."""
    width = _field_byte_length(params.p)
    if len(data) != 2 * width:
        raise ParameterError(
            f"compressed element must be {2 * width} bytes, got {len(data)}"
        )
    u = int.from_bytes(data[:width], "big")
    v = int.from_bytes(data[width:], "big")
    if u >= params.p or v >= params.p:
        raise ParameterError("encoded value exceeds the field size")
    return CompressedElement(u=u, v=v)


def encode_fp6(params: TorusParameters, value: ExtElement) -> bytes:
    """Serialise a raw Fp6 element as six fixed-width big-endian Fp values."""
    width = _field_byte_length(params.p)
    base = value.field.base
    return b"".join(base.exit(c).to_bytes(width, "big") for c in value.coeffs)


def decode_fp6(params: TorusParameters, fp6: Fp6Field, data: bytes) -> ExtElement:
    """Inverse of :func:`encode_fp6`."""
    width = _field_byte_length(params.p)
    if len(data) != 6 * width:
        raise ParameterError(f"Fp6 element must be {6 * width} bytes, got {len(data)}")
    coeffs = [
        int.from_bytes(data[i * width : (i + 1) * width], "big") for i in range(6)
    ]
    if any(c >= params.p for c in coeffs):
        raise ParameterError("encoded coefficient exceeds the field size")
    return fp6(coeffs)


def bandwidth_summary(params: TorusParameters) -> Tuple[int, int, int]:
    """(compressed bits, uncompressed bits, compression factor numerator).

    Returns the transmitted sizes in bits for one group element: compressed
    (2 log p) versus uncompressed (6 log p); the ratio is the paper's factor
    n/phi(n) = 3.
    """
    compressed_bits = 2 * params.p.bit_length()
    uncompressed_bits = 6 * params.p.bit_length()
    return compressed_bits, uncompressed_bits, uncompressed_bits // compressed_bits
