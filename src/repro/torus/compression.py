"""Compression of torus elements to two Fp values (the maps rho and psi).

Rubin and Silverberg's key observation is that T6(Fp) is a rational variety:
off a small exceptional set it is in bijection with the affine plane A^2(Fp),
so a torus element — six Fp coordinates in the F1 representation — can be
transmitted as just two Fp values, a factor-3 compression (6 / phi(6) = 3).

Construction used here (documented as a substitution in DESIGN.md: it is an
explicitly derived birational parametrisation of the same variety, equivalent
to the published CEILIDH maps):

* Every norm-1 element of Fp6 over Fp3 other than 1 can be written uniquely as
  ``alpha = (c + x) / (c + x^2)`` with ``c in Fp3`` and ``x`` the cube root of
  unity generating the quadratic step of the tower (the classical T2
  parametrisation).
* Writing ``c = c0 + c1*y + c2*y^2`` (with y^3 = 3y - 1), the extra condition
  ``N_{Fp6/Fp2}(alpha) = 1`` that cuts T6 out of T2 becomes the quadric

      c0 + 2*c2 = c0^2 + 4*c0*c2 + 3*c2^2 + c1*c2 - c1^2.

* The quadric contains the rational point ``c = 1`` (the image of alpha = x),
  so it is parametrised by the pencil of lines through that point: the
  direction ``(u, v, 1)`` meets the quadric again at

      t = -(u + 2) / (u^2 + 4u + 3 + v - v^2),
      c = (1 + t*u,  t*v,  t).

``psi(u, v)`` (decompression) evaluates exactly this; ``rho`` (compression)
recovers ``c`` from alpha and returns ``u = (c0 - 1)/c2``, ``v = c1/c2``.
The exceptional sets (identity, alpha = x, the ruling lines of the quadric
through c = 1, directions on the asymptotic cone) have size O(p) out of ~p^2
elements and raise :class:`~repro.errors.CompressionError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import CompressionError, NotInTorusError
from repro.field.extension import ExtElement
from repro.field.towers import F1ToF2Map, TowerElement, TowerFp6


@dataclass(frozen=True)
class CompressedElement:
    """A compressed torus element: the pair (u, v) of Fp values."""

    u: int
    v: int

    def as_tuple(self) -> Tuple[int, int]:
        return (self.u, self.v)


class TorusCompressor:
    """The maps rho (compress) and psi (decompress) for a fixed T6 group."""

    def __init__(self, group):
        # ``group`` is a repro.torus.t6.T6Group; imported lazily to avoid a cycle.
        self.group = group
        self.fp = group.fp
        self.fp6 = group.fp6
        self.tower = TowerFp6(self.fp)
        self.map = F1ToF2Map(self.fp6, self.tower)
        self.fp3 = self.tower.fp3

    # -- rho: T6 -> A^2 -----------------------------------------------------------

    def compress(self, value: ExtElement) -> CompressedElement:
        """Compress a torus element (given in the F1 basis) to (u, v).

        Raises :class:`CompressionError` for the exceptional elements and
        :class:`NotInTorusError` if the input is not in T6 at all.
        """
        if value.is_one():
            raise CompressionError("the identity has no compressed representation")
        alpha = self.map.to_f2(value)
        one = self.tower.one()
        x = self.tower.x()
        x_squared = self.tower.mul(x, x)

        denominator = one - alpha
        if denominator.is_zero():  # pragma: no cover - equivalent to value == 1
            raise CompressionError("alpha = 1 is exceptional")
        c_element = self.tower.mul(
            self.tower.mul(alpha, x_squared) - x, self.tower.inv(denominator)
        )
        if not c_element.is_fp3():
            # (alpha*x^2 - x)/(1 - alpha) lies in Fp3 exactly when alpha has
            # norm 1 over Fp3, which every torus element does.
            raise NotInTorusError("element is not in the norm-1 subgroup over Fp3")
        c0, c1, c2 = c_element.a.coeffs
        if c2 == 0:
            raise CompressionError(
                "element lies on the exceptional line c2 = 0 (includes alpha = x)"
            )
        f = self.fp
        c2_inv = f.inv(c2)
        u = f.mul(f.sub(c0, f.one_value), c2_inv)
        v = f.mul(c1, c2_inv)
        # (u, v) is the wire-facing pair: exit the representation so the
        # compressed element is backend-independent (plain reduced ints).
        return CompressedElement(u=f.exit(u), v=f.exit(v))

    def compress_many(self, values) -> "list[CompressedElement]":
        """Compress N torus elements with TWO batch inversions total.

        Each :meth:`compress` pays one Fp6-tower inversion plus one Fp
        inversion; over a batch both collapse via Montgomery's trick
        (:meth:`~repro.field.towers.TowerFp6.inv_many` /
        :meth:`~repro.field.fp.PrimeField.inv_many`).  Results are
        byte-identical to N single calls.  Exceptional elements are as rare
        as for :meth:`compress` (O(p) of ~p^2); any one of them raises the
        same error the single call would, so callers that must make
        progress fall back to the per-item path on failure.
        """
        values = list(values)
        one = self.tower.one()
        x = self.tower.x()
        x_squared = self.tower.mul(x, x)

        numerators = []
        denominators = []
        for value in values:
            if value.is_one():
                raise CompressionError("the identity has no compressed representation")
            alpha = self.map.to_f2(value)
            denominator = one - alpha
            if denominator.is_zero():  # pragma: no cover - equivalent to value == 1
                raise CompressionError("alpha = 1 is exceptional")
            numerators.append(self.tower.mul(alpha, x_squared) - x)
            denominators.append(denominator)

        f = self.fp
        c2_values = []
        c_pairs = []
        for numerator, denominator_inv in zip(
            numerators, self.tower.inv_many(denominators)
        ):
            c_element = self.tower.mul(numerator, denominator_inv)
            if not c_element.is_fp3():
                raise NotInTorusError("element is not in the norm-1 subgroup over Fp3")
            c0, c1, c2 = c_element.a.coeffs
            if c2 == 0:
                raise CompressionError(
                    "element lies on the exceptional line c2 = 0 (includes alpha = x)"
                )
            c_pairs.append((c0, c1))
            c2_values.append(c2)

        compressed = []
        for (c0, c1), c2_inv in zip(c_pairs, f.inv_many(c2_values)):
            u = f.mul(f.sub(c0, f.one_value), c2_inv)
            v = f.mul(c1, c2_inv)
            compressed.append(CompressedElement(u=f.exit(u), v=f.exit(v)))
        return compressed

    # -- psi: A^2 -> T6 -------------------------------------------------------------

    def decompress(self, compressed: CompressedElement) -> ExtElement:
        """Decompress (u, v) back to a torus element in the F1 basis.

        Raises :class:`CompressionError` when (u, v) lies on the exceptional
        conic u^2 + 4u + 3 + v - v^2 = 0 or parametrises the point c = 1
        (whose torus element alpha = x is itself exceptional for rho).
        """
        f = self.fp
        # Wire values are plain integers; enter the field's representation.
        u, v = f.enter(compressed.u % f.p), f.enter(compressed.v % f.p)

        # q(u, v, 1) = u^2 + 4u + 3 + v - v^2
        q_val = f.add(f.add(f.add(f.mul(u, u), f.mul(f.embed(4), u)), f.embed(3)), f.sub(v, f.mul(v, v)))
        if q_val == 0:
            raise CompressionError("(u, v) lies on the exceptional conic of psi")
        numerator = f.neg(f.add(u, f.embed(2)))
        if numerator == 0:
            raise CompressionError("(u, v) parametrises the exceptional point c = 1")
        t = f.mul(numerator, f.inv(q_val))

        c0 = f.add(f.one_value, f.mul(t, u))
        c1 = f.mul(t, v)
        c2 = t
        c = self.fp3._from_coeffs([c0, c1, c2])

        one3 = self.fp3.one()
        # alpha = (c + x) / (c + x^2) with x^2 = -1 - x.
        numerator_t = TowerElement(self.tower, c, one3)
        denominator_t = TowerElement(self.tower, c - one3, self.fp3.from_base(f.p - 1))
        if denominator_t.is_zero():  # pragma: no cover - cannot happen for t != 0
            raise CompressionError("degenerate denominator in psi")
        alpha = self.tower.mul(numerator_t, self.tower.inv(denominator_t))
        return self.map.to_f1(alpha)

    def decompress_many(self, compresseds) -> "list[ExtElement]":
        """Decompress N pairs with TWO batch inversions total.

        The batched dual of :meth:`compress_many`: the per-item Fp inversion
        of the quadric value and the Fp6-tower inversion of the T2
        denominator each collapse to one.  Same exceptional-set errors as
        :meth:`decompress`; same fallback guidance as
        :meth:`compress_many`.
        """
        compresseds = list(compresseds)
        f = self.fp
        entered = []
        q_values = []
        for compressed in compresseds:
            u, v = f.enter(compressed.u % f.p), f.enter(compressed.v % f.p)
            q_val = f.add(
                f.add(f.add(f.mul(u, u), f.mul(f.embed(4), u)), f.embed(3)),
                f.sub(v, f.mul(v, v)),
            )
            if q_val == 0:
                raise CompressionError("(u, v) lies on the exceptional conic of psi")
            if f.neg(f.add(u, f.embed(2))) == 0:
                raise CompressionError("(u, v) parametrises the exceptional point c = 1")
            entered.append((u, v))
            q_values.append(q_val)

        one3 = self.fp3.one()
        minus_one = self.fp3.from_base(f.p - 1)
        numerators_t = []
        denominators_t = []
        for (u, v), q_inv in zip(entered, f.inv_many(q_values)):
            t = f.mul(f.neg(f.add(u, f.embed(2))), q_inv)
            c0 = f.add(f.one_value, f.mul(t, u))
            c = self.fp3._from_coeffs([c0, f.mul(t, v), t])
            numerators_t.append(TowerElement(self.tower, c, one3))
            denominators_t.append(TowerElement(self.tower, c - one3, minus_one))

        return [
            self.map.to_f1(self.tower.mul(numerator, denominator_inv))
            for numerator, denominator_inv in zip(
                numerators_t, self.tower.inv_many(denominators_t)
            )
        ]

    def decompress_to_element(self, compressed: CompressedElement):
        """Decompress and wrap as a :class:`~repro.torus.t6.TorusElement`."""
        from repro.torus.t6 import TorusElement

        return TorusElement(self.group, self.decompress(compressed))
