"""CEILIDH domain parameters.

A parameter set fixes the base prime ``p`` (with p = 2 or 5 mod 9, so that
z^6 + z^3 + 1 is irreducible over Fp), the prime order ``q`` of the working
subgroup of T6(Fp) and the cofactor ``h`` with ``p^2 - p + 1 = h * q``.

The named sets include the 170-bit size evaluated by the paper plus smaller
"toy" sizes used by the fast test-suite and by the cycle-accurate integration
tests, where running thousands of simulated coprocessor cycles per modular
multiplication has to stay cheap.  All sets were produced by
:func:`generate_parameters` (the generation procedure ships with the library
so they can be reproduced or replaced).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ParameterError
from repro.nt.factor import trial_division
from repro.nt.primality import is_probable_prime
from repro.nt.primegen import random_prime_mod
from repro.nt.sampling import resolve_rng

#: Residues of p modulo 9 for which z^6 + z^3 + 1 stays irreducible (Section 2.2).
ADMISSIBLE_RESIDUES_MOD_9 = (2, 5)


@dataclass(frozen=True)
class TorusParameters:
    """Domain parameters of a CEILIDH instance."""

    name: str
    p: int
    q: int
    cofactor: int

    @property
    def torus_order(self) -> int:
        """|T6(Fp)| = Phi_6(p) = p^2 - p + 1."""
        return self.p * self.p - self.p + 1

    @property
    def p_bits(self) -> int:
        return self.p.bit_length()

    @property
    def q_bits(self) -> int:
        return self.q.bit_length()

    @property
    def compression_factor(self) -> int:
        """6 / phi(6) = 3: six Fp coordinates transmitted as two."""
        return 3

    def validate(self) -> None:
        """Check every structural property; raises :class:`ParameterError` on failure."""
        if self.p % 9 not in ADMISSIBLE_RESIDUES_MOD_9:
            raise ParameterError(
                f"p = {self.p % 9} (mod 9); CEILIDH needs p = 2 or 5 (mod 9)"
            )
        if not is_probable_prime(self.p):
            raise ParameterError("p is not prime")
        if not is_probable_prime(self.q):
            raise ParameterError("q is not prime")
        if self.cofactor < 1:
            raise ParameterError("cofactor must be positive")
        if self.q * self.cofactor != self.torus_order:
            raise ParameterError("q * cofactor != p^2 - p + 1")

    def __repr__(self) -> str:
        return (
            f"TorusParameters(name={self.name!r}, p~2^{self.p_bits}, "
            f"q~2^{self.q_bits}, cofactor={self.cofactor})"
        )


# ---------------------------------------------------------------------------
# Named parameter sets.
# ---------------------------------------------------------------------------

#: The paper's evaluation size: a 170-bit prime p = 2 (mod 9) whose Phi_6(p)
#: has a 311-bit prime factor (the remaining cofactor is 489898389).
CEILIDH_170 = TorusParameters(
    name="ceilidh-170",
    p=1109485483118704838530651968604888341434144398802927,
    q=2512680312674279643808597333590290519471582599826675605498828878699708551705146660671765321127,
    cofactor=489898389,
)

#: 64-bit toy size: large enough to exercise multi-word arithmetic on the
#: simulated coprocessor (4 words of 16 bits) while keeping tests fast.
TOY_64 = TorusParameters(
    name="toy-64",
    p=13301611920037239509,
    q=5805455906791245115343323470846649,
    cofactor=30477,
)

#: 32-bit toy size used by the quick unit tests.
TOY_32 = TorusParameters(
    name="toy-32",
    p=2494740737,
    q=606064366381,
    cofactor=10269093,
)

#: 20-bit toy size used by exhaustive/property tests.
TOY_20 = TorusParameters(
    name="toy-20",
    p=841241,
    q=99491857,
    cofactor=7113,
)

NAMED_PARAMETERS: Dict[str, TorusParameters] = {
    params.name: params for params in (CEILIDH_170, TOY_64, TOY_32, TOY_20)
}


def get_parameters(name: str) -> TorusParameters:
    """Look up a named parameter set (``ceilidh-170``, ``toy-64``, ...)."""
    try:
        return NAMED_PARAMETERS[name]
    except KeyError:
        raise ParameterError(
            f"unknown parameter set {name!r}; available: {sorted(NAMED_PARAMETERS)}"
        ) from None


def generate_parameters(
    bits: int,
    rng: Optional[random.Random] = None,
    max_cofactor_bits: int = 48,
    max_attempts: int = 20_000,
    name: Optional[str] = None,
) -> TorusParameters:
    """Generate a fresh CEILIDH parameter set.

    Searches for a ``bits``-bit prime ``p = 2 or 5 (mod 9)`` such that
    Phi_6(p) = p^2 - p + 1 factors as (small cofactor) * (prime q), where the
    cofactor — everything removable by trial division up to 2^16 — stays below
    ``max_cofactor_bits`` bits.  The expected number of attempts is a few
    hundred at 170 bits (one per candidate prime, dominated by the primality
    test on the ~2*bits-bit cofactor).
    """
    rng = resolve_rng(rng)
    for _ in range(max_attempts):
        p = random_prime_mod(bits, ADMISSIBLE_RESIDUES_MOD_9, 9, rng)
        phi6 = p * p - p + 1
        small, remaining = trial_division(phi6, 1 << 16)
        if remaining == 1:
            # Fully smooth: usable for tiny toy sizes only.
            q = max(small)
            cofactor = phi6 // q
        else:
            if not is_probable_prime(remaining):
                continue
            q = remaining
            cofactor = phi6 // q
        if cofactor.bit_length() > max_cofactor_bits:
            continue
        params = TorusParameters(
            name=name or f"generated-{bits}", p=p, q=q, cofactor=cofactor
        )
        params.validate()
        return params
    raise ParameterError(
        f"could not generate a {bits}-bit CEILIDH parameter set in {max_attempts} attempts"
    )
