"""The serving client and the concurrent load generator.

:class:`ServeClient` is one connection speaking the framed protocol: it
negotiates a scheme by registry name, keeps the server's long-lived public
key, and runs full protocol sessions whose *client half* (ephemeral keygen,
client-side derivation, hybrid encryption, signature verification) executes
locally through the same registry instance the offline harness uses — so
one online session performs exactly the work of one
:mod:`repro.serve.session` offline session, split across the socket.

:func:`run_load` is the measuring harness: N concurrent clients (one
connection each) drive one ``(scheme, operation)`` mix entry at a time —
all clients hammering the same scheme concurrently is precisely what lets
the server-side scheduler fill same-scheme batches — and every request's
round-trip latency lands in a :class:`~repro.perf.latency.LatencyHistogram`
per entry.  An ``OP_OVERLOADED`` answer (bounded-queue backpressure) is
retried after a short pause and counted, never silently dropped.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.audit.annotations import Secret
from repro.errors import (
    OverloadedError,
    ParameterError,
    ProtocolError,
    QuotaError,
    RekeyRequiredError,
    ReplayError,
    ServeError,
    TamperedRecordError,
    UnavailableError,
    UnknownChannelError,
    UnsupportedOperationError,
)
from repro.perf.latency import LatencyHistogram
from repro.serve import protocol
from repro.serve.channel import (
    CLIENT_TO_SERVER,
    KEY_LEN,
    SERVER_TO_CLIENT,
    ChannelCrypto,
)
from repro.serve.protocol import (
    CHANNEL_ID_LEN,
    OP_CHAN_ACCEPT,
    OP_CHAN_CLOSE,
    OP_CHAN_CLOSED,
    OP_CHAN_MSG,
    OP_CHAN_OPEN,
    OP_CHAN_REKEY,
    OP_CHAN_REKEYED,
    OP_CHAN_REPLY,
    OP_CIPHERTEXT,
    OP_DECRYPT,
    OP_ENCRYPT,
    OP_ERROR,
    OP_HELLO,
    OP_KA_CONFIRM,
    OP_KA_INIT,
    OP_OVERLOADED,
    OP_PLAINTEXT_DIGEST,
    OP_SIGN,
    OP_SIGNATURE,
    OP_VERDICT,
    OP_VERIFY,
    OP_WELCOME,
    ERR_IDLE_TIMEOUT,
    ERR_NO_CHANNEL,
    ERR_OVER_QUOTA,
    ERR_REKEY_REQUIRED,
    ERR_REPLAY,
    ERR_TAMPERED,
    ERR_UNAVAILABLE,
    ERR_UNSUPPORTED,
    Frame,
    pack_channel,
    pack_verify,
    parse_channel,
    parse_error,
    parse_welcome,
    read_frame,
    write_frame,
)

__all__ = [
    "ServeClient",
    "ChannelSession",
    "LoadEntry",
    "LoadReport",
    "LoadPhase",
    "LoadPlan",
    "run_load",
    "DEFAULT_PAYLOAD",
]

DEFAULT_PAYLOAD = b"served session payload.........."

#: How many times a load-generator request retries after OP_OVERLOADED.
OVERLOAD_RETRIES = 200
#: Pause between overload retries (seconds).
OVERLOAD_BACKOFF = 0.005
#: How many times a load-generator session survives a dropped or draining
#: connection by reconnecting (a cluster routes the new connection to a
#: live worker).  Sized to ride out a worker crash-restart: backoff plus
#: the replacement's spawn-and-import time is a couple of seconds.
RECONNECT_RETRIES = 20
#: Initial pause before a reconnect attempt (seconds; doubles to 0.5).
RECONNECT_BACKOFF = 0.05


class ServeClient:
    """One connection to a :class:`~repro.serve.server.ServeServer`."""

    def __init__(self, host: str, port: int, backend: Optional[str] = None):
        self.host = host
        self.port = port
        self.backend = backend
        self.scheme_name = ""
        self.server_public = b""
        self.scheme = None  # local registry instance for the client half
        self._reader: Optional["asyncio.StreamReader"] = None
        self._writer: Optional["asyncio.StreamWriter"] = None

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def reconnect(self) -> "ServeClient":
        """Drop the connection and re-establish it, renegotiating the scheme.

        The recovery move after a worker crash, drain or restart: cluster
        workers share one server identity (preset keys), so the fresh
        ``WELCOME`` matches the cached ``server_public`` and in-progress
        protocol state on the *client* side stays valid."""
        scheme_name = self.scheme_name
        await self.close()
        await self.connect()
        if scheme_name:
            await self.negotiate(scheme_name)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- the wire ---------------------------------------------------------------

    async def request(self, opcode: int, payload: bytes = b"") -> Frame:
        """One round trip; raises on error frames.

        ``OP_OVERLOADED`` raises :class:`~repro.errors.OverloadedError`
        (retryable), ``OP_ERROR`` raises :class:`~repro.errors.ServeError`
        (or :class:`UnsupportedOperationError` for a capability gap), and a
        dropped connection raises :class:`~repro.errors.ProtocolError`.
        """
        if self._reader is None or self._writer is None:
            raise ParameterError("client is not connected")
        await write_frame(self._writer, opcode, payload)
        frame = await read_frame(self._reader)
        if frame is None:
            raise ProtocolError("server closed the connection mid-exchange")
        if frame.version != protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"client speaks version {protocol.PROTOCOL_VERSION}, "
                f"server answered with {frame.version}"
            )
        if frame.opcode == OP_OVERLOADED:
            raise OverloadedError(frame.payload.decode("utf-8", "replace"))
        if frame.opcode == OP_ERROR:
            code, detail = parse_error(frame.payload)
            if code == ERR_UNSUPPORTED:
                raise UnsupportedOperationError(detail)
            if code in (ERR_UNAVAILABLE, ERR_IDLE_TIMEOUT):
                # Draining worker (or routerless cluster) / idle-evicted
                # connection: reconnect — a fresh connection lands on a
                # live worker — rather than retrying on this one.
                raise UnavailableError(detail)
            if code == ERR_OVER_QUOTA:
                raise QuotaError(detail)
            if code == ERR_REKEY_REQUIRED:
                raise RekeyRequiredError(detail)
            if code == ERR_NO_CHANNEL:
                raise UnknownChannelError(detail)
            if code == ERR_REPLAY:
                raise ReplayError(detail)
            if code == ERR_TAMPERED:
                raise TamperedRecordError(detail)
            raise ServeError(
                f"{protocol.ERROR_NAMES.get(code, code)}: {detail}"
            )
        return frame

    async def negotiate(self, scheme_name: str) -> bytes:
        """HELLO/WELCOME: pin the scheme, learn the server's public key."""
        from repro.pkc.registry import get_scheme

        frame = await self.request(OP_HELLO, scheme_name.encode("utf-8"))
        if frame.opcode != OP_WELCOME:
            raise ProtocolError(f"expected WELCOME, got {frame.opcode_name}")
        name, public = parse_welcome(frame.payload)
        if name != scheme_name:
            raise ProtocolError(f"negotiated {scheme_name!r} but server said {name!r}")
        self.scheme_name = name
        self.server_public = public
        self.scheme = get_scheme(scheme_name, backend=self.backend)
        return public

    # -- full protocol sessions ---------------------------------------------------
    #
    # Each runs one online session (the client half locally, the server half
    # across the wire), verifies the result, and returns the round-trip
    # latency of the server-bound request in seconds.

    def _require_session(self) -> None:
        if self.scheme is None:
            raise ParameterError("negotiate a scheme before running sessions")

    async def key_agreement_session(self, rng=None) -> float:
        """Ephemeral keygen + both derivations; server's tag checked against ours."""
        self._require_session()
        client_pair = self.scheme.keygen(rng)  # audit: allow[RC204] load-generator client half runs its arithmetic locally by design
        started = time.perf_counter()
        frame = await self.request(OP_KA_INIT, client_pair.public_wire)
        latency = time.perf_counter() - started
        if frame.opcode != OP_KA_CONFIRM:
            raise ProtocolError(f"expected KA_CONFIRM, got {frame.opcode_name}")
        shared = self.scheme.key_agreement(client_pair, self.server_public)  # audit: allow[RC204] load-generator client half runs its arithmetic locally by design
        if not protocol.constant_time_equal(frame.payload, protocol.confirmation_tag(shared)):
            raise ServeError(f"{self.scheme_name}: key agreement tags disagree")
        return latency

    async def encryption_session(
        self, payload: bytes = DEFAULT_PAYLOAD, rng=None
    ) -> float:
        """Encrypt to the server, server opens, digest checked."""
        self._require_session()
        ciphertext = self.scheme.encrypt(self.server_public, payload, rng)  # audit: allow[RC204] load-generator client half runs its arithmetic locally by design
        started = time.perf_counter()
        frame = await self.request(OP_DECRYPT, ciphertext)
        latency = time.perf_counter() - started
        if frame.opcode != OP_PLAINTEXT_DIGEST:
            raise ProtocolError(f"expected PLAINTEXT_DIGEST, got {frame.opcode_name}")
        if frame.payload != protocol.plaintext_digest(payload):
            raise ServeError(f"{self.scheme_name}: decryption digest disagrees")
        return latency

    async def signature_session(
        self, message: bytes = DEFAULT_PAYLOAD, rng=None
    ) -> float:
        """Server signs, we verify locally — then the server re-verifies on the wire."""
        self._require_session()
        started = time.perf_counter()
        frame = await self.request(OP_SIGN, message)
        latency = time.perf_counter() - started
        if frame.opcode != OP_SIGNATURE:
            raise ProtocolError(f"expected SIGNATURE, got {frame.opcode_name}")
        if not self.scheme.verify(self.server_public, message, frame.payload):  # audit: allow[RC204] load-generator client half runs its arithmetic locally by design
            raise ServeError(f"{self.scheme_name}: signature rejected locally")
        return latency

    async def verify_session(self, message: bytes, signature: bytes) -> bool:
        """Ask the server for a verdict on ``(message, signature)``."""
        self._require_session()
        frame = await self.request(OP_VERIFY, pack_verify(message, signature))
        if frame.opcode != OP_VERDICT or len(frame.payload) != 1:
            raise ProtocolError(f"expected VERDICT, got {frame.opcode_name}")
        return frame.payload == b"\x01"

    async def encrypt_roundtrip_session(
        self, payload: bytes = DEFAULT_PAYLOAD
    ) -> float:
        """Server-side encrypt, then server-side decrypt of the same bytes."""
        self._require_session()
        started = time.perf_counter()
        frame = await self.request(OP_ENCRYPT, payload)
        latency = time.perf_counter() - started
        if frame.opcode != OP_CIPHERTEXT:
            raise ProtocolError(f"expected CIPHERTEXT, got {frame.opcode_name}")
        digest_frame = await self.request(OP_DECRYPT, frame.payload)
        if digest_frame.payload != protocol.plaintext_digest(payload):
            raise ServeError(f"{self.scheme_name}: encrypt round trip disagrees")
        return latency

    # -- stateful channels --------------------------------------------------------

    def channel_bootstrap(self, rng=None) -> "Tuple[bytes, Secret[bytes]]":
        """The client half of a channel handshake: ``(wire kex, secret)``.

        KA-capable schemes send an ephemeral public key and derive the
        secret from the server's long-lived key; schemes without key
        agreement (RSA) bootstrap KEM-style — the client picks the secret
        and encrypts it to the server's key, so the same ``CHAN_OPEN``
        opcode works across the whole registry.
        """
        self._require_session()
        if "key-agreement" in self.scheme.capabilities:
            pair = self.scheme.keygen(rng)
            secret = self.scheme.key_agreement(pair, self.server_public)
            return pair.public_wire, secret
        seed = rng.randbytes(KEY_LEN) if rng is not None else os.urandom(KEY_LEN)
        kex = self.scheme.encrypt(self.server_public, seed, rng)
        return kex, seed

    async def open_channel(
        self,
        rng=None,
        rekey_after_messages: Optional[int] = None,
        rekey_after_bytes: Optional[int] = None,
    ) -> "ChannelSession":
        """Open a stateful secure channel on this connection's scheme."""
        session = ChannelSession(
            self,
            rng=rng,
            rekey_after_messages=rekey_after_messages,
            rekey_after_bytes=rekey_after_bytes,
        )
        await session.open()
        return session


class ChannelSession:
    """The client end of one stateful secure channel.

    One :meth:`open` handshake (a single public-key operation), then
    :meth:`send` carries authenticated records on symmetric keys only.  The
    session rekeys itself transparently — proactively when its own epoch
    budget is spent, reactively on the server's explicit
    ``ERR_REKEY_REQUIRED`` — and survives worker crash/restart/drain by
    reconnecting and opening a *fresh* channel (new id, new handshake),
    invisible to the caller beyond the :attr:`reopens` counter.  Quota
    refusals (``ERR_OVER_QUOTA``) are the one surfaced refusal: the caller
    decides whether to back off and retry.
    """

    #: Default per-epoch budgets; match the server's ``ChannelPolicy``
    #: defaults so a well-behaved client rekeys proactively, one message
    #: before the server would demand it.
    REKEY_AFTER_MESSAGES = 1024
    REKEY_AFTER_BYTES = 1 << 20

    def __init__(
        self,
        client: ServeClient,
        rng=None,
        rekey_after_messages: Optional[int] = None,
        rekey_after_bytes: Optional[int] = None,
    ):
        self.client = client
        self.rng = rng
        self.rekey_after_messages = (
            self.REKEY_AFTER_MESSAGES
            if rekey_after_messages is None
            else rekey_after_messages
        )
        self.rekey_after_bytes = (
            self.REKEY_AFTER_BYTES if rekey_after_bytes is None else rekey_after_bytes
        )
        self.channel_id = b""
        self.crypto: Optional[ChannelCrypto] = None
        self.messages = 0
        self.rekeys = 0
        self.reopens = 0
        self.open_latency = 0.0
        self._messages_since_rekey = 0
        self._bytes_since_rekey = 0
        #: A sealed record whose quota refusal the caller is retrying:
        #: ``(payload, record)``.  Sealing advanced the send sequence, so a
        #: retry of the same payload must resend these exact bytes — a
        #: fresh seal would desynchronise the sequence the server expects.
        self._pending: Optional[Tuple[bytes, bytes]] = None
        #: Same for a quota-refused rekey: ``(secret, sealed kex record)``.
        self._pending_rekey: Optional[Tuple[bytes, bytes]] = None

    @property
    def is_open(self) -> bool:
        return self.crypto is not None

    def _fresh_channel_id(self) -> bytes:
        if self.rng is not None:
            return self.rng.randbytes(CHANNEL_ID_LEN)
        return os.urandom(CHANNEL_ID_LEN)

    async def open(self) -> float:
        """Run the handshake; returns its round-trip latency in seconds."""
        kex, secret = self.client.channel_bootstrap(self.rng)
        channel_id = self._fresh_channel_id()
        started = time.perf_counter()
        frame = await self.client.request(
            OP_CHAN_OPEN, pack_channel(channel_id, kex)
        )
        latency = time.perf_counter() - started
        if frame.opcode != OP_CHAN_ACCEPT:
            raise ProtocolError(f"expected CHAN_ACCEPT, got {frame.opcode_name}")
        echoed, tag = parse_channel(frame.payload)
        if echoed != channel_id:
            raise ProtocolError("server accepted a different channel id")
        if not protocol.constant_time_equal(
            tag, protocol.confirmation_tag(secret)
        ):
            raise ServeError(
                f"{self.client.scheme_name}: channel confirmation tags disagree"
            )
        self.channel_id = channel_id
        self.crypto = ChannelCrypto(
            secret, channel_id, CLIENT_TO_SERVER, SERVER_TO_CLIENT
        )
        self._messages_since_rekey = 0
        self._bytes_since_rekey = 0
        self._pending = None
        self._pending_rekey = None
        self.open_latency = latency
        return latency

    async def _reopen(self) -> None:
        """Crash/drain recovery: reconnect, renegotiate, fresh channel.

        Cluster workers share one server identity (preset keys), so the new
        handshake verifies against the same long-lived public key; server-
        side channel state died with the old worker, which is why recovery
        opens a *new* channel instead of resuming the old id."""
        self.crypto = None
        delay = RECONNECT_BACKOFF
        last: Optional[BaseException] = None
        for _ in range(RECONNECT_RETRIES):
            try:
                await self.client.reconnect()
                await self.open()
                self.reopens += 1
                return
            except (UnavailableError, ProtocolError, OSError, OverloadedError) as exc:
                last = exc
                await self.client.close()
                await asyncio.sleep(delay)
                delay = min(delay * 2, 0.5)
        raise ProtocolError(
            f"could not reopen a {self.client.scheme_name} channel after "
            f"{RECONNECT_RETRIES} attempts: {last}"
        )

    def _needs_rekey(self, next_bytes: int) -> bool:
        return (
            self._messages_since_rekey + 1 > self.rekey_after_messages
            or self._bytes_since_rekey + next_bytes > self.rekey_after_bytes
        )

    async def rekey(self) -> float:
        """Rotate the channel's keys in place; returns the round-trip latency.

        The fresh key-exchange material travels *inside* the channel (a
        sealed record under the current epoch); the server acknowledges
        under the old keys with a confirmation tag of the new secret, and
        both sides switch to ``epoch + 1`` with sequences reset.
        """
        if self.crypto is None:
            raise ParameterError("channel is not open")
        if self._pending_rekey is not None:
            secret, record = self._pending_rekey  # resume a quota-refused rekey
            self._pending_rekey = None
        else:
            kex, secret = self.client.channel_bootstrap(self.rng)
            record = self.crypto.seal(kex)
        started = time.perf_counter()
        try:
            frame = await self.client.request(
                OP_CHAN_REKEY, pack_channel(self.channel_id, record)
            )
        except (QuotaError, OverloadedError):
            # Refused before the server touched its receive sequence; keep
            # the sealed kex so the retry resends the expected sequence.
            self._pending_rekey = (secret, record)
            raise
        latency = time.perf_counter() - started
        if frame.opcode != OP_CHAN_REKEYED:
            raise ProtocolError(f"expected CHAN_REKEYED, got {frame.opcode_name}")
        _, ack_record = parse_channel(frame.payload)
        ack = self.crypto.open(ack_record)  # still the old epoch's keys
        if not protocol.constant_time_equal(
            ack, protocol.confirmation_tag(secret)
        ):
            raise ServeError(
                f"{self.client.scheme_name}: rekey confirmation tags disagree"
            )
        self.crypto.rekey(secret)
        self._messages_since_rekey = 0
        self._bytes_since_rekey = 0
        self.rekeys += 1
        return latency

    async def send(self, payload: bytes) -> float:
        """One authenticated request/response on the channel; returns latency.

        Absorbs, in order of preference: proactive rekey when this epoch's
        budget is spent; ``ERR_REKEY_REQUIRED`` (rekey, then retry);
        ``OP_OVERLOADED`` (backoff, retry — the sealed record is reused so
        the sequence numbers stay aligned); dropped/draining/idle-evicted
        connections (reconnect + fresh channel, then reseal).  Quota
        refusals propagate as :class:`~repro.errors.QuotaError`.
        """
        if self.crypto is None:
            raise ParameterError("channel is not open")
        overloads_left = OVERLOAD_RETRIES
        record: Optional[bytes] = None
        if self._pending is not None and self._pending[0] == payload:
            record = self._pending[1]  # resume a quota-refused send
        self._pending = None
        while True:
            try:
                if record is None:
                    # Inside the try: a proactive rekey's round trip fails
                    # the same ways a record's does, and must recover the
                    # same ways (backoff, reopen).
                    if self._needs_rekey(len(payload)):
                        await self.rekey()
                    record = self.crypto.seal(payload)
                started = time.perf_counter()
                frame = await self.client.request(
                    OP_CHAN_MSG, pack_channel(self.channel_id, record)
                )
                latency = time.perf_counter() - started
            except OverloadedError:
                if overloads_left == 0:
                    raise
                overloads_left -= 1
                # Retry the *same* sealed record: its sequence number is
                # the one the server still expects.
                await asyncio.sleep(OVERLOAD_BACKOFF)
                continue
            except RekeyRequiredError:
                # The server refused *before* consuming the record, so the
                # sequence our seal spent is still the one it expects — roll
                # it back so the rekey's sealed kex lands on that sequence.
                self.crypto.send_seq -= 1
                await self.rekey()
                record = None  # reseal at the new epoch's sequence 0
                continue
            except QuotaError:
                # The server refused before touching its receive sequence;
                # keep the sealed record so a retry of the same payload
                # resends the sequence number the server still expects.
                # (record is None when the refusal hit the proactive rekey,
                # whose own pending stash covers the resume.)
                if record is not None:
                    self._pending = (payload, record)
                raise
            except (UnavailableError, UnknownChannelError, ProtocolError, OSError):
                await self._reopen()
                record = None  # fresh channel, fresh keys, fresh sequence
                continue
            if frame.opcode != OP_CHAN_REPLY:
                raise ProtocolError(f"expected CHAN_REPLY, got {frame.opcode_name}")
            _, reply_record = parse_channel(frame.payload)
            reply = self.crypto.open(reply_record)
            if not protocol.constant_time_equal(
                reply, protocol.plaintext_digest(payload)
            ):
                raise ServeError(
                    f"{self.client.scheme_name}: channel reply digest disagrees"
                )
            self.messages += 1
            self._messages_since_rekey += 1
            self._bytes_since_rekey += len(payload)
            return latency

    async def close(self) -> None:
        """Authenticated close; the server forgets the channel."""
        if self.crypto is None:
            return
        record = self.crypto.seal(b"")
        frame = await self.client.request(
            OP_CHAN_CLOSE, pack_channel(self.channel_id, record)
        )
        if frame.opcode != OP_CHAN_CLOSED:
            raise ProtocolError(f"expected CHAN_CLOSED, got {frame.opcode_name}")
        self.crypto = None


#: operation name -> the ServeClient session coroutine that runs it.
SESSION_METHODS = {
    "key-agreement": "key_agreement_session",
    "encryption": "encryption_session",
    "signature": "signature_session",
}


@dataclass(frozen=True)
class LoadPhase:
    """One phase of a traffic plan: a ``(scheme, operation)`` pair with a
    relative ``weight`` scaling how many sessions each client runs."""

    scheme: str
    operation: str
    weight: float = 1.0

    def sessions(self, sessions_per_client: int) -> int:
        """Per-client session count at the given base rate (at least one)."""
        return max(1, round(sessions_per_client * self.weight))


@dataclass
class LoadPlan:
    """A traffic plan: the ordered phases one load run drives.

    The single shared description of load shape — :func:`run_load`, the
    cluster scaling bench and future traffic models all consume it, so a
    new mix is one constructor call, not a parallel re-implementation.
    """

    phases: List[LoadPhase] = field(default_factory=list)

    @classmethod
    def from_mix(cls, mix: Sequence[Tuple[str, str]]) -> "LoadPlan":
        """Equal-weight phases from ``(scheme, operation)`` pairs."""
        return cls([LoadPhase(scheme, operation) for scheme, operation in mix])

    @classmethod
    def uniform(
        cls, schemes: Sequence[str], operations: Sequence[str]
    ) -> "LoadPlan":
        """The cross product: every operation for every scheme, weight 1."""
        return cls(
            [
                LoadPhase(scheme, operation)
                for scheme in schemes
                for operation in operations
            ]
        )

    def mix(self) -> List[Tuple[str, str]]:
        return [(phase.scheme, phase.operation) for phase in self.phases]

    def schemes(self) -> Tuple[str, ...]:
        """The distinct schemes the plan touches, in first-seen order."""
        return tuple(dict.fromkeys(phase.scheme for phase in self.phases))


@dataclass
class LoadEntry:
    """Aggregated outcome of one ``(scheme, operation)`` load phase."""

    scheme: str
    operation: str
    sessions: int = 0
    errors: int = 0
    overload_rejections: int = 0
    #: Times a client re-established its connection (worker crash, drain,
    #: rolling restart) and carried on without a client-visible failure.
    reconnects: int = 0
    wall_seconds: float = 0.0
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def key(self) -> str:
        return f"{self.scheme}:{self.operation}"

    @property
    def sessions_per_second(self) -> float:
        return self.sessions / self.wall_seconds if self.wall_seconds > 0 else 0.0


@dataclass
class LoadReport:
    """Everything one :func:`run_load` run measured."""

    clients: int
    entries: Dict[str, LoadEntry] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def total_sessions(self) -> int:
        return sum(entry.sessions for entry in self.entries.values())

    @property
    def total_errors(self) -> int:
        return sum(entry.errors for entry in self.entries.values())

    @property
    def total_overload_rejections(self) -> int:
        return sum(entry.overload_rejections for entry in self.entries.values())

    @property
    def total_reconnects(self) -> int:
        return sum(entry.reconnects for entry in self.entries.values())


async def _reestablish(client: ServeClient, entry: LoadEntry, attempts: int) -> None:
    """(Re)connect and (re)negotiate the phase's scheme, with backoff.

    Rides out the dark window of a worker crash-restart or rolling restart:
    the replacement worker takes backoff plus spawn time to come up, so
    connection attempts are retried with doubling pauses until one lands on
    a live worker."""
    delay = RECONNECT_BACKOFF
    last: Optional[BaseException] = None
    for _ in range(max(1, attempts)):
        try:
            if not client.connected:
                await client.connect()
            await client.negotiate(entry.scheme)
            return
        except (UnavailableError, ProtocolError, OSError) as exc:
            last = exc
            await client.close()
            await asyncio.sleep(delay)
            delay = min(delay * 2, 0.5)
    raise ProtocolError(
        f"could not re-establish a {entry.scheme} session after "
        f"{attempts} attempts: {last}"
    )


async def _client_phase(
    client: ServeClient,
    entry: LoadEntry,
    sessions: int,
    payload: bytes,
    rng=None,
    reconnect_retries: int = RECONNECT_RETRIES,
) -> None:
    """One client's share of one phase: negotiate, then run its sessions.

    Two failure modes are absorbed rather than surfaced: ``OP_OVERLOADED``
    (bounded-queue backpressure — pause and retry on the same connection)
    and a dropped or draining connection (cluster worker lifecycle —
    reconnect, renegotiate, and retry the session on whichever live worker
    accepts the new connection).  Anything else still raises: a load run
    with a protocol bug must fail loudly."""
    try:
        await client.negotiate(entry.scheme)
    except (UnavailableError, ProtocolError, OSError):
        entry.reconnects += 1
        await client.close()
        await _reestablish(client, entry, reconnect_retries)
    for _ in range(sessions):
        overloads_left = OVERLOAD_RETRIES
        reconnects_left = reconnect_retries
        while True:
            method = getattr(client, SESSION_METHODS[entry.operation])
            try:
                if entry.operation == "key-agreement":
                    latency = await method(rng)
                else:
                    latency = await method(payload, rng)
            except OverloadedError:
                entry.overload_rejections += 1
                if overloads_left == 0:
                    entry.errors += 1
                    break
                overloads_left -= 1
                await asyncio.sleep(OVERLOAD_BACKOFF)
                continue
            except (UnavailableError, ProtocolError, OSError):
                if reconnects_left == 0:
                    raise
                reconnects_left -= 1
                entry.reconnects += 1
                await client.close()
                await _reestablish(client, entry, reconnect_retries)
                continue
            entry.sessions += 1
            entry.histogram.add(latency)
            break


async def run_load(
    host: str,
    port: int,
    mix: Optional[Sequence[Tuple[str, str]]] = None,
    clients: int = 8,
    sessions_per_client: int = 4,
    payload: bytes = DEFAULT_PAYLOAD,
    backend: Optional[str] = None,
    rng=None,
    plan: Optional[LoadPlan] = None,
    reconnect_retries: int = RECONNECT_RETRIES,
) -> LoadReport:
    """Drive ``clients`` concurrent connections through every plan phase.

    The traffic shape comes from ``plan`` (a :class:`LoadPlan`) or, for the
    common equal-weight case, from ``mix`` — a sequence of ``(scheme name,
    operation)`` pairs.  Phases run one at a time with *all* clients
    concurrent inside a phase, so the server sees sustained same-scheme
    pressure and its scheduler can batch.  Connections persist across
    phases (one HELLO per phase renegotiates).  Failed sessions raise out
    of the harness — a load run with a protocol bug should fail loudly, not
    average the bug away; only overload rejections (retried in place) and
    dropped/draining connections (reconnected, bounded by
    ``reconnect_retries``) are absorbed, and both are counted on the entry.
    """
    if clients < 1:
        raise ParameterError("the load harness needs at least one client")
    if plan is None:
        if mix is None:
            raise ParameterError("run_load needs a mix or a plan")
        plan = LoadPlan.from_mix(mix)
    pool: List[ServeClient] = [
        ServeClient(host, port, backend=backend) for _ in range(clients)
    ]
    report = LoadReport(clients=clients)
    run_started = time.perf_counter()
    try:
        await asyncio.gather(*(client.connect() for client in pool))
        for phase in plan.phases:
            entry = report.entries.setdefault(
                f"{phase.scheme}:{phase.operation}",
                LoadEntry(phase.scheme, phase.operation),
            )
            sessions = phase.sessions(sessions_per_client)
            phase_started = time.perf_counter()
            await asyncio.gather(
                *(
                    _client_phase(
                        client,
                        entry,
                        sessions,
                        payload,
                        rng,
                        reconnect_retries=reconnect_retries,
                    )
                    for client in pool
                )
            )
            entry.wall_seconds += time.perf_counter() - phase_started
    finally:
        await asyncio.gather(
            *(client.close() for client in pool), return_exceptions=True
        )
    report.wall_seconds = time.perf_counter() - run_started
    return report
