"""Stateful secure channels: handshake once, then a symmetric record stream.

The one-shot wire protocol spends a full public-key operation on every
request, which is not how the paper's primitives are consumed in practice —
a key agreement exists to *bootstrap a session*.  This module is that
session layer, sans-IO: everything here is pure state-machine and record
crypto, testable without sockets, and both the server handler and the
client library drive it.

**Key schedule.**  A ``CHAN_OPEN`` runs the negotiated scheme's key
agreement once (schemes without key agreement — RSA — bootstrap the same
secret through their encryption capability, KEM-style: the client picks the
secret and encrypts it to the server's long-lived key).  Both sides then
derive *directional* keystream and tag keys through the library-wide
:func:`repro.pkc.base.kdf`::

    stream_key = kdf(secret, "repro-chan|" id epoch "|c2s-stream", 32)
    tag_key    = kdf(secret, "repro-chan|" id epoch "|c2s-tag",    32)

(and the ``s2c`` pair for the other direction), so client->server and
server->client records never share a keystream.

**Records.**  One sealed record is ``seq:8 | body | tag:16``: the body is
XORed with a per-sequence keystream (``kdf(stream_key, "rec" seq)`` — the
same XOR construction :func:`repro.pkc.base.seal_body` uses for the hybrid
ciphertexts) and the truncated HMAC tag binds *channel id, key epoch,
sequence number and body* together.  Sequence numbers are per-direction and
strictly monotonic from 0; a record whose tag fails raises
:class:`~repro.errors.TamperedRecordError` and one whose (authentic)
sequence number is not exactly the next expected raises
:class:`~repro.errors.ReplayError` — replay and reordering are rejected,
never silently reordered back.

**Rekeying.**  Key epochs are budgeted (messages and bytes).  A
``CHAN_REKEY`` carries fresh key-exchange material *inside* the channel (a
sealed record), runs a new key agreement, and both sides switch to keys
derived from the new secret at ``epoch + 1`` with sequence numbers reset —
invisible to the application on the client.  A server whose budget is
exhausted refuses further records with an explicit
:class:`~repro.errors.RekeyRequiredError` frame rather than serving on
stale key material.

**The server side** keeps every open channel in a :class:`ChannelTable`:
per-client token-bucket rate limiting (:class:`TokenBucket`), channel-count
admission control, key-budget enforcement and idle eviction — each refusal
an explicit typed error the handler maps onto an error frame, never a
silent close.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.audit.annotations import Secret
from repro.errors import (
    ProtocolError,
    QuotaError,
    RekeyRequiredError,
    ReplayError,
    TamperedRecordError,
    UnknownChannelError,
)
from repro.pkc.base import kdf
from repro.serve.protocol import CHANNEL_ID_LEN

__all__ = [
    "KEY_LEN",
    "RECORD_TAG_LEN",
    "SEQ_LEN",
    "CLIENT_TO_SERVER",
    "SERVER_TO_CLIENT",
    "ChannelKeys",
    "derive_channel_keys",
    "seal_record",
    "open_record",
    "ChannelCrypto",
    "ChannelPolicy",
    "TokenBucket",
    "ServerChannel",
    "ChannelTableStats",
    "ChannelTable",
]

#: Bytes of each derived keystream/tag key.
KEY_LEN = 32

#: Bytes of a record's truncated HMAC-SHA256 integrity tag.
RECORD_TAG_LEN = 16

#: Bytes of a record's big-endian sequence number.
SEQ_LEN = 8

#: Direction labels baked into the key derivation — the two halves of a
#: channel never share a keystream.
CLIENT_TO_SERVER = b"c2s"
SERVER_TO_CLIENT = b"s2c"


@dataclass(frozen=True)
class ChannelKeys:
    """One direction's derived key pair for one key epoch."""

    stream_key: Secret[bytes]
    tag_key: Secret[bytes]


def derive_channel_keys(
    secret: bytes, channel_id: bytes, epoch: int, direction: bytes
) -> Secret[ChannelKeys]:
    """Derive one direction's keystream and tag keys for ``epoch``.

    The info string binds channel id, epoch and direction, so the same
    bootstrap secret never yields colliding keystreams across channels,
    epochs or directions.
    """
    info = b"repro-chan|" + channel_id + struct.pack(">I", epoch) + b"|" + direction
    return ChannelKeys(
        stream_key=kdf(secret, info + b"-stream", KEY_LEN),
        tag_key=kdf(secret, info + b"-tag", KEY_LEN),
    )


def _record_tag(
    keys: ChannelKeys, channel_id: bytes, epoch: int, seq: int, body: bytes
) -> bytes:
    material = channel_id + struct.pack(">IQ", epoch, seq) + body
    return hmac.new(keys.tag_key, material, hashlib.sha256).digest()[:RECORD_TAG_LEN]


def seal_record(
    keys: ChannelKeys, channel_id: bytes, epoch: int, seq: int, plaintext: bytes
) -> bytes:
    """Seal one record: ``seq:8 | XOR-encrypted body | tag:16``."""
    keystream = kdf(keys.stream_key, b"rec" + struct.pack(">Q", seq), len(plaintext))
    body = bytes(p ^ k for p, k in zip(plaintext, keystream))
    return struct.pack(">Q", seq) + body + _record_tag(
        keys, channel_id, epoch, seq, body
    )


def open_record(
    keys: ChannelKeys,
    channel_id: bytes,
    epoch: int,
    expected_seq: int,
    record: bytes,
) -> bytes:
    """Verify and open one record sealed by the peer.

    Raises :class:`~repro.errors.TamperedRecordError` when the tag fails
    (checked first — an attacker must not learn which field was wrong) and
    :class:`~repro.errors.ReplayError` when an *authentic* record arrives
    out of sequence.
    """
    if len(record) < SEQ_LEN + RECORD_TAG_LEN:
        raise ProtocolError(
            f"channel record of {len(record)} bytes is shorter than the "
            f"{SEQ_LEN + RECORD_TAG_LEN}-byte minimum"
        )
    (seq,) = struct.unpack_from(">Q", record)
    body = record[SEQ_LEN:-RECORD_TAG_LEN]
    tag = record[-RECORD_TAG_LEN:]
    expected_tag = _record_tag(keys, channel_id, epoch, seq, body)
    if not hmac.compare_digest(expected_tag, tag):
        raise TamperedRecordError(
            f"channel record tag failed to verify (seq {seq}, epoch {epoch})"
        )
    if seq != expected_seq:
        raise ReplayError(
            f"channel record seq {seq} arrived where {expected_seq} was "
            f"expected (replay or reordering)"
        )
    keystream = kdf(keys.stream_key, b"rec" + struct.pack(">Q", seq), len(body))
    return bytes(c ^ k for c, k in zip(body, keystream))


class ChannelCrypto:
    """One endpoint's record crypto for an open channel.

    Owns the directional key pairs and the per-direction monotonic sequence
    numbers; :meth:`rekey` swaps in keys derived from a fresh secret at the
    next epoch and resets both sequences.  The server constructs it with
    ``send=SERVER_TO_CLIENT``; the client with ``send=CLIENT_TO_SERVER``.
    """

    def __init__(
        self,
        secret: bytes,
        channel_id: bytes,
        send_direction: bytes,
        recv_direction: bytes,
    ):
        if len(channel_id) != CHANNEL_ID_LEN:
            raise ProtocolError(
                f"channel id must be {CHANNEL_ID_LEN} bytes, got {len(channel_id)}"
            )
        self.channel_id = channel_id
        self._send_direction = send_direction
        self._recv_direction = recv_direction
        self.epoch = -1  # rekey() below moves to epoch 0
        self.send_seq = 0
        self.recv_seq = 0
        self._send_keys: Optional[ChannelKeys] = None
        self._recv_keys: Optional[ChannelKeys] = None
        self.rekey(secret)

    def rekey(self, secret: bytes) -> None:
        """Switch to keys derived from ``secret`` at the next epoch."""
        self.epoch += 1
        self._send_keys = derive_channel_keys(
            secret, self.channel_id, self.epoch, self._send_direction
        )
        self._recv_keys = derive_channel_keys(
            secret, self.channel_id, self.epoch, self._recv_direction
        )
        self.send_seq = 0
        self.recv_seq = 0

    def seal(self, plaintext: bytes) -> bytes:
        """Seal ``plaintext`` at the next send sequence number."""
        assert self._send_keys is not None
        record = seal_record(
            self._send_keys, self.channel_id, self.epoch, self.send_seq, plaintext
        )
        self.send_seq += 1
        return record

    def open(self, record: bytes) -> bytes:
        """Open the peer's record at the next expected receive sequence.

        The expected sequence advances only on success, so a tampered or
        replayed record does not desynchronise an honest retry.
        """
        assert self._recv_keys is not None
        plaintext = open_record(
            self._recv_keys, self.channel_id, self.epoch, self.recv_seq, record
        )
        self.recv_seq += 1
        return plaintext


# -- server-side state ---------------------------------------------------------


@dataclass(frozen=True)
class ChannelPolicy:
    """The server's channel admission, quota and key-rotation knobs."""

    #: Records one key epoch may carry before a rekey is demanded.
    max_messages_per_key: int = 1024
    #: Plaintext bytes one key epoch may carry before a rekey is demanded.
    max_bytes_per_key: int = 1 << 20
    #: Seconds a channel may sit unused before idle eviction.
    idle_seconds: float = 60.0
    #: Open channels one client (connection) may hold.
    max_channels_per_client: int = 64
    #: Open channels across all clients — hard admission control.
    max_channels_total: int = 4096
    #: Token-bucket burst capacity per client (opens and records both draw).
    bucket_capacity: float = 256.0
    #: Token-bucket refill rate per client, tokens per second.
    bucket_refill_per_second: float = 512.0


class TokenBucket:
    """A per-client token bucket: capacity-bounded, continuously refilled.

    The service-shaped admission primitive: every channel open and every
    record draws one token; an empty bucket answers
    :class:`~repro.errors.QuotaError` (an explicit ``ERR_OVER_QUOTA`` frame
    on the wire) until the refill catches up.  ``clock`` is injectable so
    tests control time.
    """

    def __init__(
        self,
        capacity: float,
        refill_per_second: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._clock = clock
        self._tokens = self.capacity
        self._updated = clock()

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(
            self.capacity, self._tokens + elapsed * self.refill_per_second
        )

    def try_take(self, tokens: float = 1.0) -> bool:
        """Draw ``tokens`` if available; False (and no draw) otherwise."""
        self._refill()
        if self._tokens < tokens:
            return False
        self._tokens -= tokens
        return True


@dataclass
class ServerChannel:
    """One open channel's server-side state."""

    client: str
    scheme_name: str
    crypto: ChannelCrypto
    opened_at: float
    last_used: float
    #: Records carried under the current key epoch.
    messages_since_rekey: int = 0
    #: Plaintext bytes carried under the current key epoch.
    bytes_since_rekey: int = 0
    rekeys: int = 0
    messages: int = 0

    def key_budget_exhausted(self, policy: ChannelPolicy) -> bool:
        return (
            self.messages_since_rekey >= policy.max_messages_per_key
            or self.bytes_since_rekey >= policy.max_bytes_per_key
        )

    def record_message(self, body_bytes: int, now: float) -> None:
        self.messages += 1
        self.messages_since_rekey += 1
        self.bytes_since_rekey += body_bytes
        self.last_used = now

    def rekeyed(self, secret: bytes, now: float) -> None:
        self.crypto.rekey(secret)
        self.messages_since_rekey = 0
        self.bytes_since_rekey = 0
        self.rekeys += 1
        self.last_used = now


@dataclass
class ChannelTableStats:
    """Serving counters for the channel layer, reported in BENCH meta."""

    opened: int = 0
    closed: int = 0
    messages: int = 0
    rekeys: int = 0
    evicted_idle: int = 0
    evicted_hostile: int = 0
    rejected_quota: int = 0
    rekey_required: int = 0


class ChannelTable:
    """Every open channel on one server, with admission and quota policy.

    Keys are ``(client, channel id)`` — a channel belongs to the connection
    that opened it and dies with it (:meth:`drop_client`).  All refusals are
    typed exceptions the connection handler maps onto explicit error
    frames; the table never silently drops state a peer still believes in,
    except idle eviction, which the peer discovers through an explicit
    ``ERR_NO_CHANNEL`` on next use.
    """

    def __init__(
        self,
        policy: Optional[ChannelPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy or ChannelPolicy()
        self._clock = clock
        self._channels: Dict[Tuple[str, bytes], ServerChannel] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._per_client: Dict[str, int] = {}
        self.stats = ChannelTableStats()

    def __len__(self) -> int:
        return len(self._channels)

    def now(self) -> float:
        """The table's notion of time (the injected clock)."""
        return self._clock()

    def take_token(self, client: str) -> None:
        """Draw one request token; :class:`~repro.errors.QuotaError` when empty."""
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(
                self.policy.bucket_capacity,
                self.policy.bucket_refill_per_second,
                clock=self._clock,
            )
            self._buckets[client] = bucket
        if not bucket.try_take():
            self.stats.rejected_quota += 1
            raise QuotaError(
                f"client {client} exhausted its request tokens "
                f"(capacity {self.policy.bucket_capacity:g}, refill "
                f"{self.policy.bucket_refill_per_second:g}/s); retry shortly"
            )

    def admit(
        self, client: str, channel_id: bytes, scheme_name: str, secret: bytes
    ) -> ServerChannel:
        """Open a channel; raises :class:`~repro.errors.QuotaError` at a cap."""
        self.evict_idle()
        key = (client, channel_id)
        if key in self._channels:
            raise ProtocolError(
                f"channel {channel_id.hex()} is already open on this connection"
            )
        if self._per_client.get(client, 0) >= self.policy.max_channels_per_client:
            self.stats.rejected_quota += 1
            raise QuotaError(
                f"client {client} is at its channel cap "
                f"({self.policy.max_channels_per_client})"
            )
        if len(self._channels) >= self.policy.max_channels_total:
            self.stats.rejected_quota += 1
            raise QuotaError(
                f"server is at its channel cap ({self.policy.max_channels_total})"
            )
        now = self._clock()
        channel = ServerChannel(
            client=client,
            scheme_name=scheme_name,
            crypto=ChannelCrypto(
                secret, channel_id, SERVER_TO_CLIENT, CLIENT_TO_SERVER
            ),
            opened_at=now,
            last_used=now,
        )
        self._channels[key] = channel
        self._per_client[client] = self._per_client.get(client, 0) + 1
        self.stats.opened += 1
        return channel

    def get(self, client: str, channel_id: bytes) -> ServerChannel:
        """The open channel, or :class:`~repro.errors.UnknownChannelError`.

        Idle channels are evicted lazily here, so an abandoned channel's
        next use reports ``ERR_NO_CHANNEL`` instead of serving on keys the
        policy already expired.
        """
        key = (client, channel_id)
        channel = self._channels.get(key)
        if channel is not None and (
            self._clock() - channel.last_used > self.policy.idle_seconds
        ):
            self._remove(key)
            self.stats.evicted_idle += 1
            channel = None
        if channel is None:
            raise UnknownChannelError(
                f"no open channel {channel_id.hex()} (never opened, closed, "
                f"or evicted idle)"
            )
        return channel

    def require_key_budget(self, channel: ServerChannel) -> None:
        """Demand a rekey once the epoch's message/byte budget is spent."""
        if channel.key_budget_exhausted(self.policy):
            self.stats.rekey_required += 1
            raise RekeyRequiredError(
                f"key epoch {channel.crypto.epoch} carried "
                f"{channel.messages_since_rekey} records / "
                f"{channel.bytes_since_rekey} bytes; rekey before sending more"
            )

    def close(self, client: str, channel_id: bytes) -> None:
        if self._remove((client, channel_id)):
            self.stats.closed += 1

    def evict_hostile(self, client: str, channel_id: bytes) -> None:
        """Tear down a channel that produced a tampered or replayed record."""
        if self._remove((client, channel_id)):
            self.stats.evicted_hostile += 1

    def drop_client(self, client: str) -> int:
        """Remove every channel (and the bucket) of a departing connection."""
        keys = [key for key in self._channels if key[0] == client]
        for key in keys:
            self._remove(key)
        self._buckets.pop(client, None)
        self._per_client.pop(client, None)
        return len(keys)

    def evict_idle(self) -> int:
        """Sweep every channel idle past the policy limit."""
        now = self._clock()
        stale = [
            key
            for key, channel in self._channels.items()
            if now - channel.last_used > self.policy.idle_seconds
        ]
        for key in stale:
            self._remove(key)
            self.stats.evicted_idle += 1
        return len(stale)

    def _remove(self, key: Tuple[str, bytes]) -> bool:
        channel = self._channels.pop(key, None)
        if channel is None:
            return False
        client = key[0]
        remaining = self._per_client.get(client, 1) - 1
        if remaining > 0:
            self._per_client[client] = remaining
        else:
            self._per_client.pop(client, None)
        return True
