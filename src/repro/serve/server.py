"""The asyncio TCP server: connections in the loop, arithmetic in the pool.

One :class:`ServeServer` binds a host/port, accepts any number of
connections, and keeps a :class:`~repro.serve.session.ConnectionSession`
per connection.  The handler is IO-only: it reads frames, enforces the
handshake state machine (version check → ``HELLO`` negotiation → operation
requests), checks the negotiated scheme's capabilities, and submits every
operation to the shared :class:`~repro.serve.scheduler.BatchScheduler` —
requests from *different connections* to the same scheme therefore merge
into the same server-side batches, which is the whole point of terminating
many small clients on one process.

Error discipline, per connection:

* a **version mismatch** or **framing violation** (truncated frame,
  oversized length) answers with ``OP_ERROR`` where possible and closes
  that connection; the server and every other connection keep running;
* an **application error** (unknown scheme, missing capability, malformed
  scheme payload) answers with ``OP_ERROR`` and keeps the connection open;
* a **full queue** answers with ``OP_OVERLOADED`` — the bounded-queue
  backpressure made visible to the peer.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Sequence, Tuple

from repro.errors import (
    OverloadedError,
    ParameterError,
    ProtocolError,
    QuotaError,
    RekeyRequiredError,
    ReplayError,
    TamperedRecordError,
    UnavailableError,
    UnknownChannelError,
)
from repro.serve import protocol
from repro.serve.channel import ChannelPolicy, ChannelTable
from repro.serve.protocol import (
    ERR_IDLE_TIMEOUT,
    ERR_NO_CHANNEL,
    ERR_NO_SESSION,
    ERR_OVER_QUOTA,
    ERR_REKEY_REQUIRED,
    ERR_REPLAY,
    ERR_TAMPERED,
    ERR_UNAVAILABLE,
    ERR_UNKNOWN_OPCODE,
    ERR_UNKNOWN_SCHEME,
    ERR_UNSUPPORTED,
    ERR_VERSION,
    OP_CHAN_ACCEPT,
    OP_CHAN_CLOSE,
    OP_CHAN_CLOSED,
    OP_CHAN_MSG,
    OP_CHAN_OPEN,
    OP_CHAN_REKEY,
    OP_CHAN_REKEYED,
    OP_CHAN_REPLY,
    OP_ERROR,
    OP_HELLO,
    OP_OVERLOADED,
    OP_WELCOME,
    PROTOCOL_VERSION,
    CHANNEL_OPS,
    Frame,
    pack_channel,
    pack_error,
    pack_welcome,
    parse_channel,
    read_frame,
    write_frame,
)
from repro.serve.scheduler import BatchScheduler, SchemeHost
from repro.serve.session import (
    CAPABILITY_BY_KIND,
    CHANNEL_SECRET_KIND,
    KIND_BY_OPCODE,
    ConnectionSession,
)

__all__ = ["ServeServer"]


class ServeServer:
    """A multi-scheme PKC server over the framed wire protocol."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        schemes: Optional[Sequence[str]] = None,
        backend: Optional[str] = None,
        executor: str = "thread",
        workers: Optional[int] = None,
        max_batch: int = 32,
        queue_size: int = 256,
        rng=None,
        reuse_port: bool = False,
        preset_keys=None,
        idle_timeout: Optional[float] = None,
        channel_policy: Optional[ChannelPolicy] = None,
    ):
        self.bind_host = host
        self.bind_port = port
        self.reuse_port = reuse_port
        self.scheme_host = SchemeHost(
            schemes=schemes, backend=backend, rng=rng, preset_keys=preset_keys
        )
        self.scheduler = BatchScheduler(
            self.scheme_host,
            executor=executor,
            workers=workers,
            max_batch=max_batch,
            queue_size=queue_size,
        )
        #: Seconds a connection may sit without a frame before the server
        #: answers an explicit ``ERR_IDLE_TIMEOUT`` and closes it — without
        #: this, abandoned connections hold ConnectionSession (and channel)
        #: state forever.  ``None`` disables the timeout.
        self.idle_timeout = idle_timeout
        #: Every open stateful channel, with quota/rekey/idle policy.
        self.channels = ChannelTable(channel_policy)
        self._server: Optional["asyncio.base_events.Server"] = None
        self._connection_tasks: set = set()
        self._draining = False
        #: Requests currently between scheduler submission and the response
        #: write — what a graceful drain must wait out before closing.
        self._inflight = 0
        self.connections = 0
        self.protocol_errors = 0
        self.idle_closes = 0

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound ``(host, port)`` (port 0 resolves at start)."""
        if self._server is None:
            raise ParameterError("server is not running")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> Tuple[str, int]:
        """Start the scheduler and bind the listening socket."""
        await self.scheduler.start()
        self._draining = False
        kwargs = {}
        if self.reuse_port:
            # SO_REUSEPORT lets N worker processes share one listen port
            # with kernel connection balancing — the cluster's shared-
            # nothing scale-out path.  Only passed when requested so
            # platforms without the option keep working.
            kwargs["reuse_port"] = True
        self._server = await asyncio.start_server(
            self._handle_connection, self.bind_host, self.bind_port, **kwargs
        )
        return self.address

    async def stop(self, drain: bool = False) -> None:
        """Stop serving.  ``drain=True`` is the graceful path: stop
        accepting, answer every request already submitted (explicit
        ``ERR_UNAVAILABLE`` frames for anything arriving afterwards), flush
        the responses, then close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            self._draining = True
            await self.scheduler.stop(drain=True)
            # The scheduler resolved every accepted future; wait until the
            # connection handlers have written those responses out.
            while self._inflight:
                await asyncio.sleep(0.005)
        # Handler tasks may still be parked on reads whose EOF the loop has
        # not processed yet; cancel and await them so shutdown is silent.
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        if not drain:
            await self.scheduler.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "ServeServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- per-connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        peername = writer.get_extra_info("peername")
        self.connections += 1
        session = ConnectionSession(
            peer=str(peername),
            backend=self.scheme_host.backend,
            client_id=f"{peername}#{self.connections}",
        )
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        try:
            while True:
                try:
                    if self.idle_timeout is not None:
                        frame = await asyncio.wait_for(
                            read_frame(reader), timeout=self.idle_timeout
                        )
                    else:
                        frame = await read_frame(reader)
                except asyncio.TimeoutError:
                    # An abandoned connection must not hold session and
                    # channel state forever: answer with an explicit error
                    # frame — never a silent close — and let the ``finally``
                    # below reclaim everything this connection owned.
                    self.idle_closes += 1
                    session.errors += 1
                    await self._best_effort_error(
                        writer,
                        ERR_IDLE_TIMEOUT,
                        f"no frame for {self.idle_timeout:g}s; closing",
                    )
                    return
                except ProtocolError as exc:
                    # Framing violation (oversized length, drop mid-frame):
                    # fatal for this connection only.
                    self.protocol_errors += 1
                    session.errors += 1
                    await self._best_effort_error(
                        writer, protocol.ERR_BAD_REQUEST, str(exc)
                    )
                    return
                if frame is None:  # clean EOF at a frame boundary
                    return
                if not await self._handle_frame(session, writer, frame):
                    return
        except (ConnectionResetError, BrokenPipeError):  # peer vanished
            pass
        except asyncio.CancelledError:  # server shutdown; close below
            pass
        finally:
            if task is not None:
                self._connection_tasks.discard(task)
            self.channels.drop_client(session.client_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_frame(
        self,
        session: ConnectionSession,
        writer: "asyncio.StreamWriter",
        frame: Frame,
    ) -> bool:
        """Process one frame; return False when the connection must close."""
        session.requests += 1
        if frame.version != PROTOCOL_VERSION:
            self.protocol_errors += 1
            session.errors += 1
            await self._best_effort_error(
                writer,
                ERR_VERSION,
                f"server speaks version {PROTOCOL_VERSION}, got {frame.version}",
            )
            return False  # nothing after a version mismatch can be trusted

        if self._draining:
            # Stopped accepting: everything already submitted still gets its
            # response, but new work — handshakes included — is refused with
            # an explicit frame, never a silently closed connection.
            session.errors += 1
            await self._best_effort_error(
                writer, ERR_UNAVAILABLE, "server is draining; reconnect"
            )
            return False

        if frame.opcode == OP_HELLO:
            return await self._handle_hello(session, writer, frame)

        if frame.opcode in CHANNEL_OPS:
            return await self._handle_channel_frame(session, writer, frame)

        kind = KIND_BY_OPCODE.get(frame.opcode)
        if kind is None:
            session.errors += 1
            await write_frame(
                writer,
                OP_ERROR,
                pack_error(ERR_UNKNOWN_OPCODE, f"opcode 0x{frame.opcode:02x}"),
            )
            return True
        if not session.negotiated:
            session.errors += 1
            await write_frame(
                writer, OP_ERROR, pack_error(ERR_NO_SESSION, "HELLO first")
            )
            return True

        scheme = self.scheme_host.scheme(session.scheme_name)
        if CAPABILITY_BY_KIND[kind] not in scheme.capabilities:
            session.errors += 1
            await write_frame(
                writer,
                OP_ERROR,
                pack_error(
                    ERR_UNSUPPORTED, f"{scheme.name} does not implement {kind}"
                ),
            )
            return True

        self._inflight += 1
        try:
            try:
                ok, code, payload = await self.scheduler.submit(
                    session.scheme_name, kind, frame.payload
                )
            except OverloadedError as exc:
                session.errors += 1
                await write_frame(writer, OP_OVERLOADED, str(exc).encode("utf-8"))
                return True
            except UnavailableError as exc:
                # Graceful drain: the request was *not* accepted; tell the
                # peer explicitly so it reconnects to a live worker, then
                # close this connection.
                session.errors += 1
                await self._best_effort_error(writer, ERR_UNAVAILABLE, str(exc))
                return False
            if ok:
                session.responses += 1
                await write_frame(writer, code, payload)
            else:
                session.errors += 1
                await write_frame(
                    writer, OP_ERROR, pack_error(code, payload.decode("utf-8", "replace"))
                )
            return True
        finally:
            self._inflight -= 1

    async def _handle_hello(
        self,
        session: ConnectionSession,
        writer: "asyncio.StreamWriter",
        frame: Frame,
    ) -> bool:
        name = frame.payload.decode("utf-8", errors="replace")
        if not self.scheme_host.allowed(name):
            session.errors += 1
            await write_frame(
                writer,
                OP_ERROR,
                pack_error(
                    ERR_UNKNOWN_SCHEME,
                    f"unknown scheme {name!r}; serving: "
                    f"{', '.join(self.scheme_host.scheme_names())}",
                ),
            )
            return True  # the peer may retry with a served scheme
        # The long-lived key may not exist yet; creating it is the one
        # potentially slow step of the handshake (e.g. lazy RSA keygen), so
        # it runs in the pool, not on the loop.
        try:
            key = await asyncio.get_running_loop().run_in_executor(
                None, self.scheme_host.server_key, name
            )
        except ParameterError as exc:
            # Allowlisted but unknown to the registry (a configuration
            # typo): still an explicit error frame, never a dropped
            # connection.
            session.errors += 1
            await write_frame(
                writer, OP_ERROR, pack_error(ERR_UNKNOWN_SCHEME, str(exc))
            )
            return True
        session.scheme_name = name
        await write_frame(writer, OP_WELCOME, pack_welcome(name, key.public_wire))
        return True

    # -- stateful channels --------------------------------------------------------
    #
    # The channel layer's split of labour: the *handshake* (a full public-key
    # operation) rides the scheduler — concurrent CHAN_OPENs for one scheme
    # coalesce into the same key_agreement_many batches as one-shot KA_INIT
    # requests — while *records* (XOR keystream + HMAC tag, microseconds)
    # execute inline on the loop.  Every refusal is an explicit typed error
    # frame: quota and admission -> ERR_OVER_QUOTA, exhausted key budget ->
    # ERR_REKEY_REQUIRED, replay/tamper -> ERR_REPLAY/ERR_TAMPERED (and the
    # channel is torn down), unknown or idle-evicted id -> ERR_NO_CHANNEL.

    async def _handle_channel_frame(
        self,
        session: ConnectionSession,
        writer: "asyncio.StreamWriter",
        frame: Frame,
    ) -> bool:
        if not session.negotiated:
            session.errors += 1
            await write_frame(
                writer, OP_ERROR, pack_error(ERR_NO_SESSION, "HELLO first")
            )
            return True
        try:
            channel_id, blob = parse_channel(frame.payload)
        except ProtocolError as exc:
            session.errors += 1
            await write_frame(
                writer, OP_ERROR, pack_error(protocol.ERR_BAD_REQUEST, str(exc))
            )
            return True
        handler = {
            OP_CHAN_OPEN: self._handle_channel_open,
            OP_CHAN_MSG: self._handle_channel_msg,
            OP_CHAN_REKEY: self._handle_channel_rekey,
            OP_CHAN_CLOSE: self._handle_channel_close,
        }[frame.opcode]
        try:
            return await handler(session, writer, channel_id, blob)
        except QuotaError as exc:
            session.errors += 1
            await write_frame(
                writer, OP_ERROR, pack_error(ERR_OVER_QUOTA, str(exc))
            )
            return True
        except UnknownChannelError as exc:
            session.errors += 1
            await write_frame(
                writer, OP_ERROR, pack_error(ERR_NO_CHANNEL, str(exc))
            )
            return True
        except RekeyRequiredError as exc:
            session.errors += 1
            await write_frame(
                writer, OP_ERROR, pack_error(ERR_REKEY_REQUIRED, str(exc))
            )
            return True
        except TamperedRecordError as exc:
            session.errors += 1
            self.channels.evict_hostile(session.client_id, channel_id)
            await write_frame(
                writer, OP_ERROR, pack_error(ERR_TAMPERED, str(exc))
            )
            return True
        except ReplayError as exc:
            session.errors += 1
            self.channels.evict_hostile(session.client_id, channel_id)
            await write_frame(writer, OP_ERROR, pack_error(ERR_REPLAY, str(exc)))
            return True
        except ProtocolError as exc:
            session.errors += 1
            await write_frame(
                writer, OP_ERROR, pack_error(protocol.ERR_BAD_REQUEST, str(exc))
            )
            return True

    async def _channel_secret(
        self,
        session: ConnectionSession,
        writer: "asyncio.StreamWriter",
        kex: bytes,
    ) -> Optional[bytes]:
        """Run the handshake's public-key half through the scheduler.

        Returns the raw bootstrap secret, or ``None`` after an error frame
        has already been written (the caller just returns ``True``).
        Overload and drain keep their one-shot semantics: an explicit
        ``OP_OVERLOADED`` / ``ERR_UNAVAILABLE`` frame, never a silent drop.
        """
        self._inflight += 1
        try:
            try:
                ok, code, payload = await self.scheduler.submit(
                    session.scheme_name, CHANNEL_SECRET_KIND, kex
                )
            except OverloadedError as exc:
                session.errors += 1
                await write_frame(writer, OP_OVERLOADED, str(exc).encode("utf-8"))
                return None
            except UnavailableError as exc:
                session.errors += 1
                await self._best_effort_error(writer, ERR_UNAVAILABLE, str(exc))
                return None
            if not ok:
                session.errors += 1
                await write_frame(
                    writer,
                    OP_ERROR,
                    pack_error(code, payload.decode("utf-8", "replace")),
                )
                return None
            return payload
        finally:
            self._inflight -= 1

    async def _handle_channel_open(
        self,
        session: ConnectionSession,
        writer: "asyncio.StreamWriter",
        channel_id: bytes,
        kex: bytes,
    ) -> bool:
        scheme = self.scheme_host.scheme(session.scheme_name)
        if not {"key-agreement", "encryption"} & set(scheme.capabilities):
            session.errors += 1
            await write_frame(
                writer,
                OP_ERROR,
                pack_error(
                    ERR_UNSUPPORTED,
                    f"{scheme.name} can bootstrap no channel (needs "
                    f"key agreement or encryption)",
                ),
            )
            return True
        # Admission control *before* the expensive public-key operation: an
        # over-quota client must not be able to spend server exponentiations.
        self.channels.take_token(session.client_id)
        secret = await self._channel_secret(session, writer, kex)
        if secret is None:
            return True
        self.channels.admit(
            session.client_id, channel_id, session.scheme_name, secret
        )
        session.responses += 1
        await write_frame(
            writer,
            OP_CHAN_ACCEPT,
            pack_channel(channel_id, protocol.confirmation_tag(secret)),
        )
        return True

    async def _handle_channel_msg(
        self,
        session: ConnectionSession,
        writer: "asyncio.StreamWriter",
        channel_id: bytes,
        record: bytes,
    ) -> bool:
        channel = self.channels.get(session.client_id, channel_id)
        self.channels.take_token(session.client_id)
        self.channels.require_key_budget(channel)
        plaintext = channel.crypto.open(record)
        channel.record_message(len(plaintext), self.channels.now())
        self.channels.stats.messages += 1
        session.responses += 1
        reply = channel.crypto.seal(protocol.plaintext_digest(plaintext))
        await write_frame(writer, OP_CHAN_REPLY, pack_channel(channel_id, reply))
        return True

    async def _handle_channel_rekey(
        self,
        session: ConnectionSession,
        writer: "asyncio.StreamWriter",
        channel_id: bytes,
        record: bytes,
    ) -> bool:
        channel = self.channels.get(session.client_id, channel_id)
        self.channels.take_token(session.client_id)
        # The fresh key-exchange material arrives *inside* the channel — a
        # sealed record under the current epoch, so only the peer that owns
        # the channel can rotate its keys.
        kex = channel.crypto.open(record)
        secret = await self._channel_secret(session, writer, kex)
        if secret is None:
            return True
        # Acknowledge under the *old* epoch (consuming a send sequence),
        # then switch: the client opens the ack with the keys it still
        # holds, checks the confirmation tag, and switches too.
        ack = channel.crypto.seal(protocol.confirmation_tag(secret))
        channel.rekeyed(secret, self.channels.now())
        self.channels.stats.rekeys += 1
        session.responses += 1
        await write_frame(writer, OP_CHAN_REKEYED, pack_channel(channel_id, ack))
        return True

    async def _handle_channel_close(
        self,
        session: ConnectionSession,
        writer: "asyncio.StreamWriter",
        channel_id: bytes,
        record: bytes,
    ) -> bool:
        channel = self.channels.get(session.client_id, channel_id)
        channel.crypto.open(record)  # authenticated close; empty body
        self.channels.close(session.client_id, channel_id)
        session.responses += 1
        await write_frame(writer, OP_CHAN_CLOSED, pack_channel(channel_id))
        return True

    async def _best_effort_error(
        self, writer: "asyncio.StreamWriter", code: int, detail: str
    ) -> None:
        try:
            await write_frame(writer, OP_ERROR, pack_error(code, detail))
        except (ConnectionResetError, BrokenPipeError, OSError):  # peer gone
            pass
