"""The request scheduler: bounded queue, same-scheme batching, worker pool.

The server's event loop must never run group arithmetic — a single 1024-bit
RSA decryption would stall every connection for tens of milliseconds.  The
scheduler is the boundary: connection handlers :meth:`~BatchScheduler.submit`
decoded requests into one **bounded** queue (a full queue raises
:class:`~repro.errors.OverloadedError` immediately — explicit backpressure,
never unbounded buffering), and a dispatcher drains the queue in rounds,
groups what it drained by ``(scheme, backend, kind)`` and ships each group
to a worker pool as **one batch**.

Batching is where the offline harness's amortisation argument carries over
to the online path: a batch executes as a single loop of
:func:`repro.serve.session.serve_request` calls over one warm scheme
instance, so the fixed-base generator tables and the long-lived server key
are touched exactly as in ``run_batch`` — per-request cost approaches the
offline steady state as batches fill.  A per-group lock keeps two batches
of the same group from running concurrently (scheme instances cache state
and are not reentrant); *different* schemes run in parallel across the
pool.

Two executors are supported: ``"thread"`` (default — shares the registry's
warm instances, no serialisation cost) and ``"process"`` (sidesteps the
GIL for multi-core serving; the server key pair is pickled to the workers,
which resolve their own scheme instances from the registry, exactly like
``run_batch_parallel``'s workers).  Both respect the field backend the
host was built with, so ``REPRO_FIELD_BACKEND=montgomery`` steers the
online path onto the resident-Montgomery substrate like every other layer.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import hashlib
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    OverloadedError,
    ParameterError,
    ProtocolError,
    ReproError,
    UnavailableError,
    UnsupportedOperationError,
)
from repro.serve.protocol import ERR_BAD_REQUEST, ERR_INTERNAL, ERR_UNSUPPORTED
from repro.serve.session import BatchItemFailure, serve_request, serve_request_batch

__all__ = [
    "SchemeHost",
    "GroupStats",
    "SchedulerStats",
    "BatchScheduler",
    "classify_error",
]


class SchemeHost:
    """Long-lived scheme instances and server key pairs, shared and thread-safe.

    One host backs one server: it pins the field backend (resolved once,
    ``REPRO_FIELD_BACKEND`` honoured), optionally restricts the registry to
    an allowlist, and creates each scheme's long-lived server key pair
    lazily on first use — the fixed cost every later batch amortises.  An
    injected seeded ``rng`` makes the server keys reproducible for tests.
    """

    def __init__(
        self,
        schemes: Optional[Sequence[str]] = None,
        backend: Optional[str] = None,
        rng=None,
        preset_keys: "Optional[Dict[str, Any]]" = None,
    ):
        from repro.field.backend import default_backend_name

        self.backend = default_backend_name(backend)
        self._allow = frozenset(schemes) if schemes is not None else None
        self._rng = rng
        # ``preset_keys`` installs externally created long-lived key pairs
        # (scheme name -> SchemeKeyPair).  Cluster workers receive the
        # supervisor's keys this way so every worker advertises the *same*
        # server identity — a client failing over to another worker keeps a
        # valid cached public key.
        self._keys: Dict[str, Any] = dict(preset_keys) if preset_keys else {}
        self._pickled_keys: Dict[str, bytes] = {}
        # Key creation is locked *per scheme*: a slow first keygen (RSA's
        # lazy key material) must never block another scheme's cached-key
        # lookup — the event loop touches this from _run_batch.
        self._scheme_locks: Dict[str, threading.Lock] = {}
        self._lock = threading.Lock()

    def allowed(self, name: str) -> bool:
        from repro.pkc.registry import available_schemes

        if self._allow is not None:
            return name in self._allow
        return name in available_schemes()

    def scheme_names(self) -> Tuple[str, ...]:
        from repro.pkc.registry import available_schemes

        names = available_schemes()
        if self._allow is not None:
            names = tuple(name for name in names if name in self._allow)
        return names

    def scheme(self, name: str):
        """The warm registry instance for ``name`` on this host's backend."""
        from repro.pkc.registry import get_scheme

        if not self.allowed(name):
            raise ParameterError(
                f"scheme {name!r} is not served here; available: {list(self.scheme_names())}"
            )
        return get_scheme(name, backend=self.backend)

    def server_key(self, name: str):
        """The long-lived server key pair for ``name`` (created on first use)."""
        with self._lock:
            key = self._keys.get(name)
            if key is not None:
                return key
            scheme_lock = self._scheme_locks.setdefault(name, threading.Lock())
        with scheme_lock:  # only first use of *this* scheme pays the keygen
            with self._lock:
                key = self._keys.get(name)
            if key is None:
                key = self.scheme(name).keygen(self._rng)
                with self._lock:
                    self._keys[name] = key
            return key

    def pickled_server_key(self, name: str) -> bytes:
        """The server key pair serialised once for process-pool workers."""
        with self._lock:
            pickled = self._pickled_keys.get(name)
            if pickled is not None:
                return pickled
        pickled = pickle.dumps(self.server_key(name))  # audit: allow[CT104] the designed hand-off: workers in the process pool need the key material
        with self._lock:
            self._pickled_keys[name] = pickled
            return self._pickled_keys[name]


def classify_error(exc: BaseException) -> Tuple[int, str]:
    """Map an exception from request execution onto a wire error code."""
    if isinstance(exc, UnsupportedOperationError):
        return ERR_UNSUPPORTED, str(exc)
    if isinstance(exc, (ReproError, ValueError)):
        # Scheme-level rejections of malformed input (bad point, bad
        # ciphertext, wrong length, protocol parse failures) are the
        # client's fault, not the server's.
        return ERR_BAD_REQUEST, str(exc)
    return ERR_INTERNAL, f"{type(exc).__name__}: {exc}"


#: One executed request: ``(ok, opcode-or-error-code, payload bytes)``.
_BatchItemResult = Tuple[bool, int, bytes]


def _execute_batch(
    scheme, server_key, kind: str, payloads: Sequence[bytes]
) -> Tuple[List[_BatchItemResult], float, bool, int]:
    """Run one same-group batch synchronously; returns results, busy seconds,
    whether the batch executed coalesced, and how many per-item results were
    salvaged from a partially-failed coalesced attempt.

    Multi-request groups first try the coalesced path
    (:func:`repro.serve.session.serve_request_batch`), which collects the
    group's pending modular inversions into one batch inversion per round
    and routes key agreements and signatures through the schemes' vectorised
    entry points.  On failure the batch falls back to the per-item loop, so
    per-item failures never poison the batch: each request answers
    individually (success frame or error frame), matching how the offline
    harness treats sessions as independent.  When the coalesced attempt
    failed partway through a per-item kind, the responses it already
    computed travel back in :class:`~repro.serve.session.BatchItemFailure`
    and are reused as-is — only the unresolved items re-execute.
    """
    started = time.perf_counter()
    partial: "Optional[list]" = None
    if len(payloads) > 1:
        try:
            responses = serve_request_batch(scheme, server_key, kind, payloads)
        except BatchItemFailure as exc:
            partial = exc.partial
        except Exception:  # noqa: BLE001 - re-run per item for exact frames
            pass
        else:
            results = [(True, opcode, response) for opcode, response in responses]
            return results, time.perf_counter() - started, True, 0
    results = []
    salvaged = 0
    for index, payload in enumerate(payloads):
        done = partial[index] if partial is not None and index < len(partial) else None
        if done is not None:
            results.append((True, done[0], done[1]))
            salvaged += 1
            continue
        try:
            opcode, response = serve_request(scheme, server_key, kind, payload)
            results.append((True, opcode, response))
        except Exception as exc:  # noqa: BLE001 - classified onto the wire
            code, detail = classify_error(exc)
            results.append((False, code, detail.encode("utf-8")))
    return results, time.perf_counter() - started, False, salvaged


#: Per-process cache of unpickled server keys, keyed by pickle digest, so a
#: process worker deserialises each long-lived key once, not once per batch.
_PROCESS_KEY_CACHE: Dict[bytes, Any] = {}


def _process_batch(
    scheme_name: str,
    backend: str,
    pickled_server_key: bytes,
    kind: str,
    payloads: Sequence[bytes],
) -> Tuple[List[_BatchItemResult], float, bool, int]:
    """Process-pool entry point: resolve locally, execute, return results.

    Mirrors ``run_batch_parallel``'s worker: the child resolves its own warm
    scheme instance from the registry (building its own fixed-base tables
    once), but — unlike the offline workers — it must serve with the *same*
    key pair the parent advertised in WELCOME, so the key crosses the
    process boundary by pickle.
    """
    from repro.pkc.registry import get_scheme

    digest = hashlib.sha256(pickled_server_key).digest()
    server_key = _PROCESS_KEY_CACHE.get(digest)
    if server_key is None:
        server_key = pickle.loads(pickled_server_key)
        _PROCESS_KEY_CACHE[digest] = server_key
    scheme = get_scheme(scheme_name, backend=backend)
    return _execute_batch(scheme, server_key, kind, payloads)


@dataclass
class GroupStats:
    """Serving counters for one ``(scheme, kind)`` request group."""

    served: int = 0
    errors: int = 0
    batches: int = 0
    #: Batches that executed on the coalesced path (shared batch inversion
    #: per group round) rather than the per-item loop.
    coalesced: int = 0
    #: Per-item responses reused from a partially-failed coalesced attempt
    #: instead of being executed a second time in the fallback loop.
    salvaged: int = 0
    #: Executor-side wall seconds actually spent executing this group's
    #: batches — the denominator of the batched server-side throughput.
    busy_seconds: float = 0.0
    largest_batch: int = 0

    @property
    def served_per_second(self) -> float:
        """Batched server-side throughput: requests per busy second."""
        return self.served / self.busy_seconds if self.busy_seconds > 0 else 0.0

    @property
    def requests_per_batch(self) -> float:
        return (self.served + self.errors) / self.batches if self.batches else 0.0


@dataclass
class SchedulerStats:
    """Aggregate and per-group scheduler counters."""

    submitted: int = 0
    rejected: int = 0
    served: int = 0
    errors: int = 0
    batches: int = 0
    groups: Dict[Tuple[str, str], GroupStats] = field(default_factory=dict)

    def group(self, scheme_name: str, kind: str) -> GroupStats:
        return self.groups.setdefault((scheme_name, kind), GroupStats())


@dataclass
class _WorkItem:
    group: Tuple[str, str]  # (scheme name, kind); the backend is host-wide
    payload: bytes
    future: "asyncio.Future"


class BatchScheduler:
    """Bounded-queue batching dispatcher over a thread or process pool."""

    def __init__(
        self,
        host: SchemeHost,
        executor: str = "thread",
        workers: Optional[int] = None,
        max_batch: int = 32,
        queue_size: int = 256,
    ):
        if executor not in ("thread", "process"):
            raise ParameterError(f"unknown executor kind {executor!r}")
        if max_batch < 1:
            raise ParameterError("max_batch must be at least 1")
        if queue_size < 1:
            raise ParameterError("queue_size must be at least 1")
        self.host = host
        self.executor_kind = executor
        self.workers = workers or min(4, os.cpu_count() or 1)
        self.max_batch = max_batch
        self.queue_size = queue_size
        self.stats = SchedulerStats()
        self._draining = False
        self._queue: "Optional[asyncio.Queue[_WorkItem]]" = None
        self._executor: Optional[concurrent.futures.Executor] = None
        self._dispatcher: Optional["asyncio.Task"] = None
        # Keyed by scheme name, not (scheme, kind): a scheme instance caches
        # state (lazy generator tables, Montgomery domains) and is not
        # guaranteed reentrant, so no two batches touching the same instance
        # may execute concurrently — whatever their kinds.
        self._scheme_batch_locks: Dict[str, "asyncio.Lock"] = {}
        self._group_tasks: set = set()

    async def start(self) -> None:
        if self._dispatcher is not None:
            raise ParameterError("scheduler already started")
        self._draining = False
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        if self.executor_kind == "process":
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
        else:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-serve"
            )
        self._dispatcher = asyncio.get_running_loop().create_task(self._dispatch_loop())

    async def stop(self, drain: bool = False) -> None:
        """Stop the scheduler; with ``drain=True``, answer everything first.

        A plain stop cancels whatever is still queued — acceptable only
        when the connection handlers awaiting those futures are being torn
        down in the same breath.  A *graceful drain* instead refuses new
        submissions (:class:`~repro.errors.UnavailableError`) and waits for
        every already-enqueued request to execute and resolve its future,
        so no accepted request ever dies with a silently closed connection.
        """
        if drain and self._queue is not None:
            self._draining = True
            # Every accepted item ends in ``served`` or ``errors`` (rejected
            # submissions never increment ``submitted``), so the pending
            # count is exact and race-free — the dispatcher never parks
            # drained items anywhere the counters cannot see.
            while self.stats.submitted > self.stats.served + self.stats.errors:
                await asyncio.sleep(0.005)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._group_tasks:
            await asyncio.gather(*self._group_tasks, return_exceptions=True)
        if self._queue is not None:
            while not self._queue.empty():
                item = self._queue.get_nowait()
                # Cancel, don't set_exception: the awaiting connection
                # handlers are already gone at shutdown, and a cancelled
                # future never logs "exception was never retrieved".
                item.future.cancel()
            self._queue = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def submit(
        self, scheme_name: str, kind: str, payload: bytes
    ) -> _BatchItemResult:
        """Queue one request; await its result.

        Raises :class:`~repro.errors.OverloadedError` *immediately* when the
        bounded queue is full — the connection handler turns that into an
        ``OP_OVERLOADED`` frame so the client sees explicit backpressure
        rather than unbounded latency — and
        :class:`~repro.errors.UnavailableError` once a graceful drain has
        begun (answered as an explicit ``ERR_UNAVAILABLE`` error frame, so
        the peer reconnects to a live worker instead of waiting).
        """
        if self._draining:
            raise UnavailableError("scheduler is draining; reconnect elsewhere")
        if self._queue is None:
            raise ParameterError("scheduler is not running")
        item = _WorkItem(
            group=(scheme_name, kind),
            payload=payload,
            future=asyncio.get_running_loop().create_future(),
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.stats.rejected += 1
            raise OverloadedError(
                f"request queue full ({self.queue_size} pending)"
            ) from None
        self.stats.submitted += 1
        return await item.future

    # -- dispatch ---------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Drain the queue in rounds; group and ship each round's requests."""
        assert self._queue is not None
        while True:
            first = await self._queue.get()
            round_items = [first]
            while len(round_items) < self.queue_size:
                try:
                    round_items.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            grouped: Dict[Tuple[str, str], List[_WorkItem]] = {}
            for item in round_items:
                grouped.setdefault(item.group, []).append(item)
            for group, items in grouped.items():
                # Batches honour max_batch; groups run as independent tasks
                # so one slow scheme never serialises the others.
                for start in range(0, len(items), self.max_batch):
                    batch = items[start : start + self.max_batch]
                    task = asyncio.get_running_loop().create_task(
                        self._run_batch(group, batch)
                    )
                    self._group_tasks.add(task)
                    task.add_done_callback(self._group_tasks.discard)

    async def _run_batch(
        self, group: Tuple[str, str], items: List[_WorkItem]
    ) -> None:
        scheme_name, kind = group
        lock = self._scheme_batch_locks.setdefault(scheme_name, asyncio.Lock())
        async with lock:  # same-scheme batches never run concurrently
            try:
                loop = asyncio.get_running_loop()
                # The key already exists (HELLO created it before any request
                # could be submitted), so these are cached lookups, and the
                # per-scheme creation lock means they can never stall the
                # event loop behind another scheme's slow first keygen.
                if self.executor_kind == "process":
                    self.host.scheme(scheme_name)  # validates the name
                    pickled_key = self.host.pickled_server_key(scheme_name)  # audit: allow[RC204] memoized after HELLO; steady state is a dict hit under a lock
                    results, busy, coalesced, salvaged = await loop.run_in_executor(
                        self._executor,
                        _process_batch,
                        scheme_name,
                        self.host.backend,
                        pickled_key,
                        kind,
                        [item.payload for item in items],
                    )
                else:
                    scheme = self.host.scheme(scheme_name)
                    server_key = self.host.server_key(scheme_name)  # audit: allow[RC204] memoized after HELLO; steady state is a dict hit under a lock
                    results, busy, coalesced, salvaged = await loop.run_in_executor(
                        self._executor,
                        _execute_batch,
                        scheme,
                        server_key,
                        kind,
                        [item.payload for item in items],
                    )
            except Exception as exc:  # noqa: BLE001 - fan the failure out
                code, detail = classify_error(exc)
                for item in items:
                    if not item.future.done():
                        item.future.set_result((False, code, detail.encode("utf-8")))
                stats = self.stats.group(scheme_name, kind)
                stats.errors += len(items)
                self.stats.errors += len(items)
                return
        stats = self.stats.group(scheme_name, kind)
        stats.batches += 1
        stats.coalesced += 1 if coalesced else 0
        stats.salvaged += salvaged
        stats.busy_seconds += busy
        stats.largest_batch = max(stats.largest_batch, len(items))
        self.stats.batches += 1
        for item, result in zip(items, results):
            ok = result[0]
            stats.served += 1 if ok else 0
            stats.errors += 0 if ok else 1
            self.stats.served += 1 if ok else 0
            self.stats.errors += 0 if ok else 1
            if not item.future.done():
                item.future.set_result(result)
