"""Session state and the canonical per-session protocol logic.

Two things live here, deliberately free of any import from ``repro.pkc`` so
the offline batch harness (:mod:`repro.pkc.bench`) can reuse them without an
import cycle:

* **Server-side request execution** — :func:`serve_request` maps one decoded
  request (a wire kind plus its payload bytes) onto the scheme's protocol
  API and returns the response ``(opcode, payload)``.  This is the unit the
  scheduler batches: a batch of same-scheme requests is one loop of
  :func:`serve_request` calls over a warm scheme instance, so fixed-base
  tables and long-lived key material are amortised exactly as in the
  offline harness.

* **Offline full-session runners** — :data:`OFFLINE_SESSION_RUNNERS` holds
  the canonical client+server round trip for each batch operation
  (key agreement: fresh client key, both derivations, checked equal;
  encryption: encrypt to the server, server opens, checked; signature:
  server signs, client verifies).  ``repro.pkc.bench.run_batch`` executes
  these; the load client in :mod:`repro.serve.client` performs the same
  steps with the server half on the far side of a socket, so "one session"
  means the same work online and offline.

:class:`ConnectionSession` is the per-connection state the server keeps:
which scheme the peer negotiated, and request/error counters for the
connection's lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ParameterError, ProtocolError
from repro.serve import protocol
from repro.serve.protocol import (
    OP_CIPHERTEXT,
    OP_DECRYPT,
    OP_ENCRYPT,
    OP_KA_CONFIRM,
    OP_KA_INIT,
    OP_PLAINTEXT_DIGEST,
    OP_SIGN,
    OP_SIGNATURE,
    OP_VERDICT,
    OP_VERIFY,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.exp.trace import OpTrace
    from repro.pkc.base import PkcScheme, SchemeKeyPair

__all__ = [
    "KIND_BY_OPCODE",
    "CAPABILITY_BY_KIND",
    "CHANNEL_SECRET_KIND",
    "BatchItemFailure",
    "ConnectionSession",
    "serve_request",
    "serve_request_batch",
    "offline_key_agreement_session",
    "offline_encryption_session",
    "offline_signature_session",
    "OFFLINE_SESSION_RUNNERS",
]

#: Wire kind of each operation-bearing client opcode.
KIND_BY_OPCODE = {
    OP_KA_INIT: "key-agreement",
    OP_ENCRYPT: "encrypt",
    OP_DECRYPT: "decrypt",
    OP_SIGN: "sign",
    OP_VERIFY: "verify",
}

#: Scheme capability (a ``repro.pkc.base`` constant value) each kind needs.
CAPABILITY_BY_KIND = {
    "key-agreement": "key-agreement",
    "encrypt": "encryption",
    "decrypt": "encryption",
    "sign": "signature",
    "verify": "signature",
}

#: The internal scheduler kind a ``CHAN_OPEN``/``CHAN_REKEY`` handshake
#: submits: the scheme's key agreement (or, for schemes without one, the
#: KEM-style decryption of a client-chosen seed) yielding the raw channel
#: bootstrap secret.  Never reachable from a wire opcode — the channel
#: handler derives keys from the result and only a confirmation tag
#: travels back to the peer.
CHANNEL_SECRET_KIND = "channel-secret"


class BatchItemFailure(Exception):
    """A per-item batch loop failed partway; carries the per-index partials.

    ``partial[i]`` is the completed ``(opcode, payload)`` response for every
    item that executed before the failure and ``None`` for the failing item
    and everything after it.  The scheduler reuses the completed slots and
    re-runs only the ``None`` slots individually, so one malformed request
    never costs the batch's already-finished work a second execution.
    """

    def __init__(self, partial):
        unresolved = sum(1 for entry in partial if entry is None)
        super().__init__(f"{unresolved} of {len(partial)} batch items unresolved")
        self.partial = partial


@dataclass
class ConnectionSession:
    """Per-connection state on the server."""

    peer: str
    scheme_name: str = ""
    backend: str = "plain"
    requests: int = 0
    responses: int = 0
    errors: int = 0
    #: Connection-unique id the server's channel table keys quotas by
    #: (distinct peers can share a ``peer`` string through NAT or port
    #: reuse; the server stamps an id of its own).
    client_id: str = ""

    @property
    def negotiated(self) -> bool:
        return bool(self.scheme_name)


def serve_request(
    scheme: "PkcScheme", server_key: "SchemeKeyPair", kind: str, payload: bytes
) -> Tuple[int, bytes]:
    """Execute one server-side request; return the response ``(opcode, payload)``.

    Pure and synchronous — this is the unit of CPU-bound work the scheduler
    ships to its executor, and the only place the wire kinds touch the
    scheme API.  Malformed payloads surface as the scheme's own exceptions
    (``ParameterError``, ``DecryptionError``...), which the caller maps to
    an error frame; ``verify`` keeps its report-``False``-never-raise
    contract and answers with a verdict byte instead.
    """
    if kind == "key-agreement":
        shared = scheme.key_agreement(server_key, payload)
        return OP_KA_CONFIRM, protocol.confirmation_tag(shared)
    if kind == CHANNEL_SECRET_KIND:
        # The channel bootstrap: the payload is key-agreement material for
        # KA-capable schemes, or a KEM ciphertext of a client-chosen seed
        # otherwise.  The raw secret travels back to the channel handler —
        # the one kind whose result is key material, not wire bytes.
        if "key-agreement" in scheme.capabilities:
            secret = scheme.key_agreement(server_key, payload)
        else:
            secret = scheme.decrypt(server_key, payload)
        return protocol.OP_CHAN_ACCEPT, secret
    if kind == "encrypt":
        return OP_CIPHERTEXT, scheme.encrypt(server_key.public_wire, payload)
    if kind == "decrypt":
        plaintext = scheme.decrypt(server_key, payload)
        return OP_PLAINTEXT_DIGEST, protocol.plaintext_digest(plaintext)
    if kind == "sign":
        return OP_SIGNATURE, scheme.sign(server_key, payload)
    if kind == "verify":
        message, signature = protocol.parse_verify(payload)
        accepted = scheme.verify(server_key.public_wire, message, signature)
        return OP_VERDICT, b"\x01" if accepted else b"\x00"
    raise ProtocolError(f"unknown request kind {kind!r}")


def serve_request_batch(
    scheme: "PkcScheme", server_key: "SchemeKeyPair", kind: str, payloads
) -> "list[Tuple[int, bytes]]":
    """Execute one same-kind batch coalesced; returns ``(opcode, payload)`` per item.

    Key-agreement batches route through the scheme's
    ``key_agreement_many`` — same wire bytes as N :func:`serve_request`
    calls, but the per-session modular inversions collapse to one per group
    round (Montgomery's trick, see
    :meth:`repro.field.backend.FieldOps.inv_many`).  Signature batches
    route through ``sign_many`` (RSA's CRT streams batch; randomized
    schemes keep the per-item loop and draw order inside the default).
    Other kinds loop :func:`serve_request`.

    Error semantics differ by path: the vectorised kinds are all-or-nothing
    (the first failing item raises the scheme's own exception for the whole
    batch), while the per-item loop raises :class:`BatchItemFailure`
    carrying the responses completed before the failure so the caller can
    reuse them and re-run only the unresolved items.
    """
    payloads = list(payloads)
    if kind == "key-agreement":
        return [
            (OP_KA_CONFIRM, protocol.confirmation_tag(shared))
            for shared in scheme.key_agreement_many(server_key, payloads)
        ]
    if kind == CHANNEL_SECRET_KIND and "key-agreement" in scheme.capabilities:
        # Channel handshakes coalesce exactly like one-shot key agreements:
        # one key_agreement_many call per batch, shared batch inversions,
        # fixed-base tables amortising across every concurrent CHAN_OPEN.
        # KEM-bootstrap schemes (no key agreement) fall through to the
        # per-item decrypt loop below.
        return [
            (protocol.OP_CHAN_ACCEPT, secret)
            for secret in scheme.key_agreement_many(server_key, payloads)
        ]
    if kind == "sign":
        return [
            (OP_SIGNATURE, signature)
            for signature in scheme.sign_many(server_key, payloads)
        ]
    results = []
    for index, payload in enumerate(payloads):
        try:
            results.append(serve_request(scheme, server_key, kind, payload))
        except Exception as exc:  # noqa: BLE001 - partials travel with it
            raise BatchItemFailure(
                results + [None] * (len(payloads) - index)
            ) from exc
    return results


# -- the canonical offline sessions -------------------------------------------
#
# One function per batch operation, each returning the protocol bytes that
# crossed the (notional) wire.  ``repro.pkc.bench.run_batch`` is a timed loop
# over these; the online load client performs the same steps per session.


def offline_key_agreement_session(
    scheme: "PkcScheme",
    server: "SchemeKeyPair",
    rng: "Optional[random.Random]" = None,
    payload: bytes = b"",
    index: int = 0,
    trace: "Optional[OpTrace]" = None,
) -> int:
    """Fresh client key, both derivations (checked equal).  Wire: one public each way."""
    client = scheme.keygen(rng, trace=trace)
    client_key = scheme.key_agreement(client, server.public_wire, trace=trace)
    server_key = scheme.key_agreement(server, client.public_wire, trace=trace)
    if not protocol.constant_time_equal(client_key, server_key):
        raise ParameterError(f"{scheme.name}: key agreement mismatch")  # pragma: no cover
    return len(client.public_wire) + len(server.public_wire)


def offline_encryption_session(
    scheme: "PkcScheme",
    server: "SchemeKeyPair",
    rng: "Optional[random.Random]" = None,
    payload: bytes = b"",
    index: int = 0,
    trace: "Optional[OpTrace]" = None,
) -> int:
    """Encrypt ``payload`` to the server, server opens (checked).  Wire: the ciphertext."""
    ciphertext = scheme.encrypt(server.public_wire, payload, rng, trace=trace)
    if not protocol.constant_time_equal(scheme.decrypt(server, ciphertext, trace=trace), payload):
        raise ParameterError(f"{scheme.name}: decryption mismatch")  # pragma: no cover
    return len(ciphertext)


def offline_signature_session(
    scheme: "PkcScheme",
    server: "SchemeKeyPair",
    rng: "Optional[random.Random]" = None,
    payload: bytes = b"",
    index: int = 0,
    trace: "Optional[OpTrace]" = None,
) -> int:
    """Server signs ``payload`` bound to the session index, client verifies."""
    message = payload + index.to_bytes(4, "big")
    signature = scheme.sign(server, message, rng, trace=trace)
    if not scheme.verify(server.public_wire, message, signature, trace=trace):
        raise ParameterError(f"{scheme.name}: signature rejected")  # pragma: no cover
    return len(signature)


#: Batch-operation name -> offline session runner.
OFFLINE_SESSION_RUNNERS = {
    "key-agreement": offline_key_agreement_session,
    "encryption": offline_encryption_session,
    "signature": offline_signature_session,
}
