"""The framed wire protocol of the serving layer.

Every scheme in the registry already speaks *bytes in its canonical wire
encoding* (compressed torus pairs, SEC1 points, ``n || e``, Fp2 traces); the
serving protocol frames those bytes for transport without reinterpreting
them.  A frame is::

    +----------+---------+--------+-----------------+
    | length:4 | version | opcode | payload ...     |
    +----------+---------+--------+-----------------+

``length`` is a big-endian ``uint32`` counting everything after itself
(version byte + opcode byte + payload), so a reader always knows how many
bytes complete the frame.  ``version`` is :data:`PROTOCOL_VERSION`; a
mismatch is fatal to the connection.  Lengths above
``max_payload + 2`` are rejected *before* any buffering of the payload, so
a hostile or corrupt length prefix cannot make the server allocate.

The opcode vocabulary mirrors the scheme capabilities: a client negotiates
a scheme by registry name (:data:`OP_HELLO` → :data:`OP_WELCOME`, carrying
the server's long-lived public key), then drives key agreement
(:data:`OP_KA_INIT` → :data:`OP_KA_CONFIRM`), hybrid encryption
(:data:`OP_ENCRYPT`/:data:`OP_DECRYPT`), and signatures
(:data:`OP_SIGN`/:data:`OP_VERIFY`).  Secrets never travel: the server
confirms a key agreement with :func:`confirmation_tag` (a hash of the
shared secret) and a decryption with :func:`plaintext_digest`, which the
client recomputes locally.

Framing is **sans-IO**: :class:`FrameDecoder` consumes raw bytes and yields
:class:`Frame` objects, so the edge cases (truncation, oversized lengths)
are testable without sockets; :func:`read_frame` is the thin asyncio
binding used by the server and client.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_PAYLOAD",
    "HEADER",
    "Frame",
    "FrameDecoder",
    "encode_frame",
    "read_frame",
    "write_frame",
    "OP_HELLO",
    "OP_KA_INIT",
    "OP_ENCRYPT",
    "OP_DECRYPT",
    "OP_SIGN",
    "OP_VERIFY",
    "OP_CHAN_OPEN",
    "OP_CHAN_MSG",
    "OP_CHAN_REKEY",
    "OP_CHAN_CLOSE",
    "OP_WELCOME",
    "OP_KA_CONFIRM",
    "OP_CIPHERTEXT",
    "OP_PLAINTEXT_DIGEST",
    "OP_SIGNATURE",
    "OP_VERDICT",
    "OP_CHAN_ACCEPT",
    "OP_CHAN_REPLY",
    "OP_CHAN_REKEYED",
    "OP_CHAN_CLOSED",
    "OP_ERROR",
    "OP_OVERLOADED",
    "REQUEST_OPS",
    "CHANNEL_OPS",
    "OPCODE_NAMES",
    "ERR_VERSION",
    "ERR_UNKNOWN_OPCODE",
    "ERR_UNKNOWN_SCHEME",
    "ERR_NO_SESSION",
    "ERR_UNSUPPORTED",
    "ERR_BAD_REQUEST",
    "ERR_INTERNAL",
    "ERR_UNAVAILABLE",
    "ERR_OVER_QUOTA",
    "ERR_NO_CHANNEL",
    "ERR_REPLAY",
    "ERR_TAMPERED",
    "ERR_REKEY_REQUIRED",
    "ERR_IDLE_TIMEOUT",
    "ERROR_NAMES",
    "TAG_LEN",
    "CHANNEL_ID_LEN",
    "confirmation_tag",
    "constant_time_equal",
    "plaintext_digest",
    "pack_welcome",
    "parse_welcome",
    "pack_verify",
    "parse_verify",
    "pack_error",
    "parse_error",
    "pack_channel",
    "parse_channel",
]

#: Bumped when the frame layout or opcode semantics change incompatibly.
PROTOCOL_VERSION = 1

#: Default cap on a frame's payload bytes.  Every scheme message the layer
#: carries (public keys, hybrid ciphertexts, signatures) is far below this;
#: a larger advertised length is rejected before any payload is buffered.
MAX_FRAME_PAYLOAD = 64 * 1024

#: ``length:4 | version:1 | opcode:1`` — length counts version + opcode + payload.
HEADER = struct.Struct(">IBB")

# -- opcodes: client -> server ------------------------------------------------

OP_HELLO = 0x01  #: payload: registry scheme name, UTF-8
OP_KA_INIT = 0x02  #: payload: client public key, scheme wire encoding
OP_ENCRYPT = 0x03  #: payload: plaintext to encrypt under the server's key
OP_DECRYPT = 0x04  #: payload: hybrid ciphertext for the server to open
OP_SIGN = 0x05  #: payload: message to sign with the server's key
OP_VERIFY = 0x06  #: payload: uint32 message length | message | signature
OP_CHAN_OPEN = 0x07  #: payload: channel id | key-exchange material (public key or KEM ciphertext)
OP_CHAN_MSG = 0x08  #: payload: channel id | sealed record (seq | body | tag)
OP_CHAN_REKEY = 0x09  #: payload: channel id | sealed record whose body is fresh key-exchange material
OP_CHAN_CLOSE = 0x0A  #: payload: channel id | sealed empty record (authenticated close)

# -- opcodes: server -> client ------------------------------------------------

OP_WELCOME = 0x81  #: payload: uint8 name length | name | server public key
OP_KA_CONFIRM = 0x82  #: payload: confirmation_tag(shared secret)
OP_CIPHERTEXT = 0x83  #: payload: the ciphertext produced by OP_ENCRYPT
OP_PLAINTEXT_DIGEST = 0x84  #: payload: plaintext_digest(recovered plaintext)
OP_SIGNATURE = 0x85  #: payload: the signature produced by OP_SIGN
OP_VERDICT = 0x86  #: payload: one byte, 0x01 accepted / 0x00 rejected
OP_CHAN_ACCEPT = 0x87  #: payload: channel id | confirmation_tag(channel secret)
OP_CHAN_REPLY = 0x88  #: payload: channel id | sealed record (body = plaintext_digest)
OP_CHAN_REKEYED = 0x89  #: payload: channel id | old-epoch sealed record (body = confirmation tag)
OP_CHAN_CLOSED = 0x8A  #: payload: channel id
OP_ERROR = 0xEE  #: payload: uint8 error code | UTF-8 detail
OP_OVERLOADED = 0xBF  #: payload: UTF-8 detail — bounded queue full, retry later

#: The operation-bearing client opcodes (everything except the handshake).
REQUEST_OPS = (OP_KA_INIT, OP_ENCRYPT, OP_DECRYPT, OP_SIGN, OP_VERIFY)

#: The stateful-channel client opcodes, handled by the channel layer.
CHANNEL_OPS = (OP_CHAN_OPEN, OP_CHAN_MSG, OP_CHAN_REKEY, OP_CHAN_CLOSE)

OPCODE_NAMES = {
    OP_HELLO: "HELLO",
    OP_KA_INIT: "KA_INIT",
    OP_ENCRYPT: "ENCRYPT",
    OP_DECRYPT: "DECRYPT",
    OP_SIGN: "SIGN",
    OP_VERIFY: "VERIFY",
    OP_CHAN_OPEN: "CHAN_OPEN",
    OP_CHAN_MSG: "CHAN_MSG",
    OP_CHAN_REKEY: "CHAN_REKEY",
    OP_CHAN_CLOSE: "CHAN_CLOSE",
    OP_WELCOME: "WELCOME",
    OP_KA_CONFIRM: "KA_CONFIRM",
    OP_CIPHERTEXT: "CIPHERTEXT",
    OP_PLAINTEXT_DIGEST: "PLAINTEXT_DIGEST",
    OP_SIGNATURE: "SIGNATURE",
    OP_VERDICT: "VERDICT",
    OP_CHAN_ACCEPT: "CHAN_ACCEPT",
    OP_CHAN_REPLY: "CHAN_REPLY",
    OP_CHAN_REKEYED: "CHAN_REKEYED",
    OP_CHAN_CLOSED: "CHAN_CLOSED",
    OP_ERROR: "ERROR",
    OP_OVERLOADED: "OVERLOADED",
}

# -- error codes ---------------------------------------------------------------

ERR_VERSION = 1  #: frame carried a protocol version the server does not speak
ERR_UNKNOWN_OPCODE = 2
ERR_UNKNOWN_SCHEME = 3  #: HELLO named a scheme outside the server's registry
ERR_NO_SESSION = 4  #: an operation arrived before a successful HELLO
ERR_UNSUPPORTED = 5  #: the negotiated scheme lacks the requested capability
ERR_BAD_REQUEST = 6  #: malformed payload (bad point, bad ciphertext...)
ERR_INTERNAL = 7
ERR_UNAVAILABLE = 8  #: draining worker or routerless cluster — reconnect, retry
ERR_OVER_QUOTA = 9  #: per-client token bucket empty or channel cap reached
ERR_NO_CHANNEL = 10  #: channel id unknown — never opened, closed, or idle-evicted
ERR_REPLAY = 11  #: record sequence number replayed or reordered; channel torn down
ERR_TAMPERED = 12  #: record integrity tag failed to verify; channel torn down
ERR_REKEY_REQUIRED = 13  #: key epoch budget exhausted; CHAN_REKEY before more records
ERR_IDLE_TIMEOUT = 14  #: connection idle past the server's limit; closing

ERROR_NAMES = {
    ERR_VERSION: "version-mismatch",
    ERR_UNKNOWN_OPCODE: "unknown-opcode",
    ERR_UNKNOWN_SCHEME: "unknown-scheme",
    ERR_NO_SESSION: "no-session",
    ERR_UNSUPPORTED: "unsupported-operation",
    ERR_BAD_REQUEST: "bad-request",
    ERR_INTERNAL: "internal-error",
    ERR_UNAVAILABLE: "unavailable",
    ERR_OVER_QUOTA: "over-quota",
    ERR_NO_CHANNEL: "no-such-channel",
    ERR_REPLAY: "record-replayed",
    ERR_TAMPERED: "record-tampered",
    ERR_REKEY_REQUIRED: "rekey-required",
    ERR_IDLE_TIMEOUT: "idle-timeout",
}

#: Bytes of the key-agreement confirmation tag and plaintext digest.
TAG_LEN = 16

#: Bytes of a channel identifier on the wire (client-chosen, random).
CHANNEL_ID_LEN = 8


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    version: int
    opcode: int
    payload: bytes

    @property
    def opcode_name(self) -> str:
        return OPCODE_NAMES.get(self.opcode, f"0x{self.opcode:02x}")


def encode_frame(
    opcode: int, payload: bytes = b"", version: int = PROTOCOL_VERSION
) -> bytes:
    """Serialise one frame.  Raises on payloads above :data:`MAX_FRAME_PAYLOAD`."""
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
        )
    return HEADER.pack(len(payload) + 2, version, opcode) + payload


class FrameDecoder:
    """Incremental sans-IO frame decoder.

    Feed it raw bytes in any chunking; it yields every complete frame and
    buffers the remainder.  An advertised length above the payload cap (or
    below the 2-byte minimum) raises :class:`~repro.errors.ProtocolError`
    immediately — the connection is unrecoverable past a framing error, so
    the decoder refuses further input afterwards.
    """

    def __init__(self, max_payload: int = MAX_FRAME_PAYLOAD):
        self.max_payload = max_payload
        self._buffer = bytearray()
        self._dead = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Consume ``data``; return every frame it completed."""
        if self._dead:
            raise ProtocolError("decoder is dead after a framing error")
        self._buffer.extend(data)
        frames: List[Frame] = []
        while len(self._buffer) >= HEADER.size:
            length, version, opcode = HEADER.unpack_from(self._buffer)
            if length < 2 or length - 2 > self.max_payload:
                self._dead = True
                raise ProtocolError(
                    f"frame length {length} outside [2, {self.max_payload + 2}]"
                )
            if len(self._buffer) - 4 < length:
                break
            payload = bytes(self._buffer[HEADER.size : 4 + length])
            del self._buffer[: 4 + length]
            frames.append(Frame(version, opcode, payload))
        return frames


async def read_frame(
    reader: "asyncio.StreamReader", max_payload: int = MAX_FRAME_PAYLOAD
) -> Optional[Frame]:
    """Read exactly one frame; ``None`` on EOF at a frame boundary.

    EOF in the middle of a frame — a mid-stream connection drop — raises
    :class:`~repro.errors.ProtocolError`, which the server handler treats as
    a disconnect for that connection only.
    """
    prefix = await reader.read(4)
    if prefix == b"":
        return None
    while len(prefix) < 4:
        more = await reader.read(4 - len(prefix))
        if more == b"":
            raise ProtocolError("connection dropped inside a frame header")
        prefix += more
    (length,) = struct.unpack(">I", prefix)
    if length < 2 or length - 2 > max_payload:
        raise ProtocolError(f"frame length {length} outside [2, {max_payload + 2}]")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection dropped inside a frame body") from exc
    return Frame(body[0], body[1], body[2:])


async def write_frame(
    writer: "asyncio.StreamWriter",
    opcode: int,
    payload: bytes = b"",
    version: int = PROTOCOL_VERSION,
) -> None:
    """Serialise and flush one frame."""
    writer.write(encode_frame(opcode, payload, version=version))
    await writer.drain()


# -- payload shapes ------------------------------------------------------------


def confirmation_tag(shared_secret: bytes) -> bytes:
    """What the server returns for a key agreement instead of the secret."""
    return hashlib.sha256(b"repro-serve-confirm" + shared_secret).digest()[:TAG_LEN]


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare secret-derived byte strings without a timing oracle.

    A short-circuiting ``==`` on a confirmation tag leaks how many leading
    bytes of the attacker's guess matched (audit rule CT103); this is the
    one vetted comparator for anything derived from key material.
    """
    return hmac.compare_digest(a, b)


def plaintext_digest(plaintext: bytes) -> bytes:
    """What the server returns for a decryption instead of the plaintext."""
    return hashlib.sha256(b"repro-serve-digest" + plaintext).digest()[:TAG_LEN]


def pack_welcome(scheme_name: str, server_public: bytes) -> bytes:
    encoded = scheme_name.encode("utf-8")
    if len(encoded) > 255:
        raise ProtocolError("scheme name too long for the wire")
    return bytes([len(encoded)]) + encoded + server_public


def parse_welcome(payload: bytes) -> Tuple[str, bytes]:
    """``(scheme name, server public key)`` from an OP_WELCOME payload."""
    if not payload:
        raise ProtocolError("empty WELCOME payload")
    name_len = payload[0]
    if len(payload) < 1 + name_len:
        raise ProtocolError("WELCOME payload shorter than its name length")
    name = payload[1 : 1 + name_len].decode("utf-8", errors="replace")
    return name, payload[1 + name_len :]


def pack_verify(message: bytes, signature: bytes) -> bytes:
    return struct.pack(">I", len(message)) + message + signature


def parse_verify(payload: bytes) -> Tuple[bytes, bytes]:
    """``(message, signature)`` from an OP_VERIFY payload."""
    if len(payload) < 4:
        raise ProtocolError("VERIFY payload shorter than its length prefix")
    (msg_len,) = struct.unpack_from(">I", payload)
    if len(payload) - 4 < msg_len:
        raise ProtocolError("VERIFY payload shorter than its message length")
    return payload[4 : 4 + msg_len], payload[4 + msg_len :]


def pack_channel(channel_id: bytes, blob: bytes = b"") -> bytes:
    """``channel id | blob`` — the shape of every channel opcode payload."""
    if len(channel_id) != CHANNEL_ID_LEN:
        raise ProtocolError(
            f"channel id must be {CHANNEL_ID_LEN} bytes, got {len(channel_id)}"
        )
    return channel_id + blob


def parse_channel(payload: bytes) -> Tuple[bytes, bytes]:
    """``(channel id, blob)`` from a channel opcode payload."""
    if len(payload) < CHANNEL_ID_LEN:
        raise ProtocolError(
            f"channel payload of {len(payload)} bytes is shorter than the "
            f"{CHANNEL_ID_LEN}-byte channel id"
        )
    return payload[:CHANNEL_ID_LEN], payload[CHANNEL_ID_LEN:]


def pack_error(code: int, detail: str = "") -> bytes:
    return bytes([code]) + detail.encode("utf-8")


def parse_error(payload: bytes) -> Tuple[int, str]:
    """``(code, detail)`` from an OP_ERROR payload."""
    if not payload:
        return ERR_INTERNAL, ""
    return payload[0], payload[1:].decode("utf-8", errors="replace")
