"""Scheme-affinity routing: the consistent-hash ring and the front proxy.

Two deployment shapes share one cluster (see :mod:`repro.serve.cluster`):

* **SO_REUSEPORT** — every worker binds the same listen port and the kernel
  balances *connections* across them.  Nothing runs in between, so this is
  the zero-overhead scale-out path; but the kernel hashes on the 4-tuple
  and knows nothing about schemes.

* **Front router** (this module) — the portable fallback and the
  scheme-aware path: a lightweight asyncio front terminates the public
  port and proxies *frames* to per-worker backend ports.  The
  :class:`HashRing` consistent-hashes the ``HELLO`` scheme name onto a
  worker index, so same-scheme traffic always lands on the same warm
  worker — its registry instance and fixed-base generator tables amortise
  per worker exactly as they do per process today.  Because the hash ring
  is built over the *stable worker indices* (not ports or pids), a worker
  restart keeps the scheme→worker map intact, and removing one worker
  moves only that worker's schemes (the consistent-hashing property).

The front speaks the framed protocol one request/response pair at a time
(the protocol is strictly ping-pong per connection), relaying frames
verbatim — version byte included.  When a backend dies mid-request the
front fails over: it walks the ring's preference order, replays the hidden
``HELLO`` for the connection's negotiated scheme on a fresh backend
connection, then replays the pending request.  Server-side operations are
stateless computations over the shared long-lived keys (cluster workers
hold the *same* preset key pairs), so a replay is safe and the client
never sees the failure.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ParameterError, ProtocolError
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_UNAVAILABLE,
    ERR_VERSION,
    OP_ERROR,
    OP_HELLO,
    OP_WELCOME,
    Frame,
    pack_error,
    read_frame,
    write_frame,
)

__all__ = ["HashRing", "FrontRouter", "RouterStats"]


def _ring_hash(value: str) -> int:
    """A stable 64-bit ring coordinate (not secret-derived; placement only)."""
    return int.from_bytes(hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent hashing of string keys onto a fixed set of integer slots.

    ``vnodes`` virtual points per slot smooth the arc lengths; 64 keeps the
    spread within a few percent for small clusters.  The ring is immutable:
    liveness is handled at lookup time (``exclude`` / ``alive``), so a
    restarted worker reclaims exactly the schemes it owned before.
    """

    def __init__(self, slots: Iterable[int], vnodes: int = 64):
        self.slots: Tuple[int, ...] = tuple(slots)
        if not self.slots:
            raise ParameterError("a hash ring needs at least one slot")
        if vnodes < 1:
            raise ParameterError("vnodes must be at least 1")
        self.vnodes = vnodes
        points = []
        for slot in self.slots:
            for replica in range(vnodes):
                points.append((_ring_hash(f"slot-{slot}-vnode-{replica}"), slot))
        points.sort()
        self._points = points

    def preference(self, key: str) -> List[int]:
        """Every slot, ordered by ring distance from ``key`` — the failover
        order: ``preference(key)[0]`` is the owner, the rest take over (in
        order) when earlier entries are down."""
        start = bisect.bisect_right(self._points, (_ring_hash(key), -1))
        seen: Set[int] = set()
        ordered: List[int] = []
        for offset in range(len(self._points)):
            _, slot = self._points[(start + offset) % len(self._points)]
            if slot not in seen:
                seen.add(slot)
                ordered.append(slot)
                if len(ordered) == len(self.slots):
                    break
        return ordered

    def lookup(self, key: str, alive: Optional[Iterable[int]] = None) -> Optional[int]:
        """The owning live slot for ``key`` (``None`` when nothing is alive)."""
        living = set(self.slots if alive is None else alive)
        for slot in self.preference(key):
            if slot in living:
                return slot
        return None


@dataclass
class RouterStats:
    """Counters the front router keeps for observability and tests."""

    connections: int = 0
    #: Request frames relayed per worker index — how tests observe affinity.
    routed: Dict[int, int] = field(default_factory=dict)
    #: Requests replayed onto another worker after a backend failure.
    failovers: int = 0
    #: Requests answered ``ERR_UNAVAILABLE`` because no live worker remained.
    unrouted: int = 0

    def record(self, worker: int) -> None:
        self.routed[worker] = self.routed.get(worker, 0) + 1


class _BackendLink:
    """One open connection from the front to a worker's backend port."""

    __slots__ = ("worker", "reader", "writer")

    def __init__(self, worker: int, reader, writer):
        self.worker = worker
        self.reader = reader
        self.writer = writer

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class FrontRouter:
    """The asyncio front: one public port, frames proxied with scheme affinity.

    ``backends`` maps live worker indices to their ``(host, port)`` backend
    addresses; the cluster supervisor adds an entry when a worker reports
    ready and removes it when the worker dies or drains, so routing reacts
    to lifecycle events without restarting the front.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, workers: int = 1,
                 vnodes: int = 64):
        if workers < 1:
            raise ParameterError("the router fronts at least one worker")
        self.bind_host = host
        self.bind_port = port
        self.ring = HashRing(range(workers), vnodes=vnodes)
        self.backends: Dict[int, Tuple[str, int]] = {}
        self.stats = RouterStats()
        self._server: Optional["asyncio.base_events.Server"] = None
        self._connection_tasks: set = set()

    # -- lifecycle ----------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise ParameterError("router is not running")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.bind_host, self.bind_port
        )
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)

    def set_backend(self, worker: int, address: Tuple[str, int]) -> None:
        self.backends[worker] = address

    def remove_backend(self, worker: int) -> None:
        self.backends.pop(worker, None)

    # -- per-connection proxying ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self.stats.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        link: Optional[_BackendLink] = None
        scheme = ""  # the connection's negotiated scheme (affinity key)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    # Hostile or corrupt framing: answer like a server would
                    # and drop the connection without involving a worker.
                    await self._best_effort_error(writer, ERR_BAD_REQUEST, str(exc))
                    return
                if frame is None:
                    return
                if frame.opcode == OP_HELLO:
                    affinity = frame.payload.decode("utf-8", errors="replace")
                else:
                    affinity = scheme
                response, link = await self._roundtrip(frame, affinity, scheme, link)
                if response is None:
                    self.stats.unrouted += 1
                    await self._best_effort_error(
                        writer, ERR_UNAVAILABLE, "no live cluster worker"
                    )
                    return
                await write_frame(
                    writer, response.opcode, response.payload, version=response.version
                )
                if frame.opcode == OP_HELLO and response.opcode == OP_WELCOME:
                    scheme = affinity
                if response.opcode == OP_ERROR and response.payload[:1] == bytes(
                    [ERR_VERSION]
                ):
                    return  # mirror the server: nothing after a version mismatch
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._connection_tasks.discard(task)
            if link is not None:
                await link.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _roundtrip(
        self,
        frame: Frame,
        affinity: str,
        negotiated: str,
        link: Optional[_BackendLink],
    ) -> Tuple[Optional[Frame], Optional[_BackendLink]]:
        """Relay one request to the affine worker; fail over along the ring.

        Returns ``(response, live link)``; ``(None, None)`` when every live
        worker failed.  The request is replayed at most once per worker, and
        a replay is always preceded by re-negotiating the connection's
        scheme on the fresh backend link, so the worker-side session state
        matches what the client established."""
        tried: Set[int] = set()
        while True:
            target = self.ring.lookup(affinity, alive=set(self.backends) - tried)
            if target is None:
                if link is not None:
                    await link.close()
                return None, None
            try:
                if link is None or link.worker != target:
                    if link is not None:
                        await link.close()
                    link = await self._connect(target, negotiated, frame)
                await write_frame(
                    link.writer, frame.opcode, frame.payload, version=frame.version
                )
                response = await read_frame(link.reader)
                if response is None:
                    raise ProtocolError("backend closed mid-exchange")
            except (ConnectionError, ProtocolError, OSError):
                tried.add(target)
                self.stats.failovers += 1
                if link is not None:
                    await link.close()
                    link = None
                continue
            self.stats.record(target)
            return response, link

    async def _connect(
        self, worker: int, negotiated: str, frame: Frame
    ) -> _BackendLink:
        host, port = self.backends[worker]
        breader, bwriter = await asyncio.open_connection(host, port)
        link = _BackendLink(worker, breader, bwriter)
        if negotiated and frame.opcode != OP_HELLO:
            # The client negotiated on a previous link; replay the HELLO so
            # the new worker's session matches, and swallow the WELCOME
            # (shared preset keys make it byte-identical to the one the
            # client already holds).
            try:
                await write_frame(link.writer, OP_HELLO, negotiated.encode("utf-8"))
                welcome = await read_frame(link.reader)
            except (ConnectionError, OSError) as exc:
                await link.close()
                raise ProtocolError(f"backend HELLO replay failed: {exc}") from exc
            if welcome is None or welcome.opcode != OP_WELCOME:
                await link.close()
                raise ProtocolError("backend refused the HELLO replay")
        return link

    async def _best_effort_error(self, writer, code: int, detail: str) -> None:
        try:
            await write_frame(writer, OP_ERROR, pack_error(code, detail))
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
