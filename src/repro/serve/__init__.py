"""``repro.serve`` — the online serving layer over the unified PKC registry.

The fifth layer of the stack (backends → towers/groups → exp engine → PKC
registry → **serve**): everything the offline harness measures with
``run_batch`` loops, turned into a concurrent network service —

* :mod:`repro.serve.protocol` — a length-prefixed, versioned framing of the
  schemes' existing wire bytes, with opcodes for scheme negotiation, key
  agreement, hybrid encrypt/decrypt and sign/verify;
* :mod:`repro.serve.session` — per-connection state plus the canonical
  per-session protocol logic, shared verbatim with the offline harness
  (``repro.pkc.bench`` runs the same session functions);
* :mod:`repro.serve.scheduler` — a bounded request queue with explicit
  backpressure, same-scheme batching (the amortisation story, online) and a
  thread- or process-pool for the CPU-bound group arithmetic;
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — the asyncio TCP
  server and the load-generator client;
* ``python -m repro.serve serve|load`` — run a server, or drive one with N
  concurrent clients and land throughput + latency percentiles in
  ``BENCH_pkc.json`` under ``serve:`` keys.

This module keeps its imports light (protocol + session only); the server,
client and scheduler — which pull in the whole PKC stack — load lazily on
first attribute access, so ``repro.pkc`` can import the shared session
logic from here without a cycle.
"""

from repro.serve.protocol import (
    MAX_FRAME_PAYLOAD,
    PROTOCOL_VERSION,
    Frame,
    FrameDecoder,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.session import (
    OFFLINE_SESSION_RUNNERS,
    ConnectionSession,
    serve_request,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_PAYLOAD",
    "Frame",
    "FrameDecoder",
    "encode_frame",
    "read_frame",
    "write_frame",
    "ConnectionSession",
    "serve_request",
    "OFFLINE_SESSION_RUNNERS",
    # lazily loaded:
    "ServeServer",
    "ServeClient",
    "run_load",
    "LoadReport",
    "LoadEntry",
    "LoadPlan",
    "LoadPhase",
    "BatchScheduler",
    "SchemeHost",
    "ClusterSupervisor",
    "FrontRouter",
    "HashRing",
]

_LAZY = {
    "ServeServer": ("repro.serve.server", "ServeServer"),
    "ServeClient": ("repro.serve.client", "ServeClient"),
    "run_load": ("repro.serve.client", "run_load"),
    "LoadReport": ("repro.serve.client", "LoadReport"),
    "LoadEntry": ("repro.serve.client", "LoadEntry"),
    "LoadPlan": ("repro.serve.client", "LoadPlan"),
    "LoadPhase": ("repro.serve.client", "LoadPhase"),
    "BatchScheduler": ("repro.serve.scheduler", "BatchScheduler"),
    "SchemeHost": ("repro.serve.scheduler", "SchemeHost"),
    "ClusterSupervisor": ("repro.serve.cluster", "ClusterSupervisor"),
    "FrontRouter": ("repro.serve.router", "FrontRouter"),
    "HashRing": ("repro.serve.router", "HashRing"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.serve' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
