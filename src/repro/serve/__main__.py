"""``python -m repro.serve`` — run a PKC server or cluster, or load-test one.

Three subcommands:

* ``serve`` — bind a :class:`~repro.serve.server.ServeServer` and run until
  interrupted.  ``--executor process --workers N`` serves on N cores.

* ``cluster`` — run a :class:`~repro.serve.cluster.ClusterSupervisor`:
  ``--workers N`` independent server processes sharing one port
  (``SO_REUSEPORT`` where available, else the scheme-affinity front
  router), with crash restart, graceful drain on ``SIGTERM`` and a rolling
  restart on ``SIGHUP``.

* ``load`` — the measuring harness of the serving acceptance story: boot an
  in-process server (or aim at an external one via ``--connect``), drive N
  concurrent clients through a mixed-scheme workload, compare the batched
  ceilidh-170 key-agreement serving throughput against the *offline*
  ``run_batch`` baseline measured in the same process, and merge one
  :class:`~repro.perf.record.PerfRecord` per ``(scheme, operation)`` —
  throughput plus latency percentiles — into ``BENCH_pkc.json`` under
  ``serve:`` keys (``serve:<scheme>[+backend]:<operation>``; the offline
  plain-baseline keys are never touched).  With ``--cluster N[,N...]`` the
  same plan instead runs against a fresh cluster at each worker count and
  lands ``serve-cluster:<scheme>[+backend]:<op>@w<N>`` rows whose meta
  carries the measured ``scaling_efficiency`` (sessions/s at N workers over
  N x the single-worker rate) — and, honestly, the machine's ``cpu_count``,
  since efficiency on a one-core box is flat by construction.

The exit status is the check: non-zero when any session failed a protocol
round trip, or (single-server mode) when the in-process serving throughput
fell below ``--min-ratio`` (default 0.8) of the offline baseline.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import pathlib
import signal
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.client import DEFAULT_PAYLOAD, LoadPlan, LoadReport, run_load
from repro.serve.server import ServeServer

#: The paper's four deployed cryptosystems — the default load mix.
HEADLINE_SCHEMES = ("ceilidh-170", "ecdh-p160", "rsa-1024", "xtr-170")

#: The scheme x operation whose serving throughput is gated against offline.
BASELINE_SCHEME = "ceilidh-170"
BASELINE_OPERATION = "key-agreement"


def _add_server_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=None,
                        help="field backend (default: $REPRO_FIELD_BACKEND or plain)")
    parser.add_argument("--executor", choices=("thread", "process"), default="thread",
                        help="worker pool for the group arithmetic")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker pool size (default: min(4, cores))")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="largest same-scheme batch one worker executes")
    parser.add_argument("--queue-size", type=int, default=256,
                        help="bounded request queue; overflow answers OP_OVERLOADED")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="async multi-scheme PKC serving layer",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run a server until interrupted")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9876)
    serve.add_argument("--schemes", default=None,
                       help="comma-separated allowlist (default: whole registry)")
    _add_server_options(serve)

    cluster = commands.add_parser(
        "cluster", help="run N worker processes behind one port until interrupted"
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=9876)
    cluster.add_argument("--workers", type=int, default=2,
                         help="worker processes sharing the port (default: 2)")
    cluster.add_argument("--mode", choices=("auto", "reuseport", "router"),
                         default="auto",
                         help="port sharing: kernel SO_REUSEPORT balancing or the "
                              "scheme-affinity front router (auto: reuseport "
                              "where available)")
    cluster.add_argument("--schemes", default=None,
                         help="comma-separated allowlist (default: whole registry)")
    cluster.add_argument("--backend", default=None,
                         help="field backend (default: $REPRO_FIELD_BACKEND or plain)")
    cluster.add_argument("--pool-workers", type=int, default=None,
                         help="per-worker thread pool size (default: min(4, cores))")
    cluster.add_argument("--max-batch", type=int, default=32,
                         help="largest same-scheme batch one worker executes")
    cluster.add_argument("--queue-size", type=int, default=256,
                         help="bounded request queue; overflow answers OP_OVERLOADED")

    load = commands.add_parser("load", help="drive a server with concurrent clients")
    load.add_argument("--connect", default=None, metavar="HOST:PORT",
                      help="load an external server (default: boot one in-process)")
    load.add_argument("--schemes", default=",".join(HEADLINE_SCHEMES),
                      help="comma-separated mix (default: the four headline schemes)")
    load.add_argument("--clients", type=int, default=8,
                      help="concurrent client connections (default: 8)")
    load.add_argument("--sessions", type=int, default=None,
                      help="sessions per client per mix entry (default: 16, quick: 2)")
    load.add_argument("--quick", action="store_true",
                      help="smoke mode: minimal sessions, still >= 8 concurrent clients")
    load.add_argument("--min-ratio", type=float, default=0.8,
                      help="gate: serve/offline ceilidh-170 throughput floor")
    load.add_argument("--no-emit", action="store_true",
                      help="skip the BENCH_pkc.json merge")
    load.add_argument("--bench-root", default=".",
                      help="directory whose BENCH_pkc.json receives the serve: keys")
    load.add_argument("--cluster", default=None, metavar="N[,N...]",
                      help="scaling sweep: run the plan against a fresh cluster at "
                           "each worker count (1 is prepended as the efficiency "
                           "reference) and emit serve-cluster: rows")
    load.add_argument("--cluster-mode", choices=("auto", "reuseport", "router"),
                      default="auto", help="port sharing for --cluster sweeps")
    load.add_argument("--mix", default=None, metavar="NAME",
                      help="drive a seeded traffic-model mix (zipf popularity, "
                           "bursty arrivals, secure channels) instead of the "
                           "phase plan; presets: see repro.traffic.model.MIXES")
    load.add_argument("--seed", type=int, default=0,
                      help="traffic-model seed (--mix only; default: 0)")
    _add_server_options(load)
    return parser


def _scheme_mix(names: Sequence[str], backend: Optional[str]) -> List[Tuple[str, str]]:
    """``(scheme, operation)`` pairs: each scheme's first supported protocol."""
    from repro.pkc.base import ENCRYPTION, KEY_AGREEMENT, SIGNATURE
    from repro.pkc.registry import get_scheme

    preference = (
        ("key-agreement", KEY_AGREEMENT),
        ("encryption", ENCRYPTION),
        ("signature", SIGNATURE),
    )
    mix = []
    for name in names:
        scheme = get_scheme(name, backend=backend)
        for operation, capability in preference:
            if capability in scheme.capabilities:
                mix.append((name, operation))
                break
    return mix


def _offline_baseline(sessions: int, backend: Optional[str]) -> float:
    """Offline ``run_batch`` sessions/s for the gated scheme, same process."""
    from repro.pkc.bench import run_batch

    # One warm-up session builds the fixed-base tables outside the timed
    # region, mirroring what the server's long-lived key amortises.
    run_batch(BASELINE_SCHEME, BASELINE_OPERATION, 1,
              collect_ops=False, backend=backend)
    result = run_batch(BASELINE_SCHEME, BASELINE_OPERATION, sessions,
                       collect_ops=False, backend=backend)
    return result.sessions_per_second


def _emit_records(
    report: LoadReport, args, backend_name: str, quick: bool
) -> pathlib.Path:
    from repro import perf

    suffix = "" if backend_name == "plain" else f"+{backend_name}"
    records = []
    for entry in report.entries.values():
        records.append(
            perf.PerfRecord(
                scheme=f"serve:{entry.scheme}{suffix}",
                operation=entry.operation,
                sessions=entry.sessions,
                wall_seconds=entry.wall_seconds,
                ops_per_second=entry.sessions_per_second,
                ms_per_op=(entry.wall_seconds * 1e3 / entry.sessions
                           if entry.sessions else 0.0),
                latency_ms=entry.histogram.summary(),
                meta={
                    "clients": report.clients,
                    "executor": args.executor,
                    "backend": backend_name,
                    "quick": quick,
                    "overload_rejections": entry.overload_rejections,
                },
            )
        )
    path = perf.bench_path(args.bench_root)
    perf.update_bench(path, records)
    return path


def _emit_cluster_records(
    results: "Dict[int, LoadReport]",
    mode: str,
    args,
    backend_name: str,
    quick: bool,
) -> pathlib.Path:
    """Merge one ``serve-cluster:`` row per (entry, worker count).

    Key shape: ``serve-cluster:<scheme>[+backend]:<operation>@w<N>`` — the
    worker count lives in the operation so every sweep point keeps its own
    trajectory.  Meta records the measured ``scaling_efficiency`` against
    the single-worker reference *and* the machine's ``cpu_count``: the
    number is only meaningful relative to the cores that were available.
    """
    from repro import perf

    suffix = "" if backend_name == "plain" else f"+{backend_name}"
    single = results.get(1)
    records = []
    for workers, report in sorted(results.items()):
        for key, entry in report.entries.items():
            base_rate = None
            if single is not None and key in single.entries:
                base_rate = single.entries[key].sessions_per_second
            efficiency = None
            if workers > 1 and base_rate:
                efficiency = entry.sessions_per_second / (workers * base_rate)
            records.append(
                perf.PerfRecord(
                    scheme=f"serve-cluster:{entry.scheme}{suffix}",
                    operation=f"{entry.operation}@w{workers}",
                    sessions=entry.sessions,
                    wall_seconds=entry.wall_seconds,
                    ops_per_second=entry.sessions_per_second,
                    ms_per_op=(entry.wall_seconds * 1e3 / entry.sessions
                               if entry.sessions else 0.0),
                    latency_ms=entry.histogram.summary(),
                    meta={
                        "workers": workers,
                        "mode": mode,
                        "cpu_count": os.cpu_count(),
                        "clients": report.clients,
                        "backend": backend_name,
                        "quick": quick,
                        "scaling_efficiency": efficiency,
                        "single_worker_sessions_per_second": base_rate,
                        "overload_rejections": entry.overload_rejections,
                        "reconnects": entry.reconnects,
                    },
                )
            )
    path = perf.bench_path(args.bench_root)
    perf.update_bench(path, records)
    return path


def _emit_traffic_records(
    reports, mix, args, backend_name: str, quick: bool
) -> pathlib.Path:
    """Merge the BENCH rows of one traffic run (or cluster sweep).

    Two families land:

    * ``traffic:<mix>[+backend]`` rows — one per ``(scheme, kind)`` cell
      plus an ``all`` summary carrying the strict accounting counters.
      Rates share the run's wall clock (the cells ran interleaved, which
      is the point of a traffic model), noted in meta as
      ``shared_wall=True``.
    * ``serve-channel:<scheme>[+backend]`` rows — the channel subsystem's
      own trajectory: ``open`` (handshake) and ``message`` (steady-state)
      cells, the latter with the measured ``amortisation_vs_oneshot_ka``
      when the same run also drove one-shot key agreements on the scheme.

    Cluster sweeps append ``@w<N>`` to every operation, mirroring the
    ``serve-cluster:`` convention.
    """
    from repro import perf
    from repro.traffic.engine import CHANNEL_MESSAGE, CHANNEL_OPEN

    suffix = "" if backend_name == "plain" else f"+{backend_name}"
    records = []
    for workers, report in sorted(reports.items()):
        at_workers = f"@w{workers}" if workers else ""
        wall = report.wall_seconds
        base_meta = {
            "mix": mix.name,
            "seed": report.seed,
            "clients": report.clients,
            "backend": backend_name,
            "quick": quick,
            "shared_wall": True,
        }
        if workers:
            base_meta["workers"] = workers
        for key in sorted(report.entries):
            entry = report.entries[key]
            rate = entry.rate(wall)
            records.append(
                perf.PerfRecord(
                    scheme=f"traffic:{mix.name}{suffix}",
                    operation=f"{entry.scheme}:{entry.kind}{at_workers}",
                    sessions=entry.count,
                    wall_seconds=wall,
                    ops_per_second=rate,
                    ms_per_op=(1e3 / rate if rate else 0.0),
                    latency_ms=entry.histogram.summary(),
                    meta={**base_meta, "refusals": entry.refusals},
                )
            )
        handshake = report.handshake_histogram()
        steady = report.steady_state_histogram()
        records.append(
            perf.PerfRecord(
                scheme=f"traffic:{mix.name}{suffix}",
                operation=f"all{at_workers}",
                sessions=report.submitted,
                wall_seconds=wall,
                ops_per_second=(report.responses / wall if wall else 0.0),
                ms_per_op=(wall * 1e3 / report.responses
                           if report.responses else 0.0),
                latency_ms=steady.summary() if len(steady) else None,
                meta={
                    **base_meta,
                    "submitted": report.submitted,
                    "responses": report.responses,
                    "explicit_errors": report.explicit_errors,
                    "rejected_quota": report.rejected_quota,
                    "overload_rejections": report.overload_rejections,
                    "channels_opened": report.channels_opened,
                    "channel_messages": report.channel_messages,
                    "rekeys": report.rekeys,
                    "reopens": report.reopens,
                    "oneshots": report.oneshots,
                    "handshake_p50_ms": round(
                        handshake.percentile(0.5) * 1e3, 4
                    ),
                    "steady_state_p50_ms": round(
                        steady.percentile(0.5) * 1e3, 4
                    ),
                },
            )
        )
        for scheme in mix.schemes:
            message = report.entries.get(f"{scheme}:{CHANNEL_MESSAGE}")
            opened = report.entries.get(f"{scheme}:{CHANNEL_OPEN}")
            if message is None or opened is None:
                continue
            ka_rate = report.rate_of(scheme, "key-agreement")
            message_rate = message.rate(wall)
            records.append(
                perf.PerfRecord(
                    scheme=f"serve-channel:{scheme}{suffix}",
                    operation=f"open{at_workers}",
                    sessions=opened.count,
                    wall_seconds=wall,
                    ops_per_second=opened.rate(wall),
                    ms_per_op=(1e3 / opened.rate(wall)
                               if opened.count else 0.0),
                    latency_ms=opened.histogram.summary(),
                    meta={**base_meta, "refusals": opened.refusals},
                )
            )
            records.append(
                perf.PerfRecord(
                    scheme=f"serve-channel:{scheme}{suffix}",
                    operation=f"message{at_workers}",
                    sessions=message.count,
                    wall_seconds=wall,
                    ops_per_second=message_rate,
                    ms_per_op=(1e3 / message_rate if message.count else 0.0),
                    latency_ms=message.histogram.summary(),
                    meta={
                        **base_meta,
                        "refusals": message.refusals,
                        "oneshot_ka_per_second": ka_rate or None,
                        "amortisation_vs_oneshot_ka": (
                            message_rate / ka_rate if ka_rate else None
                        ),
                    },
                )
            )
    path = perf.bench_path(args.bench_root)
    perf.update_bench(path, records)
    return path


def _print_traffic_report(report, workers: Optional[int] = None) -> None:
    tag = f" [{workers} workers]" if workers else ""
    header = (f"{'scheme':16} {'kind':16} {'count':>6} {'refus':>5} "
              f"{'rate/s':>8} {'p50 ms':>8} {'p99 ms':>8} {'p999 ms':>8}")
    print(f"traffic {report.mix}{tag}: {report.clients} clients, "
          f"seed {report.seed}, {report.wall_seconds:.2f}s wall")
    print(header)
    print("-" * len(header))
    for key in sorted(report.entries):
        entry = report.entries[key]
        digest = entry.histogram.summary()
        print(f"{entry.scheme:16} {entry.kind:16} {entry.count:>6} "
              f"{entry.refusals:>5} {entry.rate(report.wall_seconds):>8.1f} "
              f"{digest['p50_ms']:>8.2f} {digest['p99_ms']:>8.2f} "
              f"{digest['p999_ms']:>8.2f}")
    handshake = report.handshake_histogram()
    steady = report.steady_state_histogram()
    print(f"channels: {report.channels_opened} opened, "
          f"{report.channel_messages} messages, {report.rekeys} rekeys, "
          f"{report.reopens} reopens; handshake p50 "
          f"{handshake.percentile(0.5) * 1e3:.2f} ms vs steady-state p50 "
          f"{steady.percentile(0.5) * 1e3:.2f} ms")
    print(f"accounting: {report.submitted} submitted = {report.responses} "
          f"responses + {report.explicit_errors} explicit errors "
          f"({report.rejected_quota} quota, {report.overload_rejections} "
          f"overloaded)")


async def _run_traffic_command(args, backend_name: str, sessions: int) -> int:
    """``load --mix``: the traffic-model engine against a server or cluster."""
    from repro.traffic.engine import run_traffic
    from repro.traffic.model import get_mix

    mix = get_mix(args.mix)
    reports: Dict[int, object] = {}
    failed = False

    if args.cluster:
        from repro.serve.cluster import ClusterSupervisor

        if args.connect:
            raise SystemExit("--cluster boots its own workers; drop --connect")
        counts = sorted({int(part) for part in args.cluster.split(",")
                         if part.strip()})
        if not counts or counts[0] < 1:
            raise SystemExit(f"--cluster needs positive worker counts, "
                             f"got {args.cluster!r}")
        for count in counts:
            cluster = ClusterSupervisor(
                workers=count,
                mode=args.cluster_mode,
                schemes=mix.schemes,
                backend=args.backend,
                pool_workers=args.workers,
                max_batch=args.max_batch,
                queue_size=args.queue_size,
            )
            host, port = await cluster.start()
            try:
                print(f"traffic {mix.name}: {count} worker(s) "
                      f"[{cluster.mode}] at {host}:{port} on {backend_name}")
                report = await run_traffic(
                    host, port, mix,
                    clients=args.clients,
                    sessions_per_client=sessions,
                    seed=args.seed,
                    backend=args.backend,
                )
            finally:
                await cluster.stop()
            reports[count] = report
            _print_traffic_report(report, workers=count)
            failed = failed or not report.accounted
    else:
        server: Optional[ServeServer] = None
        if args.connect:
            host, _, port = args.connect.rpartition(":")
            address = (host, int(port))
        else:
            server = ServeServer(
                backend=args.backend,
                executor=args.executor,
                workers=args.workers,
                max_batch=args.max_batch,
                queue_size=args.queue_size,
            )
            address = await server.start()
        try:
            report = await run_traffic(
                address[0], address[1], mix,
                clients=args.clients,
                sessions_per_client=sessions,
                seed=args.seed,
                backend=args.backend,
            )
        finally:
            if server is not None:
                await server.stop()
        reports[0] = report
        _print_traffic_report(report)
        failed = not report.accounted
        if server is not None and server.protocol_errors:
            print(f"FAIL: server counted {server.protocol_errors} "
                  f"protocol error(s)")
            failed = True

    for report in reports.values():
        if not report.accounted:
            print(f"FAIL: accounting broken — {report.submitted} submitted "
                  f"!= {report.responses} responses + "
                  f"{report.explicit_errors} explicit errors")
        # The amortisation headline: channel records per second against the
        # same run's one-shot key-agreement rate.
        for scheme in mix.schemes:
            message_rate = report.rate_of(scheme, "channel-message")
            ka_rate = report.rate_of(scheme, "key-agreement")
            if message_rate and ka_rate:
                print(f"{scheme}: channel messages {message_rate:.1f}/s vs "
                      f"one-shot key agreement {ka_rate:.1f}/s "
                      f"(amortisation x{message_rate / ka_rate:.1f})")

    if failed:
        print("perf trajectory NOT updated (run failed)")
        return 1
    if not args.no_emit:
        path = _emit_traffic_records(reports, mix, args, backend_name,
                                     args.quick)
        print(f"perf trajectory updated: {path} (traffic:{mix.name} and "
              f"serve-channel: records)")
    return 0


def _parse_cluster_counts(raw: str) -> List[int]:
    counts = sorted({int(part) for part in raw.split(",") if part.strip()})
    if not counts or counts[0] < 1:
        raise SystemExit(f"--cluster needs positive worker counts, got {raw!r}")
    if counts[0] != 1:
        # Efficiency is defined against the single-worker rate; measure it.
        counts.insert(0, 1)
    return counts


async def _run_cluster_load(args, backend_name: str,
                            mix: List[Tuple[str, str]], sessions: int) -> int:
    """The scaling sweep: the same plan against a fresh cluster per count."""
    from repro.serve.cluster import ClusterSupervisor

    if args.connect:
        raise SystemExit("--cluster boots its own workers; drop --connect")
    counts = _parse_cluster_counts(args.cluster)
    plan = LoadPlan.from_mix(mix)
    schemes = plan.schemes()
    results: Dict[int, LoadReport] = {}
    mode = args.cluster_mode
    for count in counts:
        cluster = ClusterSupervisor(
            workers=count,
            mode=args.cluster_mode,
            schemes=schemes,
            backend=args.backend,
            pool_workers=args.workers,
            max_batch=args.max_batch,
            queue_size=args.queue_size,
        )
        host, port = await cluster.start()
        mode = cluster.mode  # auto resolved to a concrete mode
        try:
            print(f"cluster load: {count} worker(s) [{cluster.mode}] at "
                  f"{host}:{port}, {args.clients} clients x {sessions} "
                  f"sessions/entry on {backend_name}")
            results[count] = await run_load(
                host, port, plan=plan,
                clients=args.clients,
                sessions_per_client=sessions,
                payload=DEFAULT_PAYLOAD,
                backend=args.backend,
            )
        finally:
            await cluster.stop()

    header = (f"{'scheme':16} {'operation':14} {'w':>3} {'sessions':>8} "
              f"{'err':>4} {'reconn':>6} {'sess/s':>8} {'eff':>6}")
    print(header)
    print("-" * len(header))
    failed = False
    for count in counts:
        report = results[count]
        for key, entry in report.entries.items():
            base = results[1].entries.get(key)
            efficiency = ""
            if count > 1 and base is not None and base.sessions_per_second > 0:
                efficiency = (f"{entry.sessions_per_second / (count * base.sessions_per_second):.2f}")
            print(f"{entry.scheme:16} {entry.operation:14} {count:>3} "
                  f"{entry.sessions:>8} {entry.errors:>4} {entry.reconnects:>6} "
                  f"{entry.sessions_per_second:>8.1f} {efficiency:>6}")
        failed = failed or report.total_errors > 0
    cores = os.cpu_count() or 1
    print(f"(scaling measured on {cores} core(s); efficiency = sess/s at N "
          f"workers / N x single-worker rate)")
    if failed:
        print("FAIL: cluster load saw session errors")
        print("perf trajectory NOT updated (run failed)")
        return 1
    if not args.no_emit:
        path = _emit_cluster_records(results, mode, args, backend_name, args.quick)
        total = sum(len(report.entries) for report in results.values())
        print(f"perf trajectory updated: {path} ({total} serve-cluster: records)")
    return 0


async def _run_load_command(args) -> int:
    from repro.field.backend import default_backend_name

    backend_name = default_backend_name(args.backend)
    if args.mix:
        sessions = args.sessions if args.sessions is not None else (4 if args.quick else 12)
        return await _run_traffic_command(args, backend_name, sessions)
    names = [name.strip() for name in args.schemes.split(",") if name.strip()]
    mix = _scheme_mix(names, args.backend)
    sessions = args.sessions if args.sessions is not None else (2 if args.quick else 16)
    if args.cluster:
        return await _run_cluster_load(args, backend_name, mix, sessions)

    server: Optional[ServeServer] = None
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        address = (host, int(port))
    else:
        server = ServeServer(
            schemes=None,  # serve the whole registry; the mix picks from it
            backend=args.backend,
            executor=args.executor,
            workers=args.workers,
            max_batch=args.max_batch,
            queue_size=args.queue_size,
        )
        address = await server.start()

    try:
        print(f"load: {args.clients} clients x {sessions} sessions/entry "
              f"over {len(mix)} mix entries on {backend_name} "
              f"({'in-process server' if server else 'external server'})")
        report = await run_load(
            address[0], address[1], mix,
            clients=args.clients,
            sessions_per_client=sessions,
            payload=DEFAULT_PAYLOAD,
            backend=args.backend,
        )

        header = (f"{'scheme':16} {'operation':14} {'sessions':>8} {'err':>4} "
                  f"{'sess/s':>8} {'p50 ms':>8} {'p90 ms':>8} {'p99 ms':>8}")
        print(header)
        print("-" * len(header))
        for entry in report.entries.values():
            digest = entry.histogram.summary()
            print(f"{entry.scheme:16} {entry.operation:14} {entry.sessions:>8} "
                  f"{entry.errors:>4} {entry.sessions_per_second:>8.1f} "
                  f"{digest['p50_ms']:>8.2f} {digest['p90_ms']:>8.2f} "
                  f"{digest['p99_ms']:>8.2f}")

        failed = report.total_errors > 0
        if failed:
            print(f"FAIL: {report.total_errors} session(s) errored")
        if report.total_overload_rejections:
            print(f"note: {report.total_overload_rejections} overload rejection(s) "
                  "were retried (explicit backpressure, not errors)")

        baseline_key = f"{BASELINE_SCHEME}:{BASELINE_OPERATION}"
        if server is not None and baseline_key in report.entries:
            offline = _offline_baseline(
                max(8, min(16, args.clients * sessions)), args.backend
            )
            group = server.scheduler.stats.group(BASELINE_SCHEME, BASELINE_OPERATION)
            served_rate = group.served_per_second
            roundtrip_rate = report.entries[baseline_key].sessions_per_second
            # The gated quantity: requests the worker pool completed per
            # second of executor busy time.  One server-side request is half
            # an offline session's derivations, so parity with the offline
            # sessions/s is the conservative floor, not the ceiling.
            ratio = served_rate / offline if offline > 0 else float("inf")
            print(f"{BASELINE_SCHEME} {BASELINE_OPERATION}: "
                  f"server-side batched {served_rate:.1f} req/s "
                  f"(round-trip {roundtrip_rate:.1f} sess/s, "
                  f"offline baseline {offline:.1f} sess/s, "
                  f"ratio {ratio:.2f}, largest batch {group.largest_batch})")
            if ratio < args.min_ratio:
                print(f"FAIL: serving ratio {ratio:.2f} below {args.min_ratio}")
                failed = True

        if server is not None and server.protocol_errors:
            print(f"FAIL: server counted {server.protocol_errors} protocol error(s)")
            failed = True

        if not args.no_emit and not failed:
            path = _emit_records(report, args, backend_name, args.quick)
            print(f"perf trajectory updated: {path} "
                  f"({len(report.entries)} serve: records)")
        elif failed:
            print("perf trajectory NOT updated (run failed)")

        return 1 if failed else 0
    finally:
        if server is not None:
            await server.stop()


async def _run_cluster_command(args) -> int:
    from repro.serve.cluster import ClusterSupervisor

    schemes = ([name.strip() for name in args.schemes.split(",") if name.strip()]
               if args.schemes else None)
    supervisor = ClusterSupervisor(
        workers=args.workers,
        host=args.host,
        port=args.port,
        mode=args.mode,
        schemes=schemes,
        backend=args.backend,
        pool_workers=args.pool_workers,
        max_batch=args.max_batch,
        queue_size=args.queue_size,
    )
    address = await supervisor.start()
    names = ", ".join(sorted(supervisor.preset_keys))
    print(f"repro.serve cluster listening on {address[0]}:{address[1]} "
          f"[{supervisor.mode}, {supervisor.workers} workers, pids "
          f"{supervisor.worker_pids()}] serving: {names}")
    print("SIGHUP: rolling restart; SIGTERM/SIGINT: graceful drain and exit")

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    restart_tasks: set = set()

    def _request_rolling_restart() -> None:
        task = loop.create_task(supervisor.rolling_restart())
        restart_tasks.add(task)
        task.add_done_callback(restart_tasks.discard)

    loop.add_signal_handler(signal.SIGHUP, _request_rolling_restart)
    loop.add_signal_handler(signal.SIGTERM, stop.set)
    loop.add_signal_handler(signal.SIGINT, stop.set)
    try:
        await stop.wait()
    finally:
        if restart_tasks:
            await asyncio.gather(*restart_tasks, return_exceptions=True)
        await supervisor.stop(drain=True)
    print("cluster drained and stopped")
    return 0


async def _run_serve_command(args) -> int:
    schemes = ([name.strip() for name in args.schemes.split(",") if name.strip()]
               if args.schemes else None)
    server = ServeServer(
        host=args.host,
        port=args.port,
        schemes=schemes,
        backend=args.backend,
        executor=args.executor,
        workers=args.workers,
        max_batch=args.max_batch,
        queue_size=args.queue_size,
    )
    address = await server.start()
    names = ", ".join(server.scheme_host.scheme_names())
    print(f"repro.serve listening on {address[0]}:{address[1]} "
          f"[{server.scheme_host.backend} backend, {server.scheduler.executor_kind} "
          f"pool x{server.scheduler.workers}] serving: {names}")
    try:
        await server.serve_forever()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        await server.stop()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    runner = {
        "serve": _run_serve_command,
        "cluster": _run_cluster_command,
        "load": _run_load_command,
    }[args.command]
    try:
        return asyncio.run(runner(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
