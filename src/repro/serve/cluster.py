"""Multi-process cluster serving: N workers, one port, one server identity.

The single-process server scales until the GIL (thread executor) or the
process pool's pickle overhead (process executor) caps it.  The cluster
takes the other axis: **N independent worker processes**, each a complete
:class:`~repro.serve.server.ServeServer` with its own event loop, scheduler
and pool, sharing one public listen port.

Two sharing modes, picked automatically:

* ``reuseport`` — every worker binds the same port with ``SO_REUSEPORT``
  and the kernel balances *connections* across the listeners.  Zero code
  in the data path; the scale-out default wherever the option exists
  (Linux, modern BSDs/macOS).
* ``router`` — a lightweight asyncio front
  (:class:`~repro.serve.router.FrontRouter`) terminates the public port
  and proxies frames to per-worker backend ports, consistent-hashing the
  negotiated scheme onto a worker so same-scheme traffic stays on one warm
  registry instance.  The portable fallback, and the scheme-aware path.

What makes N processes *one server* rather than N servers on a shared
port: the supervisor generates every scheme's long-lived key pair **once**
and hands the same key material to each worker
(:class:`~repro.serve.scheduler.SchemeHost` ``preset_keys``).  All workers
therefore advertise identical ``WELCOME`` public keys, so a client that
reconnects — after a worker crash, a graceful drain, or a rolling
restart — lands on any worker and its cached server identity stays valid.

Lifecycle, run by :class:`ClusterSupervisor`:

* **crash restart** — a monitor polls worker liveness and respawns dead
  workers with bounded exponential backoff (0.1 s doubling to 2 s);
* **graceful drain** — ``SIGTERM`` to a worker triggers
  ``server.stop(drain=True)``: stop accepting, answer everything already
  submitted, refuse late arrivals with explicit ``ERR_UNAVAILABLE``
  frames, flush, exit;
* **rolling restart** — drain and respawn one worker at a time, waiting
  for each replacement to report ready, so the port never stops serving.

Workers run **thread** executors only: they are daemonic processes (so a
dying supervisor can never leak them) and daemonic processes may not have
children — and the cluster already owns the process-level parallelism the
process executor existed to provide.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError
from repro.serve.router import FrontRouter
from repro.serve.server import ServeServer

__all__ = ["WorkerSpec", "ClusterSupervisor", "reuseport_available"]


def reuseport_available() -> bool:
    """Whether this platform exposes ``SO_REUSEPORT`` for kernel balancing."""
    return hasattr(socket, "SO_REUSEPORT")


@dataclass
class WorkerSpec:
    """Everything one worker process needs — picklable, crosses the spawn.

    ``epoch`` increments on every respawn of the same slot; workers tag
    their lifecycle events with it so the supervisor can discard messages
    from a worker generation it already replaced.
    """

    index: int
    epoch: int
    host: str
    port: int
    reuse_port: bool
    schemes: Optional[Tuple[str, ...]]
    backend: Optional[str]
    executor: str
    pool_workers: Optional[int]
    max_batch: int
    queue_size: int
    #: scheme name -> SchemeKeyPair, generated once by the supervisor so
    #: every worker serves the same long-lived server identity.
    preset_keys: Dict[str, Any] = field(default_factory=dict)


async def _worker_serve(spec: WorkerSpec, events) -> None:
    server = ServeServer(
        host=spec.host,
        port=spec.port,
        schemes=spec.schemes,
        backend=spec.backend,
        executor=spec.executor,
        workers=spec.pool_workers,
        max_batch=spec.max_batch,
        queue_size=spec.queue_size,
        reuse_port=spec.reuse_port,
        preset_keys=spec.preset_keys,
    )
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop_event.set)
    host, port = await server.start()
    events.put(("ready", spec.index, spec.epoch, host, port))
    await stop_event.wait()
    # SIGTERM is the graceful path: everything already accepted is answered
    # and flushed before the process exits; late frames get an explicit
    # ERR_UNAVAILABLE, never a silently closed connection.
    await server.stop(drain=True)
    events.put(("drained", spec.index, spec.epoch))


def _worker_main(spec: WorkerSpec, events) -> None:
    """Process entry point (module-level so the spawn context can pickle it)."""
    try:
        asyncio.run(_worker_serve(spec, events))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C on a worker
        pass


def _generate_preset_keys(
    schemes: Optional[Sequence[str]], backend: Optional[str], rng
) -> Dict[str, Any]:
    """Create every served scheme's long-lived key pair, synchronously.

    Runs in an executor thread from the supervisor: lazy per-worker keygen
    would hand each worker a *different* identity and break failover."""
    from repro.serve.scheduler import SchemeHost

    host = SchemeHost(schemes=schemes, backend=backend, rng=rng)
    return {name: host.server_key(name) for name in host.scheme_names()}


class _Worker:
    """Supervisor-side state for one worker slot."""

    __slots__ = (
        "spec", "process", "ready", "address", "phase", "backoff", "restarts"
    )

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.ready = asyncio.Event()
        self.address: Optional[Tuple[str, int]] = None
        self.phase = "stopped"  # stopped | starting | running | restarting
        self.backoff = 0.1
        self.restarts = 0


class ClusterSupervisor:
    """Spawn, monitor and restart N serve workers behind one public port."""

    #: Crash-restart backoff bounds (seconds): doubles from the floor to the
    #: cap, resets to the floor once the replacement reports ready.
    BACKOFF_FLOOR = 0.1
    BACKOFF_CAP = 2.0
    #: How long a spawned worker may take to report ready (imports dominate).
    READY_TIMEOUT = 30.0

    def __init__(
        self,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        mode: str = "auto",
        schemes: Optional[Sequence[str]] = None,
        backend: Optional[str] = None,
        executor: str = "thread",
        pool_workers: Optional[int] = None,
        max_batch: int = 32,
        queue_size: int = 256,
        rng=None,
        vnodes: int = 64,
    ):
        if workers < 1:
            raise ParameterError("a cluster needs at least one worker")
        if mode not in ("auto", "reuseport", "router"):
            raise ParameterError(f"unknown cluster mode {mode!r}")
        if executor != "thread":
            # Workers are daemonic (a dying supervisor must not leak them)
            # and daemonic processes may not have children; the cluster is
            # the process-level parallelism anyway.
            raise ParameterError(
                "cluster workers run thread executors only; the worker "
                "processes themselves are the process-level parallelism"
            )
        if mode == "reuseport" and not reuseport_available():
            raise ParameterError("SO_REUSEPORT is not available on this platform")
        if schemes is not None:
            # Fail fast on typos: a name the registry does not know would
            # otherwise only surface as an error frame at HELLO time.
            from repro.pkc.registry import available_schemes

            unknown = sorted(set(schemes) - set(available_schemes()))
            if unknown:
                raise ParameterError(
                    f"unknown scheme(s) {unknown}; "
                    f"available: {list(available_schemes())}"
                )
        self.workers = workers
        self.bind_host = host
        self.bind_port = port
        self.requested_mode = mode
        self.mode = mode if mode != "auto" else (
            "reuseport" if reuseport_available() else "router"
        )
        self.schemes = tuple(schemes) if schemes is not None else None
        self.backend = backend
        self.executor = executor
        self.pool_workers = pool_workers
        self.max_batch = max_batch
        self.queue_size = queue_size
        self._rng = rng
        self.preset_keys: Dict[str, Any] = {}
        self.router: Optional[FrontRouter] = None
        self._vnodes = vnodes
        self._ctx = multiprocessing.get_context("spawn")
        self._events: Optional[Any] = None
        self._workers: List[_Worker] = []
        self._anchor: Optional[socket.socket] = None
        self._pump_task: Optional["asyncio.Task"] = None
        self._monitor_task: Optional["asyncio.Task"] = None
        self._restart_tasks: set = set()
        self._stopping = False
        self._started = False

    # -- observability -------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The public ``(host, port)`` clients connect to."""
        if not self._started:
            raise ParameterError("cluster is not running")
        if self.mode == "router":
            assert self.router is not None
            return self.router.address
        return self.bind_host, self.bind_port

    @property
    def total_restarts(self) -> int:
        return sum(worker.restarts for worker in self._workers)

    def worker_pids(self) -> List[Optional[int]]:
        return [
            worker.process.pid if worker.process is not None else None
            for worker in self._workers
        ]

    def worker_phases(self) -> List[str]:
        return [worker.phase for worker in self._workers]

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        if self._started:
            raise ParameterError("cluster already started")
        self._stopping = False
        loop = asyncio.get_running_loop()
        # Key generation is the one genuinely heavy start-up step; it runs
        # off the loop so a supervisor embedded in a larger process (tests,
        # the CLI's bench sweep) stays responsive.
        self.preset_keys = await loop.run_in_executor(
            None, _generate_preset_keys, self.schemes, self.backend, self._rng
        )
        self._events = self._ctx.Queue()
        if self.mode == "reuseport":
            # Resolve port 0 once and hold the bound (never listening)
            # socket for the cluster's lifetime: TCP lookup only considers
            # listeners, so the anchor never receives traffic, but it keeps
            # the port reserved across worker restarts.
            self._anchor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._anchor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            self._anchor.bind((self.bind_host, self.bind_port))
            self.bind_port = self._anchor.getsockname()[1]
        else:
            self.router = FrontRouter(
                host=self.bind_host,
                port=self.bind_port,
                workers=self.workers,
                vnodes=self._vnodes,
            )
        self._workers = [
            _Worker(self._make_spec(index, epoch=0)) for index in range(self.workers)
        ]
        self._pump_task = loop.create_task(self._pump_events())
        for worker in self._workers:
            self._spawn(worker)
        try:
            await asyncio.gather(
                *(self._wait_ready(worker) for worker in self._workers)
            )
        except Exception:
            await self.stop(drain=False)
            raise
        if self.router is not None:
            await self.router.start()
        self._monitor_task = loop.create_task(self._monitor())
        self._started = True
        return self.address

    async def stop(self, drain: bool = True) -> None:
        """Stop the cluster.  ``drain=True`` SIGTERMs workers (graceful:
        in-flight requests answered and flushed); ``drain=False`` kills."""
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            self._monitor_task = None
        for task in list(self._restart_tasks):
            task.cancel()
        if self._restart_tasks:
            await asyncio.gather(*self._restart_tasks, return_exceptions=True)
        for worker in self._workers:
            process = worker.process
            if process is None or not process.is_alive():
                continue
            if drain:
                assert process.pid is not None
                os.kill(process.pid, signal.SIGTERM)
            else:
                process.kill()
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            process = worker.process
            if process is None:
                continue
            await loop.run_in_executor(None, process.join, 15.0)
            if process.is_alive():  # pragma: no cover - drain wedged
                process.kill()
                await loop.run_in_executor(None, process.join, 5.0)
            worker.phase = "stopped"
        if self.router is not None:
            await self.router.stop()
            self.router = None
        if self._events is not None:
            self._events.put(None)  # releases the pump's blocking get
        if self._pump_task is not None:
            await self._pump_task
            self._pump_task = None
        if self._events is not None:
            self._events.close()
            self._events = None
        if self._anchor is not None:
            self._anchor.close()
            self._anchor = None
        self._started = False

    async def __aenter__(self) -> "ClusterSupervisor":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def rolling_restart(self) -> None:
        """Drain and replace one worker at a time; the port never goes dark."""
        if not self._started:
            raise ParameterError("cluster is not running")
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            worker.phase = "restarting"  # the monitor must not race us
            if self.router is not None:
                self.router.remove_backend(worker.spec.index)
            process = worker.process
            if process is not None and process.is_alive():
                assert process.pid is not None
                os.kill(process.pid, signal.SIGTERM)
                await loop.run_in_executor(None, process.join, 15.0)
                if process.is_alive():  # pragma: no cover - drain wedged
                    process.kill()
                    await loop.run_in_executor(None, process.join, 5.0)
            self._respawn(worker)
            await self._wait_ready(worker)

    async def kill_worker(self, index: int) -> None:
        """SIGKILL one worker — the crash the monitor exists to absorb.

        Test helper: after this returns, the monitor notices the death,
        removes the worker from routing, and respawns it with backoff."""
        worker = self._workers[index]
        if worker.process is not None and worker.process.is_alive():
            worker.process.kill()
            await asyncio.get_running_loop().run_in_executor(
                None, worker.process.join, 5.0
            )

    # -- internals -----------------------------------------------------------------

    def _make_spec(self, index: int, epoch: int) -> WorkerSpec:
        if self.mode == "reuseport":
            host, port, reuse = self.bind_host, self.bind_port, True
        else:
            # Router mode: each worker binds its own ephemeral backend port
            # on loopback; only the front's port is public.
            host, port, reuse = "127.0.0.1", 0, False
        return WorkerSpec(
            index=index,
            epoch=epoch,
            host=host,
            port=port,
            reuse_port=reuse,
            schemes=self.schemes,
            backend=self.backend,
            executor=self.executor,
            pool_workers=self.pool_workers,
            max_batch=self.max_batch,
            queue_size=self.queue_size,
            preset_keys=self.preset_keys,
        )

    def _spawn(self, worker: _Worker) -> None:
        worker.ready = asyncio.Event()
        worker.address = None
        worker.phase = "starting"
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker.spec, self._events),
            daemon=True,
            name=f"repro-serve-w{worker.spec.index}e{worker.spec.epoch}",
        )
        process.start()
        worker.process = process

    def _respawn(self, worker: _Worker) -> None:
        worker.spec = self._make_spec(worker.spec.index, worker.spec.epoch + 1)
        worker.restarts += 1
        self._spawn(worker)

    async def _wait_ready(self, worker: _Worker) -> None:
        await asyncio.wait_for(worker.ready.wait(), timeout=self.READY_TIMEOUT)

    async def _pump_events(self) -> None:
        """Forward worker lifecycle events from the mp queue into the loop."""
        assert self._events is not None
        loop = asyncio.get_running_loop()
        while True:
            try:
                event = await loop.run_in_executor(None, self._events.get)
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            if event is None:  # stop() sentinel
                return
            kind, index, epoch = event[0], event[1], event[2]
            worker = self._workers[index]
            if epoch != worker.spec.epoch:
                continue  # stale message from a replaced generation
            if kind == "ready":
                worker.address = (event[3], event[4])
                worker.phase = "running"
                worker.backoff = self.BACKOFF_FLOOR
                worker.ready.set()
                if self.router is not None:
                    self.router.set_backend(index, worker.address)

    async def _monitor(self) -> None:
        """Notice dead workers and restart them with bounded backoff."""
        while True:
            await asyncio.sleep(0.05)
            if self._stopping:
                return
            for worker in self._workers:
                if worker.phase not in ("starting", "running"):
                    continue
                process = worker.process
                if process is None or process.is_alive():
                    continue
                worker.phase = "restarting"
                if self.router is not None:
                    self.router.remove_backend(worker.spec.index)
                task = asyncio.get_running_loop().create_task(
                    self._restart_after_crash(worker)
                )
                self._restart_tasks.add(task)
                task.add_done_callback(self._restart_tasks.discard)

    async def _restart_after_crash(self, worker: _Worker) -> None:
        delay = worker.backoff
        worker.backoff = min(worker.backoff * 2, self.BACKOFF_CAP)
        await asyncio.sleep(delay)
        if self._stopping:
            return
        self._respawn(worker)
        try:
            await self._wait_ready(worker)
        except asyncio.TimeoutError:  # pragma: no cover - spawn wedged
            # Leave phase as "starting"; the monitor sees the dead process
            # (if it died) and schedules another attempt with more backoff.
            pass
