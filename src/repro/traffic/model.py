"""Declarative traffic mixes: popularity, arrivals, operation shape.

A :class:`TrafficMix` is pure data — no sockets, no clocks — describing how
a population of clients exercises the serving stack:

* **Scheme popularity** is Zipf-distributed: with exponent ``s``, the
  ``r``-th most popular scheme draws weight ``1 / r**s`` (``s = 0`` is
  uniform).  Real PKI traffic is heavily skewed toward a few dominant
  suites; skew is also what makes the server's same-scheme batching
  effective, so it must be part of the model rather than an accident of
  test ordering.

* **Arrivals are bursty**: each client emits a geometrically-sized burst
  of back-to-back sessions, then sleeps an exponential off-gap.  The
  compound process has the high peak-to-mean ratio that exposes queueing
  tails (p999) a constant-rate harness never sees.

* **The operation mix** splits traffic between long-lived secure channels
  (open once, many authenticated records with per-record think time,
  transparent rekeys) and the one-shot operations the scheme supports
  (key agreement, encryption, signature).

Everything that consumes randomness takes an explicit ``random.Random`` —
a mix plus a seed is a reproducible workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ParameterError

__all__ = [
    "zipf_weights",
    "ArrivalModel",
    "ChannelProfile",
    "TrafficMix",
    "MIXES",
    "get_mix",
]


def zipf_weights(count: int, exponent: float = 1.0) -> List[float]:
    """Normalised Zipf weights for ``count`` ranks: ``w_r ∝ 1 / r**exponent``.

    >>> [round(w, 3) for w in zipf_weights(3, 1.0)]
    [0.545, 0.273, 0.182]
    >>> zipf_weights(4, 0.0)
    [0.25, 0.25, 0.25, 0.25]
    """
    if count < 1:
        raise ParameterError("zipf_weights needs at least one rank")
    raw = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


@dataclass(frozen=True)
class ArrivalModel:
    """A bursty arrival process: geometric bursts, exponential off-gaps.

    ``mean_burst`` sessions arrive back-to-back, then the client idles an
    exponential gap with mean ``mean_gap_seconds``.  ``mean_burst = 1`` with
    a gap of 0 degenerates to the classic closed-loop hammer.
    """

    mean_burst: float = 4.0
    mean_gap_seconds: float = 0.01

    def burst_size(self, rng) -> int:
        """One burst's session count (geometric, mean ``mean_burst``, >= 1)."""
        if self.mean_burst <= 1.0:
            return 1
        size = 1
        stop = 1.0 / self.mean_burst
        while rng.random() > stop:  # audit: allow[CT101] workload-shape draw, not key material
            size += 1
        return size

    def gap_seconds(self, rng) -> float:
        """One off-gap between bursts (exponential, mean ``mean_gap_seconds``)."""
        if self.mean_gap_seconds <= 0.0:
            return 0.0
        return rng.expovariate(1.0 / self.mean_gap_seconds)


@dataclass(frozen=True)
class ChannelProfile:
    """The shape of one long-lived channel session.

    A channel carries a geometric number of records (mean
    ``mean_messages``, floor ``min_messages``) of ``payload_bytes`` each,
    pausing ``think_seconds`` between records — the think time is what
    makes channels *long-lived* (they overlap other clients' traffic)
    instead of a burst with extra steps.  ``rekey_after_messages`` forces
    the client's proactive rekey cadence so traffic runs exercise
    transparent rekeys without waiting out the 1024-record default.
    """

    mean_messages: float = 24.0
    min_messages: int = 4
    payload_bytes: int = 32
    think_seconds: float = 0.0
    rekey_after_messages: Optional[int] = None

    def message_count(self, rng) -> int:
        """One channel's record count (geometric around the mean, floored)."""
        if self.mean_messages <= self.min_messages:
            return self.min_messages
        count = 1
        stop = 1.0 / self.mean_messages
        while rng.random() > stop:  # audit: allow[CT101] workload-shape draw, not key material
            count += 1
        return max(self.min_messages, count)


@dataclass(frozen=True)
class TrafficMix:
    """One named workload: who talks to which scheme, how, and how often.

    ``channel_weight`` is the probability a session is a secure channel;
    the rest draws a one-shot operation from ``oneshot_weights``, filtered
    to what the chosen scheme actually supports (a scheme with no matching
    capability falls back to channels, which every registry scheme can
    bootstrap).
    """

    name: str
    schemes: Tuple[str, ...]
    zipf_exponent: float = 1.0
    channel_weight: float = 0.7
    oneshot_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "key-agreement": 0.5,
            "encryption": 0.3,
            "signature": 0.2,
        }
    )
    arrivals: ArrivalModel = field(default_factory=ArrivalModel)
    channels: ChannelProfile = field(default_factory=ChannelProfile)

    def scheme_weights(self) -> List[Tuple[str, float]]:
        """``(scheme, weight)`` pairs — Zipf over the declared order."""
        weights = zipf_weights(len(self.schemes), self.zipf_exponent)
        return list(zip(self.schemes, weights))

    def pick_scheme(self, rng) -> str:
        roll = rng.random()
        cumulative = 0.0
        pairs = self.scheme_weights()
        for scheme, weight in pairs:
            cumulative += weight
            if roll < cumulative:  # audit: allow[CT101] workload-shape draw, not key material
                return scheme
        return pairs[-1][0]

    def pick_session_kind(self, rng, capabilities) -> str:
        """``"channel"`` or a one-shot operation the scheme supports."""
        if rng.random() < self.channel_weight:  # audit: allow[CT101] workload-shape draw, not key material
            return "channel"
        supported = {
            operation: weight
            for operation, weight in self.oneshot_weights.items()
            if _CAPABILITY_BY_OPERATION[operation] in capabilities
        }
        if not supported:
            return "channel"  # every scheme can bootstrap a channel
        roll = rng.random() * sum(supported.values())
        cumulative = 0.0
        for operation, weight in supported.items():
            cumulative += weight
            if roll < cumulative:  # audit: allow[CT101] workload-shape draw, not key material
                return operation
        return next(reversed(supported))


#: One-shot operation name -> the scheme capability it needs (mirrors
#: ``repro.serve.session.CAPABILITY_BY_KIND`` for the client-session verbs).
_CAPABILITY_BY_OPERATION = {
    "key-agreement": "key-agreement",
    "encryption": "encryption",
    "signature": "signature",
}

#: The paper's four deployed cryptosystems, most to least popular.
_HEADLINE = ("ceilidh-170", "ecdh-p160", "rsa-1024", "xtr-170")

#: The named presets ``python -m repro.serve load --mix`` accepts.
MIXES: Dict[str, TrafficMix] = {
    # The flagship: skewed popularity, bursty arrivals, channel-dominated —
    # the service-shaped workload the channel subsystem exists for.  Rekey
    # every 16 records so every multi-burst channel rotates keys at least
    # once per run.
    "zipf-bursty": TrafficMix(
        name="zipf-bursty",
        schemes=_HEADLINE,
        zipf_exponent=1.0,
        channel_weight=0.7,
        arrivals=ArrivalModel(mean_burst=4.0, mean_gap_seconds=0.01),
        channels=ChannelProfile(
            mean_messages=24.0,
            min_messages=4,
            think_seconds=0.0005,
            rekey_after_messages=16,
        ),
    ),
    # Uniform popularity, no bursts: the control workload — same engine,
    # no skew, for separating the effect of the traffic shape from the
    # effect of the stack.
    "uniform-steady": TrafficMix(
        name="uniform-steady",
        schemes=_HEADLINE,
        zipf_exponent=0.0,
        channel_weight=0.5,
        arrivals=ArrivalModel(mean_burst=1.0, mean_gap_seconds=0.0),
        channels=ChannelProfile(mean_messages=16.0, rekey_after_messages=32),
    ),
    # Nearly everything rides channels with long lifetimes — the steady-
    # state regime where handshake cost should vanish into the noise.
    "channel-heavy": TrafficMix(
        name="channel-heavy",
        schemes=_HEADLINE,
        zipf_exponent=1.0,
        channel_weight=0.95,
        arrivals=ArrivalModel(mean_burst=2.0, mean_gap_seconds=0.005),
        channels=ChannelProfile(
            mean_messages=64.0, min_messages=8, rekey_after_messages=24
        ),
    ),
    # No channels at all: the one-shot baseline the amortisation claim is
    # measured against.
    "oneshot-zipf": TrafficMix(
        name="oneshot-zipf",
        schemes=_HEADLINE,
        zipf_exponent=1.0,
        channel_weight=0.0,
        arrivals=ArrivalModel(mean_burst=4.0, mean_gap_seconds=0.01),
    ),
}


def get_mix(name: str) -> TrafficMix:
    """The named preset, or :class:`~repro.errors.ParameterError`."""
    try:
        return MIXES[name]
    except KeyError:
        raise ParameterError(
            f"unknown traffic mix {name!r}; presets: {', '.join(sorted(MIXES))}"
        ) from None
