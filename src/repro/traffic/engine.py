"""The traffic engine: compile a mix into schedules, drive a live server.

:func:`run_traffic` is the realistic counterpart of
:func:`repro.serve.client.run_load`: instead of phases of identical
sessions, every client walks its own seeded schedule drawn from a
:class:`~repro.traffic.model.TrafficMix` — Zipf-weighted scheme choice,
channel sessions interleaved with one-shot operations, bursty pacing — so
the server sees overlapping mixed-scheme pressure with realistic think
time.

**Accounting is strict.**  Every engine-level request increments
``submitted`` and must end as exactly one of ``responses`` (a verified
success) or ``explicit_errors`` (a typed error frame the server chose to
send: quota, overload).  Anything else raises out of the engine — the run
fails loudly, the counters are asserted equal by callers and tests, and a
silently dropped request is therefore structurally impossible to miss.
Recoveries the channel layer performs under the covers (transparent
rekeys, crash-restart reopens) are surfaced as counters, not hidden.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    OverloadedError,
    ParameterError,
    ProtocolError,
    QuotaError,
)
from repro.perf.latency import LatencyHistogram
from repro.serve.client import (
    SESSION_METHODS,
    ChannelSession,
    ServeClient,
    _reestablish,
)
from repro.traffic.model import TrafficMix

__all__ = [
    "TrafficEntry",
    "TrafficReport",
    "run_traffic",
    "CHANNEL_OPEN",
    "CHANNEL_MESSAGE",
]

#: Entry kinds the engine records for channel traffic (one-shot operations
#: keep their operation names as kinds).
CHANNEL_OPEN = "channel-open"
CHANNEL_MESSAGE = "channel-message"

#: How many times one engine-level request retries after an explicit
#: quota/overload refusal before the run fails.
REFUSAL_RETRIES = 400
#: Pause after an explicit refusal (seconds) — long enough for the default
#: token bucket (512 tokens/s) to refill a few tokens.
REFUSAL_BACKOFF = 0.01


@dataclass
class TrafficEntry:
    """Aggregated outcome of one ``(scheme, kind)`` traffic cell."""

    scheme: str
    kind: str
    count: int = 0
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: Explicit refusals attributed to this cell (quota + overload frames).
    refusals: int = 0

    @property
    def key(self) -> str:
        return f"{self.scheme}:{self.kind}"

    def rate(self, wall_seconds: float) -> float:
        """Completions per second of *run* wall clock (the cells share it)."""
        return self.count / wall_seconds if wall_seconds > 0 else 0.0


@dataclass
class TrafficReport:
    """Everything one :func:`run_traffic` run measured."""

    mix: str
    clients: int
    seed: int
    entries: Dict[str, TrafficEntry] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: Engine-level requests started (each ends as a response or an
    #: explicit error; the engine raises on anything else).
    submitted: int = 0
    #: Verified successes.
    responses: int = 0
    #: Typed error frames the server chose to send (quota + overload).
    explicit_errors: int = 0
    rejected_quota: int = 0
    overload_rejections: int = 0
    channels_opened: int = 0
    channel_messages: int = 0
    rekeys: int = 0
    #: Crash/drain recoveries: reconnect + fresh channel, client-invisible.
    reopens: int = 0
    oneshots: int = 0

    def entry(self, scheme: str, kind: str) -> TrafficEntry:
        key = f"{scheme}:{kind}"
        found = self.entries.get(key)
        if found is None:
            found = self.entries[key] = TrafficEntry(scheme, kind)
        return found

    @property
    def accounted(self) -> bool:
        """The strict accounting identity the acceptance tests assert."""
        return self.submitted == self.responses + self.explicit_errors

    def rate_of(self, scheme: str, kind: str) -> float:
        entry = self.entries.get(f"{scheme}:{kind}")
        return entry.rate(self.wall_seconds) if entry else 0.0

    def handshake_histogram(self) -> LatencyHistogram:
        """Latencies of every channel handshake (the amortised cost)."""
        merged = LatencyHistogram()
        for entry in self.entries.values():
            if entry.kind == CHANNEL_OPEN:
                merged.merge(entry.histogram)
        return merged

    def steady_state_histogram(self) -> LatencyHistogram:
        """Latencies of every channel record (the steady-state cost)."""
        merged = LatencyHistogram()
        for entry in self.entries.values():
            if entry.kind == CHANNEL_MESSAGE:
                merged.merge(entry.histogram)
        return merged


@dataclass(frozen=True)
class _PlannedSession:
    """One schedule slot: a scheme plus what to do on it."""

    scheme: str
    kind: str  # "channel" or a one-shot operation name
    messages: int = 0  # channel record count (channels only)


def compile_schedule(
    mix: TrafficMix, rng: "random.Random", sessions: int, capabilities
) -> List[_PlannedSession]:
    """Draw one client's session schedule from the mix.

    Pure given the rng — the schedule (schemes, kinds, channel lengths) is
    fixed before any socket exists, so wire timing never perturbs *what*
    the run does, only how fast it completes.

    ``capabilities`` maps scheme name -> capability tuple, used to restrict
    one-shot draws to operations the scheme implements.
    """
    planned = []
    for _ in range(sessions):
        scheme = mix.pick_scheme(rng)
        kind = mix.pick_session_kind(rng, capabilities[scheme])
        if kind == "channel":
            planned.append(
                _PlannedSession(
                    scheme, "channel", messages=mix.channels.message_count(rng)
                )
            )
        else:
            planned.append(_PlannedSession(scheme, kind))
    return planned


async def _negotiate(client: ServeClient, scheme: str, report: TrafficReport) -> None:
    """(Re)negotiate ``scheme``, absorbing worker-lifecycle failures."""
    if client.scheme_name == scheme and client.connected:
        return
    from repro.serve.client import LoadEntry

    probe = LoadEntry(scheme, "negotiate")
    await _reestablish(client, probe, attempts=20)
    report.reopens += probe.reconnects


async def _with_refusal_retries(report, entry, coroutine_factory):
    """Run one engine-level request; absorb *explicit* refusals by retrying.

    Each attempt is one ``submitted``; a quota/overload refusal is one
    ``explicit_errors`` (the server answered — nothing was dropped) and the
    request is retried after a pause.  Success records the latency.  Any
    other exception propagates: the run must fail loudly on real errors.
    """
    for _ in range(REFUSAL_RETRIES):
        report.submitted += 1
        try:
            latency = await coroutine_factory()
        except QuotaError:
            report.explicit_errors += 1
            report.rejected_quota += 1
            entry.refusals += 1
            await asyncio.sleep(REFUSAL_BACKOFF)
            continue
        except OverloadedError:
            report.explicit_errors += 1
            report.overload_rejections += 1
            entry.refusals += 1
            await asyncio.sleep(REFUSAL_BACKOFF)
            continue
        report.responses += 1
        entry.count += 1
        entry.histogram.add(latency)
        return
    raise ProtocolError(
        f"{entry.key}: still refused after {REFUSAL_RETRIES} explicit "
        f"quota/overload answers"
    )


async def _run_channel_session(
    client: ServeClient,
    planned: _PlannedSession,
    mix: TrafficMix,
    rng: "random.Random",
    report: TrafficReport,
) -> None:
    """One channel lifetime: open, N records with think time, close."""
    profile = mix.channels
    session: Optional[ChannelSession] = None

    async def _open() -> float:
        nonlocal session
        session = ChannelSession(
            client, rng=rng, rekey_after_messages=profile.rekey_after_messages
        )
        return await session.open()

    await _with_refusal_retries(
        report, report.entry(planned.scheme, CHANNEL_OPEN), _open
    )
    assert session is not None
    report.channels_opened += 1

    entry = report.entry(planned.scheme, CHANNEL_MESSAGE)
    rekeys_before = session.rekeys
    reopens_before = session.reopens
    for index in range(planned.messages):
        payload = rng.randbytes(profile.payload_bytes)
        await _with_refusal_retries(
            report, entry, lambda payload=payload: session.send(payload)
        )
        report.channel_messages += 1
        if profile.think_seconds > 0 and index + 1 < planned.messages:
            await asyncio.sleep(profile.think_seconds)
    report.rekeys += session.rekeys - rekeys_before
    report.reopens += session.reopens - reopens_before

    # Close is best-effort bookkeeping, not a measured request: a crash
    # between the last record and the close frame just leaves the channel
    # to idle eviction.
    try:
        await session.close()
    except Exception:  # noqa: BLE001 - the channel is done either way
        await client.close()


async def _run_oneshot_session(
    client: ServeClient,
    planned: _PlannedSession,
    rng: "random.Random",
    report: TrafficReport,
    payload: bytes,
) -> None:
    entry = report.entry(planned.scheme, planned.kind)

    async def _once() -> float:
        method = getattr(client, SESSION_METHODS[planned.kind])
        try:
            if planned.kind == "key-agreement":
                return await method(rng)
            return await method(payload, rng)
        except (ProtocolError, OSError):
            # Worker lifecycle (crash, drain): reconnect and retry the
            # session once on the fresh connection — the cluster's preset
            # keys keep the renegotiated identity valid.
            report.reopens += 1
            await client.close()
            await _negotiate(client, planned.scheme, report)
            if planned.kind == "key-agreement":
                return await method(rng)
            return await method(payload, rng)

    await _with_refusal_retries(report, entry, _once)
    report.oneshots += 1


async def _client_loop(
    index: int,
    host: str,
    port: int,
    mix: TrafficMix,
    schedule: List[_PlannedSession],
    seed: int,
    report: TrafficReport,
    payload: bytes,
    backend: Optional[str],
) -> None:
    """One client's whole run: its schedule at its burst/gap pacing."""
    rng = random.Random(f"traffic:{mix.name}:{seed}:{index}")  # audit: allow[RC201] seeded on purpose: reproducible workloads, no key material
    client = ServeClient(host, port, backend=backend)
    await client.connect()
    try:
        burst_left = mix.arrivals.burst_size(rng)
        for planned in schedule:
            await _negotiate(client, planned.scheme, report)
            if planned.kind == "channel":
                await _run_channel_session(client, planned, mix, rng, report)
            else:
                await _run_oneshot_session(client, planned, rng, report, payload)
            burst_left -= 1
            if burst_left <= 0:
                gap = mix.arrivals.gap_seconds(rng)
                if gap > 0:
                    await asyncio.sleep(gap)
                burst_left = mix.arrivals.burst_size(rng)
    finally:
        await client.close()


async def run_traffic(
    host: str,
    port: int,
    mix: TrafficMix,
    clients: int = 8,
    sessions_per_client: int = 12,
    seed: int = 0,
    payload: bytes = b"traffic model payload...........",
    backend: Optional[str] = None,
) -> TrafficReport:
    """Drive ``clients`` seeded schedules from ``mix`` against a server.

    Deterministic given ``(mix, clients, sessions_per_client, seed)``: each
    client's schedule and payloads come from its own
    ``random.Random(f"traffic:{mix}:{seed}:{i}")``, so two runs issue
    identical requests (wall-clock timing, and therefore rates, still
    reflect the machine).
    """
    if clients < 1:
        raise ParameterError("the traffic engine needs at least one client")
    if sessions_per_client < 1:
        raise ParameterError("the traffic engine needs at least one session")

    from repro.pkc.registry import get_scheme

    capabilities = {
        name: tuple(get_scheme(name, backend=backend).capabilities)
        for name in mix.schemes
    }
    schedules = [
        compile_schedule(
            mix,
            random.Random(f"traffic-schedule:{mix.name}:{seed}:{index}"),  # audit: allow[RC201] seeded on purpose: reproducible workloads, no key material
            sessions_per_client,
            capabilities,
        )
        for index in range(clients)
    ]
    report = TrafficReport(mix=mix.name, clients=clients, seed=seed)
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _client_loop(
                index, host, port, mix, schedule, seed, report, payload, backend
            )
            for index, schedule in enumerate(schedules)
        )
    )
    report.wall_seconds = time.perf_counter() - started
    return report
