"""Seeded traffic models for the serving stack.

The load harness in :mod:`repro.serve.client` drives phases of identical
back-to-back sessions — ideal for isolating one ``(scheme, operation)``
cost, unrepresentative of a deployed key-exchange service, where a few
schemes dominate (Zipf popularity), requests arrive in bursts rather than
a steady stream, and most traffic rides long-lived secure channels whose
handshake cost is amortised over many records.

This package supplies that missing realism as *data plus one engine*:

* :mod:`repro.traffic.model` — declarative :class:`~repro.traffic.model.TrafficMix`
  descriptions (scheme popularity, arrival process, operation mix, channel
  lifetimes) and the named presets (``zipf-bursty`` & co.);
* :mod:`repro.traffic.engine` — :func:`~repro.traffic.engine.run_traffic`,
  which compiles a mix into per-client seeded schedules and drives a live
  server, producing a :class:`~repro.traffic.engine.TrafficReport` with
  per-scheme latency percentiles, a handshake vs steady-state split, and
  strict accounting (every submitted request is a response or an explicit
  error frame).

Everything is deterministically seeded: two runs with the same mix, seed
and client count generate identical request schedules, so traffic results
are comparable across commits the same way the offline benchmarks are.
"""

from repro.traffic.model import (  # noqa: F401
    MIXES,
    ArrivalModel,
    ChannelProfile,
    TrafficMix,
    get_mix,
    zipf_weights,
)
from repro.traffic.engine import (  # noqa: F401
    TrafficEntry,
    TrafficReport,
    run_traffic,
)

__all__ = [
    "MIXES",
    "ArrivalModel",
    "ChannelProfile",
    "TrafficMix",
    "get_mix",
    "zipf_weights",
    "TrafficEntry",
    "TrafficReport",
    "run_traffic",
]
