"""Exception hierarchy used across the reproduction library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can distinguish library failures from plain
Python bugs with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ParameterError(ReproError):
    """A cryptographic or simulator parameter is malformed or inconsistent."""


class NotInvertibleError(ReproError):
    """Requested a modular inverse of an element that has none."""

    def __init__(self, value: int, modulus: int):
        super().__init__(f"{value} is not invertible modulo {modulus}")
        self.value = value
        self.modulus = modulus


class FieldMismatchError(ReproError):
    """Tried to combine elements that live in different fields."""


class NotOnCurveError(ReproError):
    """A point's coordinates do not satisfy the curve equation."""


class CompressionError(ReproError):
    """A torus element (or compressed pair) hit the exceptional set of rho/psi."""


class NotInTorusError(ReproError):
    """An Fp6 element is not a member of the algebraic torus T6(Fp)."""


class SignatureError(ReproError):
    """A signature failed to verify or could not be produced."""


class UnsupportedOperationError(ReproError):
    """A PKC scheme was asked for a protocol it does not implement.

    XTR ships only key agreement, RSA has no Diffie-Hellman-style agreement;
    the unified scheme layer signals the gap with this error instead of
    silently degrading."""


class DecryptionError(ReproError):
    """Ciphertext could not be decrypted (wrong key, corrupted data...)."""


class ServeError(ReproError):
    """Base class for errors raised by the online serving layer (``repro.serve``)."""


class ProtocolError(ServeError):
    """A wire frame violated the serving protocol.

    Truncated or oversized frames, unknown opcodes, version mismatches and
    malformed payloads all land here; the peer that detects the violation
    reports (or receives) an error frame and closes the connection."""


class OverloadedError(ServeError):
    """The server's bounded request queue is full — explicit backpressure.

    Raised locally when the scheduler rejects a submission and on the client
    when an ``OP_OVERLOADED`` frame comes back; the caller may retry later."""


class UnavailableError(ServeError):
    """The server (or cluster worker) is draining or has no live backend.

    Raised locally when a scheduler in graceful drain refuses new work and
    on the client when an ``ERR_UNAVAILABLE`` error frame comes back.  The
    correct reaction differs from :class:`OverloadedError`: reconnect (a
    cluster routes the new connection to a live worker) rather than retry
    on the same connection."""


class QuotaError(ServeError):
    """A per-client quota refused the request — explicit admission control.

    Raised on the server when a token bucket is empty or a channel cap is
    reached, and on the client when an ``ERR_OVER_QUOTA`` frame comes back.
    Retryable after the bucket refills; never a silently closed
    connection."""


class ChannelError(ServeError):
    """Base class for stateful secure-channel failures (``repro.serve.channel``)."""


class UnknownChannelError(ChannelError):
    """The named channel does not exist — never opened, closed, or evicted idle."""


class ReplayError(ChannelError):
    """A channel record arrived with a sequence number already consumed (or
    skipped ahead) — replay or reordering; the channel is torn down."""


class TamperedRecordError(ChannelError):
    """A channel record's integrity tag did not verify; the channel is torn down."""


class RekeyRequiredError(ChannelError):
    """The channel's key epoch exhausted its message/byte budget; the peer
    must run ``CHAN_REKEY`` before any further record is accepted."""


class SocError(ReproError):
    """Base class for platform-simulator errors."""


class AssemblyError(SocError):
    """Malformed microcode: unknown opcode, bad register index, etc."""


class ScheduleError(SocError):
    """A VLIW schedule violates a structural constraint (e.g. DataRAM port)."""


class ExecutionError(SocError):
    """The coprocessor hit an illegal state while executing microcode."""


class MemoryMapError(SocError):
    """DataRAM allocation failed (overlap, out of range, unknown symbol)."""
