"""Integer factorization helpers.

Used by the CEILIDH parameter generator to strip small factors off
Phi_6(p) = p^2 - p + 1 and check that the remaining cofactor is prime, and by
toy parameter sets in tests where full factorizations are feasible.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional, Tuple

from repro.errors import ParameterError
from repro.nt.primality import SMALL_PRIMES, is_probable_prime


def trial_division(n: int, bound: int = 100_000) -> Tuple[Dict[int, int], int]:
    """Strip prime factors below ``bound`` from ``n``.

    Returns ``(factors, cofactor)`` where ``factors`` maps prime -> exponent
    and ``cofactor`` is what is left of ``n`` after dividing those out.
    """
    if n <= 0:
        raise ParameterError(f"can only factor positive integers, got {n}")
    factors: Dict[int, int] = {}
    remaining = n
    # First the precomputed small primes, then odd numbers up to the bound.
    for p in SMALL_PRIMES:
        if p * p > remaining or p >= bound:
            break
        while remaining % p == 0:
            factors[p] = factors.get(p, 0) + 1
            remaining //= p
    candidate = SMALL_PRIMES[-1] + 2 if SMALL_PRIMES else 3
    while candidate < bound and candidate * candidate <= remaining:
        while remaining % candidate == 0:
            factors[candidate] = factors.get(candidate, 0) + 1
            remaining //= candidate
        candidate += 2
    if 1 < remaining < bound * bound:
        # The cofactor is necessarily prime at this point.
        factors[remaining] = factors.get(remaining, 0) + 1
        remaining = 1
    return factors, remaining


def pollard_rho(n: int, rng: Optional[random.Random] = None, max_iterations: int = 1_000_000) -> int:
    """Find a non-trivial factor of composite ``n`` with Brent's variant of Pollard rho.

    Raises :class:`ParameterError` if no factor is found within the iteration
    budget (which, for the toy sizes this is used on, does not happen).
    """
    if n % 2 == 0:
        return 2
    if is_probable_prime(n):
        raise ParameterError(f"{n} is prime; nothing to factor")
    rng = rng or random.Random(n & 0xFFFFFFFF)
    while True:
        y = rng.randrange(1, n)
        c = rng.randrange(1, n)
        m = 128
        g, r, q = 1, 1, 1
        x = ys = y
        iterations = 0
        while g == 1:
            x = y
            for _ in range(r):
                y = (y * y + c) % n
            k = 0
            while k < r and g == 1:
                ys = y
                for _ in range(min(m, r - k)):
                    y = (y * y + c) % n
                    q = q * abs(x - y) % n
                g = math.gcd(q, n)
                k += m
            r *= 2
            iterations += r
            if iterations > max_iterations:
                raise ParameterError(f"pollard rho exceeded the iteration budget on {n}")
        if g == n:
            g = 1
            while g == 1:
                ys = (ys * ys + c) % n
                g = math.gcd(abs(x - ys), n)
            if g == n:
                continue  # cycle degenerated, retry with new parameters
        return g


def factorize(n: int, trial_bound: int = 100_000) -> Dict[int, int]:
    """Full factorization of ``n`` (trial division + recursive Pollard rho).

    Practical for inputs whose second-largest prime factor is below roughly
    2^50; the library only calls it on toy parameters and on cofactors of
    cryptographic group orders after the large prime part has been removed.
    """
    if n == 1:
        return {}
    factors, cofactor = trial_division(n, trial_bound)
    stack = [cofactor] if cofactor > 1 else []
    while stack:
        value = stack.pop()
        if value == 1:
            continue
        if is_probable_prime(value):
            factors[value] = factors.get(value, 0) + 1
            continue
        divisor = pollard_rho(value)
        stack.append(divisor)
        stack.append(value // divisor)
    return factors


def largest_prime_factor(n: int, trial_bound: int = 100_000) -> int:
    """Largest prime factor of ``n`` under the same practicality caveats as :func:`factorize`."""
    factors = factorize(n, trial_bound)
    if not factors:
        raise ParameterError("1 has no prime factors")
    return max(factors)
