"""Conversion between integers and little-endian word vectors.

The coprocessor model works on radix-2^w digit vectors (w = 16 by default,
matching the FPGA's dedicated 18x18 multipliers used by the paper's cores).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ParameterError


def word_length(bits: int, word_bits: int) -> int:
    """Number of ``word_bits``-bit words needed to hold a ``bits``-bit integer."""
    if bits <= 0 or word_bits <= 0:
        raise ParameterError("bit lengths must be positive")
    return -(-bits // word_bits)


def bit_length_words(value: int, word_bits: int) -> int:
    """Number of words needed to hold ``value`` exactly."""
    if value < 0:
        raise ParameterError("word vectors represent non-negative integers only")
    return max(1, word_length(max(value.bit_length(), 1), word_bits))


def to_words(value: int, count: int, word_bits: int) -> List[int]:
    """Little-endian radix-2^``word_bits`` digits of ``value``, padded to ``count`` words.

    Raises :class:`ParameterError` when ``value`` does not fit.
    """
    if value < 0:
        raise ParameterError("word vectors represent non-negative integers only")
    mask = (1 << word_bits) - 1
    words = []
    remaining = value
    for _ in range(count):
        words.append(remaining & mask)
        remaining >>= word_bits
    if remaining:
        raise ParameterError(
            f"value needs more than {count} words of {word_bits} bits"
        )
    return words


def from_words(words: Sequence[int], word_bits: int) -> int:
    """Rebuild an integer from little-endian radix-2^``word_bits`` digits."""
    value = 0
    limit = 1 << word_bits
    for i, w in enumerate(words):
        if not 0 <= w < limit:
            raise ParameterError(f"word {i} = {w} out of range for {word_bits}-bit words")
        value |= w << (i * word_bits)
    return value
