"""Primality testing.

A deterministic small-prime sieve, Miller-Rabin with both deterministic bases
(for inputs below the known deterministic bounds) and random bases, and a
Lucas test so that the default :func:`is_probable_prime` is a Baillie-PSW
style combination with no known pseudoprimes.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import ParameterError
from repro.nt.modular import jacobi_symbol

# Primes below 1000, used for cheap trial division before the heavy tests.
_SMALL_PRIME_LIMIT = 1000


def _sieve(limit: int) -> List[int]:
    """Primes below ``limit`` by the sieve of Eratosthenes."""
    if limit < 2:
        return []
    flags = bytearray([1]) * limit
    flags[0] = flags[1] = 0
    for i in range(2, int(limit ** 0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = bytearray(len(flags[i * i :: i]))
    return [i for i, f in enumerate(flags) if f]


SMALL_PRIMES: List[int] = _sieve(_SMALL_PRIME_LIMIT)

# Deterministic Miller-Rabin bases: testing these bases is a proof of
# primality for every n < 3,317,044,064,679,887,385,961,981.
_DETERMINISTIC_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981


def _miller_rabin_witness(n: int, a: int) -> bool:
    """Return True when ``a`` witnesses that ``n`` is composite."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return False
    return True


def _lucas_strong_probable_prime(n: int) -> bool:
    """Strong Lucas probable-prime test with Selfridge's parameter choice."""
    # Find D in 5, -7, 9, -11, ... with jacobi(D, n) == -1.
    d = 5
    while True:
        j = jacobi_symbol(d % n, n)
        if j == -1:
            break
        if j == 0 and abs(d) != n:
            return False
        d = -d - 2 if d > 0 else -d + 2
        if abs(d) > 1_000_000:  # pragma: no cover - defensive, never hit in practice
            raise ParameterError(f"could not find Lucas parameter for {n}")
    p_param, q_param = 1, (1 - d) // 4

    # Strong test: write n+1 = k * 2^s with k odd.
    k = n + 1
    s = 0
    while k % 2 == 0:
        k //= 2
        s += 1

    # Compute U_k, V_k via binary ladder on the Lucas sequence.
    u, v = 0, 2
    qk = 1
    for bit in bin(k)[2:]:
        # Double: (U, V)_{2m} from (U, V)_m.
        u, v = (u * v) % n, (v * v - 2 * qk) % n
        qk = qk * qk % n
        if bit == "1":
            # Increment: (U, V)_{m+1} from (U, V)_m.
            u, v = ((p_param * u + v) * _half(n)) % n, ((d * u + p_param * v) * _half(n)) % n
            qk = qk * q_param % n
    if u == 0 or v == 0:
        return True
    for _ in range(s - 1):
        v = (v * v - 2 * qk) % n
        qk = qk * qk % n
        if v == 0:
            return True
    return False


def _half(n: int) -> int:
    """Multiplicative inverse of 2 modulo odd ``n``."""
    return (n + 1) // 2


def is_probable_prime(n: int, rounds: int = 32, rng: Optional[random.Random] = None) -> bool:
    """Probabilistic primality test.

    For ``n`` below the deterministic Miller-Rabin bound the answer is exact.
    Above it, the test combines a base-2 Miller-Rabin round, ``rounds`` random
    Miller-Rabin rounds and a strong Lucas test (Baillie-PSW flavour), which
    has no known counterexamples.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _SMALL_PRIME_LIMIT * _SMALL_PRIME_LIMIT:
        return True

    if n < _DETERMINISTIC_LIMIT:
        return not any(_miller_rabin_witness(n, a) for a in _DETERMINISTIC_BASES)

    if _miller_rabin_witness(n, 2):
        return False
    rng = rng or random.Random(0xC0FFEE ^ (n & 0xFFFFFFFF))
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if _miller_rabin_witness(n, a):
            return False
    return _lucas_strong_probable_prime(n)


def is_prime(n: int) -> bool:
    """Convenience alias of :func:`is_probable_prime` with default settings."""
    return is_probable_prime(n)


def next_prime(n: int) -> int:
    """Smallest (probable) prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate
