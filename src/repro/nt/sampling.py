"""Secret-exponent sampling shared by every protocol layer.

Before the unified PKC layer, each cryptosystem drew its secret exponents
with its own inline ``randrange`` call and its own range convention: the XTR
key agreement used ``[2, q)``, ECDH used ``[1, order)`` and CEILIDH carried a
third copy of the same line.  The differences were harmless but made the
protocol layers needlessly non-uniform; :func:`sample_exponent` fixes one
convention — the full multiplicative range ``[1, q)`` — and every key
generation, ephemeral value and signature nonce in the library goes through
it.

This module also owns the library-wide **default randomness policy**.  Every
sampling site used to fall back to a per-call ``random.Random()`` — the
non-cryptographic Mersenne Twister, seeded from whatever the interpreter
found lying around — which is unacceptable for key material and signature
nonces.  The default is now one module-level :data:`DEFAULT_RNG`, a
``random.SystemRandom`` backed by the operating system's CSPRNG
(``os.urandom``).  Callers that need reproducibility (tests, deterministic
benchmarks) keep injecting an explicit seeded ``random.Random``; only the
*absence* of an injected generator routes to the system CSPRNG.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ParameterError

__all__ = ["DEFAULT_RNG", "resolve_rng", "sample_exponent"]

#: The library-wide default randomness source: the OS CSPRNG.  Secrets
#: (private keys, ephemeral exponents, signature nonces, RSA prime search)
#: must never fall back to the Mersenne Twister.
DEFAULT_RNG: random.Random = random.SystemRandom()


def resolve_rng(rng: Optional[random.Random] = None) -> random.Random:
    """The generator to use: the injected ``rng``, else :data:`DEFAULT_RNG`.

    Resolve once at the entry point of a batch or protocol operation and
    thread the result down — never construct a fresh generator per call.
    Reads the module global at call time so tests can monkeypatch
    ``DEFAULT_RNG``.
    """
    return DEFAULT_RNG if rng is None else rng


def sample_exponent(q: int, rng: Optional[random.Random] = None) -> int:
    """A uniformly random secret exponent in ``[1, q)``.

    ``q`` is the order of the working (sub)group: the torus subgroup order
    for CEILIDH and XTR, the base-point order for ECDH/ECDSA.  The identity
    exponent 0 is excluded; ``q`` must be at least 2 so that the range is
    non-empty.  With no ``rng`` the sample is drawn from :data:`DEFAULT_RNG`
    (the OS CSPRNG).
    """
    if q < 2:
        raise ParameterError(f"exponent range [1, q) needs q >= 2, got {q}")
    rng = resolve_rng(rng)
    return rng.randrange(1, q)
