"""Secret-exponent sampling shared by every protocol layer.

Before the unified PKC layer, each cryptosystem drew its secret exponents
with its own inline ``randrange`` call and its own range convention: the XTR
key agreement used ``[2, q)``, ECDH used ``[1, order)`` and CEILIDH carried a
third copy of the same line.  The differences were harmless but made the
protocol layers needlessly non-uniform; :func:`sample_exponent` fixes one
convention — the full multiplicative range ``[1, q)`` — and every key
generation, ephemeral value and signature nonce in the library goes through
it.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ParameterError

__all__ = ["sample_exponent"]


def sample_exponent(q: int, rng: Optional[random.Random] = None) -> int:
    """A uniformly random secret exponent in ``[1, q)``.

    ``q`` is the order of the working (sub)group: the torus subgroup order
    for CEILIDH and XTR, the base-point order for ECDH/ECDSA.  The identity
    exponent 0 is excluded; ``q`` must be at least 2 so that the range is
    non-empty.
    """
    if q < 2:
        raise ParameterError(f"exponent range [1, q) needs q >= 2, got {q}")
    rng = rng or random.Random()
    return rng.randrange(1, q)
