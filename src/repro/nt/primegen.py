"""Random prime generation, with congruence constraints.

CEILIDH needs primes with ``p ≡ 2 or 5 (mod 9)`` (so that z^6 + z^3 + 1 is
irreducible over Fp), RSA needs ordinary random primes, and the toy parameter
sets used in tests need small primes of an exact bit length.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import ParameterError
from repro.nt.primality import is_probable_prime
from repro.nt.sampling import resolve_rng

_DEFAULT_ATTEMPTS_PER_BIT = 200


def _candidate(bits: int, rng: random.Random) -> int:
    """Random odd integer with exactly ``bits`` bits."""
    if bits < 2:
        raise ParameterError(f"a prime needs at least 2 bits, got {bits}")
    value = rng.getrandbits(bits)
    value |= 1 << (bits - 1)  # force exact bit length
    value |= 1  # force odd
    return value


def random_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Random (probable) prime with exactly ``bits`` bits."""
    rng = resolve_rng(rng)
    attempts = _DEFAULT_ATTEMPTS_PER_BIT * max(bits, 8)
    for _ in range(attempts):
        candidate = _candidate(bits, rng)
        if is_probable_prime(candidate):
            return candidate
    raise ParameterError(f"failed to find a {bits}-bit prime after {attempts} attempts")


def random_prime_mod(
    bits: int,
    residues: Sequence[int],
    modulus: int,
    rng: Optional[random.Random] = None,
) -> int:
    """Random prime with exactly ``bits`` bits and ``p mod modulus in residues``.

    Candidates are drawn randomly and then snapped to the nearest admissible
    residue class before primality testing, so the congruence condition does
    not slow the search down by the naive rejection factor.
    """
    rng = resolve_rng(rng)
    residues = sorted(set(r % modulus for r in residues))
    if not residues:
        raise ParameterError("need at least one admissible residue class")
    attempts = _DEFAULT_ATTEMPTS_PER_BIT * max(bits, 8)
    for _ in range(attempts):
        candidate = _candidate(bits, rng)
        target = rng.choice(residues)
        candidate += (target - candidate) % modulus
        if candidate.bit_length() != bits or candidate % 2 == 0:  # audit: allow[CT101] rejection sampling; prime search time is inherently candidate-dependent
            continue
        if is_probable_prime(candidate):
            return candidate
    raise ParameterError(
        f"failed to find a {bits}-bit prime = {residues} mod {modulus} "
        f"after {attempts} attempts"
    )


def safe_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Random safe prime ``p`` (both ``p`` and ``(p-1)/2`` prime).

    Only intended for small/medium sizes used in examples; safe-prime search
    at 1024 bits in pure Python is slow and not needed by the reproduction.
    """
    rng = resolve_rng(rng)
    attempts = _DEFAULT_ATTEMPTS_PER_BIT * max(bits, 8) * 4
    for _ in range(attempts):
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p):
            return p
    raise ParameterError(f"failed to find a {bits}-bit safe prime")
