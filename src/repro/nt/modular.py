"""Modular-arithmetic helpers on plain Python integers.

These are the primitives underneath the prime-field layer: extended gcd,
modular inverse, Chinese remaindering, quadratic-residue machinery
(Legendre/Jacobi symbols, Tonelli-Shanks square roots) and multiplicative
order computation for small groups.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.errors import NotInvertibleError, ParameterError


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y = g``.
    Works for negative inputs as well; ``g`` is always non-negative.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m``.

    Uses the builtin ``pow(a, -1, m)`` (C speed, Python >= 3.8).  Raises
    :class:`NotInvertibleError` when ``gcd(a, m) != 1``.  The explicit
    extended-Euclid path survives as :func:`modinv_euclid` for callers
    that account for the algorithm's own operations (the word-counting
    field backend).
    """
    if m <= 0:
        raise ParameterError(f"modulus must be positive, got {m}")
    try:
        return pow(a, -1, m)
    except ValueError:
        raise NotInvertibleError(a % m, m) from None


def modinv_euclid(a: int, m: int) -> int:
    """Modular inverse via the extended Euclidean algorithm.

    Same contract as :func:`modinv`, but the inverse is computed by
    :func:`egcd` — the schedulable algorithm a coprocessor would run, which
    is what the word-counting backend's op accounting models.
    """
    if m <= 0:
        raise ParameterError(f"modulus must be positive, got {m}")
    a %= m
    g, x, _ = egcd(a, m)
    if g != 1:
        raise NotInvertibleError(a, m)
    return x % m


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> Tuple[int, int]:
    """Combine ``x ≡ r1 (mod m1)`` and ``x ≡ r2 (mod m2)``.

    Returns ``(r, lcm(m1, m2))``.  Raises :class:`ParameterError` when the two
    congruences are incompatible.
    """
    g, p, _q = egcd(m1, m2)
    if (r2 - r1) % g != 0:
        raise ParameterError(
            f"incompatible congruences: x = {r1} mod {m1} and x = {r2} mod {m2}"
        )
    lcm = m1 // g * m2
    diff = (r2 - r1) // g
    r = (r1 + m1 * (diff * p % (m2 // g))) % lcm
    return r, lcm


def crt(residues: Sequence[int], moduli: Sequence[int]) -> Tuple[int, int]:
    """Chinese remainder theorem for an arbitrary list of congruences.

    Moduli need not be pairwise coprime; incompatible systems raise
    :class:`ParameterError`.  Returns ``(x, M)`` with ``M`` the lcm of the
    moduli and ``0 <= x < M``.
    """
    if len(residues) != len(moduli):
        raise ParameterError("residues and moduli must have the same length")
    if not residues:
        raise ParameterError("need at least one congruence")
    r, m = residues[0] % moduli[0], moduli[0]
    for r2, m2 in zip(residues[1:], moduli[1:]):
        r, m = crt_pair(r, m, r2, m2)
    return r, m


def legendre_symbol(a: int, p: int) -> int:
    """Legendre symbol (a/p) for an odd prime ``p``: one of -1, 0, 1."""
    if p <= 2 or p % 2 == 0:
        raise ParameterError(f"p must be an odd prime, got {p}")
    a %= p
    if a == 0:
        return 0
    result = pow(a, (p - 1) // 2, p)
    return -1 if result == p - 1 else int(result)


def jacobi_symbol(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd positive ``n``."""
    if n <= 0 or n % 2 == 0:
        raise ParameterError(f"n must be an odd positive integer, got {n}")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def sqrt_mod_prime(a: int, p: int) -> int:
    """Square root of ``a`` modulo an odd prime ``p`` (Tonelli-Shanks).

    Returns the root ``r`` with ``0 <= r < p``; the other root is ``p - r``.
    Raises :class:`ParameterError` when ``a`` is a non-residue.
    """
    if p == 2:
        return a % 2
    a %= p
    if a == 0:
        return 0
    if legendre_symbol(a, p) != 1:
        raise ParameterError(f"{a} is not a quadratic residue modulo {p}")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli-Shanks for p = 1 mod 4.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i with t^(2^i) = 1.
        i, t2i = 0, t
        while t2i != 1:
            t2i = t2i * t2i % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        r = r * b % p
    return r


def multiplicative_order(a: int, n: int, factorization: Dict[int, int]) -> int:
    """Multiplicative order of ``a`` modulo ``n``.

    ``factorization`` must be the prime factorization of the group order
    (Euler phi of ``n``, or the known order of the subgroup containing ``a``).
    """
    order = 1
    for prime, exponent in factorization.items():
        order *= prime ** exponent
    if pow(a, order, n) != 1:
        raise ParameterError("provided factorization does not annihilate the element")
    for prime, exponent in factorization.items():
        for _ in range(exponent):
            if pow(a, order // prime, n) == 1:
                order //= prime
            else:
                break
    return order


def product(values: Iterable[int]) -> int:
    """Product of an iterable of integers (1 for an empty iterable)."""
    result = 1
    for v in values:
        result *= v
    return result
