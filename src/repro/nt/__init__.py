"""Number-theory substrate.

Plain-integer building blocks used by every other layer: primality testing,
prime generation under congruence constraints, modular arithmetic helpers
(extended gcd, inverse, CRT, square roots), small-factor extraction and
word-vector conversions for the hardware model.
"""

from repro.nt.modular import (
    egcd,
    modinv,
    crt_pair,
    crt,
    jacobi_symbol,
    sqrt_mod_prime,
    legendre_symbol,
    multiplicative_order,
)
from repro.nt.primality import is_probable_prime, is_prime, next_prime
from repro.nt.sampling import sample_exponent
from repro.nt.primegen import random_prime, random_prime_mod, safe_prime
from repro.nt.factor import trial_division, pollard_rho, factorize, largest_prime_factor
from repro.nt.words import to_words, from_words, word_length, bit_length_words

__all__ = [
    "egcd",
    "modinv",
    "crt_pair",
    "crt",
    "jacobi_symbol",
    "legendre_symbol",
    "sqrt_mod_prime",
    "multiplicative_order",
    "sample_exponent",
    "is_probable_prime",
    "is_prime",
    "next_prime",
    "random_prime",
    "random_prime_mod",
    "safe_prime",
    "trial_division",
    "pollard_rho",
    "factorize",
    "largest_prime_factor",
    "to_words",
    "from_words",
    "word_length",
    "bit_length_words",
]
