"""Cycle-accurate model of the paper's multicore FPGA platform.

The platform (Fig. 2) is a MicroBlaze controller plus a multicore
coprocessor: a decoder, a single-port data memory, microinstruction ROMs and
several tiny load/store cores whose ALU is built around the FPGA's dedicated
multipliers.  This package models it at three levels, mirroring Section 3.2:

* **Level 3 — microcode** (:mod:`repro.soc.microcode`): per-core instruction
  streams for Montgomery modular multiplication (the Fig. 5 multi-core
  schedule), modular addition and subtraction, executed cycle-accurately by
  :class:`repro.soc.coprocessor.Coprocessor` under the structural constraints
  of the hardware (one VLIW bundle per clock, one DataRAM access per clock).
* **Level 2 — modular-operation sequences** (:mod:`repro.soc.level2`,
  :mod:`repro.soc.sequences`): Fp6 multiplication (18 MM + additions), ECC
  point addition/doubling, expressed as MM/MA/MS sequences over named
  operands — the content of InsRom1 in the Type-B architecture.
* **Level 1 — the MicroBlaze** (:mod:`repro.soc.microblaze`,
  :mod:`repro.soc.system`): exponentiation loops that issue level-1 or
  level-2 instructions, paying the register-access + interrupt round trip of
  the memory-mapped interface for each one (Type-A) or once per sequence
  (Type-B).
"""

from repro.soc.isa import Op, Instruction, nop
from repro.soc.memory import DataRam
from repro.soc.core import Core
from repro.soc.assembler import CoreProgram, Schedule, schedule_programs
from repro.soc.coprocessor import Coprocessor, CoprocessorConfig, ExecutionResult
from repro.soc.microblaze import MicroBlazeInterfaceModel
from repro.soc.level2 import ModOp, ModOpKind, Level2Program
from repro.soc.system import Platform, PlatformConfig, OperationTiming
from repro.soc.cost import ModularOpCosts, CostModel
from repro.soc.area import AreaModel, AreaReport
from repro.soc.trace import ExecutionTrace

__all__ = [
    "Op",
    "Instruction",
    "nop",
    "DataRam",
    "Core",
    "CoreProgram",
    "Schedule",
    "schedule_programs",
    "Coprocessor",
    "CoprocessorConfig",
    "ExecutionResult",
    "MicroBlazeInterfaceModel",
    "ModOp",
    "ModOpKind",
    "Level2Program",
    "Platform",
    "PlatformConfig",
    "OperationTiming",
    "ModularOpCosts",
    "CostModel",
    "AreaModel",
    "AreaReport",
    "ExecutionTrace",
]
