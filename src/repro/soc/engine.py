"""The modular-arithmetic engine: coprocessor + microcode for one modulus.

A :class:`ModularEngine` owns a :class:`~repro.soc.coprocessor.Coprocessor`,
lays out the DataRAM regions for one modulus size (operands, modulus words,
the p' constant, the m broadcast cell and the Fig. 5 transfer cells) and
instantiates the three microcode routines the platform needs: Montgomery
multiplication, modular addition and modular subtraction.  It is the level-3
execution backend used both for the Table 1 measurements and for the
cycle-accurate integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain
from repro.soc.coprocessor import Coprocessor, CoprocessorConfig
from repro.soc.microcode.modadd import ModAddLayout, ModularAddMicrocode, ModularSubMicrocode
from repro.soc.microcode.modmul import ModMulLayout, MontgomeryMulMicrocode


@dataclass
class ModularOpMeasurement:
    """Cycle counts of one modular operation under the engine."""

    operation: str
    bit_length: int
    cycles: int
    fast_path_cycles: int
    worst_case_cycles: int


class ModularEngine:
    """Executes MM / MA / MS for a fixed modulus on the simulated coprocessor."""

    def __init__(
        self,
        modulus: int,
        word_bits: int = 16,
        num_cores: int = 4,
        num_words: Optional[int] = None,
        config: Optional[CoprocessorConfig] = None,
        lazy_addition: bool = False,
    ):
        if modulus < 3 or modulus % 2 == 0:
            raise ParameterError("the engine needs an odd modulus >= 3")
        self.modulus = modulus
        self.lazy_addition = lazy_addition
        self.config = config or CoprocessorConfig(word_bits=word_bits, num_cores=num_cores)
        self.coprocessor = Coprocessor(self.config)
        self.domain = MontgomeryDomain(
            modulus, word_bits=self.config.word_bits, num_words=num_words
        )
        self.num_words = self.domain.num_words
        self._allocate_regions()
        self._build_routines()

    # -- memory map -----------------------------------------------------------------

    def _allocate_regions(self) -> None:
        cop = self.coprocessor
        s = self.num_words
        self.addr: Dict[str, int] = {}
        self.addr["P"] = cop.allocate_operand("P", s)
        self.addr["PPRIME"] = cop.allocate_operand("PPRIME", 1)
        self.addr["ONE"] = cop.allocate_operand("ONE", 1)
        self.addr["M"] = cop.allocate_operand("M", 1)
        self.addr["XFER"] = cop.allocate_operand("XFER", self.config.num_cores)
        self.addr["OPA"] = cop.allocate_operand("OPA", s)
        self.addr["OPB"] = cop.allocate_operand("OPB", s)
        self.addr["RES"] = cop.allocate_operand("RES", s)
        self.addr["SCRATCH"] = cop.allocate_operand("SCRATCH", s)

    def _build_routines(self) -> None:
        mul_layout = ModMulLayout(
            x_base=self.addr["OPA"],
            y_base=self.addr["OPB"],
            result_base=self.addr["RES"],
            modulus_base=self.addr["P"],
            pprime_addr=self.addr["PPRIME"],
            one_addr=self.addr["ONE"],
            m_addr=self.addr["M"],
            xfer_base=self.addr["XFER"],
        )
        add_layout = ModAddLayout(
            a_base=self.addr["OPA"],
            b_base=self.addr["OPB"],
            result_base=self.addr["RES"],
            modulus_base=self.addr["P"],
            scratch_base=self.addr["SCRATCH"],
        )
        self.multiplier = MontgomeryMulMicrocode(self.coprocessor, self.domain, mul_layout)
        self.adder = ModularAddMicrocode(
            self.coprocessor, self.num_words, add_layout, self.modulus, lazy=self.lazy_addition
        )
        self.subtractor = ModularSubMicrocode(
            self.coprocessor, self.num_words, add_layout, self.modulus
        )

    # -- operations --------------------------------------------------------------------

    def mont_mul(self, x_bar: int, y_bar: int) -> Tuple[int, int]:
        """Montgomery product (result, cycles); operands in the Montgomery domain."""
        return self.multiplier.run(x_bar, y_bar)

    def mod_add(self, a: int, b: int) -> Tuple[int, int]:
        """Modular (or lazy) addition (result, cycles)."""
        return self.adder.run(a, b)

    def mod_sub(self, a: int, b: int) -> Tuple[int, int]:
        """Modular subtraction (result, cycles)."""
        return self.subtractor.run(a, b)

    def to_montgomery(self, value: int) -> int:
        return self.domain.to_montgomery(value)

    def from_montgomery(self, value: int) -> int:
        return self.domain.from_montgomery(value)

    # -- Table 1 style measurements ------------------------------------------------------

    @property
    def bit_length(self) -> int:
        return self.modulus.bit_length()

    def measure_multiplication(self) -> ModularOpMeasurement:
        """Cycle count of one Montgomery multiplication (data-independent)."""
        cycles = self.multiplier.cycle_count()
        return ModularOpMeasurement(
            operation="modular multiplication",
            bit_length=self.bit_length,
            cycles=cycles,
            fast_path_cycles=cycles,
            worst_case_cycles=cycles,
        )

    def measure_addition(self) -> ModularOpMeasurement:
        """Cycle counts of one modular addition (fast path = no reduction)."""
        fast = self.adder.fast_path_cycles()
        worst = fast if self.lazy_addition else self.adder.worst_case_cycles()
        return ModularOpMeasurement(
            operation="modular addition",
            bit_length=self.bit_length,
            cycles=fast,
            fast_path_cycles=fast,
            worst_case_cycles=worst,
        )

    def measure_subtraction(self) -> ModularOpMeasurement:
        """Cycle counts of one modular subtraction (worst case = borrow correction)."""
        fast = self.subtractor.fast_path_cycles()
        worst = self.subtractor.worst_case_cycles()
        # Random operands borrow about half the time; report the average as
        # the headline figure, like the paper's single number.
        average = (fast + worst) // 2
        return ModularOpMeasurement(
            operation="modular subtraction",
            bit_length=self.bit_length,
            cycles=average,
            fast_path_cycles=fast,
            worst_case_cycles=worst,
        )

    def __repr__(self) -> str:
        return (
            f"ModularEngine(bits={self.bit_length}, words={self.num_words}, "
            f"cores={self.config.num_cores})"
        )
