"""The complete platform: MicroBlaze + multicore coprocessor (Fig. 2).

:class:`Platform` is the top-level object the benchmarks and examples use.
It owns one cycle-accurate :class:`~repro.soc.engine.ModularEngine` per
modulus, measures the Table 1 quantities on them, composes Table 2 through
the Type-A/Type-B hierarchies and Table 3 through the exponentiation loops,
and can also run level-2 sequences *functionally* through the coprocessor for
end-to-end validation at toy sizes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ParameterError
from repro.ecc.curves import NamedCurve, SECP160R1
from repro.field.extension import ExtElement
from repro.field.fp6 import Fp6Field
from repro.soc.area import AreaModel, AreaReport
from repro.soc.cost import CostModel, ModularOpCosts, SequenceCost, operation_costs_from_engine
from repro.soc.engine import ModularEngine
from repro.soc.level2 import EngineBackend, Level2Program, SoftwareBackend
from repro.soc.microblaze import MicroBlazeInterfaceModel
from repro.soc.sequences import (
    ecc_point_addition_program,
    ecc_point_doubling_program,
    ecc_point_from_memory,
    ecc_point_memory,
    fp6_multiplication_program,
    fp6_operand_memory,
    fp6_result_from_memory,
    xtr_double_step_program,
    xtr_fp2_multiplication_program,
    xtr_mixed_step_program,
)
from repro.soc.trace import ExecutionTrace
from repro.torus.params import TorusParameters


def default_rsa_modulus(bits: int = 1024) -> int:
    """A fixed, deterministic odd ``bits``-bit modulus for cycle measurements.

    Cycle counts of the Montgomery microcode depend only on the operand
    length, so the RSA benchmarks use this reproducible stand-in instead of
    paying a full prime generation on every run (a real key-generation path
    is available in :mod:`repro.rsa.keygen`).
    """
    blocks = []
    counter = 0
    while len(blocks) * 256 < bits:
        blocks.append(hashlib.sha256(f"repro-rsa-{bits}-{counter}".encode()).digest())
        counter += 1
    value = int.from_bytes(b"".join(blocks), "big") & ((1 << bits) - 1)
    value |= 1 << (bits - 1)
    value |= 1
    return value


@dataclass
class PlatformConfig:
    """Structural and calibration parameters of the whole platform.

    ``lazy_addition`` selects the unreduced modular-addition microcode (the
    paper-style single add pass).  It is off by default so that every
    functional execution path is strictly reduced; the Table 1 comparison is
    unaffected because the addition row reports the fast-path (no-correction)
    cycle count either way — see EXPERIMENTS.md.
    """

    word_bits: int = 16
    num_cores: int = 4
    num_registers: int = 80
    clock_mhz: float = 74.0
    lazy_addition: bool = False
    interface: MicroBlazeInterfaceModel = field(default_factory=MicroBlazeInterfaceModel)
    area_model: AreaModel = field(default_factory=AreaModel)


@dataclass
class OperationTiming:
    """Timing of one full public-key operation on the platform (a Table 3 row)."""

    name: str
    bit_length: int
    hierarchy: str
    group_operations: int
    cycles: int
    milliseconds: float
    area_slices: int
    frequency_mhz: float

    def __repr__(self) -> str:
        return (
            f"OperationTiming({self.name}: {self.milliseconds:.2f} ms, "
            f"{self.cycles} cycles @ {self.frequency_mhz} MHz, {self.area_slices} slices)"
        )


class Platform:
    """The paper's platform, simulated."""

    def __init__(self, config: Optional[PlatformConfig] = None):
        self.config = config or PlatformConfig()
        self._engines: Dict[Tuple[int, Optional[int]], ModularEngine] = {}

    # -- engines and measured costs -----------------------------------------------------

    def engine_for(self, modulus: int, num_words: Optional[int] = None) -> ModularEngine:
        """The cycle-accurate modular engine for one modulus (cached)."""
        key = (modulus, num_words)
        if key not in self._engines:
            self._engines[key] = ModularEngine(
                modulus,
                word_bits=self.config.word_bits,
                num_cores=self.config.num_cores,
                num_words=num_words,
                lazy_addition=self.config.lazy_addition,
            )
        return self._engines[key]

    def measure_operation_costs(self, modulus: int, label: str = "") -> ModularOpCosts:
        """Measure the Table 1 row (MM/MA/MS cycles) for one modulus."""
        return operation_costs_from_engine(self.engine_for(modulus), label=label)

    def cost_model(self, op_costs: ModularOpCosts) -> CostModel:
        return CostModel(op_costs, interface=self.config.interface, clock_mhz=self.config.clock_mhz)

    @property
    def interrupt_round_trip_cycles(self) -> int:
        """The paper's 184-cycle register-access + interrupt-handling figure."""
        return self.config.interface.round_trip_cycles

    # -- level-2 sequence costs (Table 2) ---------------------------------------------------

    def fp6_multiplication_cost(self, modulus: int) -> SequenceCost:
        """Type-A/Type-B cycle counts of one Fp6 (T6) multiplication."""
        costs = self.measure_operation_costs(modulus, label="torus")
        return self.cost_model(costs).sequence_cost(fp6_multiplication_program())

    def ecc_point_costs(self, modulus: int) -> Tuple[SequenceCost, SequenceCost]:
        """Type-A/Type-B cycle counts of (point addition, point doubling)."""
        costs = self.measure_operation_costs(modulus, label="ECC")
        model = self.cost_model(costs)
        return (
            model.sequence_cost(ecc_point_addition_program()),
            model.sequence_cost(ecc_point_doubling_program()),
        )

    def xtr_fp2_multiplication_cost(self, modulus: int) -> SequenceCost:
        """Type-A/Type-B cycle counts of one Fp2 multiplication (XTR's unit).

        Not a paper table — the paper cites the XTR comparison rather than
        running it — but the unified scheme registry projects the XTR ladder
        onto the same platform through this sequence.
        """
        costs = self.measure_operation_costs(modulus, label="XTR")
        return self.cost_model(costs).sequence_cost(xtr_fp2_multiplication_program())

    def xtr_step_costs(self, modulus: int) -> Tuple[SequenceCost, SequenceCost]:
        """Type-A/Type-B cycle counts of (double step, mixed step) of the
        XTR trace ladder.

        These charge the full ladder steps — the Karatsuba products *plus*
        the conjugations and doubled-conjugate additions between them — so
        the analytic projection matches the word-operation stream the
        executed ladder measures (the bare Fp2 multiplication of
        :meth:`xtr_fp2_multiplication_cost` underestimates exactly those
        inter-product operations).
        """
        costs = self.measure_operation_costs(modulus, label="XTR")
        model = self.cost_model(costs)
        return (
            model.sequence_cost(xtr_double_step_program()),
            model.sequence_cost(xtr_mixed_step_program()),
        )

    # -- full public-key operations (Table 3) -----------------------------------------------

    def _area(self) -> AreaReport:
        return self.config.area_model.report(self.config.num_cores)

    def torus_exponentiation_timing(
        self,
        params: TorusParameters,
        exponent_bits: Optional[int] = None,
        hierarchy: str = "type-b",
    ) -> OperationTiming:
        """Timing of one T6 exponentiation (the paper's 20 ms headline)."""
        exponent_bits = exponent_bits or params.p_bits
        sequence = self.fp6_multiplication_cost(params.p)
        per_op = sequence.type_b_cycles if hierarchy == "type-b" else sequence.type_a_cycles
        squarings = exponent_bits - 1
        multiplications = (exponent_bits - 1) // 2
        costs = self.measure_operation_costs(params.p)
        model = self.cost_model(costs)
        cycles = model.exponentiation_cycles(per_op, squarings, multiplications)
        area = self._area()
        return OperationTiming(
            name=f"{exponent_bits}-bit torus (CEILIDH)",
            bit_length=exponent_bits,
            hierarchy=hierarchy,
            group_operations=squarings + multiplications,
            cycles=cycles,
            milliseconds=model.cycles_to_ms(cycles),
            area_slices=area.total_slices,
            frequency_mhz=area.frequency_mhz,
        )

    def ecc_scalar_multiplication_timing(
        self,
        curve: NamedCurve = SECP160R1,
        hierarchy: str = "type-b",
    ) -> OperationTiming:
        """Timing of one ECC scalar multiplication (double-and-add, Jacobian)."""
        pa_cost, pd_cost = self.ecc_point_costs(curve.p)
        scalar_bits = curve.order.bit_length()
        doublings = scalar_bits - 1
        additions = (scalar_bits - 1) // 2
        if hierarchy == "type-b":
            cycles = doublings * pd_cost.type_b_cycles + additions * pa_cost.type_b_cycles
        else:
            cycles = doublings * pd_cost.type_a_cycles + additions * pa_cost.type_a_cycles
        costs = self.measure_operation_costs(curve.p)
        model = self.cost_model(costs)
        area = self._area()
        return OperationTiming(
            name=f"{curve.p.bit_length()}-bit ECC ({curve.name})",
            bit_length=curve.p.bit_length(),
            hierarchy=hierarchy,
            group_operations=doublings + additions,
            cycles=cycles,
            milliseconds=model.cycles_to_ms(cycles),
            area_slices=area.total_slices,
            frequency_mhz=area.frequency_mhz,
        )

    def rsa_exponentiation_timing(
        self,
        modulus_bits: int = 1024,
        modulus: Optional[int] = None,
        exponent_bits: Optional[int] = None,
    ) -> OperationTiming:
        """Timing of one RSA private-key exponentiation (full-length exponent).

        RSA has no level-2 sequence to amortise — every modular multiplication
        is issued individually — so the composition charges one MicroBlaze
        round trip per Montgomery multiplication, matching the paper.
        """
        modulus = modulus or default_rsa_modulus(modulus_bits)
        exponent_bits = exponent_bits or modulus_bits
        costs = self.measure_operation_costs(modulus, label="RSA")
        model = self.cost_model(costs)
        squarings = exponent_bits - 1
        multiplications = (exponent_bits - 1) // 2
        per_op = costs.modular_mult + self.config.interface.round_trip_cycles
        cycles = model.exponentiation_cycles(per_op, squarings, multiplications)
        area = self._area()
        return OperationTiming(
            name=f"{modulus_bits}-bit RSA",
            bit_length=modulus_bits,
            hierarchy="type-a",
            group_operations=squarings + multiplications,
            cycles=cycles,
            milliseconds=model.cycles_to_ms(cycles),
            area_slices=area.total_slices,
            frequency_mhz=area.frequency_mhz,
        )

    # -- Fig. 3/4 style breakdowns -----------------------------------------------------------

    def hierarchy_trace(
        self, program: Level2Program, modulus: int, hierarchy: str
    ) -> ExecutionTrace:
        """Cycle breakdown (interface vs compute) of one level-2 sequence."""
        costs = self.measure_operation_costs(modulus)
        trace = ExecutionTrace(name=f"{program.name} [{hierarchy}]")
        if hierarchy == "type-a":
            for op in program:
                trace.add(f"issue {op.kind.value}", "interface", self.interrupt_round_trip_cycles)
                trace.add(str(op), "compute", costs.cost_of(op.kind))
        elif hierarchy == "type-b":
            trace.add("issue sequence", "interface", self.interrupt_round_trip_cycles)
            for op in program:
                trace.add(f"dispatch {op.kind.value}", "dispatch", CostModel.TYPE_B_DISPATCH_CYCLES)
                trace.add(str(op), "compute", costs.cost_of(op.kind))
        else:
            raise ParameterError(f"unknown hierarchy {hierarchy!r} (use 'type-a' or 'type-b')")
        return trace

    # -- functional execution through the coprocessor ------------------------------------------

    def run_fp6_multiplication(
        self, fp6: Fp6Field, a: ExtElement, b: ExtElement, cycle_accurate: bool = True
    ) -> Tuple[ExtElement, int]:
        """Execute one Fp6 multiplication through the platform.

        With ``cycle_accurate=True`` every modular operation runs through the
        coprocessor microcode (slow — intended for toy operand sizes); with
        ``False`` a big-integer backend is used and only the composed cycle
        count is returned.
        """
        modulus = fp6.base.p
        program = fp6_multiplication_program()
        engine = self.engine_for(modulus)
        memory = fp6_operand_memory(engine.domain, a, b)
        if cycle_accurate:
            backend = EngineBackend(engine)
            program.execute(backend, memory)
            cycles = backend.cycles
        else:
            backend = SoftwareBackend(engine.domain)
            program.execute(backend, memory)
            cycles = self.fp6_multiplication_cost(modulus).type_b_cycles
        result = fp6_result_from_memory(engine.domain, fp6, memory)
        return result, cycles

    def run_ecc_point_operation(
        self,
        modulus: int,
        curve_a: int,
        coordinates: Dict[str, int],
        operation: str = "double",
        cycle_accurate: bool = True,
    ) -> Tuple[Tuple[int, int, int], int]:
        """Execute one Jacobian point operation through the platform."""
        engine = self.engine_for(modulus)
        if operation == "double":
            program = ecc_point_doubling_program()
            staged = dict(coordinates)
            staged["a"] = curve_a
        elif operation == "add":
            program = ecc_point_addition_program()
            staged = dict(coordinates)
        else:
            raise ParameterError("operation must be 'double' or 'add'")
        memory = ecc_point_memory(engine.domain, staged)
        if cycle_accurate:
            backend = EngineBackend(engine)
            program.execute(backend, memory)
            cycles = backend.cycles
        else:
            backend = SoftwareBackend(engine.domain)
            program.execute(backend, memory)
            cycles = 0
        return ecc_point_from_memory(engine.domain, memory), cycles

    # -- area ------------------------------------------------------------------------------------

    def area_report(self) -> AreaReport:
        """Slice/frequency estimate of the configured platform."""
        return self._area()

    def __repr__(self) -> str:
        return (
            f"Platform(cores={self.config.num_cores}, w={self.config.word_bits}, "
            f"{self.config.clock_mhz} MHz)"
        )
