"""Execution traces and cycle-breakdown reporting.

The Type-A/Type-B comparison (Figs. 3 and 4, Table 2) is at heart a question
of where the cycles go: communication with the MicroBlaze versus computation
on the coprocessor.  :class:`ExecutionTrace` accumulates that breakdown for a
sequence of operations and renders it for the figure-3/4 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class TraceEvent:
    """One accounted chunk of cycles."""

    label: str
    category: str  # "interface", "dispatch", "compute"
    cycles: int


@dataclass
class ExecutionTrace:
    """A cycle-accounted execution of one high-level operation."""

    name: str
    events: List[TraceEvent] = field(default_factory=list)

    def add(self, label: str, category: str, cycles: int) -> None:
        self.events.append(TraceEvent(label=label, category=category, cycles=cycles))

    @property
    def total_cycles(self) -> int:
        return sum(event.cycles for event in self.events)

    def breakdown(self) -> Dict[str, int]:
        """Cycles per category (interface / dispatch / compute)."""
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.category] = totals.get(event.category, 0) + event.cycles
        return totals

    def communication_fraction(self) -> float:
        """Fraction of cycles spent on the MicroBlaze interface."""
        total = self.total_cycles
        if total == 0:
            return 0.0
        interface = self.breakdown().get("interface", 0) + self.breakdown().get("dispatch", 0)
        return interface / total

    def render(self) -> str:
        """Human-readable breakdown table."""
        lines = [f"cycle breakdown of {self.name}: {self.total_cycles} cycles"]
        for category, cycles in sorted(self.breakdown().items()):
            share = 100.0 * cycles / self.total_cycles if self.total_cycles else 0.0
            lines.append(f"  {category:<10} {cycles:>12} cycles  ({share:5.1f}%)")
        return "\n".join(lines)
