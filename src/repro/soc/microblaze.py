"""Instruction-level cost model of the MicroBlaze / coprocessor interface.

The MicroBlaze talks to the coprocessor through memory-mapped registers (the
instruction register A and the data registers B and C) and an interrupt line
(Fig. 2a).  Issuing one coprocessor instruction from software costs a bus
write, and finding out that it finished costs an interrupt round trip: the
paper measures this combination at **184 clock cycles** and identifies it as
the bottleneck of the Type-A hierarchy (78 round trips per Fp6
multiplication).

There is no MicroBlaze RTL here, so the round trip is modeled as a sum of
documented components whose defaults are calibrated to reproduce the paper's
total; every component can be overridden to study how faster interconnect or
interrupt handling would change the Type-A/Type-B trade-off (one of the
ablation benchmarks does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MicroBlazeInterfaceModel:
    """Cycle cost of the software/coprocessor interface.

    Components of one instruction round trip (register write + interrupt):

    * ``bus_write_cycles`` — OPB/PLB write of the instruction word into
      register A (address decode + bus handshake).
    * ``bus_read_cycles`` — read-back of the status/data register.
    * ``interrupt_latency_cycles`` — cycles from the coprocessor raising the
      interrupt to the first instruction of the handler.
    * ``isr_overhead_cycles`` — handler prologue/epilogue (context save and
      restore, interrupt-controller acknowledge).
    * ``dispatch_cycles`` — software bookkeeping in the driver loop (operand
      address computation, loop control) per issued instruction.

    The defaults sum to the paper's measured 184 cycles.
    """

    bus_write_cycles: int = 22
    bus_read_cycles: int = 22
    interrupt_latency_cycles: int = 32
    isr_overhead_cycles: int = 68
    dispatch_cycles: int = 40

    @property
    def round_trip_cycles(self) -> int:
        """Register-A access + interrupt handling for one coprocessor instruction."""
        return (
            self.bus_write_cycles
            + self.bus_read_cycles
            + self.interrupt_latency_cycles
            + self.isr_overhead_cycles
            + self.dispatch_cycles
        )

    def type_a_overhead(self, num_operations: int) -> int:
        """Interface cycles when every modular operation is issued individually."""
        return num_operations * self.round_trip_cycles

    def type_b_overhead(self, num_sequences: int) -> int:
        """Interface cycles when whole level-2 sequences are issued (Type-B)."""
        return num_sequences * self.round_trip_cycles

    def scaled(self, factor: float) -> "MicroBlazeInterfaceModel":
        """A copy with every component scaled (for the interface ablation)."""
        return MicroBlazeInterfaceModel(
            bus_write_cycles=max(1, round(self.bus_write_cycles * factor)),
            bus_read_cycles=max(1, round(self.bus_read_cycles * factor)),
            interrupt_latency_cycles=max(1, round(self.interrupt_latency_cycles * factor)),
            isr_overhead_cycles=max(1, round(self.isr_overhead_cycles * factor)),
            dispatch_cycles=max(1, round(self.dispatch_cycles * factor)),
        )
