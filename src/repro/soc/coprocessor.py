"""The multicore coprocessor: decoder + cores + single-port DataRAM.

This is the cycle-accurate execution engine: it takes a static VLIW
:class:`~repro.soc.assembler.Schedule` (the contents of the microinstruction
ROM) and executes it one bundle per clock against the shared DataRAM,
enforcing the structural constraints the paper describes (single memory port,
no branches inside the cores) and collecting the statistics the analysis
layer turns into Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ExecutionError, ParameterError, ScheduleError
from repro.soc.assembler import CoreProgram, Schedule, schedule_programs
from repro.soc.core import Core
from repro.soc.isa import Op
from repro.soc.memory import DataRam, InstructionRom, MemoryAllocator


@dataclass
class CoprocessorConfig:
    """Structural parameters of the coprocessor.

    Defaults follow the paper where it is explicit (single-port block-RAM data
    memory, cores built around the FPGA's dedicated multipliers) and use
    documented engineering choices where it is not (16-bit words so one MAC
    maps onto one dedicated 18x18 multiplier, four cores as in Fig. 5, a
    register file large enough to hold each core's share of a 1024-bit
    operand).
    """

    word_bits: int = 16
    num_cores: int = 4
    num_registers: int = 80
    data_ram_words: int = 4096
    # The simulator stores fully unrolled routines (the real ROM would hold a
    # rolled loop plus an iteration counter in the decoder); the capacity is
    # sized for an unrolled 1024-bit Montgomery multiplication.
    ins_rom_words: int = 131072

    def validate(self) -> None:
        if self.word_bits < 4:
            raise ParameterError("word size must be at least 4 bits")
        if self.num_cores < 1:
            raise ParameterError("need at least one core")
        if self.num_registers < 8:
            raise ParameterError("register file too small for the microcode")


@dataclass
class ExecutionResult:
    """Outcome of running one schedule."""

    cycles: int
    instructions: int
    memory_accesses: int
    mac_operations: int
    core_utilization: List[float] = field(default_factory=list)
    stall_cycles: int = 0

    def __repr__(self) -> str:
        return (
            f"ExecutionResult(cycles={self.cycles}, instrs={self.instructions}, "
            f"mem={self.memory_accesses}, macs={self.mac_operations})"
        )


class Coprocessor:
    """Decoder, cores and data memory of the platform's workhorse (Fig. 2)."""

    def __init__(self, config: Optional[CoprocessorConfig] = None):
        self.config = config or CoprocessorConfig()
        self.config.validate()
        self.ram = DataRam(self.config.data_ram_words, self.config.word_bits)
        self.cores = [
            Core(core_id, self.config.word_bits, self.config.num_registers)
            for core_id in range(self.config.num_cores)
        ]
        self.instruction_rom = InstructionRom(self.config.ins_rom_words, name="InsRom2")
        self.sequence_rom = InstructionRom(self.config.ins_rom_words, name="InsRom1")
        self.allocator = MemoryAllocator(self.config.data_ram_words)
        self.total_cycles = 0

    # -- operand staging (MicroBlaze-side, via data registers B and C) -------------

    def allocate_operand(self, name: str, num_words: int) -> int:
        """Reserve DataRAM space for a named multi-word operand."""
        return self.allocator.allocate(name, num_words)

    def write_operand(self, name: str, value: int) -> None:
        """Stage an operand value into its DataRAM region (host-side)."""
        base = self.allocator.address_of(name)
        self.ram.load_integer(base, value, self.allocator.size_of(name))

    def read_operand(self, name: str) -> int:
        """Read a multi-word operand back out of DataRAM (host-side)."""
        base = self.allocator.address_of(name)
        return self.ram.read_integer(base, self.allocator.size_of(name))

    def address_of(self, name: str) -> int:
        return self.allocator.address_of(name)

    # -- execution ---------------------------------------------------------------

    def reset_cores(self) -> None:
        for core in self.cores:
            core.reset()

    def build_schedule(self, programs: Sequence[CoreProgram]) -> Schedule:
        """Assemble per-core streams into a static schedule and account ROM space."""
        if len(programs) > self.config.num_cores:
            raise ScheduleError(
                f"{len(programs)} core programs for {self.config.num_cores} cores"
            )
        padded = list(programs) + [
            CoreProgram(core_id=i) for i in range(len(programs), self.config.num_cores)
        ]
        schedule = schedule_programs(
            padded,
            num_registers=self.config.num_registers,
            memory_size=self.config.data_ram_words,
        )
        return schedule

    def execute_schedule(self, schedule: Schedule, reset_cores: bool = True) -> ExecutionResult:
        """Run a schedule bundle-by-bundle and return cycle/operation counts."""
        if schedule.num_cores != self.config.num_cores:
            raise ExecutionError("schedule was built for a different core count")
        if reset_cores:
            self.reset_cores()
        start_instr = sum(core.executed for core in self.cores)
        start_mem = sum(core.memory_accesses for core in self.cores)
        start_mac = sum(core.mac_count for core in self.cores)

        stall_cycles = 0
        for bundle in schedule.bundles:
            # The port constraint was validated at scheduling time; re-check
            # defensively because a broadcast read touches the RAM only once.
            memory_slots = [s for s in bundle if s is not None and s.uses_memory()]
            broadcast_address = None
            if len(memory_slots) > 1:
                addresses = {s.addr for s in memory_slots}
                ops = {s.op for s in memory_slots}
                if ops != {Op.LD} or len(addresses) != 1:
                    raise ExecutionError("single-port DataRAM conflict at execution time")
                broadcast_address = memory_slots[0].addr
            if not any(slot is not None for slot in bundle):
                stall_cycles += 1
            if broadcast_address is not None:
                # One physical read, every listed core latches the value.
                value = self.ram.read(broadcast_address)
                for core_id, slot in enumerate(bundle):
                    if slot is None:
                        continue
                    if slot.op == Op.LD and slot.addr == broadcast_address:
                        self.cores[core_id].registers[slot.rd] = value
                        self.cores[core_id].executed += 1
                        self.cores[core_id].memory_accesses += 1
                    else:
                        self.cores[core_id].execute(slot, self.ram)
            else:
                for core_id, slot in enumerate(bundle):
                    if slot is not None:
                        self.cores[core_id].execute(slot, self.ram)

        self.total_cycles += schedule.cycles
        return ExecutionResult(
            cycles=schedule.cycles,
            instructions=sum(core.executed for core in self.cores) - start_instr,
            memory_accesses=sum(core.memory_accesses for core in self.cores) - start_mem,
            mac_operations=sum(core.mac_count for core in self.cores) - start_mac,
            core_utilization=schedule.utilization(),
            stall_cycles=stall_cycles,
        )

    def run_programs(self, programs: Sequence[CoreProgram]) -> ExecutionResult:
        """Convenience: schedule then execute."""
        schedule = self.build_schedule(programs)
        return self.execute_schedule(schedule)

    def __repr__(self) -> str:
        return (
            f"Coprocessor(cores={self.config.num_cores}, w={self.config.word_bits}, "
            f"ram={self.config.data_ram_words} words)"
        )
