"""The level-2 intermediate representation: sequences of modular operations.

Section 3.2 structures a torus exponentiation in three levels; level 2 is a
sequence of modular multiplications (MM), additions (MA) and subtractions
(MS) over operands held in the coprocessor's data memory — e.g. the
18 MM + ~60 MA/MS sequence of one Fp6 multiplication, or a Jacobian point
operation for ECC.  In the Type-A architecture the MicroBlaze walks this
sequence itself; in Type-B the sequence sits in InsRom1 and is driven by the
coprocessor's decoder.

A :class:`Level2Program` is a list of :class:`ModOp` over *named* operands.
It can be

* counted (how many MM/MA/MS — the quantity the cost model composes),
* executed functionally against any backend that provides ``mont_mul`` /
  ``mod_add`` / ``mod_sub`` (a plain Montgomery domain for fast validation,
  or the cycle-accurate :class:`~repro.soc.engine.ModularEngine`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain


class ModOpKind(enum.Enum):
    """The three modular operations of the platform's level-2 vocabulary."""

    MM = "MM"  # Montgomery modular multiplication
    MA = "MA"  # modular addition
    MS = "MS"  # modular subtraction


@dataclass(frozen=True)
class ModOp:
    """One level-2 operation: ``dst = src1 (op) src2`` over named operands."""

    kind: ModOpKind
    dst: str
    src1: str
    src2: str
    comment: str = ""

    def __repr__(self) -> str:
        text = f"{self.kind.value} {self.dst}, {self.src1}, {self.src2}"
        if self.comment:
            text += f"  ; {self.comment}"
        return text


@dataclass
class OperationCounts2:
    """MM/MA/MS tallies of a level-2 program."""

    mm: int = 0
    ma: int = 0
    ms: int = 0

    @property
    def total(self) -> int:
        return self.mm + self.ma + self.ms

    @property
    def additions_total(self) -> int:
        """MA + MS, the paper's 'A' at level 2."""
        return self.ma + self.ms


@dataclass
class Level2Program:
    """A named sequence of modular operations."""

    name: str
    operations: List[ModOp] = field(default_factory=list)
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()

    def append(self, kind: ModOpKind, dst: str, src1: str, src2: str, comment: str = "") -> None:
        self.operations.append(ModOp(kind, dst, src1, src2, comment))

    def mm(self, dst: str, src1: str, src2: str, comment: str = "") -> None:
        self.append(ModOpKind.MM, dst, src1, src2, comment)

    def ma(self, dst: str, src1: str, src2: str, comment: str = "") -> None:
        self.append(ModOpKind.MA, dst, src1, src2, comment)

    def ms(self, dst: str, src1: str, src2: str, comment: str = "") -> None:
        self.append(ModOpKind.MS, dst, src1, src2, comment)

    def counts(self) -> OperationCounts2:
        tally = OperationCounts2()
        for op in self.operations:
            if op.kind == ModOpKind.MM:
                tally.mm += 1
            elif op.kind == ModOpKind.MA:
                tally.ma += 1
            else:
                tally.ms += 1
        return tally

    def operand_names(self) -> List[str]:
        names: List[str] = []
        for op in self.operations:
            for name in (op.dst, op.src1, op.src2):
                if name not in names:
                    names.append(name)
        return names

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    # -- functional execution ---------------------------------------------------------

    def execute(self, backend: "ModularBackend", memory: Dict[str, int]) -> Dict[str, int]:
        """Run the sequence against a backend, mutating and returning ``memory``.

        Every operand named by the program's inputs must be present in
        ``memory``; values are whatever domain the backend expects (Montgomery
        residues for the platform backends).
        """
        for name in self.inputs:
            if name not in memory:
                raise ParameterError(f"missing input operand {name!r}")
        for op in self.operations:
            a = memory[op.src1]
            b = memory[op.src2]
            if op.kind == ModOpKind.MM:
                memory[op.dst] = backend.mont_mul_value(a, b)
            elif op.kind == ModOpKind.MA:
                memory[op.dst] = backend.mod_add_value(a, b)
            else:
                memory[op.dst] = backend.mod_sub_value(a, b)
        return memory


class ModularBackend:
    """Interface of a level-2 execution backend (values only, no cycles)."""

    def mont_mul_value(self, a: int, b: int) -> int:
        raise NotImplementedError

    def mod_add_value(self, a: int, b: int) -> int:
        raise NotImplementedError

    def mod_sub_value(self, a: int, b: int) -> int:
        raise NotImplementedError


class SoftwareBackend(ModularBackend):
    """Fast big-integer backend used to validate level-2 sequences."""

    def __init__(self, domain: MontgomeryDomain):
        self.domain = domain

    def mont_mul_value(self, a: int, b: int) -> int:
        return self.domain.mont_mul(a, b)

    def mod_add_value(self, a: int, b: int) -> int:
        return (a + b) % self.domain.modulus

    def mod_sub_value(self, a: int, b: int) -> int:
        return (a - b) % self.domain.modulus


class EngineBackend(ModularBackend):
    """Cycle-accurate backend: every operation runs through the coprocessor."""

    def __init__(self, engine):
        self.engine = engine
        self.cycles = 0
        self.operation_count = 0

    def mont_mul_value(self, a: int, b: int) -> int:
        value, cycles = self.engine.mont_mul(a, b)
        self.cycles += cycles
        self.operation_count += 1
        return value

    def mod_add_value(self, a: int, b: int) -> int:
        value, cycles = self.engine.mod_add(a, b)
        self.cycles += cycles
        self.operation_count += 1
        return value

    def mod_sub_value(self, a: int, b: int) -> int:
        value, cycles = self.engine.mod_sub(a, b)
        self.cycles += cycles
        self.operation_count += 1
        return value
