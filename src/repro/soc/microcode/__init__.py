"""Microcode generators (the contents of InsRom2).

Each generator turns a modular operation at a given operand size into
per-core instruction streams for the 7-instruction cores:

* :mod:`repro.soc.microcode.modmul` — Montgomery modular multiplication,
  parallelised over the cores with the carry-local schedule of Fig. 5,
* :mod:`repro.soc.microcode.modadd` — modular addition and subtraction on a
  single core (the paper keeps these on one core because the carry chain
  would otherwise have to cross cores).
"""

from repro.soc.microcode.modmul import MontgomeryMulMicrocode
from repro.soc.microcode.modadd import ModularAddMicrocode, ModularSubMicrocode

__all__ = [
    "MontgomeryMulMicrocode",
    "ModularAddMicrocode",
    "ModularSubMicrocode",
]
