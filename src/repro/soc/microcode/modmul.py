"""Microcode generator for multi-core Montgomery modular multiplication.

Implements Algorithm 1 (FIOS) with the carry-local multi-core schedule of
Fig. 5 / reference [4]:

* the result words are split into one contiguous block per core (core 0 gets
  the smallest block because it also derives the reduction digit m each
  iteration);
* carries produced at the top of a block are *not* passed to the next core:
  they are kept in two local registers (low word + high bits) and re-injected
  by the same core one iteration later, after the division by r has shifted
  that position back into the block;
* at the end of every iteration the lowest freshly-computed word of core c is
  stored to a transfer cell and loaded by core c-1 — the word movements drawn
  in Fig. 5;
* the per-iteration reduction digit m is derived by core 0 from its always
  exact z0 word and broadcast through a DataRAM cell.

The main loop is executed cycle-accurately.  The epilogue — folding the
parked carries back in and the conditional final subtraction — is performed
functionally by the sequencer model at a documented cost
(:attr:`MontgomeryMulMicrocode.EPILOGUE_CYCLES_PER_WORD` cycles per word plus
a constant), because the paper gives no detail about it and it contributes
only ~10-15% of the operation (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ExecutionError, ParameterError
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.parallel import ParallelFiosSchedule
from repro.soc.assembler import CoreProgram
from repro.soc.coprocessor import Coprocessor
from repro.soc.isa import addc, cla, ld, mac, sha, st


@dataclass
class ModMulLayout:
    """DataRAM addresses the multiplier microcode needs."""

    x_base: int
    y_base: int
    result_base: int
    modulus_base: int
    pprime_addr: int
    one_addr: int
    m_addr: int
    xfer_base: int  # one transfer cell per core


class MontgomeryMulMicrocode:
    """Builds and runs the multi-core Montgomery multiplication microcode."""

    #: Modeled sequencer cost of the epilogue (carry resolution + conditional
    #: subtraction): one load-modify-store style pass over the result words.
    EPILOGUE_CYCLES_PER_WORD = 3
    EPILOGUE_CYCLES_FIXED = 10

    def __init__(
        self,
        coprocessor: Coprocessor,
        domain: MontgomeryDomain,
        layout: ModMulLayout,
    ):
        if domain.word_bits != coprocessor.config.word_bits:
            raise ParameterError("domain word size differs from the coprocessor word size")
        self.coprocessor = coprocessor
        self.domain = domain
        self.layout = layout
        self.num_words = domain.num_words
        self.schedule_blocks = ParallelFiosSchedule.build(
            self.num_words, coprocessor.config.num_cores
        )
        self.num_active_cores = self.schedule_blocks.num_cores
        self._register_maps = [
            self._build_register_map(core) for core in range(self.num_active_cores)
        ]
        self._check_register_pressure()
        self.programs = self._build_programs()
        self._static_schedule = None

    # -- register allocation -------------------------------------------------------

    def _block(self, core: int) -> Tuple[int, int]:
        return self.schedule_blocks.blocks[core]

    def _build_register_map(self, core: int) -> Dict[str, int]:
        lo, hi = self._block(core)
        block_size = hi - lo + 1
        names: Dict[str, int] = {}
        index = 0
        for j in range(lo, hi + 1):
            names[f"x{j}"] = index
            index += 1
        for j in range(lo, hi + 1):
            names[f"p{j}"] = index
            index += 1
        for j in range(lo, hi + 1):
            names[f"z{j}"] = index
            index += 1
        for scalar in ("one", "yi", "m", "deflo", "defhi", "t", "thi", "pprime", "zx", "discard"):
            names[scalar] = index
            index += 1
        names["_block_size"] = block_size
        return names

    def _check_register_pressure(self) -> None:
        limit = self.coprocessor.config.num_registers
        for core, regs in enumerate(self._register_maps):
            needed = max(v for k, v in regs.items() if k != "_block_size") + 1
            if needed > limit:
                raise ParameterError(
                    f"core {core} needs {needed} registers for a {self.num_words}-word "
                    f"operand but the register file has only {limit}; use more cores "
                    f"or a larger register file"
                )

    # -- program construction ---------------------------------------------------------

    def _build_programs(self) -> List[CoreProgram]:
        programs = [CoreProgram(core_id=c) for c in range(self.coprocessor.config.num_cores)]
        for core in range(self.num_active_cores):
            self._emit_init(programs[core], core)
        for iteration in range(self.num_words):
            for core in range(self.num_active_cores):
                self._emit_iteration(programs[core], core, iteration)
        return programs

    def _emit_init(self, program: CoreProgram, core: int) -> None:
        regs = self._register_maps[core]
        layout = self.layout
        lo, hi = self._block(core)
        program.append(ld(regs["one"], layout.one_addr, comment="constant 1"))
        for j in range(lo, hi + 1):
            program.append(ld(regs[f"x{j}"], layout.x_base + j, comment=f"load x[{j}]"))
        for j in range(lo, hi + 1):
            program.append(ld(regs[f"p{j}"], layout.modulus_base + j, comment=f"load p[{j}]"))
        if core == 0:
            program.append(ld(regs["pprime"], layout.pprime_addr, comment="load p'"))
        program.append(cla(comment="zero the z block"))
        for j in range(lo, hi + 1):
            program.append(sha(regs[f"z{j}"]))
        program.append(sha(regs["deflo"]))
        program.append(sha(regs["defhi"]))
        if core == self.num_active_cores - 1:
            program.append(sha(regs["zx"]))

    def _emit_iteration(self, program: CoreProgram, core: int, i: int) -> None:
        regs = self._register_maps[core]
        layout = self.layout
        lo, hi = self._block(core)
        is_first = core == 0
        is_last = core == self.num_active_cores - 1
        single_core = self.num_active_cores == 1

        program.append(ld(regs["yi"], layout.y_base + i, comment=f"y[{i}]"))

        if is_first:
            # Derive m from the (always exact) z0 and broadcast it.
            program.append(cla())
            program.append(mac(regs["z0"], regs["one"], comment="t = z0 + x0*yi"))
            program.append(mac(regs["x0"], regs["yi"]))
            program.append(sha(regs["t"]))
            program.append(sha(regs["thi"]))
            program.append(mac(regs["t"], regs["pprime"], comment="m = t*p' mod r"))
            program.append(sha(regs["m"]))
            program.append(cla(comment="drop high part of t*p'"))
            if not single_core:
                wait = tuple(f"lm{i - 1}_c{c}" for c in range(1, self.num_active_cores)) if i > 0 else ()
                program.append(
                    st(layout.m_addr, regs["m"], tag=f"m{i}", wait_for=wait, comment="broadcast m")
                )
            # Word 0: S[0] = (t + p0*m) mod r must be zero; keep the carry.
            program.append(mac(regs["t"], regs["one"]))
            program.append(mac(regs["p0"], regs["m"]))
            program.append(sha(regs["discard"], comment="S[0] == 0"))
            program.append(mac(regs["thi"], regs["one"], comment="carry of z0 + x0*yi"))
            start_word = lo + 1
        else:
            program.append(
                ld(regs["m"], layout.m_addr, wait_for=(f"m{i}",), tag=f"lm{i}_c{core}")
            )
            # Lowest word of the block: its new value is sent down to core-1.
            program.append(mac(regs[f"z{lo}"], regs["one"]))
            program.append(mac(regs[f"x{lo}"], regs["yi"]))
            program.append(mac(regs[f"p{lo}"], regs["m"]))
            if lo == hi:
                program.append(mac(regs["deflo"], regs["one"]))
            program.append(sha(regs["t"], comment=f"S[{lo}] -> transfer"))
            wait = (f"r{i - 1}_c{core - 1}",) if i > 0 else ()
            program.append(
                st(layout.xfer_base + core, regs["t"], tag=f"x{i}_c{core}", wait_for=wait)
            )
            start_word = lo + 1

        for j in range(start_word, hi + 1):
            program.append(mac(regs[f"z{j}"], regs["one"]))
            program.append(mac(regs[f"x{j}"], regs["yi"]))
            program.append(mac(regs[f"p{j}"], regs["m"]))
            if j == hi and not is_last:
                program.append(mac(regs["deflo"], regs["one"], comment="re-inject deferred carry"))
            program.append(sha(regs[f"z{j - 1}"], comment=f"new z[{j - 1}] = S[{j}]"))

        if is_last:
            # Fold the running carry into the extra word; no deferral needed.
            program.append(mac(regs["zx"], regs["one"], comment="add the overflow word"))
            program.append(sha(regs[f"z{hi}"], comment=f"new z[{hi}] = S[{self.num_words}]"))
            program.append(sha(regs["zx"]))
        else:
            program.append(mac(regs["defhi"], regs["one"], comment="high bits of deferred carry"))
            program.append(sha(regs["deflo"]))
            program.append(sha(regs["defhi"]))
            # Receive the transfer word from the core above.
            program.append(
                ld(
                    regs[f"z{hi}"],
                    layout.xfer_base + core + 1,
                    wait_for=(f"x{i}_c{core + 1}",),
                    tag=f"r{i}_c{core}",
                    comment="Fig. 5 transfer from the core above",
                )
            )

    # -- execution ------------------------------------------------------------------

    def build_schedule(self):
        """Assemble (and cache) the static VLIW schedule."""
        if self._static_schedule is None:
            self._static_schedule = self.coprocessor.build_schedule(self.programs)
            self.coprocessor.instruction_rom.store(self._static_schedule.instruction_count)
        return self._static_schedule

    @property
    def epilogue_cycles(self) -> int:
        """Modeled cost of carry resolution + conditional final subtraction."""
        return self.EPILOGUE_CYCLES_PER_WORD * self.num_words + self.EPILOGUE_CYCLES_FIXED

    def run(self, x_bar: int, y_bar: int) -> Tuple[int, int]:
        """Execute one Montgomery multiplication.

        Operands are Montgomery-domain residues already reduced modulo P.
        Returns ``(result, total_cycles)`` where the result is also written
        to the result region of DataRAM and ``total_cycles`` includes the
        modeled epilogue.
        """
        p = self.domain.modulus
        if not (0 <= x_bar < p and 0 <= y_bar < p):
            raise ParameterError("operands must be reduced modulo P")
        ram = self.coprocessor.ram
        layout = self.layout
        ram.load_integer(layout.x_base, x_bar, self.num_words)
        ram.load_integer(layout.y_base, y_bar, self.num_words)
        ram.load_integer(layout.modulus_base, self.domain.modulus, self.num_words)
        ram.write(layout.pprime_addr, self.domain.p_prime)
        ram.write(layout.one_addr, 1)

        schedule = self.build_schedule()
        result = self.coprocessor.execute_schedule(schedule)

        value = self._resolve_epilogue()
        ram.load_integer(layout.result_base, value, self.num_words)
        total_cycles = result.cycles + self.epilogue_cycles
        return value, total_cycles

    def _resolve_epilogue(self) -> int:
        """Fold parked carries, add the overflow word, subtract P if needed."""
        w = self.domain.word_bits
        value = 0
        for core in range(self.num_active_cores):
            regs = self._register_maps[core]
            lo, hi = self._block(core)
            core_state = self.coprocessor.cores[core]
            for j in range(lo, hi + 1):
                value += core_state.read_register(regs[f"z{j}"]) << (w * j)
            if core == self.num_active_cores - 1:
                value += core_state.read_register(regs["zx"]) << (w * self.num_words)
            else:
                deferred = core_state.read_register(regs["deflo"]) + (
                    core_state.read_register(regs["defhi"]) << w
                )
                value += deferred << (w * hi)
        if value >= 2 * self.domain.modulus:
            raise ExecutionError("Montgomery microcode produced a value >= 2P (bug)")
        if value >= self.domain.modulus:
            value -= self.domain.modulus
        return value

    def cycle_count(self) -> int:
        """Total cycles of one multiplication (main loop + modeled epilogue)."""
        return self.build_schedule().cycles + self.epilogue_cycles
