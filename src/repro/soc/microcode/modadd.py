"""Microcode for modular addition and subtraction (single core).

The paper keeps modular additions and subtractions on one core "because
carry needs to be transferred if multiple cores are used" (Section 4); the
cost is a load/add-with-carry/store pass over the operand words, which is why
a 170-bit modular addition (47 cycles) is only ~4x cheaper than a 170-bit
Montgomery multiplication despite doing 20x less arithmetic.

Two flavours are provided:

* **lazy addition** — a single carry-propagating pass, exactly the 4s + O(1)
  cycles of the paper's Table 1.  The result equals a + b without reduction;
  callers must guarantee enough headroom (see the bounds analysis in
  :mod:`repro.soc.sequences`).
* **strict addition** — the lazy pass followed by a subtract-P pass and a
  sequencer-conditional write-back, producing a fully reduced result.
* **subtraction** — subtract pass plus a sequencer-conditional add-P-back
  pass (taken when the subtraction borrows), which is both strict and shaped
  like the paper's 61-cycle figure.

The "sequencer-conditional" tails model the decoder skipping the rest of a
routine based on core 0's carry flag; the cores themselves still have no
branch instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ParameterError
from repro.soc.assembler import CoreProgram, Schedule
from repro.soc.coprocessor import Coprocessor
from repro.soc.isa import addc, cla, ld, sha, st, subb


@dataclass
class ModAddLayout:
    """DataRAM addresses used by the add/sub microcode."""

    a_base: int
    b_base: int
    result_base: int
    modulus_base: int
    scratch_base: int


# Register assignment for the single-core routines.
_REG_A = 0
_REG_B = 1
_REG_T = 2
_REG_ZERO = 3
_REG_FLAG = 4


class _SingleCoreRoutine:
    """Shared machinery: build, cache and run main + conditional-tail schedules."""

    def __init__(self, coprocessor: Coprocessor, num_words: int, layout: ModAddLayout):
        if num_words < 1:
            raise ParameterError("operands need at least one word")
        self.coprocessor = coprocessor
        self.num_words = num_words
        self.layout = layout
        self._main_schedule: Optional[Schedule] = None
        self._tail_schedule: Optional[Schedule] = None

    def _pad(self, program: CoreProgram):
        others = [
            CoreProgram(core_id=i)
            for i in range(1, self.coprocessor.config.num_cores)
        ]
        return [program] + others

    def _main(self) -> Schedule:
        if self._main_schedule is None:
            program = CoreProgram(core_id=0)
            self._emit_main(program)
            self._main_schedule = self.coprocessor.build_schedule(self._pad(program))
            self.coprocessor.instruction_rom.store(self._main_schedule.instruction_count)
        return self._main_schedule

    def _tail(self) -> Schedule:
        if self._tail_schedule is None:
            program = CoreProgram(core_id=0)
            self._emit_tail(program)
            self._tail_schedule = self.coprocessor.build_schedule(self._pad(program))
            self.coprocessor.instruction_rom.store(self._tail_schedule.instruction_count)
        return self._tail_schedule

    # Subclasses fill these in.
    def _emit_main(self, program: CoreProgram) -> None:
        raise NotImplementedError

    def _emit_tail(self, program: CoreProgram) -> None:
        raise NotImplementedError

    def _tail_condition(self, carry_flag: int, a: int, b: int, modulus: int) -> bool:
        raise NotImplementedError

    # -- common cycle accounting -------------------------------------------------

    def fast_path_cycles(self) -> int:
        """Cycles when the conditional tail is not taken."""
        return self._main().cycles

    def worst_case_cycles(self) -> int:
        """Cycles when the conditional tail is taken."""
        return self._main().cycles + self._tail().cycles


class ModularAddMicrocode(_SingleCoreRoutine):
    """Modular addition: ``result = (a + b) mod P`` (strict) or ``a + b`` (lazy)."""

    def __init__(
        self,
        coprocessor: Coprocessor,
        num_words: int,
        layout: ModAddLayout,
        modulus: int,
        lazy: bool = False,
    ):
        super().__init__(coprocessor, num_words, layout)
        self.modulus = modulus
        self.lazy = lazy

    def _emit_main(self, program: CoreProgram) -> None:
        layout = self.layout
        program.append(cla())
        program.append(sha(_REG_ZERO, comment="materialise constant 0"))
        for j in range(self.num_words):
            program.append(ld(_REG_A, layout.a_base + j))
            program.append(ld(_REG_B, layout.b_base + j))
            program.append(addc(_REG_T, _REG_A, _REG_B, use_carry=(j > 0)))
            program.append(st(layout.result_base + j, _REG_T))
        # Materialise the final carry so the sequencer can test it.
        program.append(addc(_REG_FLAG, _REG_ZERO, _REG_ZERO, use_carry=True))

    def _emit_tail(self, program: CoreProgram) -> None:
        """Subtract P from the stored sum (taken when sum >= P)."""
        layout = self.layout
        for j in range(self.num_words):
            program.append(ld(_REG_A, layout.result_base + j))
            program.append(ld(_REG_B, layout.modulus_base + j))
            program.append(subb(_REG_T, _REG_A, _REG_B, use_carry=(j > 0)))
            program.append(st(layout.result_base + j, _REG_T))

    def run(self, a: int, b: int) -> Tuple[int, int]:
        """Execute the addition; returns ``(result, cycles)``."""
        ram = self.coprocessor.ram
        layout = self.layout
        ram.load_integer(layout.a_base, a, self.num_words)
        ram.load_integer(layout.b_base, b, self.num_words)
        ram.load_integer(layout.modulus_base, self.modulus, self.num_words)

        main_result = self.coprocessor.execute_schedule(self._main())
        cycles = main_result.cycles
        total = a + b
        if not self.lazy and total >= self.modulus:
            # The sequencer takes the subtract-P tail.  (With a + b < 2P a
            # single subtraction always suffices.)
            tail_result = self.coprocessor.execute_schedule(self._tail(), reset_cores=False)
            cycles += tail_result.cycles
        value = ram.read_integer(layout.result_base, self.num_words)
        return value, cycles


class ModularSubMicrocode(_SingleCoreRoutine):
    """Modular subtraction: ``result = (a - b) mod P``."""

    def __init__(
        self,
        coprocessor: Coprocessor,
        num_words: int,
        layout: ModAddLayout,
        modulus: int,
    ):
        super().__init__(coprocessor, num_words, layout)
        self.modulus = modulus

    def _emit_main(self, program: CoreProgram) -> None:
        layout = self.layout
        for j in range(self.num_words):
            program.append(ld(_REG_A, layout.a_base + j))
            program.append(ld(_REG_B, layout.b_base + j))
            program.append(subb(_REG_T, _REG_A, _REG_B, use_carry=(j > 0)))
            program.append(st(layout.result_base + j, _REG_T))

    def _emit_tail(self, program: CoreProgram) -> None:
        """Add P back (taken when the subtraction borrowed)."""
        layout = self.layout
        for j in range(self.num_words):
            program.append(ld(_REG_A, layout.result_base + j))
            program.append(ld(_REG_B, layout.modulus_base + j))
            program.append(addc(_REG_T, _REG_A, _REG_B, use_carry=(j > 0)))
            program.append(st(layout.result_base + j, _REG_T))

    def run(self, a: int, b: int) -> Tuple[int, int]:
        """Execute the subtraction; returns ``(result, cycles)``."""
        ram = self.coprocessor.ram
        layout = self.layout
        ram.load_integer(layout.a_base, a, self.num_words)
        ram.load_integer(layout.b_base, b, self.num_words)
        ram.load_integer(layout.modulus_base, self.modulus, self.num_words)

        main_result = self.coprocessor.execute_schedule(self._main())
        cycles = main_result.cycles
        if a < b:
            tail_result = self.coprocessor.execute_schedule(self._tail(), reset_cores=False)
            cycles += tail_result.cycles
        value = ram.read_integer(layout.result_base, self.num_words)
        return value, cycles
