"""A single coprocessor core.

Each core is a load/store machine with a ``w``-bit register file, a
``2w + 8``-bit multiply-accumulate register (built from the FPGA's dedicated
multipliers) and a carry/borrow flag.  It has no program counter of its own:
the decoder feeds it one instruction per cycle out of the VLIW bundle (or a
NOP), exactly as in Fig. 2(b).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ExecutionError
from repro.soc.isa import Instruction, Op
from repro.soc.memory import DataRam


class Core:
    """Architectural state and single-instruction execution of one core."""

    def __init__(self, core_id: int, word_bits: int = 16, num_registers: int = 80):
        self.core_id = core_id
        self.word_bits = word_bits
        self.num_registers = num_registers
        self.mask = (1 << word_bits) - 1
        self.acc_bits = 2 * word_bits + 8
        self.acc_limit = 1 << self.acc_bits
        self.registers: List[int] = [0] * num_registers
        self.accumulator = 0
        self.carry = 0
        # Statistics.
        self.executed = 0
        self.mac_count = 0
        self.memory_accesses = 0

    # -- state helpers -----------------------------------------------------------

    def reset(self) -> None:
        """Clear registers, accumulator, flag and statistics."""
        self.registers = [0] * self.num_registers
        self.accumulator = 0
        self.carry = 0
        self.executed = 0
        self.mac_count = 0
        self.memory_accesses = 0

    def read_register(self, index: int) -> int:
        return self.registers[index]

    def write_register(self, index: int, value: int) -> None:
        if not 0 <= value <= self.mask:
            raise ExecutionError(
                f"core {self.core_id}: value {value} does not fit in a register"
            )
        self.registers[index] = value

    # -- execution -----------------------------------------------------------------

    def execute(self, instr: Optional[Instruction], ram: DataRam) -> None:
        """Execute one instruction (``None`` = NOP) against the shared DataRAM."""
        if instr is None:
            return
        self.executed += 1
        op = instr.op
        regs = self.registers

        if op == Op.LD:
            regs[instr.rd] = ram.read(instr.addr)
            self.memory_accesses += 1
        elif op == Op.ST:
            ram.write(instr.addr, regs[instr.ra])
            self.memory_accesses += 1
        elif op == Op.MAC:
            self.accumulator += regs[instr.ra] * regs[instr.rb]
            self.mac_count += 1
            if self.accumulator >= self.acc_limit:
                raise ExecutionError(
                    f"core {self.core_id}: accumulator overflow "
                    f"({self.accumulator} >= 2^{self.acc_bits})"
                )
        elif op == Op.SHA:
            regs[instr.rd] = self.accumulator & self.mask
            self.accumulator >>= self.word_bits
        elif op == Op.CLA:
            self.accumulator = 0
        elif op == Op.ADDC:
            total = regs[instr.ra] + regs[instr.rb] + (self.carry if instr.use_carry else 0)
            regs[instr.rd] = total & self.mask
            self.carry = total >> self.word_bits
        elif op == Op.SUBB:
            total = regs[instr.ra] - regs[instr.rb] - (self.carry if instr.use_carry else 0)
            regs[instr.rd] = total & self.mask
            self.carry = 1 if total < 0 else 0
        else:  # pragma: no cover - enum is exhaustive
            raise ExecutionError(f"core {self.core_id}: unknown opcode {op}")

    def __repr__(self) -> str:
        return f"Core(id={self.core_id}, w={self.word_bits}, regs={self.num_registers})"
