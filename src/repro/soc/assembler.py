"""Static scheduling of per-core microcode into VLIW bundles.

The decoder of the real coprocessor dispatches one microinstruction to every
core in parallel each cycle and "manages the data memory so that conflicts
are avoided" (Section 3.1).  In this model the microcode generators emit one
ordered instruction stream per core, annotated with cross-core dependency
tags, and :func:`schedule_programs` produces the static cycle-by-cycle
schedule the ROM would contain:

* program order is preserved inside each core,
* at most one LD/ST is issued per cycle across all cores (single-port RAM),
* an instruction with ``wait_for`` tags is issued strictly after the cycles
  in which the tagged instructions were issued (the read-after-write
  synchronisation the decoder encodes statically),
* as a broadcast-read optimisation, several cores may LD the *same address*
  in the same cycle at the cost of a single port access — the decoder drives
  one read and every core latches the bus value.

The result is a :class:`Schedule` — a list of bundles, each bundle being one
slot per core — which the coprocessor executes one bundle per clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import AssemblyError, ScheduleError
from repro.soc.isa import Instruction, Op


@dataclass
class CoreProgram:
    """An ordered instruction stream for one core."""

    core_id: int
    instructions: List[Instruction] = field(default_factory=list)

    def append(self, instr: Instruction) -> None:
        self.instructions.append(instr)

    def extend(self, instrs: Sequence[Instruction]) -> None:
        self.instructions.extend(instrs)

    def __len__(self) -> int:
        return len(self.instructions)


Bundle = List[Optional[Instruction]]


@dataclass
class Schedule:
    """A static VLIW schedule: one bundle (slot per core) per cycle."""

    num_cores: int
    bundles: List[Bundle] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return len(self.bundles)

    @property
    def instruction_count(self) -> int:
        return sum(1 for bundle in self.bundles for slot in bundle if slot is not None)

    @property
    def memory_cycles(self) -> int:
        """Number of cycles in which the DataRAM port is busy."""
        busy = 0
        for bundle in self.bundles:
            if any(slot is not None and slot.uses_memory() for slot in bundle):
                busy += 1
        return busy

    def utilization(self) -> List[float]:
        """Fraction of cycles each core issues a real instruction."""
        if not self.bundles:
            return [0.0] * self.num_cores
        counts = [0] * self.num_cores
        for bundle in self.bundles:
            for core_id, slot in enumerate(bundle):
                if slot is not None:
                    counts[core_id] += 1
        return [c / len(self.bundles) for c in counts]

    def validate_port_constraint(self) -> None:
        """Re-check the single-port constraint (with the broadcast-read exception)."""
        for cycle, bundle in enumerate(self.bundles):
            memory_slots = [s for s in bundle if s is not None and s.uses_memory()]
            if len(memory_slots) <= 1:
                continue
            if all(s.op == Op.LD for s in memory_slots):
                addresses = {s.addr for s in memory_slots}
                if len(addresses) == 1:
                    continue  # broadcast read
            raise ScheduleError(
                f"cycle {cycle}: {len(memory_slots)} DataRAM accesses in one bundle"
            )


def schedule_programs(
    programs: Sequence[CoreProgram],
    num_registers: int = 80,
    memory_size: int = 4096,
    max_cycles: int = 2_000_000,
) -> Schedule:
    """Greedy list scheduling of per-core streams into a static VLIW schedule."""
    num_cores = len(programs)
    for program in programs:
        for instr in program.instructions:
            instr.validate(num_registers, memory_size)

    # Collect tag definitions (tags must be unique across all programs).
    tag_cycle: Dict[str, int] = {}
    defined_tags = set()
    for program in programs:
        for instr in program.instructions:
            if instr.tag is not None:
                if instr.tag in defined_tags:
                    raise AssemblyError(f"duplicate scheduling tag {instr.tag!r}")
                defined_tags.add(instr.tag)
    for program in programs:
        for instr in program.instructions:
            for dependency in instr.wait_for:
                if dependency not in defined_tags:
                    raise AssemblyError(f"wait_for references unknown tag {dependency!r}")

    positions = [0] * num_cores
    schedule = Schedule(num_cores=num_cores)
    cycle = 0
    while any(positions[c] < len(programs[c].instructions) for c in range(num_cores)):
        if cycle > max_cycles:
            raise ScheduleError("scheduling did not converge (dependency deadlock?)")
        bundle: Bundle = [None] * num_cores
        port_used_by: Optional[Instruction] = None
        issued_any = False
        for core_id in range(num_cores):
            position = positions[core_id]
            if position >= len(programs[core_id].instructions):
                continue
            instr = programs[core_id].instructions[position]
            # Dependencies must have been issued in a strictly earlier cycle.
            if any(
                dependency not in tag_cycle or tag_cycle[dependency] >= cycle
                for dependency in instr.wait_for
            ):
                continue
            if instr.uses_memory():
                if port_used_by is not None:
                    same_broadcast = (
                        instr.op == Op.LD
                        and port_used_by.op == Op.LD
                        and instr.addr == port_used_by.addr
                    )
                    if not same_broadcast:
                        continue  # port conflict: core stalls this cycle
                else:
                    port_used_by = instr
            bundle[core_id] = instr
            positions[core_id] += 1
            issued_any = True
            if instr.tag is not None:
                tag_cycle[instr.tag] = cycle
        if not issued_any:
            # Every runnable core is blocked on a dependency that resolves next
            # cycle (tags issued this very cycle); emit an empty bundle.
            blocked_forever = True
            for core_id in range(num_cores):
                position = positions[core_id]
                if position >= len(programs[core_id].instructions):
                    continue
                instr = programs[core_id].instructions[position]
                if all(dep in tag_cycle for dep in instr.wait_for):
                    blocked_forever = False
                    break
            if blocked_forever:
                raise ScheduleError(
                    "dependency deadlock: waiting on tags that are never issued"
                )
        schedule.bundles.append(bundle)
        cycle += 1
    schedule.validate_port_constraint()
    return schedule
