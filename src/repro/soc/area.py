"""Area and frequency model of the platform.

There is no synthesis tool in this environment, so the slice counts of
Table 3 cannot be measured — they are reproduced by a parametric model whose
coefficients are calibrated against the two data points the paper gives
(5419 slices for the whole platform, of which 3285 belong to the
coprocessor, at 74 MHz on a Virtex-II Pro XC2VP30).  The model exposes the
breakdown per component so the core-count ablation can report how area would
scale; the calibration is documented as a substitution in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class AreaReport:
    """Slice/frequency estimate for one platform configuration."""

    num_cores: int
    coprocessor_slices: int
    microblaze_slices: int
    interface_slices: int
    total_slices: int
    frequency_mhz: float
    block_rams: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_cores": self.num_cores,
            "coprocessor_slices": self.coprocessor_slices,
            "microblaze_slices": self.microblaze_slices,
            "interface_slices": self.interface_slices,
            "total_slices": self.total_slices,
            "frequency_mhz": self.frequency_mhz,
            "block_rams": self.block_rams,
        }


@dataclass
class AreaModel:
    """Parametric slice/frequency model calibrated to the paper's figures.

    * each core (register file, 18x18-multiplier MAC, control) costs
      ``slices_per_core`` slices;
    * the decoder, DataRAM/InsRom interface logic and the inter-core bus cost
      ``decoder_slices``;
    * the MicroBlaze plus the OPB glue cost ``microblaze_slices`` +
      ``interface_slices``;
    * the maximum frequency degrades slightly as cores are added to the
      shared memory/instruction buses.

    With the defaults, a 4-core configuration reproduces the paper's
    3285-slice coprocessor and 5419-slice total at 74 MHz.
    """

    slices_per_core: int = 690
    decoder_slices: int = 525
    microblaze_slices: int = 1700
    interface_slices: int = 434
    base_frequency_mhz: float = 78.0
    frequency_penalty_per_core_mhz: float = 1.0
    block_rams_fixed: int = 4
    block_rams_per_core: int = 1

    def coprocessor_slices(self, num_cores: int) -> int:
        return self.decoder_slices + self.slices_per_core * num_cores

    def frequency(self, num_cores: int) -> float:
        return max(
            20.0, self.base_frequency_mhz - self.frequency_penalty_per_core_mhz * num_cores
        )

    def report(self, num_cores: int = 4) -> AreaReport:
        coprocessor = self.coprocessor_slices(num_cores)
        total = coprocessor + self.microblaze_slices + self.interface_slices
        return AreaReport(
            num_cores=num_cores,
            coprocessor_slices=coprocessor,
            microblaze_slices=self.microblaze_slices,
            interface_slices=self.interface_slices,
            total_slices=total,
            frequency_mhz=self.frequency(num_cores),
            block_rams=self.block_rams_fixed + self.block_rams_per_core * num_cores,
        )
