"""The coprocessor core's instruction set.

The paper describes each core as "a highly simplified load/store CPU"
supporting "only 7 instructions", without branches, whose ALU is built from
the FPGA's dedicated multipliers.  The exact encoding is not published, so
this model defines a concrete 7-instruction ISA that is sufficient for the
microcode the paper needs (multi-word Montgomery multiplication, modular
addition/subtraction) and consistent with the stated constraints:

======  =========================  =====================================================
opcode  operands                   semantics
======  =========================  =====================================================
LD      rd, addr                   rd <- DataRAM[addr]            (uses the memory port)
ST      addr, rs                   DataRAM[addr] <- rs            (uses the memory port)
MAC     ra, rb                     ACC <- ACC + R[ra] * R[rb]
SHA     rd                         rd <- ACC mod 2^w ; ACC <- ACC >> w
CLA     —                          ACC <- 0
ADDC    rd, ra, rb [, use_carry]   rd <- (ra + rb + c_in) mod 2^w ; carry <- overflow
SUBB    rd, ra, rb [, use_carry]   rd <- (ra - rb - b_in) mod 2^w ; carry <- borrow
======  =========================  =====================================================

Registers are ``w`` bits wide (w = 16, matching the 18x18 dedicated
multipliers used with unsigned 16-bit words); the accumulator is 2w + 8 bits,
wide enough to absorb the redundant carries of the Fig. 5 schedule.  A NOP is
simply the absence of an instruction in a core's slot of the VLIW bundle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.errors import AssemblyError


class Op(enum.Enum):
    """The seven core opcodes."""

    LD = "LD"
    ST = "ST"
    MAC = "MAC"
    SHA = "SHA"
    CLA = "CLA"
    ADDC = "ADDC"
    SUBB = "SUBB"


#: Opcodes that occupy the single DataRAM port for one cycle.
MEMORY_OPS: FrozenSet[Op] = frozenset({Op.LD, Op.ST})


@dataclass(frozen=True)
class Instruction:
    """One core instruction plus optional scheduling metadata.

    ``tag`` names the instruction so other cores' instructions can order
    themselves after it with ``wait_for`` (the static cross-core dependencies
    the real decoder resolves when the microcode ROM is written).
    """

    op: Op
    rd: Optional[int] = None
    ra: Optional[int] = None
    rb: Optional[int] = None
    addr: Optional[int] = None
    use_carry: bool = False
    tag: Optional[str] = None
    wait_for: Tuple[str, ...] = field(default_factory=tuple)
    comment: str = ""

    def uses_memory(self) -> bool:
        """True when the instruction needs the (single) DataRAM port."""
        return self.op in MEMORY_OPS

    def validate(self, num_registers: int, memory_size: int) -> None:
        """Check operand fields against the machine's limits."""
        def _check_reg(name: str, value: Optional[int], required: bool) -> None:
            if value is None:
                if required:
                    raise AssemblyError(f"{self.op.value}: missing register field {name}")
                return
            if not 0 <= value < num_registers:
                raise AssemblyError(
                    f"{self.op.value}: register {name}={value} out of range "
                    f"(register file has {num_registers} entries)"
                )

        if self.op == Op.LD:
            _check_reg("rd", self.rd, True)
            self._check_addr(memory_size)
        elif self.op == Op.ST:
            _check_reg("ra", self.ra, True)
            self._check_addr(memory_size)
        elif self.op == Op.MAC:
            _check_reg("ra", self.ra, True)
            _check_reg("rb", self.rb, True)
        elif self.op == Op.SHA:
            _check_reg("rd", self.rd, True)
        elif self.op == Op.CLA:
            pass
        elif self.op in (Op.ADDC, Op.SUBB):
            _check_reg("rd", self.rd, True)
            _check_reg("ra", self.ra, True)
            _check_reg("rb", self.rb, True)
        else:  # pragma: no cover - enum is exhaustive
            raise AssemblyError(f"unknown opcode {self.op}")

    def _check_addr(self, memory_size: int) -> None:
        if self.addr is None:
            raise AssemblyError(f"{self.op.value}: missing memory address")
        if not 0 <= self.addr < memory_size:
            raise AssemblyError(
                f"{self.op.value}: address {self.addr} outside DataRAM of {memory_size} words"
            )

    def __repr__(self) -> str:
        parts = [self.op.value]
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        if self.ra is not None:
            parts.append(f"r{self.ra}")
        if self.rb is not None:
            parts.append(f"r{self.rb}")
        if self.addr is not None:
            parts.append(f"@{self.addr}")
        if self.use_carry:
            parts.append("+c")
        text = " ".join(parts)
        if self.comment:
            text += f"  ; {self.comment}"
        return text


def nop() -> None:
    """A NOP is represented by ``None`` in a bundle slot."""
    return None


# -- convenience constructors -------------------------------------------------


def ld(rd: int, addr: int, **kw) -> Instruction:
    """Load DataRAM[addr] into register rd."""
    return Instruction(Op.LD, rd=rd, addr=addr, **kw)


def st(addr: int, rs: int, **kw) -> Instruction:
    """Store register rs to DataRAM[addr]."""
    return Instruction(Op.ST, ra=rs, addr=addr, **kw)


def mac(ra: int, rb: int, **kw) -> Instruction:
    """ACC += R[ra] * R[rb]."""
    return Instruction(Op.MAC, ra=ra, rb=rb, **kw)


def sha(rd: int, **kw) -> Instruction:
    """rd <- low word of ACC; ACC >>= w."""
    return Instruction(Op.SHA, rd=rd, **kw)


def cla(**kw) -> Instruction:
    """Clear the accumulator."""
    return Instruction(Op.CLA, **kw)


def addc(rd: int, ra: int, rb: int, use_carry: bool = False, **kw) -> Instruction:
    """rd <- ra + rb (+ carry-in when ``use_carry``); sets the carry flag."""
    return Instruction(Op.ADDC, rd=rd, ra=ra, rb=rb, use_carry=use_carry, **kw)


def subb(rd: int, ra: int, rb: int, use_carry: bool = False, **kw) -> Instruction:
    """rd <- ra - rb (- borrow-in when ``use_carry``); sets the borrow flag."""
    return Instruction(Op.SUBB, rd=rd, ra=ra, rb=rb, use_carry=use_carry, **kw)
