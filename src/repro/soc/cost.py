"""Cycle-cost model composing measured modular-operation costs (Tables 2 & 3).

Table 1 of the paper is *measured* on the coprocessor; Tables 2 and 3 are
*compositions* of those measurements through the Type-A/Type-B execution
hierarchies and the exponentiation loops.  This module holds the composition
logic:

* :class:`ModularOpCosts` — per-operation cycle counts for one bit length
  (one row group of Table 1), either measured on the cycle-accurate engine or
  taken from the paper for comparison;
* :class:`CostModel` — turns level-2 programs and operation counts into
  Type-A/Type-B cycle counts and wall-clock times at the platform clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ParameterError
from repro.soc.level2 import Level2Program, ModOpKind
from repro.soc.microblaze import MicroBlazeInterfaceModel


@dataclass
class ModularOpCosts:
    """Cycle counts of the three modular operations at one operand size."""

    bit_length: int
    modular_mult: int
    modular_add: int
    modular_sub: int
    label: str = ""

    def cost_of(self, kind: ModOpKind) -> int:
        if kind == ModOpKind.MM:
            return self.modular_mult
        if kind == ModOpKind.MA:
            return self.modular_add
        if kind == ModOpKind.MS:
            return self.modular_sub
        raise ParameterError(f"unknown operation kind {kind}")  # pragma: no cover


#: The paper's Table 1, for paper-vs-measured comparisons.
PAPER_TABLE1 = {
    "interrupt": 184,
    170: ModularOpCosts(170, modular_mult=193, modular_add=47, modular_sub=61, label="torus"),
    160: ModularOpCosts(160, modular_mult=163, modular_add=40, modular_sub=53, label="ECC"),
    1024: ModularOpCosts(1024, modular_mult=4447, modular_add=0, modular_sub=0, label="RSA"),
}

#: The paper's Table 2 (cycles per level-2 operation).
PAPER_TABLE2 = {
    ("type-a", "t6-mult"): 22348,
    ("type-a", "ecc-pa"): 7185,
    ("type-a", "ecc-pd"): 5793,
    ("type-b", "t6-mult"): 5908,
    ("type-b", "ecc-pa"): 2888,
    ("type-b", "ecc-pd"): 2665,
}

#: The paper's Table 3 (full public-key operations on the platform).
PAPER_TABLE3 = {
    "torus": {"bits": 170, "area_slices": 5419, "frequency_mhz": 74, "time_ms": 20.0},
    "rsa": {"bits": 1024, "area_slices": 5419, "frequency_mhz": 74, "time_ms": 96.0},
    "ecc": {"bits": 160, "area_slices": 5419, "frequency_mhz": 74, "time_ms": 9.4},
}


@dataclass
class SequenceCost:
    """Type-A and Type-B cycle counts of one level-2 sequence."""

    name: str
    operations: int
    compute_cycles: int
    type_a_cycles: int
    type_b_cycles: int

    @property
    def speedup(self) -> float:
        """Type-A / Type-B ratio (the paper's 3.78x for the Fp6 multiplication)."""
        return self.type_a_cycles / self.type_b_cycles if self.type_b_cycles else float("inf")


class CostModel:
    """Composes per-operation cycle counts through the execution hierarchies."""

    #: Cycles the Type-B decoder spends fetching/dispatching one level-2 entry
    #: from InsRom1 (a ROM read plus operand-address setup).
    TYPE_B_DISPATCH_CYCLES = 2

    def __init__(
        self,
        op_costs: ModularOpCosts,
        interface: Optional[MicroBlazeInterfaceModel] = None,
        clock_mhz: float = 74.0,
    ):
        self.op_costs = op_costs
        self.interface = interface or MicroBlazeInterfaceModel()
        self.clock_mhz = clock_mhz

    # -- level-2 sequences --------------------------------------------------------

    def sequence_cost(self, program: Level2Program) -> SequenceCost:
        """Type-A and Type-B cycle counts of one level-2 program."""
        compute = sum(self.op_costs.cost_of(op.kind) for op in program)
        n_ops = len(program)
        type_a = compute + self.interface.type_a_overhead(n_ops)
        type_b = (
            compute
            + self.interface.type_b_overhead(1)
            + self.TYPE_B_DISPATCH_CYCLES * n_ops
        )
        return SequenceCost(
            name=program.name,
            operations=n_ops,
            compute_cycles=compute,
            type_a_cycles=type_a,
            type_b_cycles=type_b,
        )

    # -- full public-key operations --------------------------------------------------

    def exponentiation_cycles(
        self,
        cycles_per_group_operation: int,
        squarings: int,
        multiplications: int,
    ) -> int:
        """Cycles of an exponentiation built from identical group operations.

        ``cycles_per_group_operation`` is the full per-operation cost under
        the chosen hierarchy (including its share of MicroBlaze round trips,
        i.e. :attr:`SequenceCost.type_a_cycles` or
        :attr:`SequenceCost.type_b_cycles`); the level-1 loop itself runs on
        the MicroBlaze concurrently with the coprocessor and adds no extra
        cycles beyond those round trips.
        """
        return (squarings + multiplications) * cycles_per_group_operation

    def cycles_to_ms(self, cycles: int) -> float:
        """Convert cycles to milliseconds at the platform clock."""
        return cycles / (self.clock_mhz * 1e6) * 1e3

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles / (self.clock_mhz * 1e6)

    # -- measured word-operation streams ------------------------------------------

    def stream_compute_cycles(self, stream) -> int:
        """Coprocessor compute cycles of an executed modular-operation stream.

        ``stream`` is a :class:`repro.field.backend.WordOpStream` (or
        anything with ``modular_mults`` / ``modular_adds`` /
        ``modular_subs``): the tally of the modular operations a protocol
        run *actually executed* at the word level, priced through this
        model's Table 1 row.  This is the measured counterpart of
        :meth:`sequence_cost`'s analytic composition.
        """
        return (
            stream.modular_mults * self.op_costs.modular_mult
            + stream.modular_adds * self.op_costs.modular_add
            + stream.modular_subs * self.op_costs.modular_sub
        )

    def measured_exponentiation_cycles(self, stream, sequences: int) -> int:
        """Type-B cycles of a full operation from its executed word-op stream.

        ``sequences`` is the number of level-2 sequence issues (one
        MicroBlaze round trip each); every executed modular operation pays
        the Type-B dispatch on top of its compute cycles.  With a stream
        whose per-sequence operation counts match the level-2 programs, this
        reproduces the analytic ``(squarings + multiplications) *
        type_b_cycles`` composition — the agreement the profile layer
        asserts.
        """
        return (
            self.stream_compute_cycles(stream)
            + self.interface.type_b_overhead(sequences)
            + self.TYPE_B_DISPATCH_CYCLES * stream.total_modular_ops
        )


def operation_costs_from_engine(engine, label: str = "") -> ModularOpCosts:
    """Build a :class:`ModularOpCosts` row from a cycle-accurate engine."""
    return ModularOpCosts(
        bit_length=engine.bit_length,
        modular_mult=engine.measure_multiplication().cycles,
        modular_add=engine.measure_addition().cycles,
        modular_sub=engine.measure_subtraction().cycles,
        label=label,
    )
