"""Level-2 sequence generators: Fp6 multiplication and ECC point operations.

These are the programs that live in InsRom1 under the Type-B architecture
(and that the MicroBlaze walks itself under Type-A):

* :func:`fp6_multiplication_program` — the paper's 18M + ~60A Karatsuba
  sequence of Section 2.2.2, operating on the six Montgomery-form
  coefficients of each Fp6 operand;
* :func:`ecc_point_doubling_program` / :func:`ecc_point_addition_program` —
  general Jacobian doubling and addition, matching the reference formulas of
  :mod:`repro.ecc.point` operation for operation.

Each generator returns a :class:`~repro.soc.level2.Level2Program` that can be
counted by the cost model or executed functionally against a backend; helper
functions validate the sequences against the pure field/curve arithmetic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ParameterError
from repro.field.extension import ExtElement
from repro.field.fp6 import Fp6Field
from repro.montgomery.domain import MontgomeryDomain
from repro.soc.level2 import Level2Program, ModularBackend

# ---------------------------------------------------------------------------
# Fp6 multiplication (Section 2.2.2).
# ---------------------------------------------------------------------------


def _half_product(
    program: Level2Program, out_prefix: str, a: List[str], b: List[str], tmp_prefix: str
) -> List[str]:
    """Emit the 6-multiplication product of two degree-2 blocks.

    Returns the five output operand names (degrees 0..4 of the block product).
    """
    c = [f"{tmp_prefix}c{i}" for i in range(6)]
    d = [f"{tmp_prefix}d{i}" for i in range(6)]
    out = [f"{out_prefix}{i}" for i in range(5)]

    program.mm(c[0], a[0], b[0])
    program.mm(c[1], a[1], b[1])
    program.mm(c[2], a[2], b[2])
    program.ms(d[0], a[0], a[1], comment="a0 - a1")
    program.ms(d[1], b[0], b[1], comment="b0 - b1")
    program.mm(c[3], d[0], d[1])
    program.ms(d[2], a[0], a[2], comment="a0 - a2")
    program.ms(d[3], b[0], b[2], comment="b0 - b2")
    program.mm(c[4], d[2], d[3])
    program.ms(d[4], a[1], a[2], comment="a1 - a2")
    program.ms(d[5], b[1], b[2], comment="b1 - b2")
    program.mm(c[5], d[4], d[5])

    # out1 = c0 + c1 - c3
    program.ma(f"{tmp_prefix}s01", c[0], c[1])
    program.ms(out[1], f"{tmp_prefix}s01", c[3])
    # out2 = c0 + c1 + c2 - c4
    program.ma(f"{tmp_prefix}s012", f"{tmp_prefix}s01", c[2])
    program.ms(out[2], f"{tmp_prefix}s012", c[4])
    # out3 = c1 + c2 - c5
    program.ma(f"{tmp_prefix}s12", c[1], c[2])
    program.ms(out[3], f"{tmp_prefix}s12", c[5])
    # out0 = c0 and out4 = c2 need no extra operation: the callers reference
    # the product registers directly (no data movement on the platform).
    return [c[0], out[1], out[2], out[3], c[2]]


def fp6_multiplication_program(
    a_prefix: str = "A", b_prefix: str = "B", out_prefix: str = "C"
) -> Level2Program:
    """The level-2 sequence of one Fp6 multiplication (18 MM + additions).

    Operand naming: inputs ``A0..A5`` and ``B0..B5`` (the z-basis
    coefficients, each a Montgomery-form Fp residue), a shared constant
    ``zero``, outputs ``C0..C5``.
    """
    a = [f"{a_prefix}{i}" for i in range(6)]
    b = [f"{b_prefix}{i}" for i in range(6)]
    out = [f"{out_prefix}{i}" for i in range(6)]
    program = Level2Program(
        name="fp6-multiplication",
        inputs=tuple(a + b + ["zero"]),
        outputs=tuple(out),
    )
    # The "zero" constant lets the half-product express plain copies as MA
    # with zero, which is how the microcoded platform moves words around.
    program.operations = []

    a_lo, a_hi = a[:3], a[3:]
    b_lo, b_hi = b[:3], b[3:]

    # C0 = A0*B0, C1 = A1*B1, C2 = (A0-A1)*(B0-B1)  (block level).
    c0 = _half_product(program, "t_lo", a_lo, b_lo, "t_lo_")
    c1 = _half_product(program, "t_hi", a_hi, b_hi, "t_hi_")
    diff_a = []
    diff_b = []
    for i in range(3):
        program.ms(f"t_da{i}", a_lo[i], a_hi[i], comment="A0 - A1 block")
        program.ms(f"t_db{i}", b_lo[i], b_hi[i], comment="B0 - B1 block")
        diff_a.append(f"t_da{i}")
        diff_b.append(f"t_db{i}")
    c2 = _half_product(program, "t_md", diff_a, diff_b, "t_md_")

    # mid = C0 + C1 - C2 (five coefficients).
    mid = []
    for i in range(5):
        program.ma(f"t_mid_s{i}", c0[i], c1[i])
        program.ms(f"t_mid{i}", f"t_mid_s{i}", c2[i])
        mid.append(f"t_mid{i}")

    # Assemble the degree-10 product prod = C0 + mid*z^3 + C1*z^6.  Only the
    # overlapping positions (3, 4, 6, 7) need an addition; the rest reference
    # the block-product registers directly.
    program.ma("t_prod3", c0[3], mid[0])
    program.ma("t_prod4", c0[4], mid[1])
    program.ma("t_prod6", mid[3], c1[0])
    program.ma("t_prod7", mid[4], c1[1])
    prod = [
        c0[0], c0[1], c0[2],
        "t_prod3", "t_prod4", mid[2],
        "t_prod6", "t_prod7", c1[2], c1[3], c1[4],
    ]

    # Reduce modulo z^6 + z^3 + 1:
    # z^6 -> -(1 + z^3), z^7 -> -(z + z^4), z^8 -> -(z^2 + z^5), z^9 -> 1, z^10 -> z.
    program.ms("t_r0", prod[0], prod[6])
    program.ma(out[0], "t_r0", prod[9])
    program.ms("t_r1", prod[1], prod[7])
    program.ma(out[1], "t_r1", prod[10])
    program.ms(out[2], prod[2], prod[8])
    program.ms(out[3], prod[3], prod[6])
    program.ms(out[4], prod[4], prod[7])
    program.ms(out[5], prod[5], prod[8])
    return program


def fp6_operand_memory(
    domain: MontgomeryDomain, a: ExtElement, b: ExtElement, a_prefix: str = "A", b_prefix: str = "B"
) -> Dict[str, int]:
    """Stage two Fp6 elements (coefficient-wise Montgomery form) for execution."""
    memory: Dict[str, int] = {"zero": 0}
    for i, coeff in enumerate(a.coeffs):
        memory[f"{a_prefix}{i}"] = domain.to_montgomery(coeff)
    for i, coeff in enumerate(b.coeffs):
        memory[f"{b_prefix}{i}"] = domain.to_montgomery(coeff)
    return memory


def fp6_result_from_memory(
    domain: MontgomeryDomain, fp6: Fp6Field, memory: Dict[str, int], out_prefix: str = "C"
) -> ExtElement:
    """Read the six output coefficients back out of Montgomery form."""
    coeffs = [domain.from_montgomery(memory[f"{out_prefix}{i}"]) for i in range(6)]
    return fp6(coeffs)


def run_fp6_multiplication(
    backend: ModularBackend,
    domain: MontgomeryDomain,
    fp6: Fp6Field,
    a: ExtElement,
    b: ExtElement,
) -> ExtElement:
    """Execute the Fp6 sequence on a backend and return the Fp6 result."""
    program = fp6_multiplication_program()
    memory = fp6_operand_memory(domain, a, b)
    program.execute(backend, memory)
    return fp6_result_from_memory(domain, fp6, memory)


# ---------------------------------------------------------------------------
# ECC point operations (general Jacobian formulas).
# ---------------------------------------------------------------------------


def ecc_point_doubling_program() -> Level2Program:
    """General Jacobian doubling (with the a*Z^4 term): ~10 MM + 13 MA/MS.

    Inputs: ``X1, Y1, Z1`` and the curve constant ``a`` (all Montgomery form).
    Outputs: ``X3, Y3, Z3``.
    """
    program = Level2Program(
        name="ecc-point-doubling",
        inputs=("X1", "Y1", "Z1", "a"),
        outputs=("X3", "Y3", "Z3"),
    )
    program.mm("XX", "X1", "X1")
    program.mm("YY", "Y1", "Y1")
    program.mm("YYYY", "YY", "YY")
    program.mm("ZZ", "Z1", "Z1")
    program.mm("t0", "X1", "YY")
    program.ma("t1", "t0", "t0", comment="2*X1*YY")
    program.ma("S", "t1", "t1", comment="4*X1*YY")
    program.mm("ZZ2", "ZZ", "ZZ")
    program.mm("aZZ2", "a", "ZZ2")
    program.ma("t2", "XX", "XX")
    program.ma("t3", "t2", "XX", comment="3*XX")
    program.ma("M", "t3", "aZZ2")
    program.mm("MM_", "M", "M")
    program.ma("t4", "S", "S")
    program.ms("X3", "MM_", "t4")
    program.ms("t5", "S", "X3")
    program.mm("t6", "M", "t5")
    program.ma("t7", "YYYY", "YYYY")
    program.ma("t8", "t7", "t7")
    program.ma("t9", "t8", "t8", comment="8*YYYY")
    program.ms("Y3", "t6", "t9")
    program.mm("t10", "Y1", "Z1")
    program.ma("Z3", "t10", "t10")
    return program


def ecc_point_addition_program() -> Level2Program:
    """General Jacobian addition: 16 MM + 7 MA/MS.

    Inputs: ``X1, Y1, Z1, X2, Y2, Z2`` (Montgomery form).
    Outputs: ``X3, Y3, Z3``.  The exceptional cases (equal or opposite
    points) are detected by the level-1 software, as on the real platform.
    """
    program = Level2Program(
        name="ecc-point-addition",
        inputs=("X1", "Y1", "Z1", "X2", "Y2", "Z2"),
        outputs=("X3", "Y3", "Z3"),
    )
    program.mm("Z1Z1", "Z1", "Z1")
    program.mm("Z2Z2", "Z2", "Z2")
    program.mm("U1", "X1", "Z2Z2")
    program.mm("U2", "X2", "Z1Z1")
    program.mm("t0", "Z2", "Z2Z2")
    program.mm("S1", "Y1", "t0")
    program.mm("t1", "Z1", "Z1Z1")
    program.mm("S2", "Y2", "t1")
    program.ms("H", "U2", "U1")
    program.ms("Rr", "S2", "S1")
    program.mm("HH", "H", "H")
    program.mm("HHH", "H", "HH")
    program.mm("V", "U1", "HH")
    program.mm("RR", "Rr", "Rr")
    program.ms("t2", "RR", "HHH")
    program.ma("t3", "V", "V")
    program.ms("X3", "t2", "t3")
    program.ms("t4", "V", "X3")
    program.mm("t5", "Rr", "t4")
    program.mm("t6", "S1", "HHH")
    program.ms("Y3", "t5", "t6")
    program.mm("t7", "Z1", "Z2")
    program.mm("Z3", "H", "t7")
    return program


def xtr_fp2_multiplication_program() -> Level2Program:
    """One Fp2 multiplication as the platform would microcode it: 3 MM + 6 MA/MS.

    The XTR trace ladder is a loop of Fp2 multiplications (Lenstra-Verheul
    count their algorithms in this unit), so projecting XTR onto the paper's
    platform needs the level-2 cost of one of them.  Over
    Fp2 = Fp[x]/(x^2 + x + 1) the Karatsuba form is

        t0 = a0*b0,  t1 = a1*b1,  t2 = (a0+a1)*(b0+b1)
        c0 = t0 - t1,  c1 = (t2 - t0 - t1) - t1

    using x^2 = -1 - x: three Montgomery multiplications plus two additions
    and four subtractions — the same 3M shape the torus tower uses for its
    quadratic level.
    """
    program = Level2Program(
        name="xtr-fp2-multiplication",
        inputs=("A0", "A1", "B0", "B1"),
        outputs=("C0", "C1"),
    )
    program.ma("sa", "A0", "A1")
    program.ma("sb", "B0", "B1")
    program.mm("t0", "A0", "B0")
    program.mm("t1", "A1", "B1")
    program.mm("t2", "sa", "sb")
    program.ms("C0", "t0", "t1")
    program.ms("m0", "t2", "t0", comment="cross term a0b1 + a1b0")
    program.ms("m1", "m0", "t1")
    program.ms("C1", "m1", "t1", comment="x^2 = -1 - x folds t1 in twice")
    return program


def _fp2_karatsuba(
    program: Level2Program,
    out0: str,
    out1: str,
    a: Tuple[str, str],
    b: Tuple[str, str],
    tmp: str,
) -> None:
    """Emit one 3MM Fp2 Karatsuba product (the body of the Fp2 sequence)."""
    program.ma(f"{tmp}sa", a[0], a[1])
    program.ma(f"{tmp}sb", b[0], b[1])
    program.mm(f"{tmp}t0", a[0], b[0])
    program.mm(f"{tmp}t1", a[1], b[1])
    program.mm(f"{tmp}t2", f"{tmp}sa", f"{tmp}sb")
    program.ms(out0, f"{tmp}t0", f"{tmp}t1")
    program.ms(f"{tmp}m0", f"{tmp}t2", f"{tmp}t0", comment="cross term a0b1 + a1b0")
    program.ms(f"{tmp}m1", f"{tmp}m0", f"{tmp}t1")
    program.ms(out1, f"{tmp}m1", f"{tmp}t1", comment="x^2 = -1 - x folds t1 in twice")


def xtr_double_step_program() -> Level2Program:
    """One XTR ladder double step ``c_2n = c_n^2 - 2 c_n^p``: 3 MM + 11 MA/MS.

    Inputs ``A0, A1`` (the Fp2 coefficients of c_n, Montgomery form);
    outputs ``C0, C1``.  Conjugation over Fp (x -> -1 - x) is one modular
    subtraction for the constant coefficient (the negation of the x
    coefficient is free, as in the reference arithmetic), and the doubling
    of the conjugate is two modular additions — exactly the operation
    stream :meth:`repro.xtr.trace.XtrContext._double_trace` executes, so
    measured word-operation streams reproduce this sequence one for one.
    """
    program = Level2Program(
        name="xtr-double-step",
        inputs=("A0", "A1", "zero"),
        outputs=("C0", "C1"),
    )
    _fp2_karatsuba(program, "q0", "q1", ("A0", "A1"), ("A0", "A1"), "s_")
    # conj(c_n) = (A0 - A1, -A1); the negation rides the following adds.
    program.ms("k0", "A0", "A1", comment="conjugate, constant coefficient")
    program.ma("d0", "k0", "k0", comment="2 * conj_0")
    program.ma("d1", "A1", "A1", comment="2 * (-conj_1), sign folded into the MS below")
    program.ms("C0", "q0", "d0")
    # q1 - 2*(-A1) = q1 + 2*A1: the reference code subtracts the doubled
    # conjugate coefficient; on the platform the sign is absorbed by using
    # the appropriate add/sub opcode — one modular operation either way.
    program.ms("C1", "q1", "d1")
    return program


def xtr_mixed_step_program() -> Level2Program:
    """One XTR ladder mixed step ``c_a c_k - c_f c_k^p + c_b^p``: 6 MM + 18 MA/MS.

    Computes two of the ladder's counted Fp2 multiplications per issue (the
    off-by-one products ``c_(2k-1)`` / ``c_(2k+1)`` each run one of these).
    Inputs are the Fp2 coefficients of ``c_a`` (A), ``c_k`` (K), ``c_b``
    (B) and the factor ``c_f`` (F); outputs ``C0, C1``.
    """
    program = Level2Program(
        name="xtr-mixed-step",
        inputs=("A0", "A1", "K0", "K1", "B0", "B1", "F0", "F1", "zero"),
        outputs=("C0", "C1"),
    )
    _fp2_karatsuba(program, "t1_0", "t1_1", ("A0", "A1"), ("K0", "K1"), "u_")
    program.ms("kc0", "K0", "K1", comment="conj(c_k), constant coefficient")
    _fp2_karatsuba(program, "t2_0", "t2_1", ("F0", "F1"), ("kc0", "K1"), "v_")
    program.ms("bc0", "B0", "B1", comment="conj(c_b), constant coefficient")
    program.ms("w0", "t1_0", "t2_0")
    program.ms("w1", "t1_1", "t2_1")
    program.ma("C0", "w0", "bc0")
    program.ma("C1", "w1", "B1", comment="-conj(c_b)_1 sign folded into the opcode")
    return program


def ecc_point_memory(
    domain: MontgomeryDomain,
    coordinates: Dict[str, int],
) -> Dict[str, int]:
    """Stage Jacobian coordinates (plain residues) into Montgomery form."""
    return {name: domain.to_montgomery(value % domain.modulus) for name, value in coordinates.items()}


def ecc_point_from_memory(
    domain: MontgomeryDomain, memory: Dict[str, int]
) -> Tuple[int, int, int]:
    """Read (X3, Y3, Z3) back out of Montgomery form."""
    return tuple(domain.from_montgomery(memory[name]) for name in ("X3", "Y3", "Z3"))


# ---------------------------------------------------------------------------
# Headroom analysis for the lazy-addition mode.
# ---------------------------------------------------------------------------


def lazy_mode_headroom_ok(domain: MontgomeryDomain) -> bool:
    """Whether the Fp6 sequence may run with unreduced (lazy) additions.

    With lazy additions the deepest unreduced accumulation in the Fp6
    sequence feeds a Montgomery multiplication with operands bounded by 8P
    (differences are corrected back into [0, P) by the subtraction microcode,
    and at most two additions are chained before the next multiplication), so
    the multiplier stays correct as long as ``64 * P < R`` — i.e. at least six
    spare bits between the modulus and the word grid.  The 170-bit CEILIDH
    modulus on 11 sixteen-bit words satisfies this; secp160r1 on 10 words does
    not, which is why the strict mode is the default.
    """
    return 64 * domain.modulus < domain.r
