"""DataRAM and instruction-ROM models.

The paper implements both memories in the FPGA's block RAM and stresses that
the data memory is *single-port*: only one read or write can happen per
cycle, and the decoder has to schedule microinstructions so that the cores
never conflict.  :class:`DataRam` stores ``w``-bit words, tracks the number
of accesses, and provides word-vector helpers for multi-precision operands.
:class:`InstructionRom` only does capacity accounting (its contents are the
schedules produced by the assembler).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import MemoryMapError, ParameterError
from repro.nt.words import from_words, to_words


class DataRam:
    """Single-port data memory of ``size`` words, each ``word_bits`` wide."""

    def __init__(self, size: int = 1024, word_bits: int = 16):
        if size <= 0:
            raise ParameterError("DataRAM needs a positive size")
        self.size = size
        self.word_bits = word_bits
        self.mask = (1 << word_bits) - 1
        self.words: List[int] = [0] * size
        self.reads = 0
        self.writes = 0

    # -- single-word access --------------------------------------------------

    def read(self, addr: int) -> int:
        if not 0 <= addr < self.size:
            raise MemoryMapError(f"read outside DataRAM: address {addr}")
        self.reads += 1
        return self.words[addr]

    def write(self, addr: int, value: int) -> None:
        if not 0 <= addr < self.size:
            raise MemoryMapError(f"write outside DataRAM: address {addr}")
        if not 0 <= value <= self.mask:
            raise MemoryMapError(
                f"value {value} does not fit in a {self.word_bits}-bit memory word"
            )
        self.writes += 1
        self.words[addr] = value

    # -- multi-precision helpers (host-side, not charged as port cycles) --------

    def load_integer(self, base: int, value: int, num_words: int) -> None:
        """Host-side write of a multi-word integer (operand staging by the MicroBlaze)."""
        words = to_words(value, num_words, self.word_bits)
        if base + num_words > self.size:
            raise MemoryMapError(
                f"operand of {num_words} words at {base} overflows DataRAM"
            )
        self.words[base : base + num_words] = words

    def read_integer(self, base: int, num_words: int) -> int:
        """Host-side read of a multi-word integer."""
        if base + num_words > self.size:
            raise MemoryMapError(
                f"operand of {num_words} words at {base} overflows DataRAM"
            )
        return from_words(self.words[base : base + num_words], self.word_bits)

    def clear(self) -> None:
        self.words = [0] * self.size
        self.reads = 0
        self.writes = 0

    def __repr__(self) -> str:
        return f"DataRam({self.size} x {self.word_bits}-bit)"


class MemoryAllocator:
    """Simple bump allocator for laying out named operands in DataRAM."""

    def __init__(self, ram_size: int, reserved: int = 0):
        self.ram_size = ram_size
        self.next_free = reserved
        self.regions: Dict[str, int] = {}
        self.sizes: Dict[str, int] = {}

    def allocate(self, name: str, num_words: int) -> int:
        """Reserve ``num_words`` words and return the base address."""
        if name in self.regions:
            raise MemoryMapError(f"operand {name!r} already allocated")
        base = self.next_free
        if base + num_words > self.ram_size:
            raise MemoryMapError(
                f"DataRAM exhausted while allocating {name!r} ({num_words} words)"
            )
        self.regions[name] = base
        self.sizes[name] = num_words
        self.next_free = base + num_words
        return base

    def address_of(self, name: str) -> int:
        try:
            return self.regions[name]
        except KeyError:
            raise MemoryMapError(f"unknown operand {name!r}") from None

    def size_of(self, name: str) -> int:
        return self.sizes[name]

    def names(self) -> Sequence[str]:
        return list(self.regions)


class InstructionRom:
    """Capacity accounting for a microinstruction ROM (block-RAM backed)."""

    def __init__(self, capacity_words: int = 4096, name: str = "InsRom"):
        self.capacity_words = capacity_words
        self.name = name
        self.used_words = 0

    def store(self, num_instructions: int) -> None:
        """Record that a routine of ``num_instructions`` words was written."""
        if self.used_words + num_instructions > self.capacity_words:
            raise MemoryMapError(
                f"{self.name} overflow: {self.used_words} + {num_instructions} "
                f"> {self.capacity_words} words"
            )
        self.used_words += num_instructions

    @property
    def free_words(self) -> int:
        return self.capacity_words - self.used_words
