"""Batched multi-session protocol runs — the serving-workload harness.

The ROADMAP's production story is many concurrent sessions, not one: a
server terminating N key agreements (or decrypting N hybrid messages, or
signing N tokens) per interval, with fixed-cost state — CEILIDH's and ECDH's
fixed-base generator tables, RSA's long-lived key pair — paid once and
amortised across the batch.  :func:`run_batch` executes such a batch through
the scheme-agnostic protocol API and reports wall-clock, per-session group
operations and wire bytes; one loop over the registry yields the multi-
scheme serving comparison.

Only the protocol layer is exercised (pure-Python arithmetic); the platform
projection of the same workload is the profile layer's job.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ParameterError, UnsupportedOperationError
from repro.exp.trace import OpTrace
from repro.pkc.base import ENCRYPTION, KEY_AGREEMENT, SIGNATURE, PkcScheme, SchemeKeyPair
from repro.pkc.registry import get_scheme

__all__ = ["BatchResult", "run_batch", "registry_batch_comparison", "BATCH_OPERATIONS"]

#: Operations :func:`run_batch` understands, mapped to the capability needed.
BATCH_OPERATIONS = {
    "key-agreement": KEY_AGREEMENT,
    "encryption": ENCRYPTION,
    "signature": SIGNATURE,
}


@dataclass
class BatchResult:
    """Outcome of one batched multi-session run."""

    scheme: str
    operation: str
    sessions: int
    wall_seconds: float
    #: Aggregate group-operation tally across every session (server + client
    #: sides of a key agreement, encrypt + decrypt of an encryption session).
    ops: OpTrace = field(default_factory=OpTrace)
    #: Total protocol bytes that crossed the wire for the whole batch.
    wire_bytes: int = 0

    @property
    def ms_per_session(self) -> float:
        return self.wall_seconds * 1e3 / self.sessions if self.sessions else 0.0

    @property
    def sessions_per_second(self) -> float:
        return self.sessions / self.wall_seconds if self.wall_seconds > 0 else float("inf")

    @property
    def ops_per_session(self) -> float:
        return self.ops.total / self.sessions if self.sessions else 0.0

    @property
    def wire_bytes_per_session(self) -> float:
        return self.wire_bytes / self.sessions if self.sessions else 0.0


def run_batch(
    scheme: PkcScheme,
    operation: str,
    sessions: int,
    rng: Optional[random.Random] = None,
    payload: bytes = b"batched session payload.........",
    server: Optional[SchemeKeyPair] = None,
) -> BatchResult:
    """Run ``sessions`` independent protocol sessions against one server key.

    * ``key-agreement`` — per session: a fresh client key pair, the client's
      derivation against the server public, the server's derivation against
      the client public (checked equal).  Wire: one public key each way.
    * ``encryption`` — per session: encrypt ``payload`` to the server,
      server decrypts (checked).  Wire: the ciphertext.
    * ``signature`` — per session: server signs ``payload`` bound to the
      session index, client verifies.  Wire: the signature.

    The server key pair (and with it any fixed-base table the scheme keeps)
    is created once outside the timed region, so the batch measures the
    steady-state serving cost.
    """
    if operation not in BATCH_OPERATIONS:
        raise ParameterError(
            f"unknown batch operation {operation!r}; available: {sorted(BATCH_OPERATIONS)}"
        )
    if sessions < 1:
        raise ParameterError("a batch needs at least one session")
    capability = BATCH_OPERATIONS[operation]
    if capability not in scheme.capabilities:
        raise UnsupportedOperationError(f"{scheme.name} does not implement {operation}")
    rng = rng or random.Random()

    server = server or scheme.keygen(rng)
    ops = OpTrace()
    wire = 0
    started = time.perf_counter()
    if operation == "key-agreement":
        for _ in range(sessions):
            client = scheme.keygen(rng, trace=ops)
            client_key = scheme.key_agreement(client, server.public_wire, trace=ops)
            server_key = scheme.key_agreement(server, client.public_wire, trace=ops)
            if client_key != server_key:
                raise ParameterError(f"{scheme.name}: key agreement mismatch")  # pragma: no cover
            wire += len(client.public_wire) + len(server.public_wire)
    elif operation == "encryption":
        for _ in range(sessions):
            ciphertext = scheme.encrypt(server.public_wire, payload, rng, trace=ops)
            if scheme.decrypt(server, ciphertext, trace=ops) != payload:
                raise ParameterError(f"{scheme.name}: decryption mismatch")  # pragma: no cover
            wire += len(ciphertext)
    else:  # signature
        for index in range(sessions):
            message = payload + index.to_bytes(4, "big")
            signature = scheme.sign(server, message, rng, trace=ops)
            if not scheme.verify(server.public_wire, message, signature, trace=ops):
                raise ParameterError(f"{scheme.name}: signature rejected")  # pragma: no cover
            wire += len(signature)
    elapsed = time.perf_counter() - started

    return BatchResult(
        scheme=scheme.name,
        operation=operation,
        sessions=sessions,
        wall_seconds=elapsed,
        ops=ops,
        wire_bytes=wire,
    )


def registry_batch_comparison(
    names: Sequence[str],
    operation: str = "key-agreement",
    sessions: int = 8,
    rng: Optional[random.Random] = None,
) -> "list[BatchResult]":
    """Batch every named scheme that supports ``operation`` — one generic loop."""
    if operation not in BATCH_OPERATIONS:
        raise ParameterError(
            f"unknown batch operation {operation!r}; available: {sorted(BATCH_OPERATIONS)}"
        )
    capability = BATCH_OPERATIONS[operation]
    results = []
    for name in names:
        scheme = get_scheme(name)
        if capability not in scheme.capabilities:
            continue
        results.append(run_batch(scheme, operation, sessions, rng=rng))
    return results
