"""Batched multi-session protocol runs — the serving-workload harness.

The ROADMAP's production story is many concurrent sessions, not one: a
server terminating N key agreements (or decrypting N hybrid messages, or
signing N tokens) per interval, with fixed-cost state — CEILIDH's and ECDH's
fixed-base generator tables, RSA's long-lived key pair — paid once and
amortised across the batch.  :func:`run_batch` executes such a batch through
the scheme-agnostic protocol API and reports wall-clock, per-session group
operations and wire bytes; one loop over the registry yields the multi-
scheme serving comparison.

Only the protocol layer is exercised (pure-Python arithmetic); the platform
projection of the same workload is the profile layer's job.
"""

from __future__ import annotations

import hmac
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only; every runtime sampling
    # site goes through resolve_rng (PR 3), and the one seeded construction
    # left (the parallel worker) imports locally in the child process.
    import random

from repro.errors import ParameterError, UnsupportedOperationError
from repro.exp.trace import OpTrace
from repro.nt import sampling as _sampling
from repro.nt.sampling import resolve_rng
from repro.pkc.base import ENCRYPTION, KEY_AGREEMENT, SIGNATURE, PkcScheme, SchemeKeyPair
from repro.pkc.registry import get_scheme

# The canonical per-session protocol logic is shared with the online serving
# layer: repro.serve.session holds the client+server round trips, and the
# server's scheduler executes the same server halves per request — "one
# session" means identical work online and offline.  (serve.session imports
# nothing from repro.pkc, so this direction is cycle-free.)
from repro.serve.session import OFFLINE_SESSION_RUNNERS


def _coalesced_key_agreement_batch(
    scheme: "PkcScheme",
    server: SchemeKeyPair,
    sessions: int,
    rng: "Optional[random.Random]",
    trace,
) -> int:
    """All key-agreement sessions of a batch, coalesced; returns wire bytes.

    Same sessions as ``sessions`` runs of ``offline_key_agreement_session``
    — fresh client key each, both derivations, checked equal — but phased so
    the server's N derivations go through ``key_agreement_many`` and its
    batched inversions (one per group round instead of one per session),
    while the clients' N derivations against the *same* server public go
    through ``key_agreement_with_many`` and its shared fixed-base table
    (the server point is decompressed once and its doubling chain is paid
    once for the whole batch).  Byte-identical to the loop: client key
    generation is the only step that draws from ``rng``, and
    ``keygen_many`` preserves the draw order, so the wire bytes and derived
    keys match session for session.
    """
    clients = scheme.keygen_many(sessions, rng, trace=trace)
    client_keys = scheme.key_agreement_with_many(
        clients, server.public_wire, trace=trace
    )
    server_keys = scheme.key_agreement_many(
        server, [client.public_wire for client in clients], trace=trace
    )
    wire = 0
    for client, client_key, server_key in zip(clients, client_keys, server_keys):  # audit: allow[CT101] iterates paired session keys; the trip count is the public session count
        if not hmac.compare_digest(client_key, server_key):
            raise ParameterError(f"{scheme.name}: key agreement mismatch")  # pragma: no cover
        wire += len(client.public_wire) + len(server.public_wire)
    return wire

__all__ = [
    "BatchResult",
    "run_batch",
    "run_batch_parallel",
    "registry_batch_comparison",
    "BATCH_OPERATIONS",
]

#: Operations :func:`run_batch` understands, mapped to the capability needed.
BATCH_OPERATIONS = {
    "key-agreement": KEY_AGREEMENT,
    "encryption": ENCRYPTION,
    "signature": SIGNATURE,
}


@dataclass
class BatchResult:
    """Outcome of one batched multi-session run."""

    scheme: str
    operation: str
    sessions: int
    wall_seconds: float
    #: Aggregate group-operation tally across every session (server + client
    #: sides of a key agreement, encrypt + decrypt of an encryption session).
    ops: OpTrace = field(default_factory=OpTrace)
    #: Total protocol bytes that crossed the wire for the whole batch.
    wire_bytes: int = 0
    #: Whether the sessions actually ran through the coalesced (vectorised)
    #: path rather than the per-session loop.
    coalesced: bool = False

    @property
    def batch_size(self) -> Optional[int]:
        """Sessions per vectorised batch call — ``None`` for the loop path."""
        return self.sessions if self.coalesced else None

    @property
    def ms_per_session(self) -> float:
        return self.wall_seconds * 1e3 / self.sessions if self.sessions else 0.0

    @property
    def sessions_per_second(self) -> float:
        if self.sessions == 0:
            return 0.0  # an empty batch has no throughput, not an infinite one
        return self.sessions / self.wall_seconds if self.wall_seconds > 0 else float("inf")

    @property
    def ops_per_session(self) -> float:
        return self.ops.total / self.sessions if self.sessions else 0.0

    @property
    def wire_bytes_per_session(self) -> float:
        return self.wire_bytes / self.sessions if self.sessions else 0.0


def run_batch(
    scheme: "PkcScheme | str",
    operation: str,
    sessions: int,
    rng: Optional["random.Random"] = None,
    payload: bytes = b"batched session payload.........",
    server: Optional[SchemeKeyPair] = None,
    collect_ops: bool = True,
    workers: int = 1,
    backend: Optional[str] = None,
    coalesce: bool = True,
) -> BatchResult:
    """Run ``sessions`` independent protocol sessions against one server key.

    * ``key-agreement`` — per session: a fresh client key pair, the client's
      derivation against the server public, the server's derivation against
      the client public (checked equal).  Wire: one public key each way.
    * ``encryption`` — per session: encrypt ``payload`` to the server,
      server decrypts (checked).  Wire: the ciphertext.
    * ``signature`` — per session: server signs ``payload`` bound to the
      session index, client verifies.  Wire: the signature.

    The server key pair (and with it any fixed-base table the scheme keeps)
    is created once outside the timed region, so the batch measures the
    steady-state serving cost.  ``collect_ops=False`` drops the group-
    operation tally and takes the engine's tracing-free fast path (the
    ``ops`` field of the result stays zero).  ``workers > 1`` splits the
    batch over that many OS processes (see :func:`run_batch_parallel`).

    The RNG is resolved exactly once here — the system CSPRNG unless a
    seeded generator is injected — and threaded down through every keygen,
    ephemeral and nonce of the batch; no per-session generator is ever
    constructed.

    ``backend`` selects the field-arithmetic substrate: pass a scheme
    *name* together with a backend string and the adapter is resolved from
    the registry on that backend (``run_batch("ceilidh-170",
    "key-agreement", 16, backend="montgomery")``); with a scheme instance
    the backend it was built with is used, and passing a conflicting
    ``backend`` raises.

    ``coalesce`` (default on) routes multi-session key-agreement batches
    through the scheme's ``keygen_many`` / ``key_agreement_many`` so
    per-session modular inversions collapse via Montgomery's batch trick —
    byte-identical sessions, same RNG draw order, same wire bytes; pass
    ``coalesce=False`` to force the per-session loop (the baseline the
    batched path is measured against).
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme, backend=backend)
    elif backend is not None:
        # A scheme that predates the backend layer (field_backend unset)
        # runs plain arithmetic, so backend="plain" is consistent with it.
        built_on = getattr(getattr(scheme, "field_backend", None), "name", None) or "plain"
        if built_on != backend:
            raise ParameterError(
                f"scheme {scheme.name!r} was built on backend "
                f"{built_on!r}, not {backend!r}; resolve it "
                "from the registry by name instead"
            )
    if operation not in BATCH_OPERATIONS:
        raise ParameterError(
            f"unknown batch operation {operation!r}; available: {sorted(BATCH_OPERATIONS)}"
        )
    if sessions < 1:
        raise ParameterError("a batch needs at least one session")
    capability = BATCH_OPERATIONS[operation]
    if capability not in scheme.capabilities:
        raise UnsupportedOperationError(f"{scheme.name} does not implement {operation}")
    if workers > 1:
        if server is not None:
            raise ParameterError(
                "a shared server key cannot cross process boundaries; "
                "each parallel worker serves with its own long-lived key"
            )
        # Workers re-resolve the scheme by name; carry the instance's own
        # backend over so the parallel path measures the same substrate.
        if backend is None:
            backend = getattr(getattr(scheme, "field_backend", None), "name", None)
        return run_batch_parallel(
            scheme.name, operation, sessions, workers,
            rng=rng, payload=payload, collect_ops=collect_ops,
            backend=backend,
        )
    rng = resolve_rng(rng)

    server = server or scheme.keygen(rng)
    ops = OpTrace()
    trace = ops if collect_ops else None
    wire = 0
    run_session = OFFLINE_SESSION_RUNNERS[operation]
    coalesced = coalesce and operation == "key-agreement" and sessions > 1
    started = time.perf_counter()
    if coalesced:
        wire = _coalesced_key_agreement_batch(scheme, server, sessions, rng, trace)
    else:
        for index in range(sessions):
            wire += run_session(
                scheme, server, rng=rng, payload=payload, index=index, trace=trace
            )
    elapsed = time.perf_counter() - started

    return BatchResult(
        scheme=scheme.name,
        operation=operation,
        sessions=sessions,
        wall_seconds=elapsed,
        ops=ops,
        wire_bytes=wire,
        coalesced=coalesced,
    )


def _parallel_worker(args) -> BatchResult:
    """One worker's share of a parallel batch (runs in a child process).

    Receives the scheme *name* rather than the adapter so each process
    resolves its own instance (with its own fixed-base tables and server
    key) from the registry; ``seed=None`` means the worker samples from its
    own OS CSPRNG.
    """
    from random import Random

    scheme_name, operation, sessions, seed, payload, collect_ops, backend = args
    rng = Random(seed) if seed is not None else None
    scheme = get_scheme(scheme_name, backend=backend)
    return run_batch(
        scheme, operation, sessions, rng=rng, payload=payload, collect_ops=collect_ops
    )


def run_batch_parallel(
    scheme_name: str,
    operation: str,
    sessions: int,
    workers: int,
    rng: Optional["random.Random"] = None,
    payload: bytes = b"batched session payload.........",
    collect_ops: bool = True,
    backend: Optional[str] = None,
) -> BatchResult:
    """Split one batch across ``workers`` OS processes and merge the results.

    Multi-core serving: each worker owns a long-lived server key and runs
    ``sessions // workers`` (+1 for the remainder) independent sessions.
    Group operations and wire bytes are summed; ``wall_seconds`` is the
    longest worker's *timed region* — the concurrent serving time, excluding
    process spawn and interpreter start-up, which a real deployment pays
    once at boot, not per batch.  With an injected seeded ``rng``, each
    worker receives a seed drawn from it, keeping parallel runs
    reproducible.
    """
    import concurrent.futures

    if workers < 1:
        raise ParameterError("a parallel batch needs at least one worker")
    if sessions < 0:
        raise ParameterError("a batch cannot have a negative session count")
    if sessions == 0:
        # Nothing to run: an empty result, not a divmod(0, 0) crash from the
        # worker cap below.
        return BatchResult(
            scheme=scheme_name, operation=operation, sessions=0, wall_seconds=0.0
        )
    workers = min(workers, sessions)
    share, remainder = divmod(sessions, workers)
    shares = [share + (1 if i < remainder else 0) for i in range(workers)]
    # Only derive worker seeds from an explicitly injected (deterministic)
    # generator; with the default CSPRNG each worker samples its own.  The
    # module attribute is read at call time so a monkeypatched default is
    # still recognised as "not injected".
    seeded = rng is not None and rng is not _sampling.DEFAULT_RNG
    seeds = [rng.getrandbits(64) if seeded else None for _ in range(workers)]
    jobs = [
        (scheme_name, operation, shares[i], seeds[i], payload, collect_ops, backend)
        for i in range(workers)
    ]
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        results: List[BatchResult] = list(pool.map(_parallel_worker, jobs))

    merged_ops = OpTrace()
    wire = 0
    for result in results:
        merged_ops.merge(result.ops)
        wire += result.wire_bytes
    return BatchResult(
        scheme=scheme_name,
        operation=operation,
        sessions=sessions,
        wall_seconds=max(result.wall_seconds for result in results),
        ops=merged_ops,
        wire_bytes=wire,
    )


def registry_batch_comparison(
    names: Sequence[str],
    operation: str = "key-agreement",
    sessions: int = 8,
    rng: Optional["random.Random"] = None,
    collect_ops: bool = True,
    workers: int = 1,
    backend: Optional[str] = None,
) -> "list[BatchResult]":
    """Batch every named scheme that supports ``operation`` — one generic loop."""
    if operation not in BATCH_OPERATIONS:
        raise ParameterError(
            f"unknown batch operation {operation!r}; available: {sorted(BATCH_OPERATIONS)}"
        )
    capability = BATCH_OPERATIONS[operation]
    # No pre-resolution here: run_batch resolves at its own entry, and the
    # parallel dispatch must still see "no rng injected" as None so workers
    # sample their own CSPRNGs.
    results = []
    for name in names:
        scheme = get_scheme(name, backend=backend)
        if capability not in scheme.capabilities:
            continue
        results.append(
            run_batch(
                scheme, operation, sessions, rng=rng,
                collect_ops=collect_ops, workers=workers,
            )
        )
    return results
