"""The scheme-agnostic protocol interface of the unified PKC layer.

The paper's headline result (Table 3) is a *comparison* of public-key
cryptosystems on one platform, so the library needs one protocol vocabulary
that RSA, ECC, CEILIDH and XTR all speak.  This module defines it:

* three small structural protocols — :class:`KeyAgreement`,
  :class:`PublicKeyEncryption` and :class:`Signature` — describing the
  operations a scheme may support,
* :class:`PkcScheme`, the abstract adapter base every concrete scheme
  (``repro.torus.pkc``, ``repro.ecc.pkc``, ``repro.rsa.pkc``,
  ``repro.xtr.pkc``) subclasses, and
* :class:`SchemeKeyPair`, the uniform key-pair wrapper.

Everything that crosses the protocol boundary is **bytes in the scheme's
canonical wire encoding** — compressed (u, v) pairs for the torus, SEC1
points for curves, ``n || e`` for RSA, Fp2 traces for XTR — so callers can
drive any scheme, and account for its bandwidth, without knowing which one
they hold.  Operation accounting is equally uniform: every method takes an
optional :class:`~repro.exp.trace.OpTrace` that tallies the group operations
(or, for XTR, Fp2 multiplications) the call performed.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, Tuple, runtime_checkable

from repro.errors import DecryptionError, UnsupportedOperationError
from repro.exp.trace import OpTrace

__all__ = [
    "KEY_AGREEMENT",
    "ENCRYPTION",
    "SIGNATURE",
    "TAG_BYTES",
    "SchemeKeyPair",
    "KeyAgreement",
    "PublicKeyEncryption",
    "Signature",
    "PkcScheme",
    "kdf",
    "seal_body",
    "open_body",
    "encode_scalar_pair",
    "decode_scalar_pair",
]

#: Capability names a scheme may advertise.
KEY_AGREEMENT = "key-agreement"
ENCRYPTION = "encryption"
SIGNATURE = "signature"

#: Confirmation-tag bytes in every scheme's hybrid ciphertext.
TAG_BYTES = 16


def kdf(secret: bytes, info: bytes, length: int) -> bytes:
    """The library-wide SHA-256 counter-mode key derivation.

    The same construction CEILIDH has always used; hoisted here so the
    ECIES and RSA-KEM hybrid paths derive their keystreams identically.
    """
    output = b""
    counter = 0
    while len(output) < length:
        output += hashlib.sha256(counter.to_bytes(4, "big") + secret + info).digest()
        counter += 1
    return output[:length]


def seal_body(secret: bytes, label: bytes, plaintext: bytes) -> Tuple[bytes, bytes]:
    """The shared hybrid body: XOR keystream plus truncated HMAC tag.

    ``label`` domain-separates the scheme (``b"ceilidh-elgamal"``,
    ``b"ecies"``, ``b"rsa-kem"``); the keystream and tag key are derived as
    ``kdf(secret, label + "-stream"/"-tag")``.  Returns ``(body, tag)``.
    """
    keystream = kdf(secret, label + b"-stream", len(plaintext))
    tag_key = kdf(secret, label + b"-tag", 32)
    body = bytes(p ^ k for p, k in zip(plaintext, keystream))
    tag = hmac.new(tag_key, body, hashlib.sha256).digest()[:TAG_BYTES]
    return body, tag


def open_body(secret: bytes, label: bytes, body: bytes, tag: bytes) -> bytes:
    """Inverse of :func:`seal_body`; raises ``DecryptionError`` on tag mismatch."""
    keystream = kdf(secret, label + b"-stream", len(body))
    tag_key = kdf(secret, label + b"-tag", 32)
    expected = hmac.new(tag_key, body, hashlib.sha256).digest()[:TAG_BYTES]
    if not hmac.compare_digest(expected, tag):
        raise DecryptionError("integrity tag mismatch")
    return bytes(c ^ k for c, k in zip(body, keystream))


def encode_scalar_pair(first: int, second: int, width: int) -> bytes:
    """Two fixed-width big-endian scalars — the (e, s) / (r, s) signature shape."""
    return first.to_bytes(width, "big") + second.to_bytes(width, "big")


def decode_scalar_pair(data: bytes, width: int) -> Optional[Tuple[int, int]]:
    """Inverse of :func:`encode_scalar_pair`; ``None`` on a wrong length.

    Returning ``None`` (rather than raising) lets ``verify`` implementations
    keep their report-``False``-never-raise contract with one guard.
    """
    if len(data) != 2 * width:
        return None
    return int.from_bytes(data[:width], "big"), int.from_bytes(data[width:], "big")


@dataclass
class SchemeKeyPair:
    """A key pair under the unified layer.

    ``native`` is the scheme's own key-pair object (``CeilidhKeyPair``,
    ``EcdhKeyPair``, ``RsaKeyPair``, ``XtrKeyPair``); ``public_wire`` is the
    canonical byte encoding of its public half — the thing that would travel.
    """

    scheme: str
    public_wire: bytes
    native: Any = field(repr=False, default=None)

    @property
    def public_key_bytes(self) -> int:
        """Bytes on the wire for this public key."""
        return len(self.public_wire)


@runtime_checkable
class KeyAgreement(Protocol):
    """Diffie-Hellman-shaped key agreement: keygen, exchange publics, derive."""

    def keygen(
        self, rng: Optional[random.Random] = None, trace: Optional[OpTrace] = None
    ) -> SchemeKeyPair: ...

    def key_agreement(
        self,
        own: SchemeKeyPair,
        peer_public: bytes,
        info: bytes = b"",
        length: int = 32,
        trace: Optional[OpTrace] = None,
    ) -> bytes: ...


@runtime_checkable
class PublicKeyEncryption(Protocol):
    """Hybrid public-key encryption of arbitrary byte strings."""

    def keygen(
        self, rng: Optional[random.Random] = None, trace: Optional[OpTrace] = None
    ) -> SchemeKeyPair: ...

    def encrypt(
        self,
        recipient_public: bytes,
        plaintext: bytes,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> bytes: ...

    def decrypt(
        self, own: SchemeKeyPair, ciphertext: bytes, trace: Optional[OpTrace] = None
    ) -> bytes: ...


@runtime_checkable
class Signature(Protocol):
    """Digital signatures over arbitrary messages."""

    def keygen(
        self, rng: Optional[random.Random] = None, trace: Optional[OpTrace] = None
    ) -> SchemeKeyPair: ...

    def sign(
        self,
        own: SchemeKeyPair,
        message: bytes,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> bytes: ...

    def verify(
        self,
        public: bytes,
        message: bytes,
        signature: bytes,
        trace: Optional[OpTrace] = None,
    ) -> bool: ...


class PkcScheme:
    """Abstract base of every scheme adapter.

    Subclasses set the identity attributes, declare their ``capabilities``
    and implement the corresponding protocol methods; unimplemented
    operations raise :class:`~repro.errors.UnsupportedOperationError` so a
    generic caller can probe with ``capabilities`` and never trip over a
    missing method.
    """

    #: Registry name, e.g. ``"ceilidh-170"``.
    name: str = "pkc-scheme"
    #: The headline operand size the paper would quote (170, 160, 1024...).
    bit_length: int = 0
    #: Approximate symmetric-equivalent security of the parameterisation.
    security_bits: int = 0
    #: The paper's Table 3 time for this row, when it has one.
    paper_ms: Optional[float] = None
    #: Human-readable name of the Table 3 operation the scheme is costed by.
    headline_operation: str = "exponentiation"
    #: Subset of {KEY_AGREEMENT, ENCRYPTION, SIGNATURE}.
    capabilities: frozenset = frozenset()
    #: The field-arithmetic backend *spec* the adapter was built with (a
    #: :mod:`repro.field.backend` object; PlainBackend unless injected).
    #: Set by the concrete adapters' constructors.
    field_backend: Any = None

    # -- keys -------------------------------------------------------------------

    def keygen(
        self, rng: Optional[random.Random] = None, trace: Optional[OpTrace] = None
    ) -> SchemeKeyPair:
        raise NotImplementedError

    def keygen_many(
        self,
        count: int,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> "list[SchemeKeyPair]":
        """N key pairs; overridden where per-key work can be batched.

        The contract every override must keep: RNG draws happen in the same
        order as N :meth:`keygen` calls and the wire keys are byte-identical
        to them — batching is an execution strategy, never a semantic.
        """
        return [self.keygen(rng, trace=trace) for _ in range(count)]

    def public_key_size(self) -> int:
        """Bytes of one wire-encoded public key."""
        raise NotImplementedError

    def decode_public(self, data: bytes) -> Any:
        """Parse (and validate) a wire-encoded public key into native form."""
        raise NotImplementedError

    def encode_public(self, public: Any) -> bytes:
        """Inverse of :meth:`decode_public`."""
        raise NotImplementedError

    # -- key agreement -----------------------------------------------------------

    def key_agreement(
        self,
        own: SchemeKeyPair,
        peer_public: bytes,
        info: bytes = b"",
        length: int = 32,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        raise UnsupportedOperationError(f"{self.name} does not implement key agreement")

    def key_agreement_many(
        self,
        own: SchemeKeyPair,
        peer_publics,
        info: bytes = b"",
        length: int = 32,
        trace: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """Derive against N peer publics; overridden where the per-peer
        work can share batch inversions.  Same byte-identity contract as
        :meth:`keygen_many`; any per-item failure (a malformed peer key)
        propagates exactly as the single call would raise it.
        """
        return [
            self.key_agreement(own, peer, info=info, length=length, trace=trace)
            for peer in peer_publics
        ]

    def key_agreement_with_many(
        self,
        owns,
        peer_public: bytes,
        info: bytes = b"",
        length: int = 32,
        trace: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """Derive N own keys against **one** peer public — the client phase
        of a coalesced batch, where every session targets the same server
        key.  Overridden where the shared base lets one precomputation
        (a fixed-base table over the peer element) serve the whole batch.
        Same byte-identity contract as :meth:`keygen_many`.
        """
        return [
            self.key_agreement(own, peer_public, info=info, length=length, trace=trace)
            for own in owns
        ]

    # -- hybrid encryption ---------------------------------------------------------

    def encrypt(
        self,
        recipient_public: bytes,
        plaintext: bytes,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        raise UnsupportedOperationError(f"{self.name} does not implement encryption")

    def decrypt(
        self, own: SchemeKeyPair, ciphertext: bytes, trace: Optional[OpTrace] = None
    ) -> bytes:
        raise UnsupportedOperationError(f"{self.name} does not implement encryption")

    # -- signatures -----------------------------------------------------------------

    def sign(
        self,
        own: SchemeKeyPair,
        message: bytes,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        raise UnsupportedOperationError(f"{self.name} does not implement signatures")

    def sign_many(
        self,
        own: SchemeKeyPair,
        messages,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """Sign N messages under one key; overridden where batching helps
        (deterministic RSA signatures share one exponentiation batch).  The
        default loop preserves the per-message RNG draw order of randomized
        schemes, so wire output stays byte-identical either way.
        """
        return [self.sign(own, message, rng=rng, trace=trace) for message in messages]

    def verify(
        self,
        public: bytes,
        message: bytes,
        signature: bytes,
        trace: Optional[OpTrace] = None,
    ) -> bool:
        raise UnsupportedOperationError(f"{self.name} does not implement signatures")

    # -- platform projection ---------------------------------------------------------

    def headline_exponentiation(self, trace: OpTrace) -> None:
        """Run the scheme's Table 3 operation once with the paper's strategy.

        Executes one real exponentiation (binary / double-and-add / the XTR
        ladder — whatever the paper costs the scheme by) over the canonical
        half-weight exponent of :func:`repro.pkc.profile.canonical_exponent`,
        tallying into ``trace``.  The profile layer projects these counts
        through the platform cost model.
        """
        raise NotImplementedError

    def platform_cycles_per_operation(self, platform) -> "tuple[int, int]":
        """(cycles per squaring, cycles per general multiplication) on the SoC.

        Both under the Type-B hierarchy, including the per-operation share of
        MicroBlaze interface overhead — the per-unit numbers Table 3 composes.
        """
        raise NotImplementedError

    def headline_modulus(self) -> int:
        """The modulus whose Table 1 row prices the headline operation.

        Used by the measured profile mode to build the
        :class:`~repro.soc.cost.ModularOpCosts` the word-operation stream is
        composed through.
        """
        raise NotImplementedError

    def headline_sequence_count(self, trace: OpTrace) -> int:
        """Level-2 sequence issues of the headline run (interface round trips).

        One per group operation for the torus/ECC/RSA shapes; XTR overrides
        because each *mixed* ladder step issues one sequence but tallies two
        of the counted Fp2 multiplications.
        """
        return trace.total

    def __repr__(self) -> str:
        caps = ",".join(sorted(self.capabilities)) or "none"
        return f"<{type(self).__name__} {self.name!r} ({self.bit_length} bit; {caps})>"
