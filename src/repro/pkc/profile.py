"""Uniform scheme profiling: one call path per Table 3 row.

:func:`build_profile` drives any registered scheme through every protocol it
supports, tallying each operation's :class:`~repro.exp.trace.OpTrace` and
wire bytes, then runs the scheme's *headline* exponentiation (the operation
the paper's Table 3 times, with the paper's binary/double-and-add strategy)
and projects it onto the simulated platform through
:class:`~repro.soc.cost.CostModel`-derived per-operation cycle costs.  The
result is one :class:`SchemeProfile` per scheme — ops, bandwidth and a
projected SoC cycle count, with no scheme-specific branches anywhere in the
caller.

The headline exponent is the canonical *half-weight* pattern ``1010...`` of
the scheme's bit length: its binary expansion has exactly the average
popcount, so the executed squaring/multiplication counts equal the expected
counts the platform model composes (``n - 1`` squarings and
``(n - 1) // 2`` multiplications for an ``n``-bit exponent) and the
projection reproduces :meth:`repro.soc.system.Platform` Table 3 timings
exactly, while still being derived from a real executed exponentiation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ParameterError
from repro.exp.trace import OpTrace
from repro.nt.sampling import resolve_rng
from repro.pkc.base import ENCRYPTION, KEY_AGREEMENT, SIGNATURE, PkcScheme

__all__ = ["SchemeProfile", "build_profile", "canonical_exponent"]

#: Plaintext used for the encryption/signature legs of a profile run.
PROFILE_MESSAGE = b"repro.pkc profile message (32B)!"


def canonical_exponent(bits: int) -> int:
    """The ``bits``-bit alternating exponent ``101010...``.

    Top bit set (so the length is exact), every second bit below it set —
    popcount ``ceil(bits / 2)``, which makes a left-to-right binary
    exponentiation perform exactly ``bits - 1`` squarings and
    ``(bits - 1) // 2`` general multiplications: the closed-form averages the
    paper's Table 3 composition assumes.
    """
    if bits < 1:
        raise ParameterError("canonical exponent needs bits >= 1")
    exponent = 0
    for i in range(bits - 1, -1, -2):
        exponent |= 1 << i
    return exponent


@dataclass
class SchemeProfile:
    """Everything one Table 3 row needs, for any scheme."""

    scheme: str
    bit_length: int
    security_bits: int
    capabilities: frozenset
    #: Wire bytes per message kind: ``public_key`` always; additionally
    #: ``key_agreement_message``, ``ciphertext_overhead`` and ``signature``
    #: for the protocols the scheme supports.
    wire_bytes: Dict[str, int] = field(default_factory=dict)
    #: Group-operation tallies of every protocol operation performed.
    traces: Dict[str, OpTrace] = field(default_factory=dict)
    #: The Table 3 operation and its executed (binary-strategy) tally.
    headline_operation: str = ""
    headline_trace: OpTrace = field(default_factory=OpTrace)
    #: Projection of the headline operation onto the simulated platform.
    projected_cycles: int = 0
    projected_ms: float = 0.0
    area_slices: int = 0
    frequency_mhz: float = 0.0
    paper_ms: Optional[float] = None

    @property
    def ratio_to_paper(self) -> Optional[float]:
        if not self.paper_ms:
            return None
        return self.projected_ms / self.paper_ms

    @property
    def total_protocol_ops(self) -> OpTrace:
        """Sum of every protocol operation's tally."""
        total = OpTrace()
        for trace in self.traces.values():
            total.merge(trace)
        return total


def build_profile(
    scheme: PkcScheme,
    platform=None,
    rng: Optional[random.Random] = None,
    include_protocols: bool = True,
    message: bytes = PROFILE_MESSAGE,
) -> SchemeProfile:
    """Profile one scheme end to end; the single generic Table 3 call path.

    With ``include_protocols`` the scheme's supported protocols are actually
    executed (two key pairs, a key agreement checked from both sides, an
    encrypt/decrypt round trip, a sign/verify round trip) and their traces
    recorded.  The headline projection runs either way; pass
    ``include_protocols=False`` for a pure Table 3 reproduction.
    """
    if platform is None:
        from repro.soc.system import Platform

        platform = Platform()
    rng = resolve_rng(rng)

    profile = SchemeProfile(
        scheme=scheme.name,
        bit_length=scheme.bit_length,
        security_bits=scheme.security_bits,
        capabilities=scheme.capabilities,
        headline_operation=scheme.headline_operation,
        paper_ms=scheme.paper_ms,
    )
    profile.wire_bytes["public_key"] = scheme.public_key_size()

    if include_protocols:
        def traced(name: str) -> OpTrace:
            return profile.traces.setdefault(name, OpTrace())

        own = scheme.keygen(rng, trace=traced("keygen"))
        if KEY_AGREEMENT in scheme.capabilities:
            peer = scheme.keygen(rng)
            shared = scheme.key_agreement(own, peer.public_wire, trace=traced("key_agreement"))
            if shared != scheme.key_agreement(peer, own.public_wire):
                raise ParameterError(f"{scheme.name}: key agreement mismatch")  # pragma: no cover
            profile.wire_bytes["key_agreement_message"] = len(peer.public_wire)
        if ENCRYPTION in scheme.capabilities:
            ciphertext = scheme.encrypt(own.public_wire, message, rng, trace=traced("encrypt"))
            if scheme.decrypt(own, ciphertext, trace=traced("decrypt")) != message:
                raise ParameterError(f"{scheme.name}: decryption mismatch")  # pragma: no cover
            profile.wire_bytes["ciphertext_overhead"] = len(ciphertext) - len(message)
        if SIGNATURE in scheme.capabilities:
            signature = scheme.sign(own, message, rng, trace=traced("sign"))
            if not scheme.verify(own.public_wire, message, signature, trace=traced("verify")):
                raise ParameterError(f"{scheme.name}: signature rejected")  # pragma: no cover
            profile.wire_bytes["signature"] = len(signature)

    # -- headline operation + platform projection ---------------------------
    scheme.headline_exponentiation(profile.headline_trace)
    cost_sq, cost_mul = scheme.platform_cycles_per_operation(platform)
    profile.projected_cycles = (
        profile.headline_trace.squarings * cost_sq
        + profile.headline_trace.multiplications * cost_mul
    )
    profile.projected_ms = profile.projected_cycles / (platform.config.clock_mhz * 1e3)
    area = platform.area_report()
    profile.area_slices = area.total_slices
    profile.frequency_mhz = area.frequency_mhz
    return profile
