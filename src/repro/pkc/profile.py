"""Uniform scheme profiling: one call path per Table 3 row.

:func:`build_profile` drives any registered scheme through every protocol it
supports, tallying each operation's :class:`~repro.exp.trace.OpTrace` and
wire bytes, then runs the scheme's *headline* exponentiation (the operation
the paper's Table 3 times, with the paper's binary/double-and-add strategy)
and projects it onto the simulated platform through
:class:`~repro.soc.cost.CostModel`-derived per-operation cycle costs.  The
result is one :class:`SchemeProfile` per scheme — ops, bandwidth and a
projected SoC cycle count, with no scheme-specific branches anywhere in the
caller.

The headline exponent is the canonical *half-weight* pattern ``1010...`` of
the scheme's bit length: its binary expansion has exactly the average
popcount, so the executed squaring/multiplication counts equal the expected
counts the platform model composes (``n - 1`` squarings and
``(n - 1) // 2`` multiplications for an ``n``-bit exponent) and the
projection reproduces :meth:`repro.soc.system.Platform` Table 3 timings
exactly, while still being derived from a real executed exponentiation.
"""

from __future__ import annotations

import hmac
import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ParameterError
from repro.exp.trace import OpTrace
from repro.nt.sampling import resolve_rng
from repro.pkc.base import ENCRYPTION, KEY_AGREEMENT, SIGNATURE, PkcScheme

__all__ = [
    "SchemeProfile",
    "MeasuredProjection",
    "build_profile",
    "measured_headline_projection",
    "canonical_exponent",
]

#: Plaintext used for the encryption/signature legs of a profile run.
PROFILE_MESSAGE = b"repro.pkc profile message (32B)!"


def canonical_exponent(bits: int) -> int:
    """The ``bits``-bit alternating exponent ``101010...``.

    Top bit set (so the length is exact), every second bit below it set —
    popcount ``ceil(bits / 2)``, which makes a left-to-right binary
    exponentiation perform exactly ``bits - 1`` squarings and
    ``(bits - 1) // 2`` general multiplications: the closed-form averages the
    paper's Table 3 composition assumes.
    """
    if bits < 1:
        raise ParameterError("canonical exponent needs bits >= 1")
    exponent = 0
    for i in range(bits - 1, -1, -2):
        exponent |= 1 << i
    return exponent


@dataclass
class SchemeProfile:
    """Everything one Table 3 row needs, for any scheme."""

    scheme: str
    bit_length: int
    security_bits: int
    capabilities: frozenset
    #: Wire bytes per message kind: ``public_key`` always; additionally
    #: ``key_agreement_message``, ``ciphertext_overhead`` and ``signature``
    #: for the protocols the scheme supports.
    wire_bytes: Dict[str, int] = field(default_factory=dict)
    #: Group-operation tallies of every protocol operation performed.
    traces: Dict[str, OpTrace] = field(default_factory=dict)
    #: The Table 3 operation and its executed (binary-strategy) tally.
    headline_operation: str = ""
    headline_trace: OpTrace = field(default_factory=OpTrace)
    #: Projection of the headline operation onto the simulated platform.
    projected_cycles: int = 0
    projected_ms: float = 0.0
    area_slices: int = 0
    frequency_mhz: float = 0.0
    paper_ms: Optional[float] = None
    #: Populated in the ``projection="measured"`` mode: the same headline
    #: operation's cycles derived from its executed word-operation stream.
    measured_cycles: Optional[int] = None
    measured_ms: Optional[float] = None
    word_stream: Optional[Dict[str, int]] = None

    @property
    def measured_vs_analytic_error(self) -> Optional[float]:
        """|measured - analytic| / analytic, when the measured mode ran."""
        if self.measured_cycles is None or not self.projected_cycles:
            return None
        return abs(self.measured_cycles - self.projected_cycles) / self.projected_cycles

    @property
    def ratio_to_paper(self) -> Optional[float]:
        if not self.paper_ms:
            return None
        return self.projected_ms / self.paper_ms

    @property
    def total_protocol_ops(self) -> OpTrace:
        """Sum of every protocol operation's tally."""
        total = OpTrace()
        for trace in self.traces.values():
            total.merge(trace)
        return total


def build_profile(
    scheme: PkcScheme,
    platform=None,
    rng: Optional[random.Random] = None,
    include_protocols: bool = True,
    message: bytes = PROFILE_MESSAGE,
    projection: str = "analytic",
) -> SchemeProfile:
    """Profile one scheme end to end; the single generic Table 3 call path.

    With ``include_protocols`` the scheme's supported protocols are actually
    executed (two key pairs, a key agreement checked from both sides, an
    encrypt/decrypt round trip, a sign/verify round trip) and their traces
    recorded.  The headline projection runs either way; pass
    ``include_protocols=False`` for a pure Table 3 reproduction.

    ``projection="measured"`` additionally runs the headline operation on a
    word-counting twin of the scheme (via the registry) and fills
    ``measured_cycles`` / ``measured_ms`` / ``word_stream`` from the
    executed word-operation stream — the measurement the analytic
    composition is asserted against.
    """
    if projection not in ("analytic", "measured"):
        raise ParameterError(
            f"unknown projection mode {projection!r} (use 'analytic' or 'measured')"
        )
    if platform is None:
        from repro.soc.system import Platform

        platform = Platform()
    rng = resolve_rng(rng)

    profile = SchemeProfile(
        scheme=scheme.name,
        bit_length=scheme.bit_length,
        security_bits=scheme.security_bits,
        capabilities=scheme.capabilities,
        headline_operation=scheme.headline_operation,
        paper_ms=scheme.paper_ms,
    )
    profile.wire_bytes["public_key"] = scheme.public_key_size()

    if include_protocols:
        def traced(name: str) -> OpTrace:
            return profile.traces.setdefault(name, OpTrace())

        own = scheme.keygen(rng, trace=traced("keygen"))
        if KEY_AGREEMENT in scheme.capabilities:
            peer = scheme.keygen(rng)
            shared = scheme.key_agreement(own, peer.public_wire, trace=traced("key_agreement"))
            if not hmac.compare_digest(shared, scheme.key_agreement(peer, own.public_wire)):
                raise ParameterError(f"{scheme.name}: key agreement mismatch")  # pragma: no cover
            profile.wire_bytes["key_agreement_message"] = len(peer.public_wire)
        if ENCRYPTION in scheme.capabilities:
            ciphertext = scheme.encrypt(own.public_wire, message, rng, trace=traced("encrypt"))
            if not hmac.compare_digest(scheme.decrypt(own, ciphertext, trace=traced("decrypt")), message):
                raise ParameterError(f"{scheme.name}: decryption mismatch")  # pragma: no cover
            profile.wire_bytes["ciphertext_overhead"] = len(ciphertext) - len(message)
        if SIGNATURE in scheme.capabilities:
            signature = scheme.sign(own, message, rng, trace=traced("sign"))
            if not scheme.verify(own.public_wire, message, signature, trace=traced("verify")):
                raise ParameterError(f"{scheme.name}: signature rejected")  # pragma: no cover
            profile.wire_bytes["signature"] = len(signature)

    # -- headline operation + platform projection ---------------------------
    scheme.headline_exponentiation(profile.headline_trace)
    cost_sq, cost_mul = scheme.platform_cycles_per_operation(platform)
    profile.projected_cycles = (
        profile.headline_trace.squarings * cost_sq
        + profile.headline_trace.multiplications * cost_mul
    )
    profile.projected_ms = profile.projected_cycles / (platform.config.clock_mhz * 1e3)
    area = platform.area_report()
    profile.area_slices = area.total_slices
    profile.frequency_mhz = area.frequency_mhz
    if projection == "measured":
        # A scheme already on the word-counting backend is measured
        # directly; anything else resolves its registry twin by name.
        backend_name = getattr(scheme.field_backend, "name", None)
        target = scheme if backend_name == "word-counting" else scheme.name
        measured = measured_headline_projection(target, platform=platform)
        profile.measured_cycles = measured.measured_cycles
        profile.measured_ms = measured.measured_ms
        profile.word_stream = measured.stream
    return profile


@dataclass
class MeasuredProjection:
    """Measured vs analytic Table 3 projection of one scheme's headline op.

    ``measured_cycles`` composes the **executed word-operation stream** (a
    :class:`repro.field.backend.WordOpStream` collected while the headline
    operation ran on the word-counting backend) through the platform's
    Table 1 costs and interface model; ``analytic_cycles`` is the
    closed-composition number the profile layer always produced.  The two
    agree when the executed per-group-operation modular-op mix matches the
    level-2 programs — the closed loop the refactor exists to assert.
    """

    scheme: str
    bit_length: int
    analytic_cycles: int
    measured_cycles: int
    measured_ms: float
    sequences: int
    headline_trace: OpTrace
    stream: Dict[str, int]

    @property
    def relative_error(self) -> float:
        """|measured - analytic| / analytic."""
        if not self.analytic_cycles:
            return 0.0
        return abs(self.measured_cycles - self.analytic_cycles) / self.analytic_cycles


def measured_headline_projection(
    scheme: "PkcScheme | str", platform=None
) -> MeasuredProjection:
    """Run one scheme's headline operation on the word-counting backend and
    project the executed word-op stream onto the platform.

    ``scheme`` is either a registry name — resolved with
    ``backend="word-counting"`` (cached, so repeated calls reuse its warmed
    generator/fixed-base state) — or a scheme instance already built on the
    word-counting backend.  The headline operation runs twice: once with
    word-level execution off to warm every deterministic cache (subgroup
    generator projection, Frobenius matrices, fixed-base tables), then once
    counted, so the stream contains exactly the operations of one headline
    exponentiation.  The shared :class:`WordOpStream` is snapshotted and
    restored around the measurement, so a caller's in-progress tallies on
    the same (cached) instance survive untouched.
    """
    if platform is None:
        from repro.soc.system import Platform

        platform = Platform()
    if isinstance(scheme, str):
        from repro.pkc.registry import get_scheme

        scheme = get_scheme(scheme, backend="word-counting")
    spec = scheme.field_backend
    if getattr(spec, "name", None) != "word-counting":
        raise ParameterError(
            f"scheme {scheme.name!r} is not on the word-counting backend; "
            "pass a registry name or a word-counting instance"
        )
    from repro.field.backend import WordOpStream

    stream = spec.stream
    prior_counting = stream.counting
    snapshot = stream.as_dict()
    stream.counting = False
    try:
        scheme.headline_exponentiation(OpTrace())  # warm caches, uncounted
        stream.reset()
        stream.counting = True
        trace = OpTrace()
        scheme.headline_exponentiation(trace)
        measured = WordOpStream(**stream.as_dict())
    finally:
        # Hand the shared stream back exactly as the caller left it — flag
        # and tallies both, so in-progress accumulation survives.
        stream.counting = prior_counting
        for key, value in snapshot.items():
            setattr(stream, key, value)
    costs = platform.measure_operation_costs(scheme.headline_modulus())
    model = platform.cost_model(costs)
    sequences = scheme.headline_sequence_count(trace)
    measured_cycles = model.measured_exponentiation_cycles(measured, sequences)
    cost_sq, cost_mul = scheme.platform_cycles_per_operation(platform)
    analytic_cycles = trace.squarings * cost_sq + trace.multiplications * cost_mul
    return MeasuredProjection(
        scheme=scheme.name,
        bit_length=scheme.bit_length,
        analytic_cycles=analytic_cycles,
        measured_cycles=measured_cycles,
        measured_ms=model.cycles_to_ms(measured_cycles),
        sequences=sequences,
        headline_trace=trace,
        stream=measured.as_dict(),
    )
