"""The unified public-key-cryptosystem layer.

One protocol vocabulary — :class:`~repro.pkc.base.KeyAgreement`,
:class:`~repro.pkc.base.PublicKeyEncryption`,
:class:`~repro.pkc.base.Signature` — spoken by all four cryptosystems the
paper compares, behind a string-keyed registry:

>>> from repro.pkc import get_scheme
>>> scheme = get_scheme("ceilidh-170")          # or "ecdh-p160", "rsa-1024", "xtr-170"
>>> alice, bob = scheme.keygen(), scheme.keygen()
>>> scheme.key_agreement(alice, bob.public_wire) == scheme.key_agreement(bob, alice.public_wire)
True

:func:`~repro.pkc.profile.build_profile` turns any registered scheme into a
Table 3 row (operation tallies, wire bytes, projected SoC cycles), and
:mod:`repro.pkc.bench` runs batched multi-session serving workloads.  The
concrete adapters live beside the implementations they wrap —
``repro.torus.pkc``, ``repro.ecc.pkc``, ``repro.rsa.pkc``,
``repro.xtr.pkc`` — and the legacy per-scheme entry points remain available
underneath.
"""

from repro.pkc.base import (
    ENCRYPTION,
    KEY_AGREEMENT,
    SIGNATURE,
    KeyAgreement,
    PkcScheme,
    PublicKeyEncryption,
    SchemeKeyPair,
    Signature,
    kdf,
)
from repro.pkc.bench import BatchResult, registry_batch_comparison, run_batch
from repro.pkc.profile import (
    MeasuredProjection,
    SchemeProfile,
    build_profile,
    canonical_exponent,
    measured_headline_projection,
)
from repro.pkc.registry import available_schemes, get_scheme, register_scheme

__all__ = [
    "KEY_AGREEMENT",
    "ENCRYPTION",
    "SIGNATURE",
    "KeyAgreement",
    "PublicKeyEncryption",
    "Signature",
    "PkcScheme",
    "SchemeKeyPair",
    "kdf",
    "SchemeProfile",
    "MeasuredProjection",
    "build_profile",
    "measured_headline_projection",
    "canonical_exponent",
    "register_scheme",
    "get_scheme",
    "available_schemes",
    "BatchResult",
    "run_batch",
    "registry_batch_comparison",
]


def _register_default_schemes() -> None:
    """Register the four cryptosystems of the paper plus the toy test sizes.

    Factories import lazily so that ``repro.pkc`` never pays for a layer the
    caller does not look up.
    """

    def ceilidh(params: str, name: str, paper_ms=None, security_bits: int = 80):
        def factory(backend=None):
            from repro.torus.pkc import CeilidhScheme

            return CeilidhScheme(
                params, name=name, security_bits=security_bits, paper_ms=paper_ms,
                backend=backend,
            )

        register_scheme(name, factory)

    def ecdh(curve_name: str, name: str, paper_ms=None, security_bits: int = 80):
        def factory(backend=None):
            from repro.ecc.curves import get_curve
            from repro.ecc.pkc import EcdhScheme

            return EcdhScheme(
                get_curve(curve_name),
                name=name,
                security_bits=security_bits,
                paper_ms=paper_ms,
                backend=backend,
            )

        register_scheme(name, factory)

    def rsa(bits: int, name: str, paper_ms=None, security_bits: int = 80):
        def factory(backend=None):
            from repro.rsa.pkc import RsaScheme

            return RsaScheme(
                bits, name=name, security_bits=security_bits, paper_ms=paper_ms,
                backend=backend,
            )

        register_scheme(name, factory)

    def xtr(params: str, name: str, security_bits: int = 80):
        def factory(backend=None):
            from repro.xtr.pkc import XtrScheme

            return XtrScheme(params, name=name, security_bits=security_bits,
                             backend=backend)

        register_scheme(name, factory)

    # The paper's Table 3 rows (paper_ms from PAPER_TABLE3) plus XTR.
    ceilidh("ceilidh-170", "ceilidh-170", paper_ms=20.0)
    ecdh("secp160r1", "ecdh-p160", paper_ms=9.4)
    rsa(1024, "rsa-1024", paper_ms=96.0)
    xtr("ceilidh-170", "xtr-170")
    # Larger curves for the bandwidth/scaling comparisons.
    ecdh("secp192r1", "ecdh-p192", security_bits=96)
    ecdh("secp256k1", "ecdh-k256", security_bits=128)
    # Small sizes for fast tests and the cycle-accurate integration paths.
    ceilidh("toy-64", "ceilidh-toy64", security_bits=0)
    ceilidh("toy-32", "ceilidh-toy32", security_bits=0)
    rsa(512, "rsa-512", security_bits=0)
    xtr("toy-32", "xtr-toy32", security_bits=0)


_register_default_schemes()
