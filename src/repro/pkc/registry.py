"""The string-keyed scheme registry.

``get_scheme("ceilidh-170")`` / ``"ecdh-p160"`` / ``"rsa-1024"`` /
``"xtr-170"`` return ready adapter instances; a generic loop over
:func:`available_schemes` is all a benchmark or example needs to compare
every cryptosystem the library implements.  Instances are cached per name so
per-scheme amortised state (CEILIDH's and ECDH's fixed-base generator
tables, RSA's lazily generated key material) is shared by every caller —
the behaviour the batched serving harness in :mod:`repro.pkc.bench` relies
on; pass ``fresh=True`` for an isolated instance.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ParameterError
from repro.pkc.base import PkcScheme

__all__ = ["register_scheme", "get_scheme", "available_schemes"]

_FACTORIES: Dict[str, Callable[[], PkcScheme]] = {}
_INSTANCES: Dict[str, PkcScheme] = {}


def register_scheme(
    name: str, factory: Callable[[], PkcScheme], replace: bool = False
) -> None:
    """Register a scheme factory under a wire-format-stable name."""
    if not replace and name in _FACTORIES:
        raise ParameterError(f"scheme {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def get_scheme(name: str, fresh: bool = False) -> PkcScheme:
    """Look up a scheme adapter by name (cached unless ``fresh``)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ParameterError(
            f"unknown scheme {name!r}; available: {list(available_schemes())}"
        ) from None
    if fresh:
        return factory()
    if name not in _INSTANCES:
        _INSTANCES[name] = factory()
    return _INSTANCES[name]


def available_schemes() -> Tuple[str, ...]:
    """Registered scheme names, sorted."""
    return tuple(sorted(_FACTORIES))
