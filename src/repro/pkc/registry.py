"""The string-keyed scheme registry.

``get_scheme("ceilidh-170")`` / ``"ecdh-p160"`` / ``"rsa-1024"`` /
``"xtr-170"`` return ready adapter instances; a generic loop over
:func:`available_schemes` is all a benchmark or example needs to compare
every cryptosystem the library implements.  Instances are cached per
``(name, backend)`` so per-scheme amortised state (CEILIDH's and ECDH's
fixed-base generator tables, RSA's lazily generated key material) is shared
by every caller — the behaviour the batched serving harness in
:mod:`repro.pkc.bench` relies on; pass ``fresh=True`` for an isolated
instance.  Both caches are guarded by one module lock, so the serving
layer's worker threads (:mod:`repro.serve.scheduler`) can resolve schemes
concurrently with the event loop without ever constructing duplicates.

``backend`` selects the field-arithmetic substrate underneath the scheme
(see :mod:`repro.field.backend`): ``"plain"`` (the default fast path),
``"montgomery"`` (elements resident in Montgomery form across whole
protocol runs), ``"word-counting"`` (word-level FIOS with streamed
tallies) or ``"native"`` (gmpy2 / compiled FIOS kernel, degrading to
plain).  With no explicit backend the ``REPRO_FIELD_BACKEND`` environment
variable decides, so one CI leg can run the whole protocol stack on the
resident-Montgomery substrate.
"""

from __future__ import annotations

import inspect
import threading
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ParameterError
from repro.field.backend import BACKENDS, canonical_backend_name, default_backend_name
from repro.pkc.base import PkcScheme

__all__ = ["register_scheme", "get_scheme", "available_schemes"]

_FACTORIES: Dict[str, Callable[..., PkcScheme]] = {}
_INSTANCES: Dict[Tuple[str, str], PkcScheme] = {}

#: One lock guards both caches.  The serving layer's thread pool resolves
#: schemes from worker threads concurrently with the event loop; without the
#: lock two threads could construct (and then diverge on) separate "cached"
#: instances of the same scheme, splitting the amortised fixed-base tables
#: and long-lived key material the cache exists to share.  Construction
#: happens inside the lock: factories are cheap (expensive state like RSA
#: key material is generated lazily on first use, not at construction).
_REGISTRY_LOCK = threading.RLock()


def register_scheme(
    name: str, factory: Callable[..., PkcScheme], replace: bool = False
) -> None:
    """Register a scheme factory under a wire-format-stable name.

    The factory may accept a ``backend`` keyword (all built-in factories
    do); zero-argument factories remain valid and are simply constructed
    as-is for every backend.
    """
    with _REGISTRY_LOCK:
        if not replace and name in _FACTORIES:
            raise ParameterError(f"scheme {name!r} is already registered")
        _FACTORIES[name] = factory
        for key in [key for key in _INSTANCES if key[0] == name]:
            _INSTANCES.pop(key, None)


def _construct(factory: Callable[..., PkcScheme], backend: str) -> PkcScheme:
    try:
        accepts_backend = "backend" in inspect.signature(factory).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/partials
        accepts_backend = False
    if accepts_backend:
        return factory(backend=backend)
    if backend != "plain":
        raise ParameterError(
            "this scheme's factory does not accept a backend; "
            "re-register it with a 'backend' keyword parameter"
        )
    return factory()


def get_scheme(
    name: str, fresh: bool = False, backend: Optional[str] = None
) -> PkcScheme:
    """Look up a scheme adapter by name (cached per backend unless ``fresh``).

    ``backend=None`` resolves through ``REPRO_FIELD_BACKEND`` (default
    plain), so existing call sites keep their behaviour while the whole
    stack can be steered onto another substrate from the environment.
    """
    resolved = default_backend_name(backend)
    if resolved not in BACKENDS:
        raise ParameterError(
            f"unknown field backend {resolved!r}; available: {sorted(BACKENDS)}"
        )
    # Canonicalise aliases that bind to identical arithmetic (``native``
    # with no substrate degrades to plain) so the cache holds one warm
    # instance — not a duplicate set of fixed-base tables — regardless of
    # whether callers name the backend explicitly or arrive here through
    # ``backend=None`` + ``REPRO_FIELD_BACKEND``.
    resolved = canonical_backend_name(resolved)
    with _REGISTRY_LOCK:
        try:
            factory = _FACTORIES[name]
        except KeyError:
            raise ParameterError(
                f"unknown scheme {name!r}; available: {list(available_schemes())}"
            ) from None
        if fresh:
            return _construct(factory, resolved)
        key = (name, resolved)
        if key not in _INSTANCES:
            _INSTANCES[key] = _construct(factory, resolved)
        return _INSTANCES[key]


def available_schemes() -> Tuple[str, ...]:
    """Registered scheme names, sorted."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_FACTORIES))
