"""Reproduction of the paper's tables and figures.

Each function regenerates one evaluation artefact from the simulated
platform and pairs it with the paper's published numbers so the benchmark
harness (and EXPERIMENTS.md) can report paper-vs-measured side by side.
"""

from repro.analysis.tables import (
    TABLE3_SCHEMES,
    Table1Row,
    Table2Row,
    Table3Row,
    table1,
    table2,
    table3,
    table3_profiles,
)
from repro.analysis.figures import (
    fig1_operation_counts,
    fig2_platform_inventory,
    fig34_hierarchy_breakdown,
    fig5_parallel_speedup,
    bandwidth_comparison,
)
from repro.analysis.report import render_table, paper_vs_measured

__all__ = [
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "table1",
    "table2",
    "table3",
    "table3_profiles",
    "TABLE3_SCHEMES",
    "fig1_operation_counts",
    "fig2_platform_inventory",
    "fig34_hierarchy_breakdown",
    "fig5_parallel_speedup",
    "bandwidth_comparison",
    "render_table",
    "paper_vs_measured",
]
