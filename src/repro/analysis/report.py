"""Plain-text rendering of the reproduced tables.

The benchmark harness prints these so that running
``pytest benchmarks/ --benchmark-only`` leaves a paper-vs-measured record in
the console output (and, tee'd, in bench_output.txt).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a list of rows as an aligned ASCII table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if cell is None:
        return "-"
    return str(cell)


def paper_vs_measured(
    label: str, measured: float, paper: Optional[float], unit: str = "cycles"
) -> str:
    """One-line paper-vs-measured comparison with the ratio."""
    if paper is None or paper == 0:
        return f"{label}: measured {measured} {unit} (no paper value)"
    ratio = measured / paper
    return f"{label}: measured {measured} {unit}, paper {paper} {unit} (x{ratio:.2f})"
