"""Regeneration of Tables 1, 2 and 3.

* **Table 1** — clock cycles of the modular operations (and the interrupt
  round trip) at the three operand sizes, measured on the cycle-accurate
  coprocessor model.
* **Table 2** — clock cycles of the level-2 operations (Fp6 multiplication,
  ECC point addition/doubling) under the Type-A and Type-B hierarchies.
* **Table 3** — full public-key operations: 170-bit torus exponentiation,
  1024-bit RSA exponentiation, 160-bit ECC scalar multiplication, with the
  area/frequency model.

Every row carries the paper's number next to the measured one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.ecc.curves import SECP160R1
from repro.soc.cost import PAPER_TABLE1, PAPER_TABLE2, PAPER_TABLE3
from repro.soc.system import Platform, default_rsa_modulus
from repro.torus.params import CEILIDH_170, TorusParameters

#: The registry rows of the paper's comparison, in Table 3 order.
TABLE3_SCHEMES = ("ceilidh-170", "rsa-1024", "ecdh-p160", "xtr-170")


@dataclass
class Table1Row:
    """One row of Table 1: cycles of a modular operation at one bit length."""

    bit_length: int
    label: str
    operation: str
    measured_cycles: int
    paper_cycles: Optional[int]

    @property
    def ratio(self) -> Optional[float]:
        if not self.paper_cycles:
            return None
        return self.measured_cycles / self.paper_cycles


@dataclass
class Table2Row:
    """One row of Table 2: a level-2 operation under one hierarchy."""

    architecture: str
    operation: str
    measured_cycles: int
    paper_cycles: Optional[int]

    @property
    def ratio(self) -> Optional[float]:
        if not self.paper_cycles:
            return None
        return self.measured_cycles / self.paper_cycles


@dataclass
class Table3Row:
    """One row of Table 3: a full public-key operation on the platform."""

    system: str
    bit_length: int
    area_slices: int
    frequency_mhz: float
    measured_ms: float
    paper_ms: Optional[float]

    @property
    def ratio(self) -> Optional[float]:
        if not self.paper_ms:
            return None
        return self.measured_ms / self.paper_ms


def table1(
    platform: Optional[Platform] = None,
    torus_params: TorusParameters = CEILIDH_170,
    rsa_bits: int = 1024,
) -> List[Table1Row]:
    """Measure every row of Table 1 on the simulated coprocessor."""
    platform = platform or Platform()
    rows: List[Table1Row] = []

    rows.append(
        Table1Row(
            bit_length=0,
            label="interface",
            operation="interrupt handling",
            measured_cycles=platform.interrupt_round_trip_cycles,
            paper_cycles=PAPER_TABLE1["interrupt"],
        )
    )

    torus_costs = platform.measure_operation_costs(torus_params.p, label="torus")
    ecc_costs = platform.measure_operation_costs(SECP160R1.p, label="ECC")
    rsa_costs = platform.measure_operation_costs(default_rsa_modulus(rsa_bits), label="RSA")

    paper_torus = PAPER_TABLE1[170]
    paper_ecc = PAPER_TABLE1[160]
    paper_rsa = PAPER_TABLE1[1024]

    for costs, paper, label in (
        (torus_costs, paper_torus, "torus"),
        (ecc_costs, paper_ecc, "ECC"),
    ):
        rows.append(
            Table1Row(costs.bit_length, label, "modular multiplication",
                      costs.modular_mult, paper.modular_mult)
        )
        rows.append(
            Table1Row(costs.bit_length, label, "modular addition",
                      costs.modular_add, paper.modular_add)
        )
        rows.append(
            Table1Row(costs.bit_length, label, "modular subtraction",
                      costs.modular_sub, paper.modular_sub)
        )
    rows.append(
        Table1Row(rsa_costs.bit_length, "RSA", "modular multiplication",
                  rsa_costs.modular_mult, paper_rsa.modular_mult)
    )
    return rows


def table2(
    platform: Optional[Platform] = None,
    torus_params: TorusParameters = CEILIDH_170,
) -> List[Table2Row]:
    """Measure every row of Table 2 (Type-A vs Type-B level-2 operations)."""
    platform = platform or Platform()
    fp6_cost = platform.fp6_multiplication_cost(torus_params.p)
    pa_cost, pd_cost = platform.ecc_point_costs(SECP160R1.p)

    rows = [
        Table2Row("Type-A", "T6 multiplication", fp6_cost.type_a_cycles,
                  PAPER_TABLE2[("type-a", "t6-mult")]),
        Table2Row("Type-A", "ECC point addition", pa_cost.type_a_cycles,
                  PAPER_TABLE2[("type-a", "ecc-pa")]),
        Table2Row("Type-A", "ECC point doubling", pd_cost.type_a_cycles,
                  PAPER_TABLE2[("type-a", "ecc-pd")]),
        Table2Row("Type-B", "T6 multiplication", fp6_cost.type_b_cycles,
                  PAPER_TABLE2[("type-b", "t6-mult")]),
        Table2Row("Type-B", "ECC point addition", pa_cost.type_b_cycles,
                  PAPER_TABLE2[("type-b", "ecc-pa")]),
        Table2Row("Type-B", "ECC point doubling", pd_cost.type_b_cycles,
                  PAPER_TABLE2[("type-b", "ecc-pd")]),
    ]
    return rows


def table3(
    platform: Optional[Platform] = None,
    torus_params: TorusParameters = CEILIDH_170,
    rsa_bits: int = 1024,
) -> List[Table3Row]:
    """Measure every row of Table 3 (full public-key operations)."""
    platform = platform or Platform()
    torus = platform.torus_exponentiation_timing(torus_params)
    rsa = platform.rsa_exponentiation_timing(rsa_bits)
    ecc = platform.ecc_scalar_multiplication_timing(SECP160R1)

    rows = [
        Table3Row("170-bit torus (CEILIDH)", 170, torus.area_slices, torus.frequency_mhz,
                  torus.milliseconds, PAPER_TABLE3["torus"]["time_ms"]),
        Table3Row("1024-bit RSA", 1024, rsa.area_slices, rsa.frequency_mhz,
                  rsa.milliseconds, PAPER_TABLE3["rsa"]["time_ms"]),
        Table3Row("160-bit ECC", 160, ecc.area_slices, ecc.frequency_mhz,
                  ecc.milliseconds, PAPER_TABLE3["ecc"]["time_ms"]),
    ]
    return rows


def table3_profiles(
    platform: Optional[Platform] = None,
    names: Sequence[str] = TABLE3_SCHEMES,
    rng: Optional[random.Random] = None,
    include_protocols: bool = True,
):
    """Table 3 through the unified scheme registry: one generic loop.

    Every named scheme is profiled by the same call path — executed headline
    exponentiation, platform cycle projection, protocol traces and wire
    sizes — with no scheme-specific branches here or in
    :func:`repro.pkc.profile.build_profile`.  Returns the
    :class:`~repro.pkc.profile.SchemeProfile` list in registry order.
    """
    from repro.pkc import build_profile, get_scheme

    platform = platform or Platform()
    rng = rng or random.Random(0x7AB1E3)
    return [
        build_profile(
            get_scheme(name), platform, rng, include_protocols=include_protocols
        )
        for name in names
    ]
