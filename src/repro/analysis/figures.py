"""Regeneration of the paper's figures (as data series / structured reports).

The paper's figures are block diagrams and one scheduling illustration rather
than measurement plots, so each is reproduced as the quantitative content it
conveys:

* **Fig. 1** (structure of the T6 operations) -> the Fp operation counts of
  add/mul/inv at every level of the tower plus the conversion and
  compression maps;
* **Fig. 2** (platform block diagram) -> the component inventory and
  area/memory budget of the simulated platform;
* **Figs. 3 & 4** (Type-A / Type-B hierarchies) -> the communication-versus-
  compute cycle breakdown of one Fp6 multiplication under each hierarchy;
* **Fig. 5** (parallelised Montgomery multiplication on 4 cores) -> the
  cycle counts and speed-up of the 256-bit multiplication as the core count
  grows, including the inter-core transfer counts drawn in the figure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.field.fp6 import make_fp6
from repro.field.opcount import CountingPrimeField, OperationCounts
from repro.field.towers import F1ToF2Map, TowerFp6
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.parallel import parallel_fios_report
from repro.soc.engine import ModularEngine
from repro.soc.sequences import ecc_point_addition_program, fp6_multiplication_program
from repro.soc.system import Platform
from repro.torus.compression import TorusCompressor
from repro.torus.params import CEILIDH_170, TorusParameters
from repro.torus.t6 import T6Group


# ---------------------------------------------------------------------------
# Fig. 1 — operation structure of the tower.
# ---------------------------------------------------------------------------


@dataclass
class OperationProfile:
    """Fp operation counts of one tower-level operation."""

    level: str
    operation: str
    counts: OperationCounts

    def as_dict(self) -> Dict[str, int]:
        return {"M": self.counts.mul, "A": self.counts.additions_total, "inv": self.counts.inv}


def fig1_operation_counts(
    params: TorusParameters = CEILIDH_170, seed: int = 2008
) -> List[OperationProfile]:
    """Count base-field operations for every box of Fig. 1.

    Uses the counting field to profile addition, multiplication and inversion
    in Fp, Fp3 and Fp6 (representation F1), the tau/tau^-1 conversion between
    F1 and F2, and the compression maps rho and psi.
    """
    rng = random.Random(seed)
    field = CountingPrimeField(params.p, check_prime=False)
    fp6 = make_fp6(field)
    tower = TowerFp6(field)
    fp3 = tower.fp3
    converter = F1ToF2Map(fp6, tower)

    profiles: List[OperationProfile] = []

    def profile(level: str, operation: str, thunk) -> None:
        field.reset_counts()
        thunk()
        profiles.append(OperationProfile(level, operation, field.counts.snapshot()))

    a_fp, b_fp = field.random_nonzero(rng), field.random_nonzero(rng)
    profile("Fp", "add", lambda: field.add(a_fp, b_fp))
    profile("Fp", "mul", lambda: field.mul(a_fp, b_fp))
    profile("Fp", "inv", lambda: field.inv(a_fp))

    a3, b3 = fp3.random_element(rng), fp3.random_element(rng)
    profile("Fp3", "add", lambda: fp3.add(a3, b3))
    profile("Fp3", "mul", lambda: fp3.mul(a3, b3))
    profile("Fp3", "inv", lambda: fp3.inv(a3))

    a6, b6 = fp6.random_element(rng), fp6.random_element(rng)
    profile("Fp6 (F1)", "add", lambda: fp6.add(a6, b6))
    profile("Fp6 (F1)", "mul (18M)", lambda: fp6.mul_paper(a6, b6))
    profile("Fp6 (F1)", "inv", lambda: fp6.inv(a6))

    profile("F1 <-> F2", "tau", lambda: converter.to_f2(a6))
    profile("F1 <-> F2", "tau^-1", lambda: converter.to_f1(converter.to_f2(a6)))

    group = T6Group(params)
    group.fp = field
    group.fp6 = fp6
    compressor = TorusCompressor(group)
    element = fp6.project_to_torus(a6)
    profile("T6", "rho (compress)", lambda: compressor.compress(element))
    compressed = compressor.compress(element)
    profile("T6", "psi (decompress)", lambda: compressor.decompress(compressed))
    return profiles


# ---------------------------------------------------------------------------
# Fig. 2 — platform inventory.
# ---------------------------------------------------------------------------


def fig2_platform_inventory(platform: Optional[Platform] = None) -> Dict[str, object]:
    """The component inventory and budgets of the simulated platform."""
    platform = platform or Platform()
    area = platform.area_report()
    config = platform.config
    return {
        "controller": "MicroBlaze (memory-mapped registers A/B/C + interrupt)",
        "num_cores": config.num_cores,
        "core_word_bits": config.word_bits,
        "core_registers": config.num_registers,
        "core_instruction_count": 7,
        "data_ram": "single-port block RAM",
        "instruction_roms": ["InsRom1 (level-2 sequences)", "InsRom2 (microcode)"],
        "interface_round_trip_cycles": platform.interrupt_round_trip_cycles,
        "area_slices_total": area.total_slices,
        "area_slices_coprocessor": area.coprocessor_slices,
        "frequency_mhz": area.frequency_mhz,
        "block_rams": area.block_rams,
    }


# ---------------------------------------------------------------------------
# Figs. 3 & 4 — hierarchy breakdowns.
# ---------------------------------------------------------------------------


@dataclass
class HierarchyBreakdown:
    """Communication/compute split of one level-2 sequence under one hierarchy."""

    hierarchy: str
    operation: str
    total_cycles: int
    interface_cycles: int
    compute_cycles: int

    @property
    def communication_fraction(self) -> float:
        return self.interface_cycles / self.total_cycles if self.total_cycles else 0.0


def fig34_hierarchy_breakdown(
    platform: Optional[Platform] = None, params: TorusParameters = CEILIDH_170
) -> List[HierarchyBreakdown]:
    """Cycle breakdown of one Fp6 multiplication and one ECC point addition."""
    platform = platform or Platform()
    out: List[HierarchyBreakdown] = []
    for program, modulus, label in (
        (fp6_multiplication_program(), params.p, "T6 multiplication"),
        (ecc_point_addition_program(), params.p, "ECC point addition"),
    ):
        for hierarchy in ("type-a", "type-b"):
            trace = platform.hierarchy_trace(program, modulus, hierarchy)
            breakdown = trace.breakdown()
            interface = breakdown.get("interface", 0) + breakdown.get("dispatch", 0)
            out.append(
                HierarchyBreakdown(
                    hierarchy=hierarchy,
                    operation=label,
                    total_cycles=trace.total_cycles,
                    interface_cycles=interface,
                    compute_cycles=breakdown.get("compute", 0),
                )
            )
    return out


# ---------------------------------------------------------------------------
# Fig. 5 — parallel Montgomery multiplication.
# ---------------------------------------------------------------------------


@dataclass
class ParallelMmPoint:
    """One point of the Fig. 5 core-count sweep."""

    num_cores: int
    active_cores: int
    cycles: int
    speedup_vs_single_core: float
    inter_core_transfers_per_mult: int


def fig5_parallel_speedup(
    bits: int = 256,
    core_counts: Optional[List[int]] = None,
    word_bits: int = 16,
    seed: int = 5,
) -> List[ParallelMmPoint]:
    """Cycle counts of one ``bits``-bit Montgomery multiplication versus core count.

    Reference [4] reports a 2.96x speed-up for a 256-bit multiplication on
    4 cores versus 1 core; this sweep reproduces that series on the
    cycle-accurate microcode and also reports the per-multiplication
    inter-core word transfers that Fig. 5 illustrates.
    """
    core_counts = core_counts or [1, 2, 4, 8]
    rng = random.Random(seed)
    modulus = (1 << bits) - rng.randrange(3, 1 << 16, 2)
    while modulus % 2 == 0:
        modulus -= 1
    points: List[ParallelMmPoint] = []
    single_core_cycles: Optional[int] = None
    domain = MontgomeryDomain(modulus, word_bits=word_bits)
    for cores in core_counts:
        engine = ModularEngine(modulus, word_bits=word_bits, num_cores=cores)
        cycles = engine.measure_multiplication().cycles
        if single_core_cycles is None:
            single_core_cycles = cycles if cores == 1 else None
        report = parallel_fios_report(
            domain,
            domain.to_montgomery(rng.randrange(modulus)),
            domain.to_montgomery(rng.randrange(modulus)),
            num_cores=cores,
        )
        baseline = single_core_cycles or cycles
        points.append(
            ParallelMmPoint(
                num_cores=cores,
                active_cores=engine.multiplier.num_active_cores,
                cycles=cycles,
                speedup_vs_single_core=baseline / cycles,
                inter_core_transfers_per_mult=report.inter_core_transfers,
            )
        )
    # Normalise the speed-ups against the 1-core point if it is in the sweep.
    one_core = next((p for p in points if p.num_cores == 1), None)
    if one_core is not None:
        for point in points:
            point.speedup_vs_single_core = one_core.cycles / point.cycles
    return points


# ---------------------------------------------------------------------------
# Section 1 claim — bandwidth / compression comparison.
# ---------------------------------------------------------------------------


@dataclass
class BandwidthRow:
    """Transmitted bits per key-agreement message for one cryptosystem."""

    system: str
    security_equivalent: str
    transmitted_bits: int
    compression_vs_fp6: float


def bandwidth_comparison(params: TorusParameters = CEILIDH_170) -> List[BandwidthRow]:
    """Message sizes: compressed torus vs raw Fp6 vs RSA vs ECC.

    Reproduces the introduction's bandwidth argument: CEILIDH transmits two
    Fp elements (~340 bits) for the security of Fp6, a factor 3 less than the
    raw representation and a factor ~3 less than the 1024-bit RSA modulus it
    is compared against.
    """
    p_bits = params.p_bits
    fp6_bits = 6 * p_bits
    rows = [
        BandwidthRow("CEILIDH (compressed T6)", "~1024-bit RSA", 2 * p_bits, fp6_bits / (2 * p_bits)),
        BandwidthRow("raw Fp6 element", "~1024-bit RSA", fp6_bits, 1.0),
        BandwidthRow("RSA-1024 (modulus-sized message)", "1024-bit RSA", 1024, fp6_bits / 1024),
        BandwidthRow("ECC point, 160-bit (compressed)", "~1024-bit RSA", 161, fp6_bits / 161),
    ]
    return rows
