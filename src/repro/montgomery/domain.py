"""Montgomery domain bookkeeping.

A :class:`MontgomeryDomain` fixes the modulus ``P``, the word size ``w`` and
the number of words ``s``, and provides conversion into and out of the
Montgomery representation (x -> x*R mod P with R = 2^(w*s)), plus a
big-integer reference implementation of the Montgomery product used to
validate the word-level algorithms and the coprocessor microcode.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParameterError
from repro.nt.modular import modinv
from repro.nt.words import from_words, to_words, word_length


class MontgomeryDomain:
    """Montgomery arithmetic for a fixed odd modulus.

    Parameters
    ----------
    modulus:
        The odd modulus ``P``.
    word_bits:
        The radix exponent ``w`` (the paper's cores use the FPGA's dedicated
        multipliers, i.e. 16-bit words).
    num_words:
        Number of words ``s``; defaults to the minimum needed for ``P``.
        The paper uses ``s = ceil(n / w)`` for an ``n``-bit modulus.
    """

    def __init__(
        self, modulus: int, word_bits: int = 16, num_words: Optional[int] = None
    ):
        if modulus < 3 or modulus % 2 == 0:
            raise ParameterError(f"Montgomery arithmetic needs an odd modulus >= 3, got {modulus}")
        if word_bits < 2:
            raise ParameterError(f"word size must be at least 2 bits, got {word_bits}")
        self.modulus = modulus
        self.word_bits = word_bits
        self.radix = 1 << word_bits
        min_words = word_length(modulus.bit_length(), word_bits)
        self.num_words = num_words if num_words is not None else min_words
        if self.num_words < min_words:
            raise ParameterError(
                f"{self.num_words} words of {word_bits} bits cannot hold the modulus"
            )
        self.r = 1 << (word_bits * self.num_words)
        self.r_mod_p = self.r % modulus
        self.r2_mod_p = self.r_mod_p * self.r_mod_p % modulus
        self.r_inv = modinv(self.r, modulus)
        # p' = -P^-1 mod r (the per-word constant of Algorithm 1).
        self.p_prime = (-modinv(modulus, self.radix)) % self.radix
        # Full -P^-1 mod R, used by the big-integer reference REDC.
        self.p_prime_full = (-modinv(modulus, self.r)) % self.r

    # -- representation conversions ------------------------------------------

    def to_montgomery(self, x: int) -> int:
        """Map ``x`` to its Montgomery representative ``x * R mod P``."""
        return x * self.r_mod_p % self.modulus

    def from_montgomery(self, x_bar: int) -> int:
        """Map a Montgomery representative back to the ordinary residue."""
        return x_bar * self.r_inv % self.modulus

    def modulus_words(self) -> List[int]:
        """Little-endian word vector of the modulus."""
        return to_words(self.modulus, self.num_words, self.word_bits)

    def to_words(self, value: int) -> List[int]:
        """Little-endian word vector of a residue."""
        return to_words(value, self.num_words, self.word_bits)

    def from_words(self, words: List[int]) -> int:
        """Inverse of :meth:`to_words`."""
        return from_words(words, self.word_bits)

    # -- reference Montgomery product -----------------------------------------

    def redc(self, t: int) -> int:
        """Montgomery reduction of ``t < P*R``: returns ``t * R^-1 mod P``."""
        if not 0 <= t < self.modulus * self.r:
            raise ParameterError("REDC input out of range")
        m = (t % self.r) * self.p_prime_full % self.r
        u = (t + m * self.modulus) // self.r
        return u - self.modulus if u >= self.modulus else u

    def mont_mul(self, x_bar: int, y_bar: int) -> int:
        """Montgomery product ``x_bar * y_bar * R^-1 mod P`` (big-int reference)."""
        return self.redc(x_bar * y_bar)

    def mont_sqr(self, x_bar: int) -> int:
        """Montgomery square."""
        return self.redc(x_bar * x_bar)

    def one(self) -> int:
        """The Montgomery representative of 1 (that is, R mod P)."""
        return self.r_mod_p

    def __repr__(self) -> str:
        return (
            f"MontgomeryDomain(modulus~2^{self.modulus.bit_length()}, "
            f"w={self.word_bits}, s={self.num_words})"
        )
