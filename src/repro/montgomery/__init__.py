"""Montgomery modular multiplication.

The platform performs every modular multiplication with Montgomery's
algorithm (Section 2.3 of the paper), in the FIOS word-scanning form
(Algorithm 1) and, across coprocessor cores, with the carry-local parallel
schedule of Fan/Sakiyama/Verbauwhede (SIPS 2007) illustrated in Fig. 5.

This package contains the pure-software reference models; the cycle-accurate
microcode that runs on the simulated coprocessor lives in
:mod:`repro.soc.microcode` and is validated against these models.
"""

from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.fios import (
    FiosBatchStats,
    FiosTrace,
    fios_batch_stats,
    fios_multiply,
    fios_trace,
)
from repro.montgomery.variants import sos_multiply, cios_multiply
from repro.montgomery.parallel import ParallelFiosSchedule, parallel_fios_multiply
from repro.montgomery.exponent import (
    ExponentiationTrace,
    montgomery_exponent,
    montgomery_ladder_exponent,
    montgomery_power,
    montgomery_window_exponent,
)

__all__ = [
    "MontgomeryDomain",
    "FiosTrace",
    "FiosBatchStats",
    "fios_batch_stats",
    "fios_multiply",
    "fios_trace",
    "sos_multiply",
    "cios_multiply",
    "ParallelFiosSchedule",
    "parallel_fios_multiply",
    "ExponentiationTrace",
    "montgomery_power",
    "montgomery_exponent",
    "montgomery_ladder_exponent",
    "montgomery_window_exponent",
]
