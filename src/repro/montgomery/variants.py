"""Alternative word-level Montgomery multiplication variants.

The paper chooses FIOS (Algorithm 1); Koc, Acar and Kaliski's survey — the
paper's reference [2] — also describes SOS (Separated Operand Scanning) and
CIOS (Coarsely Integrated Operand Scanning).  They are provided here both as
cross-checks for FIOS and as material for the ablation benchmark comparing
scheduling strategies on the simulated platform.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain


def sos_multiply(domain: MontgomeryDomain, x_bar: int, y_bar: int) -> int:
    """Separated Operand Scanning: full product first, then reduction."""
    p = domain.modulus
    if not (0 <= x_bar < p and 0 <= y_bar < p):
        raise ParameterError("SOS operands must be reduced modulo P")
    s = domain.num_words
    w = domain.word_bits
    mask = domain.radix - 1
    x = domain.to_words(x_bar)
    y = domain.to_words(y_bar)
    pw = domain.modulus_words()
    p_prime = domain.p_prime

    # Phase 1: t = x * y, schoolbook.
    t = [0] * (2 * s + 1)
    for i in range(s):
        carry = 0
        for j in range(s):
            acc = t[i + j] + x[j] * y[i] + carry
            t[i + j] = acc & mask
            carry = acc >> w
        t[i + s] += carry

    # Phase 2: reduction, one word of the modulus at a time.
    for i in range(s):
        carry = 0
        m = t[i] * p_prime & mask
        for j in range(s):
            acc = t[i + j] + m * pw[j] + carry
            t[i + j] = acc & mask
            carry = acc >> w
        # Propagate the final carry.
        k = i + s
        while carry:
            acc = t[k] + carry
            t[k] = acc & mask
            carry = acc >> w
            k += 1

    # Phase 3: the result is t[s..2s] (division by R), with conditional subtraction.
    value = 0
    for idx in range(2 * s, s - 1, -1):
        value = (value << w) | t[idx]
    if value >= p:
        value -= p
    if value >= p:
        raise ParameterError("SOS output out of range (bug)")
    return value


def cios_multiply(domain: MontgomeryDomain, x_bar: int, y_bar: int) -> int:
    """Coarsely Integrated Operand Scanning."""
    p = domain.modulus
    if not (0 <= x_bar < p and 0 <= y_bar < p):
        raise ParameterError("CIOS operands must be reduced modulo P")
    s = domain.num_words
    w = domain.word_bits
    mask = domain.radix - 1
    x = domain.to_words(x_bar)
    y = domain.to_words(y_bar)
    pw = domain.modulus_words()
    p_prime = domain.p_prime

    t = [0] * (s + 2)
    for i in range(s):
        # Multiplication pass for word y[i].
        carry = 0
        for j in range(s):
            acc = t[j] + x[j] * y[i] + carry
            t[j] = acc & mask
            carry = acc >> w
        acc = t[s] + carry
        t[s] = acc & mask
        t[s + 1] = acc >> w
        # Reduction pass.
        m = t[0] * p_prime & mask
        acc = t[0] + m * pw[0]
        carry = acc >> w
        for j in range(1, s):
            acc = t[j] + m * pw[j] + carry
            t[j - 1] = acc & mask
            carry = acc >> w
        acc = t[s] + carry
        t[s - 1] = acc & mask
        t[s] = t[s + 1] + (acc >> w)
        t[s + 1] = 0

    value = 0
    for idx in range(s, -1, -1):
        value = (value << w) | t[idx]
    if value >= p:
        value -= p
    if value >= p:
        raise ParameterError("CIOS output out of range (bug)")
    return value
