"""FIOS Montgomery multiplication (Algorithm 1 of the paper).

Finely Integrated Operand Scanning, after Koc/Acar/Kaliski: the outer loop
scans the words of Y; each iteration interleaves the partial product
``X * y_i`` with the reduction ``P * t`` and divides by the radix.  This is
the word-level reference model for the coprocessor microcode; it also powers
the single-core cycle estimates used in the analysis package and the
word-counting field backend (:mod:`repro.field.backend`).

.. admonition:: Constant-time caveat

   The final conditional subtraction (``value -= p`` when the accumulated
   result lands in ``[p, 2p)``) is **data-dependent**: whether it fires is a
   function of the secret operands, so its occurrence rate — observable as a
   timing or power difference on the real datapath — leaks information about
   the values being multiplied.  :class:`FiosBatchStats` measures that rate
   over a batch (for uniform operands it sits near ``p / 4R``, well away
   from 0 or 1, i.e. genuinely input-dependent).  Hardened implementations
   remove the branch entirely, either by always subtracting and selecting
   the result, or by sizing ``R > 4p`` and keeping results in ``[0, 2p)``
   (see the bounded variants in :mod:`repro.montgomery.variants`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain


@dataclass
class FiosTrace:
    """Word-operation tally of one FIOS multiplication.

    ``word_mults`` counts w x w -> 2w multiplications, ``word_adds`` counts
    single-word additions with carry; these are the quantities the
    coprocessor's MAC-based cycle counts scale with.

    ``final_subtraction`` records whether this product needed the
    conditional correction — the data-dependent step discussed in the
    module's constant-time caveat.  Aggregate its rate over a batch with
    :class:`FiosBatchStats`.
    """

    num_words: int
    word_mults: int
    word_adds: int
    final_subtraction: bool


@dataclass
class FiosBatchStats:
    """Final-subtraction statistics across a batch of FIOS multiplications.

    Feed every :class:`FiosTrace` of a protocol run (or any operand sample)
    through :meth:`record`; ``rate`` then estimates the probability that the
    conditional final subtraction fires.  For independent uniform operands
    the classical analysis (Schindler) puts it near ``p / 4R``; because the
    branch depends on the secret operands, a rate strictly between 0 and 1
    is direct evidence that the unprotected algorithm's timing is
    input-dependent.
    """

    multiplications: int = 0
    final_subtractions: int = 0
    word_mults: int = 0
    word_adds: int = 0
    num_words: int = 0
    #: The uniform-operand prediction ``p / 4R`` for the sampled domain;
    #: ``None`` when the accumulator never learned the domain geometry.
    predicted_rate: "float | None" = None

    def record(self, trace: FiosTrace) -> None:
        self.multiplications += 1
        self.word_mults += trace.word_mults
        self.word_adds += trace.word_adds
        self.num_words = trace.num_words
        if trace.final_subtraction:
            self.final_subtractions += 1

    def record_all(self, traces: Iterable[FiosTrace]) -> None:
        for trace in traces:
            self.record(trace)

    @property
    def rate(self) -> float:
        """Fraction of products that needed the final subtraction."""
        if not self.multiplications:
            return 0.0
        return self.final_subtractions / self.multiplications

    @property
    def expected_rate(self) -> "float | None":
        """Alias of :attr:`predicted_rate` — what ``rate`` should approach
        for independent random residents (``None`` when unknown)."""
        return self.predicted_rate


def fios_batch_stats(
    domain: MontgomeryDomain, pairs: Iterable[tuple]
) -> FiosBatchStats:
    """Run FIOS over ``(x_bar, y_bar)`` operand pairs and tally the batch.

    Returns a :class:`FiosBatchStats` whose ``expected_rate`` carries the
    uniform-operand prediction ``p / 4R`` for this domain.
    """
    stats = FiosBatchStats(predicted_rate=domain.modulus / (4 * domain.r))
    for x_bar, y_bar in pairs:
        _, trace = _fios(domain, x_bar, y_bar)
        stats.record(trace)
    return stats


def fios_multiply(domain: MontgomeryDomain, x_bar: int, y_bar: int) -> int:
    """Word-level FIOS product ``x_bar * y_bar * R^-1 mod P``.

    Inputs must already be in the Montgomery domain and reduced modulo P.
    """
    result, _ = _fios(domain, x_bar, y_bar)
    return result


def fios_trace(domain: MontgomeryDomain, x_bar: int, y_bar: int) -> FiosTrace:
    """Run FIOS and return the word-operation tally."""
    _, trace = _fios(domain, x_bar, y_bar)
    return trace


def _fios(domain: MontgomeryDomain, x_bar: int, y_bar: int):
    p = domain.modulus
    if not (0 <= x_bar < p and 0 <= y_bar < p):
        raise ParameterError("FIOS operands must be reduced modulo P")
    s = domain.num_words
    w = domain.word_bits
    mask = domain.radix - 1
    x = domain.to_words(x_bar)
    y = domain.to_words(y_bar)
    pw = domain.modulus_words()
    p_prime = domain.p_prime

    z = [0] * (s + 1)  # one extra word for the running carry
    word_mults = 0
    word_adds = 0

    for i in range(s):
        yi = y[i]
        # t = (z0 + x0*yi) * p' mod r
        t0 = z[0] + x[0] * yi
        word_mults += 1
        word_adds += 1
        m = (t0 & mask) * p_prime & mask
        word_mults += 1
        # Position 0: z0 + x0*yi + p0*m, low word drops out (it is 0 mod r).
        acc = t0 + pw[0] * m
        word_mults += 1
        word_adds += 1
        carry = acc >> w
        # Positions 1..s-1.
        for j in range(1, s):
            acc = z[j] + x[j] * yi + pw[j] * m + carry
            word_mults += 2
            word_adds += 3
            z[j - 1] = acc & mask
            carry = acc >> w
        acc = z[s] + carry
        word_adds += 1
        z[s - 1] = acc & mask
        z[s] = acc >> w

    value = domain.from_words(z[:s]) + (z[s] << (w * s))
    final_subtraction = value >= p
    if final_subtraction:
        value -= p
        word_adds += s
    if value >= p:
        raise ParameterError("FIOS output out of range (bug)")
    trace = FiosTrace(
        num_words=s,
        word_mults=word_mults,
        word_adds=word_adds,
        final_subtraction=final_subtraction,
    )
    return value, trace


def fios_word_mult_count(num_words: int) -> int:
    """Closed-form number of w x w multiplications of FIOS: 2*s^2 + s."""
    return 2 * num_words * num_words + num_words
