"""Modular exponentiation in the Montgomery domain.

RSA on the platform is a plain square-and-multiply loop of 1024-bit Montgomery
multiplications (Section 3.2); these helpers provide the reference software
version, a constant-time Montgomery ladder and a fixed-window variant used by
the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain


@dataclass
class ExponentiationTrace:
    """Number of Montgomery multiplications/squarings an exponentiation used."""

    squarings: int
    multiplications: int

    @property
    def total(self) -> int:
        return self.squarings + self.multiplications


def montgomery_exponent(
    domain: MontgomeryDomain,
    base: int,
    exponent: int,
    trace: Optional[ExponentiationTrace] = None,
) -> int:
    """Left-to-right binary exponentiation: returns ``base^exponent mod P``.

    ``base`` is an ordinary residue (not in the Montgomery domain); the
    conversion in and out is handled here, matching what the MicroBlaze-side
    software does around the coprocessor calls.
    """
    if exponent < 0:
        raise ParameterError("negative exponents are not supported")
    p = domain.modulus
    base %= p
    if exponent == 0:
        return 1 % p
    acc = domain.to_montgomery(base)
    result = acc
    bits = bin(exponent)[3:]  # skip the leading 1
    for bit in bits:
        result = domain.mont_mul(result, result)
        if trace is not None:
            trace.squarings += 1
        if bit == "1":
            result = domain.mont_mul(result, acc)
            if trace is not None:
                trace.multiplications += 1
    return domain.from_montgomery(result)


def montgomery_ladder_exponent(
    domain: MontgomeryDomain,
    base: int,
    exponent: int,
    trace: Optional[ExponentiationTrace] = None,
) -> int:
    """Montgomery-ladder exponentiation (regular operation pattern)."""
    if exponent < 0:
        raise ParameterError("negative exponents are not supported")
    p = domain.modulus
    base %= p
    if exponent == 0:
        return 1 % p
    r0 = domain.one()
    r1 = domain.to_montgomery(base)
    for bit in bin(exponent)[2:]:
        if bit == "1":
            r0 = domain.mont_mul(r0, r1)
            r1 = domain.mont_mul(r1, r1)
        else:
            r1 = domain.mont_mul(r0, r1)
            r0 = domain.mont_mul(r0, r0)
        if trace is not None:
            trace.squarings += 1
            trace.multiplications += 1
    return domain.from_montgomery(r0)


def montgomery_window_exponent(
    domain: MontgomeryDomain,
    base: int,
    exponent: int,
    window_bits: int = 4,
    trace: Optional[ExponentiationTrace] = None,
) -> int:
    """Fixed-window exponentiation with a 2^w-entry table."""
    if exponent < 0:
        raise ParameterError("negative exponents are not supported")
    if not 1 <= window_bits <= 8:
        raise ParameterError("window width must be between 1 and 8 bits")
    p = domain.modulus
    base %= p
    if exponent == 0:
        return 1 % p
    base_m = domain.to_montgomery(base)
    table = [domain.one()]
    for _ in range((1 << window_bits) - 1):
        table.append(domain.mont_mul(table[-1], base_m))
        if trace is not None:
            trace.multiplications += 1

    digits = []
    e = exponent
    while e:
        digits.append(e & ((1 << window_bits) - 1))
        e >>= window_bits
    digits.reverse()

    result = table[digits[0]]
    for digit in digits[1:]:
        for _ in range(window_bits):
            result = domain.mont_mul(result, result)
            if trace is not None:
                trace.squarings += 1
        if digit:
            result = domain.mont_mul(result, table[digit])
            if trace is not None:
                trace.multiplications += 1
    return domain.from_montgomery(result)
