"""Modular exponentiation in the Montgomery domain — wrappers over :mod:`repro.exp`.

RSA on the platform is a loop of 1024-bit Montgomery multiplications
(Section 3.2); the loop itself now lives in the unified exponentiation
engine, with :class:`~repro.exp.group.MontgomeryExpGroup` supplying the
Montgomery product as the group operation.  The historical helpers keep
their signatures (binary reference, constant-time ladder, fixed window)
and :func:`montgomery_power` exposes the full strategy registry — the
engine's sliding-window default saves ~30% of the multiplications at
RSA sizes.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParameterError
from repro.exp.group import MontgomeryExpGroup
from repro.exp.strategies import check_window_bits, exponentiate, exponentiate_many
from repro.exp.trace import ExponentiationTrace, OpTrace
from repro.montgomery.domain import MontgomeryDomain

__all__ = [
    "ExponentiationTrace",
    "montgomery_power",
    "montgomery_power_many",
    "montgomery_exponent",
    "montgomery_ladder_exponent",
    "montgomery_window_exponent",
]


def montgomery_power(
    domain: MontgomeryDomain,
    base: int,
    exponent: int,
    strategy: str = "auto",
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
) -> int:
    """``base^exponent mod P`` with any engine strategy.

    ``base`` is an ordinary residue (not in the Montgomery domain); the
    conversion in and out is handled here, matching what the MicroBlaze-side
    software does around the coprocessor calls.  Inversion in the Montgomery
    domain is an extended-gcd affair, so negative exponents stay rejected and
    the auto-selected strategy is the inversion-free sliding window.
    """
    if exponent < 0:
        raise ParameterError("negative exponents are not supported")
    if window_bits is not None:
        check_window_bits(window_bits)  # reject bad widths even for exponent 0
    p = domain.modulus
    base %= p
    if exponent == 0:
        return 1 % p
    group = MontgomeryExpGroup(domain)
    result = exponentiate(
        group,
        domain.to_montgomery(base),
        exponent,
        strategy=strategy,
        trace=trace,
        window_bits=window_bits,
    )
    return domain.from_montgomery(result)


def montgomery_power_many(
    domain: MontgomeryDomain,
    bases,
    exponents,
    strategy: str = "auto",
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
) -> "list[int]":
    """Batch :func:`montgomery_power` through the engine's batch entry.

    One :class:`MontgomeryExpGroup` and one conversion pass serve the whole
    batch, and shared-base runs amortize a fixed-base table inside
    :func:`~repro.exp.strategies.exponentiate_many`.  RSA's CRT paths are
    the expected caller (N half-size exponentiations per prime under one
    key); results are value-identical to N single calls.
    """
    bases = list(bases)
    exponents = list(exponents)
    if len(bases) != len(exponents):
        raise ParameterError(
            f"montgomery_power_many: length mismatch ({len(bases)} vs {len(exponents)})"
        )
    for exponent in exponents:
        if exponent < 0:
            raise ParameterError("negative exponents are not supported")
    if window_bits is not None:
        check_window_bits(window_bits)
    p = domain.modulus
    results: "list[Optional[int]]" = [None] * len(bases)
    pending = []
    positions = []
    for i, (base, exponent) in enumerate(zip(bases, exponents)):
        base %= p
        if exponent == 0:
            results[i] = 1 % p
            continue
        pending.append((base, exponent))
        positions.append(i)
    if pending:
        group = MontgomeryExpGroup(domain)
        residents = exponentiate_many(
            group,
            [domain.to_montgomery(base) for base, _ in pending],
            [exponent for _, exponent in pending],
            strategy=strategy,
            trace=trace,
            window_bits=window_bits,
        )
        for i, resident in zip(positions, residents):
            results[i] = domain.from_montgomery(resident)
    return results


def montgomery_exponent(
    domain: MontgomeryDomain,
    base: int,
    exponent: int,
    trace: Optional[ExponentiationTrace] = None,
) -> int:
    """Left-to-right binary exponentiation: returns ``base^exponent mod P``."""
    return montgomery_power(domain, base, exponent, strategy="binary", trace=trace)


def montgomery_ladder_exponent(
    domain: MontgomeryDomain,
    base: int,
    exponent: int,
    trace: Optional[ExponentiationTrace] = None,
) -> int:
    """Montgomery-ladder exponentiation (regular operation pattern)."""
    return montgomery_power(domain, base, exponent, strategy="ladder", trace=trace)


def montgomery_window_exponent(
    domain: MontgomeryDomain,
    base: int,
    exponent: int,
    window_bits: int = 4,
    trace: Optional[ExponentiationTrace] = None,
) -> int:
    """Fixed-window exponentiation with a 2^w-entry table."""
    return montgomery_power(
        domain, base, exponent, strategy="window", trace=trace, window_bits=window_bits
    )
