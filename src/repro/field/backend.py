"""Pluggable field-arithmetic backends: one word-level substrate per field.

The paper's central claim is that a single Montgomery-multiplier datapath
serves RSA, ECC, CEILIDH and XTR alike.  This module makes that claim
executable in the reproduction: every :class:`~repro.field.fp.PrimeField`
delegates its multiplicative arithmetic to an injected **backend**, so the
entire extension tower (Fp2/Fp3/Fp6/the F2 tower), the exponentiation
engine and every registry scheme inherit the substrate selection for free.

Four backends are provided:

* :class:`PlainBackend` — today's plain-integer arithmetic (``a * b % p``).
  The default fast path; nothing about the historical behaviour changes.
* :class:`MontgomeryBackend` — elements stay **resident in Montgomery
  form** (``x -> x * R mod p`` via :class:`~repro.montgomery.domain.\
  MontgomeryDomain`) across whole protocol runs.  Addition and subtraction
  are representation-linear, so only multiplication, inversion and the
  :meth:`enter`/:meth:`exit` conversions at wire/encode boundaries differ;
  a seeded protocol run produces byte-identical wire output under either
  backend.
* :class:`WordCountingBackend` — a Montgomery-resident backend whose
  multiplications execute the **word-level FIOS algorithm**
  (:func:`repro.montgomery.fios._fios`) and stream
  :class:`~repro.montgomery.fios.FiosTrace`-style word-mult/word-add
  tallies into a shared :class:`WordOpStream`.  This is what turns the
  SoC Table 3 projection from an analytic composition into a measurement
  of the word operations the schemes actually execute (see
  :meth:`repro.soc.cost.CostModel.measured_exponentiation_cycles`).
* :class:`NativeBackend` — plain-representation arithmetic on the fastest
  native substrate available (see :mod:`repro.field.native`): GMP via the
  optional ``gmpy2`` package (``mpz`` residents, ``powmod`` behind the
  exp-engine fast path), else the on-demand-compiled ctypes FIOS
  Montgomery C kernel for whole exponentiations, else — with a logged
  warning — the pure-python plain path, so ``REPRO_FIELD_BACKEND=native``
  is always safe.  Residents coincide with plain reduced integers, so
  seeded wire output is byte-identical with the plain backend.

Every bound backend also exposes :meth:`FieldOps.inv_many` — batch
inversion by Montgomery's trick (1 inversion + 3(N-1) multiplications for
N values), the primitive the serve scheduler's group dispatch and the ECC
Jacobian->affine funnel use to collapse per-session inversions.

Representation contract
-----------------------

All values handed to ``add``/``sub``/``mul``/... are *resident* — already in
the backend's representation and reduced into ``[0, p)``.  Plain integers
cross into residency exactly once, through :meth:`enter` (literal
constants, wire decodes, RNG draws), and leave exactly once, through
:meth:`exit` (wire encodes, hashes, parity checks).  ``PrimeField`` exposes
these as ``field.enter`` / ``field.exit`` / ``field.one_value`` /
``field.embed`` and the higher layers funnel every boundary through them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.errors import NotInvertibleError, ParameterError
from repro.nt.modular import modinv, modinv_euclid

__all__ = [
    "WordOpStream",
    "FieldOps",
    "PlainFieldOps",
    "MontgomeryFieldOps",
    "WordCountingFieldOps",
    "GmpFieldOps",
    "KernelFieldOps",
    "PlainBackend",
    "MontgomeryBackend",
    "WordCountingBackend",
    "NativeBackend",
    "BACKENDS",
    "get_backend",
    "default_backend_name",
    "canonical_backend_name",
    "BACKEND_ENV_VAR",
    "BATCH_API_ENV_VAR",
    "batch_api_enabled",
]

#: Environment variable consulted by the scheme layer (``repro.pkc``) when no
#: backend is injected explicitly.  ``PrimeField()`` itself always defaults
#: to plain arithmetic — the env var steers protocol-level construction, not
#: every bare field a unit test builds.
BACKEND_ENV_VAR = "REPRO_FIELD_BACKEND"

#: Escape hatch for the vectorized batch API: ``REPRO_BATCH_API=off`` makes
#: every batch entry point (``pow_many``, ``exponentiate_many``, the native
#: ``powmod_batch`` funnel) degrade to a loop of single calls.  The batch
#: paths are value-identical by contract, so this only trades speed — it
#: exists to prove the scalar paths stay green (a CI matrix leg runs tier-1
#: under it) and to bisect a miscompiled batch kernel in the field.
BATCH_API_ENV_VAR = "REPRO_BATCH_API"


def batch_api_enabled() -> bool:
    """Whether batch implementations may amortize work across a batch.

    Read at call time (not import time) so tests and CI legs can flip
    ``REPRO_BATCH_API`` per process.  Off never changes values — only which
    code path produces them.
    """
    value = os.environ.get(BATCH_API_ENV_VAR, "").strip().lower()
    return value not in ("0", "off", "no", "false")


@dataclass
class WordOpStream:
    """Tally of the word-level operations a counting backend executed.

    ``modular_*`` count modular operations (the units Table 1 prices);
    ``word_mults`` / ``word_adds`` accumulate the per-FIOS
    :class:`~repro.montgomery.fios.FiosTrace` tallies, and
    ``final_subtractions`` counts how many of the Montgomery products needed
    the conditional final subtraction — the data-dependent step that makes
    naive FIOS non-constant-time (see :mod:`repro.montgomery.fios`).

    ``counting`` gates the expensive word-level execution: with it off the
    backend behaves exactly like :class:`MontgomeryBackend` (fast big-int
    REDC, no tallies), so callers can warm caches cheaply and then measure
    only the operation of interest.
    """

    modular_mults: int = 0
    modular_adds: int = 0
    modular_subs: int = 0
    inversions: int = 0
    word_mults: int = 0
    word_adds: int = 0
    final_subtractions: int = 0
    counting: bool = True

    @property
    def total_modular_ops(self) -> int:
        """Modular multiplications + additions + subtractions."""
        return self.modular_mults + self.modular_adds + self.modular_subs

    @property
    def final_subtraction_rate(self) -> float:
        """Fraction of Montgomery products that needed the final subtraction.

        For uniformly random residents this sits near ``p / (4R)``; the rate
        being input-dependent is precisely the timing side channel the
        constant-time variants in :mod:`repro.montgomery.variants` close.
        """
        if not self.modular_mults:
            return 0.0
        return self.final_subtractions / self.modular_mults

    def reset(self) -> None:
        self.modular_mults = self.modular_adds = self.modular_subs = 0
        self.inversions = self.word_mults = self.word_adds = 0
        self.final_subtractions = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "modular_mults": self.modular_mults,
            "modular_adds": self.modular_adds,
            "modular_subs": self.modular_subs,
            "inversions": self.inversions,
            "word_mults": self.word_mults,
            "word_adds": self.word_adds,
            "final_subtractions": self.final_subtractions,
        }


def _identity(x: int) -> int:
    return x


class FieldOps:
    """A backend bound to one modulus: the operations ``PrimeField`` delegates.

    Subclasses fix the representation.  ``plain`` reports whether resident
    values coincide with ordinary reduced integers (True for
    :class:`PlainFieldOps` and the native substrates); ``rebind`` reports
    whether ``PrimeField`` must delegate its arithmetic methods to this
    object (False only for :class:`PlainFieldOps`, which the field's
    class-level fast path already implements); ``representation`` names the
    residency for field-equality purposes — mixing elements of a plain and
    a Montgomery-resident field is a bug the field layer turns into a
    :class:`~repro.errors.FieldMismatchError`.
    """

    plain = True
    rebind = False
    representation = "plain"

    def __init__(self, modulus: int):
        self.p = modulus
        self.one = 1

    @property
    def representation_key(self):
        """Hashable identity of the value representation.

        Two fields may only exchange resident values when these match —
        for Montgomery residency that includes the constant ``R``, since
        domains with different word geometry hold incompatible residents.
        """
        return self.representation

    # -- representation boundary ------------------------------------------------

    def enter(self, x: int) -> int:
        """Plain reduced integer -> resident value."""
        return x

    def exit(self, x: int) -> int:
        """Resident value -> plain reduced integer."""
        return x

    # -- resident arithmetic ----------------------------------------------------

    def add(self, a: int, b: int) -> int:
        s = a + b
        return s - self.p if s >= self.p else s

    def sub(self, a: int, b: int) -> int:
        d = a - b
        return d + self.p if d < 0 else d

    def neg(self, a: int) -> int:
        return (self.p - a) if a else 0

    def mul(self, a: int, b: int) -> int:
        raise NotImplementedError

    def sqr(self, a: int) -> int:
        return self.mul(a, a)

    def inv(self, a: int) -> int:
        raise NotImplementedError

    def inv_many(self, values) -> list:
        """Invert N resident values with 1 inversion + 3(N-1) multiplications.

        Montgomery's trick: form the running prefix products, invert the
        total once, then walk back unwinding one factor at a time.  The
        algebra is representation-agnostic (products and inverses of
        residents are residents), so the same code is exact under every
        backend.  A zero anywhere in the batch raises
        :class:`~repro.errors.NotInvertibleError` before any work is done —
        callers with possibly-zero values filter first.
        """
        values = list(values)
        n = len(values)
        if n == 0:
            return []
        if n == 1:
            return [self.inv(values[0])]
        for value in values:
            if value == 0:
                raise NotInvertibleError(0, self.p)
        mul = self.mul
        prefix = values[:]
        acc = prefix[0]
        for i in range(1, n):
            acc = mul(acc, values[i])
            prefix[i] = acc
        inv_acc = self.inv(acc)
        out = [0] * n
        for i in range(n - 1, 0, -1):
            out[i] = mul(inv_acc, prefix[i - 1])
            inv_acc = mul(inv_acc, values[i])
        out[0] = inv_acc
        return out

    def pow(self, a: int, e: int) -> int:
        raise NotImplementedError

    # -- array-resident batch API ----------------------------------------------
    #
    # Arrays of residents in, arrays of residents out, index-aligned.  Every
    # method is value-identical to the equivalent loop of single calls — the
    # ``inv_many`` contract — so backends are free to amortize work across
    # the batch (shared tables, one FFI call) without changing any byte a
    # protocol emits.  The defaults below are the correct plain-Python
    # fallback every backend inherits.

    @staticmethod
    def _paired(a, b, what: str):
        a = list(a)
        b = list(b)
        if len(a) != len(b):
            raise ParameterError(
                f"{what}: length mismatch ({len(a)} vs {len(b)})"
            )
        return a, b

    def add_many(self, a, b) -> list:
        """Element-wise ``a[i] + b[i]`` over resident arrays."""
        a, b = self._paired(a, b, "add_many")
        add = self.add
        return [add(x, y) for x, y in zip(a, b)]

    def sub_many(self, a, b) -> list:
        """Element-wise ``a[i] - b[i]`` over resident arrays."""
        a, b = self._paired(a, b, "sub_many")
        sub = self.sub
        return [sub(x, y) for x, y in zip(a, b)]

    def mul_many(self, a, b) -> list:
        """Element-wise ``a[i] * b[i]`` over resident arrays."""
        a, b = self._paired(a, b, "mul_many")
        mul = self.mul
        return [mul(x, y) for x, y in zip(a, b)]

    def sqr_many(self, values) -> list:
        """Element-wise squaring over a resident array."""
        sqr = self.sqr
        return [sqr(v) for v in values]

    def pow_many(self, bases, exponents) -> list:
        """``bases[i] ** exponents[i]`` over resident arrays.

        The centerpiece of the batch seam: native backends override this to
        keep the whole batch below the Python object layer (one ctypes call
        for the FIOS kernel, mpz-resident looping for gmpy2).  The default
        loops :meth:`pow`, so the result is byte-identical everywhere.
        """
        bases, exponents = self._paired(bases, exponents, "pow_many")
        pw = self.pow
        return [pw(b, e) for b, e in zip(bases, exponents)]

    def pow_many_shared_base(self, base, exponents) -> list:
        """``base ** exponents[i]`` for one resident base, many exponents.

        Backends whose single :meth:`pow` is Python-priced override this to
        build one fixed-base table (``bit_length`` squarings) and amortize
        it across the batch — the multiplicative twin of ``inv_many``'s
        Montgomery trick.  The default loops :meth:`pow`.
        """
        pw = self.pow
        return [pw(base, e) for e in exponents]


class PlainFieldOps(FieldOps):
    """Ordinary reduced-integer arithmetic — the historical behaviour."""

    plain = True
    rebind = False
    representation = "plain"

    def mul(self, a: int, b: int) -> int:
        return a * b % self.p

    def sqr(self, a: int) -> int:
        return a * a % self.p

    def inv(self, a: int) -> int:
        return modinv(a, self.p)

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.p)


class MontgomeryFieldOps(FieldOps):
    """Montgomery-resident arithmetic over a :class:`MontgomeryDomain`.

    A resident value is ``x * R mod p`` with ``R = 2^(w*s)``.  Addition,
    subtraction, negation and halving are linear in the representation, so
    the base-class implementations apply unchanged; products go through the
    domain's big-integer REDC reference, keeping every element resident with
    one reduction per multiplication and **zero** conversions inside a
    protocol run.
    """

    plain = False
    rebind = True
    representation = "montgomery"

    def __init__(self, modulus: int, word_bits: int = 16):
        from repro.montgomery.domain import MontgomeryDomain

        super().__init__(modulus)
        self.domain = MontgomeryDomain(modulus, word_bits=word_bits)
        self.one = self.domain.r_mod_p

    @property
    def representation_key(self):
        return ("montgomery", self.domain.r)

    def enter(self, x: int) -> int:
        return self.domain.to_montgomery(x)

    def exit(self, x: int) -> int:
        return self.domain.from_montgomery(x)

    def mul(self, a: int, b: int) -> int:
        return self.domain.mont_mul(a, b)

    def sqr(self, a: int) -> int:
        return self.domain.mont_sqr(a)

    def inv(self, a: int) -> int:
        # (xR)^-1 = x^-1 R^-1; one multiplication by R^2 restores residency.
        return modinv(a, self.p) * self.domain.r2_mod_p % self.p

    def pow(self, a: int, e: int) -> int:
        # A single field power is not a loop worth recoding: drop to the
        # plain representation, use the platform-native pow, re-enter.
        return self.enter(pow(self.exit(a), e, self.p))

    def pow_many(self, bases, exponents) -> list:
        bases, exponents = self._paired(bases, exponents, "pow_many")
        p = self.p
        enter = self.enter
        exit_ = self.exit
        return [enter(pow(exit_(b), e, p)) for b, e in zip(bases, exponents)]

    def pow_many_shared_base(self, base, exponents) -> list:
        """Shared-base powers without ever leaving residency.

        Residents under ``mont_mul`` form a group isomorphic to ``Z_p^*``
        (identity ``R mod p``), so one
        :class:`~repro.exp.strategies.FixedBaseTable` built over the bound
        ops — ``max_bits`` squarings, paid once — serves the whole batch
        with only multiplications per element.  Exact arithmetic makes the
        values identical to looping :meth:`pow`; negative or tiny batches
        fall back to the loop.
        """
        exponents = list(exponents)
        if (
            len(exponents) < 2
            or not batch_api_enabled()
            or any(e < 0 for e in exponents)
        ):
            return [self.pow(base, e) for e in exponents]
        from repro.exp.strategies import FixedBaseTable

        max_bits = max(e.bit_length() for e in exponents)
        table = FixedBaseTable(_BoundOpsExpGroup(self), base, max_bits or 1)
        return [table.power(e) for e in exponents]


class _BoundOpsExpGroup:
    """Minimal :class:`repro.exp.group.Group`-shaped adapter over bound ops.

    Lets the counting backend run its exponentiations through the unified
    engine so every Montgomery product is executed (and therefore tallied)
    at the word level.
    """

    cheap_inverse = False

    def __init__(self, ops: "FieldOps"):
        self.ops = ops
        self.name = f"backend({ops.representation}, p~2^{ops.p.bit_length()})"

    def identity(self) -> int:
        return self.ops.one

    def op(self, a: int, b: int) -> int:
        return self.ops.mul(a, b)

    def square(self, a: int) -> int:
        return self.ops.sqr(a)

    def inverse(self, a: int) -> int:
        return self.ops.inv(a)

    def is_identity(self, a: int) -> bool:
        return a == self.ops.one


class CountingMontgomeryDomain:
    """A :class:`MontgomeryDomain` whose products execute word-level FIOS.

    Drop-in compatible with the plain domain (it delegates every attribute),
    but ``mont_mul`` / ``mont_sqr`` run Algorithm 1 over the word vectors and
    stream the resulting :class:`~repro.montgomery.fios.FiosTrace` tallies
    into the shared :class:`WordOpStream` — unless ``stream.counting`` is
    off, in which case the fast big-integer REDC is used (same values).
    RSA's ``montgomery_power`` path accepts one of these directly.
    """

    def __init__(self, modulus: int, word_bits: int, stream: WordOpStream):
        from repro.montgomery.domain import MontgomeryDomain

        self._plain = MontgomeryDomain(modulus, word_bits=word_bits)
        self.stream = stream

    def __getattr__(self, name):
        return getattr(self._plain, name)

    def _fios_mul(self, a: int, b: int) -> int:
        from repro.montgomery.fios import _fios

        value, trace = _fios(self._plain, a, b)
        stream = self.stream
        stream.modular_mults += 1
        stream.word_mults += trace.word_mults
        stream.word_adds += trace.word_adds
        if trace.final_subtraction:
            stream.final_subtractions += 1
        return value

    def mont_mul(self, a: int, b: int) -> int:
        if not self.stream.counting:
            return self._plain.mont_mul(a, b)
        return self._fios_mul(a, b)

    def mont_sqr(self, a: int) -> int:
        if not self.stream.counting:
            return self._plain.mont_sqr(a)
        return self._fios_mul(a, a)

    def __repr__(self) -> str:
        return f"Counting{self._plain!r}"


class WordCountingFieldOps(MontgomeryFieldOps):
    """Montgomery-resident arithmetic that executes word-level FIOS.

    Each multiplication runs Algorithm 1 (FIOS) over the domain's word
    vectors and streams its :class:`FiosTrace` tallies into the shared
    :class:`WordOpStream`; additions and subtractions are tallied as one
    modular operation plus their word-add cost (``s`` single-word additions,
    ``s`` more when the conditional correction fires — mirroring the
    coprocessor's modular add/sub microcode).  Negation and halving stay
    free, matching :class:`~repro.field.opcount.CountingPrimeField`.
    """

    plain = False
    representation = "montgomery"

    def __init__(self, modulus: int, word_bits: int, stream: WordOpStream):
        super().__init__(modulus, word_bits=word_bits)
        self.stream = stream
        #: MontgomeryDomain-compatible view whose products stream word tallies.
        self.counting_domain = CountingMontgomeryDomain(modulus, word_bits, stream)

    def mul(self, a: int, b: int) -> int:
        return self.counting_domain.mont_mul(a, b)

    def sqr(self, a: int) -> int:
        return self.counting_domain.mont_sqr(a)

    def add(self, a: int, b: int) -> int:
        s = a + b
        corrected = s >= self.p
        if self.stream.counting:
            self.stream.modular_adds += 1
            words = self.domain.num_words
            self.stream.word_adds += words * (2 if corrected else 1)
        return s - self.p if corrected else s

    def sub(self, a: int, b: int) -> int:
        d = a - b
        corrected = d < 0
        if self.stream.counting:
            self.stream.modular_subs += 1
            words = self.domain.num_words
            self.stream.word_adds += words * (2 if corrected else 1)
        return d + self.p if corrected else d

    def inv(self, a: int) -> int:
        if self.stream.counting:
            self.stream.inversions += 1
            # The schedulable extended-Euclid inverse, not the C-speed
            # ``pow(a, -1, p)`` shortcut: this backend models the
            # coprocessor, where inversion is an algorithm, not a builtin.
            return modinv_euclid(a, self.p) * self.domain.r2_mod_p % self.p
        return super().inv(a)

    def pow(self, a: int, e: int) -> int:
        if not self.stream.counting:
            return super().pow(a, e)
        from repro.exp.strategies import exponentiate

        group = _BoundOpsExpGroup(self)
        if e < 0:
            return exponentiate(group, self.inv(a), -e)
        return exponentiate(group, a, e)

    def pow_many(self, bases, exponents) -> list:
        # The Montgomery override drops to the builtin ``pow``, which would
        # bypass word-level tallying; loop the counting pow instead.  (The
        # inherited shared-base table path already runs every product
        # through the bound ops, so it tallies correctly as-is.)
        bases, exponents = self._paired(bases, exponents, "pow_many")
        pw = self.pow
        return [pw(b, e) for b, e in zip(bases, exponents)]


class GmpFieldOps(FieldOps):
    """Plain-representation arithmetic on GMP ``mpz`` values (gmpy2).

    Residents are ``mpz`` — plain reduced integers as far as every consumer
    is concerned (``mpz`` interoperates and compares equal with ``int``),
    but multiplication, inversion and above all :meth:`pow` (GMP's
    ``powmod``) run on GMP's native kernels.  :meth:`exit` narrows back to
    ``int`` so wire encodes (``.to_bytes``) see the builtin type.
    """

    plain = True
    rebind = True
    representation = "plain"
    substrate = "gmpy2"

    def __init__(self, modulus: int, gmpy2):
        super().__init__(modulus)
        self._gmpy2 = gmpy2
        self._mpz = gmpy2.mpz
        self.pz = gmpy2.mpz(modulus)

    def enter(self, x: int) -> int:
        return self._mpz(x)

    def exit(self, x: int) -> int:
        return int(x)

    def mul(self, a: int, b: int) -> int:
        return a * b % self.pz

    def sqr(self, a: int) -> int:
        return a * a % self.pz

    def inv(self, a: int) -> int:
        try:
            return self._gmpy2.invert(a, self.pz)
        except ZeroDivisionError:
            raise NotInvertibleError(int(a) % self.p, self.p) from None

    def pow(self, a: int, e: int) -> int:
        try:
            return self._gmpy2.powmod(a, e, self.pz)
        except (ValueError, ZeroDivisionError):
            # Negative exponent of a non-invertible base.
            raise NotInvertibleError(int(a) % self.p, self.p) from None

    def pow_many(self, bases, exponents) -> list:
        """Loop GMP's ``powmod`` with every value staying ``mpz``-resident.

        No int round-trips between elements: bases arrive resident, results
        stay resident, and the modulus is the cached ``mpz``.
        """
        bases, exponents = self._paired(bases, exponents, "pow_many")
        powmod = self._gmpy2.powmod
        pz = self.pz
        out = []
        for b, e in zip(bases, exponents):
            try:
                out.append(powmod(b, e, pz))
            except (ValueError, ZeroDivisionError):
                raise NotInvertibleError(int(b) % self.p, self.p) from None
        return out

    def pow_many_shared_base(self, base, exponents) -> list:
        """Shared-base batch through GMP, using its list-powmod when present.

        gmpy2 >= 2.2 ships ``powmod_exp_list`` (one GMP call for the whole
        batch); older builds fall back to the resident ``powmod`` loop —
        same values either way.
        """
        exponents = list(exponents)
        batch_fn = getattr(self._gmpy2, "powmod_exp_list", None)
        if (
            batch_fn is not None
            and batch_api_enabled()
            and len(exponents) >= 2
            and all(e >= 0 for e in exponents)
        ):
            try:
                return list(batch_fn(base, exponents, self.pz))
            except (TypeError, ValueError, ZeroDivisionError):
                pass  # fall through to the loop on any interface mismatch
        return [self.pow(base, e) for e in exponents]


class KernelFieldOps(PlainFieldOps):
    """Plain-representation arithmetic over the ctypes FIOS C kernel.

    Residents are ordinary reduced integers and single products keep the
    CPython fast path (per-call FFI overhead would eat the kernel's win);
    whole modular **exponentiations** — where the serve workload spends its
    time — run as one C call through
    :meth:`repro.field.native.FiosKernel.powmod`.  Even moduli and sizes
    beyond the kernel's limb budget fall back to the builtin ``pow``.
    """

    rebind = True
    substrate = "fios-c"

    def __init__(self, modulus: int, kernel):
        super().__init__(modulus)
        self._kernel = kernel if kernel.supports(modulus) else None

    def pow(self, a: int, e: int) -> int:
        if self._kernel is None:
            return super().pow(a, e)
        if e < 0:
            return self._kernel.powmod(modinv(a, self.p), -e, self.p)
        return self._kernel.powmod(a, e, self.p)

    def pow_many(self, bases, exponents) -> list:
        """The whole batch of ladders in **one** ctypes call.

        :meth:`repro.field.native.FiosKernel.powmod_batch` marshals every
        operand once and runs N MSB-first Montgomery ladders back-to-back in
        C — the FFI setup PR 6 amortized within one ladder is now amortized
        across the batch.  Negative exponents are pre-inverted in Python
        (exactly like :meth:`pow`); the scalar loop remains as the fallback
        when the kernel is absent or the batch API is switched off.
        """
        bases, exponents = self._paired(bases, exponents, "pow_many")
        if self._kernel is None or len(bases) < 2 or not batch_api_enabled():
            pw = self.pow
            return [pw(b, e) for b, e in zip(bases, exponents)]
        p = self.p
        flat_bases = []
        flat_exps = []
        for b, e in zip(bases, exponents):
            if e < 0:
                b, e = modinv(b, p), -e
            flat_bases.append(b)
            flat_exps.append(e)
        return self._kernel.powmod_batch(flat_bases, flat_exps, p)

    def pow_many_shared_base(self, base, exponents) -> list:
        exponents = list(exponents)
        return self.pow_many([base] * len(exponents), exponents)


# ---------------------------------------------------------------------------
# Backend specifications (unbound): what callers inject and registries name.
# ---------------------------------------------------------------------------


class PlainBackend:
    """Spec for :class:`PlainFieldOps` — the default fast path."""

    name = "plain"
    representation = "plain"

    def bind(self, modulus: int) -> PlainFieldOps:
        return PlainFieldOps(modulus)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class MontgomeryBackend(PlainBackend):
    """Spec for :class:`MontgomeryFieldOps` (resident Montgomery form)."""

    name = "montgomery"
    representation = "montgomery"

    def __init__(self, word_bits: int = 16):
        self.word_bits = word_bits

    def bind(self, modulus: int) -> MontgomeryFieldOps:
        return MontgomeryFieldOps(modulus, word_bits=self.word_bits)


class WordCountingBackend(MontgomeryBackend):
    """Spec for :class:`WordCountingFieldOps`.

    One spec instance owns one :class:`WordOpStream`; every field bound from
    it (the base field under a whole CEILIDH tower, say) feeds the same
    stream, so a protocol run's word-operation total is read from a single
    place.  Use :attr:`stream` ``.counting`` to gate the expensive
    word-level execution and :meth:`stream` ``.reset()`` to scope a
    measurement window.
    """

    name = "word-counting"
    representation = "montgomery"

    def __init__(self, word_bits: int = 16):
        super().__init__(word_bits=word_bits)
        self.stream = WordOpStream()

    def bind(self, modulus: int) -> WordCountingFieldOps:
        return WordCountingFieldOps(modulus, self.word_bits, self.stream)


class NativeBackend(PlainBackend):
    """Spec for the native-accelerated plain-representation backend.

    Binding picks the best substrate probed by :mod:`repro.field.native`:
    gmpy2 (:class:`GmpFieldOps`), else the compiled FIOS C kernel
    (:class:`KernelFieldOps`), else — once per process, with a logged
    warning — it degrades to :class:`PlainFieldOps`, so selecting
    ``native`` never fails.  :attr:`substrate` reports what was found
    (``"gmpy2"`` / ``"fios-c"`` / ``None``).
    """

    name = "native"
    representation = "plain"

    _warned = False

    def __init__(self):
        from repro.field.native import resolve_substrate

        self.substrate, self._handle = resolve_substrate()
        if self.substrate is None and not NativeBackend._warned:
            NativeBackend._warned = True
            import logging

            logging.getLogger("repro.field.native").warning(
                "native field backend requested but neither gmpy2 nor a "
                "working C compiler is available; degrading to the "
                "pure-python plain backend (pip install gmpy2 to accelerate)"
            )

    def bind(self, modulus: int) -> PlainFieldOps:
        if self.substrate == "gmpy2":
            return GmpFieldOps(modulus, self._handle)
        if self.substrate == "fios-c":
            return KernelFieldOps(modulus, self._handle)
        return PlainFieldOps(modulus)


#: Name -> backend-spec class.
BACKENDS = {
    "plain": PlainBackend,
    "montgomery": MontgomeryBackend,
    "word-counting": WordCountingBackend,
    "native": NativeBackend,
}

BackendLike = Union[None, str, PlainBackend]


def get_backend(spec: BackendLike = None) -> PlainBackend:
    """Resolve a backend spec: ``None`` -> plain, a name, or a spec instance."""
    if spec is None:
        return PlainBackend()
    if isinstance(spec, str):
        try:
            return BACKENDS[spec]()
        except KeyError:
            raise ParameterError(
                f"unknown field backend {spec!r}; available: {sorted(BACKENDS)}"
            ) from None
    if hasattr(spec, "bind"):
        return spec
    raise ParameterError(f"not a field backend: {spec!r}")


def default_backend_name(override: Optional[str] = None) -> str:
    """The scheme layer's default backend: ``override``, env var, or plain.

    Read at call time so a test (or the CI matrix leg) can steer the whole
    protocol stack with ``REPRO_FIELD_BACKEND=montgomery``.
    """
    if override is not None:
        return override
    return os.environ.get(BACKEND_ENV_VAR, "plain") or "plain"


def canonical_backend_name(name: str) -> str:
    """Collapse backend aliases that bind to identical arithmetic.

    ``native`` without an available substrate degrades to the plain path at
    bind time, so cache layers (the scheme registry in
    :mod:`repro.pkc.registry`) key it as ``plain`` — a process that mixes
    ``backend=None`` under ``REPRO_FIELD_BACKEND=native`` with explicit
    ``backend="plain"`` calls then shares one warm instance (one set of
    fixed-base tables) instead of building two.
    """
    if name == "native":
        from repro.field.native import native_substrate_name

        if native_substrate_name() is None:
            return "plain"
    return name
