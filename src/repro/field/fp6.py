"""The representation F1: Fp6 = Fp[z]/(z^6 + z^3 + 1).

This is the representation the paper performs all torus arithmetic in
(Section 2.2).  On top of the generic extension-field machinery this module
adds the paper's multiplication algorithm: split A = A0 + A1*z^3 into two
degree-2 halves, use the three-product Karatsuba trick on the halves and a
six-multiplication Toom-style product for each half product, for a total of
exactly 18 Fp multiplications plus additions (Section 2.2.2).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ParameterError
from repro.field.extension import ExtElement, ExtensionField
from repro.field.fp import PrimeField

#: Little-endian coefficients of z^6 + z^3 + 1.
FP6_MODULUS = [1, 0, 0, 1, 0, 0, 1]


class Fp6Field(ExtensionField):
    """Fp6 in the F1 representation, with the paper's 18M multiplication."""

    def __init__(self, base: PrimeField):
        if base.p % 9 not in (2, 5):
            raise ParameterError(
                f"z^6 + z^3 + 1 is irreducible over F_p only when p = 2, 5 (mod 9); "
                f"p = {base.p} = {base.p % 9} (mod 9)"
            )
        super().__init__(
            base, list(FP6_MODULUS), name="Fp6", var="z", check_irreducible=False
        )
        # The inline fast multiplication is only valid when base-field
        # operations are unobserved pure *plain-integer* arithmetic; a
        # subclass (e.g. CountingPrimeField) must keep seeing every M and A,
        # and a resident backend (Montgomery/word-counting) owns the product
        # semantics, so both route through the instrumented mul_paper.
        self._plain_base = type(base) is PrimeField and base.backend.plain

    # -- paper multiplication ------------------------------------------------

    def mul(self, a: ExtElement, b: ExtElement) -> ExtElement:
        """Multiplication using the 18M algorithm of Section 2.2.2."""
        if self._plain_base:
            return self._mul_fast(a, b)
        return self.mul_paper(a, b)

    def _mul_fast(self, a: ExtElement, b: ExtElement) -> ExtElement:
        """The 18M algorithm on raw integers with deferred reduction.

        Same three half-products and degree-10 reduction as
        :meth:`mul_paper`, but every intermediate stays an unreduced Python
        integer (bounded by a few p^2, signed) and each of the six output
        coordinates is reduced exactly once at the end — 6 modular
        reductions instead of 18, and no per-operation field-method calls.
        Only used over a plain :class:`PrimeField`; counting fields take the
        instrumented path so the 18M + ~60A tally stays observable.
        """
        p = self.base.p
        a0, a1, a2, a3, a4, a5 = a.coeffs
        b0, b1, b2, b3, b4, b5 = b.coeffs

        # C0 = A0*B0, C1 = A1*B1, C2 = (A0-A1)(B0-B1), each via the
        # six-multiplication half product of Section 2.2.2.
        d0 = a0 * b0
        d1 = a1 * b1
        d2 = a2 * b2
        d01 = d0 + d1
        d12 = d1 + d2
        c0_0 = d0
        c0_1 = d01 - (a0 - a1) * (b0 - b1)
        c0_2 = d01 + d2 - (a0 - a2) * (b0 - b2)
        c0_3 = d12 - (a1 - a2) * (b1 - b2)
        c0_4 = d2

        e0 = a3 * b3
        e1 = a4 * b4
        e2 = a5 * b5
        e01 = e0 + e1
        e12 = e1 + e2
        c1_0 = e0
        c1_1 = e01 - (a3 - a4) * (b3 - b4)
        c1_2 = e01 + e2 - (a3 - a5) * (b3 - b5)
        c1_3 = e12 - (a4 - a5) * (b4 - b5)
        c1_4 = e2

        u0, u1, u2 = a0 - a3, a1 - a4, a2 - a5
        v0, v1, v2 = b0 - b3, b1 - b4, b2 - b5
        g0 = u0 * v0
        g1 = u1 * v1
        g2 = u2 * v2
        g01 = g0 + g1
        g12 = g1 + g2
        c2_0 = g0
        c2_1 = g01 - (u0 - u1) * (v0 - v1)
        c2_2 = g01 + g2 - (u0 - u2) * (v0 - v2)
        c2_3 = g12 - (u1 - u2) * (v1 - v2)
        c2_4 = g2

        # Middle block M = C0 + C1 - C2; product = C0 + M z^3 + C1 z^6,
        # then reduce modulo z^6 + z^3 + 1 (z^6 = -(1 + z^3), z^9 = 1).
        m0 = c0_0 + c1_0 - c2_0
        m1 = c0_1 + c1_1 - c2_1
        m2 = c0_2 + c1_2 - c2_2
        m3 = c0_3 + c1_3 - c2_3
        m4 = c0_4 + c1_4 - c2_4

        z6 = m3 + c1_0
        z7 = m4 + c1_1
        return ExtElement._raw(
            self,
            (
                (c0_0 - z6 + c1_3) % p,           # 1:    -z^6, +z^9
                (c0_1 - z7 + c1_4) % p,           # z:    -z^7, +z^10
                (c0_2 - c1_2) % p,                # z^2:  -z^8
                (c0_3 + m0 - z6) % p,             # z^3:  -z^6
                (c0_4 + m1 - z7) % p,             # z^4:  -z^7
                (m2 - c1_2) % p,                  # z^5:  -z^8
            ),
        )

    def mul_schoolbook(self, a: ExtElement, b: ExtElement) -> ExtElement:
        """Plain schoolbook multiplication (36M), kept as a cross-check."""
        return super().mul(a, b)

    def _half_product(
        self, a: Sequence[int], b: Sequence[int]
    ) -> List[int]:
        """Product of two degree-2 polynomials using 6 Fp multiplications.

        Implements the c0..c5 precomputation of Section 2.2.2:
        ``C = c0 + (c0+c1-c3)x + (c0+c1+c2-c4)x^2 + (c1+c2-c5)x^3 + c2 x^4``.
        """
        f = self.base
        a0, a1, a2 = a
        b0, b1, b2 = b
        c0 = f.mul(a0, b0)
        c1 = f.mul(a1, b1)
        c2 = f.mul(a2, b2)
        c3 = f.mul(f.sub(a0, a1), f.sub(b0, b1))
        c4 = f.mul(f.sub(a0, a2), f.sub(b0, b2))
        c5 = f.mul(f.sub(a1, a2), f.sub(b1, b2))
        c01 = f.add(c0, c1)
        c12 = f.add(c1, c2)
        return [
            c0,
            f.sub(c01, c3),
            f.sub(f.add(c01, c2), c4),
            f.sub(c12, c5),
            c2,
        ]

    def mul_paper(self, a: ExtElement, b: ExtElement) -> ExtElement:
        """18M + ~60A multiplication in the basis {1, z, ..., z^5}.

        ``A = A0 + A1 z^3``, ``B = B0 + B1 z^3`` with degree-2 halves; then
        ``A*B = C0 + (C0 + C1 - C2) z^3 + C1 z^6`` with ``C0 = A0*B0``,
        ``C1 = A1*B1`` and ``C2 = (A0-A1)(B0-B1)``, followed by reduction
        modulo z^6 + z^3 + 1 (z^6 = -z^3 - 1, z^9 = 1).
        """
        f = self.base
        a_lo, a_hi = a.coeffs[:3], a.coeffs[3:]
        b_lo, b_hi = b.coeffs[:3], b.coeffs[3:]

        c0 = self._half_product(a_lo, b_lo)  # degree <= 4
        c1 = self._half_product(a_hi, b_hi)  # degree <= 4
        diff_a = [f.sub(x, y) for x, y in zip(a_lo, a_hi)]
        diff_b = [f.sub(x, y) for x, y in zip(b_lo, b_hi)]
        c2 = self._half_product(diff_a, diff_b)  # degree <= 4

        # Middle block C0 + C1 - C2.
        mid = [f.sub(f.add(x, y), w) for x, y, w in zip(c0, c1, c2)]

        # Assemble the degree-10 product: C0 + mid*z^3 + C1*z^6.  Only the
        # overlapping positions (3, 4 between C0 and mid; 6, 7 between mid
        # and C1) cost an addition — matching the level-2 sequence of
        # :func:`repro.soc.sequences.fp6_multiplication_program`, which
        # references the block-product registers directly elsewhere, so the
        # executed A-count equals the one the platform model composes.
        prod = [0] * 11
        for i, v in enumerate(c0):
            prod[i] = v
        for i, v in enumerate(mid):
            # mid spans z^3..z^7; only z^3, z^4 overlap C0 (degrees 0..4).
            j = 3 + i
            prod[j] = f.add(prod[j], v) if j <= 4 else v
        for i, v in enumerate(c1):
            # C1 spans z^6..z^10; only z^6, z^7 overlap mid.
            j = 6 + i
            prod[j] = f.add(prod[j], v) if j <= 7 else v

        return self._reduce_degree10(prod)

    def _reduce_degree10(self, prod: Sequence[int]) -> ExtElement:
        """Reduce a degree-<=10 polynomial modulo z^6 + z^3 + 1.

        Uses z^6 = -(z^3 + 1), z^7 = -(z^4 + z), z^8 = -(z^5 + z^2),
        z^9 = 1 and z^10 = z.
        """
        f = self.base
        out = list(prod[:6]) + [0] * (6 - min(6, len(prod)))
        high = list(prod[6:]) + [0] * (5 - max(0, len(prod) - 6))
        p6, p7, p8, p9, p10 = (high + [0] * 5)[:5]
        # z^6 -> -(1 + z^3)
        out[0] = f.sub(out[0], p6)
        out[3] = f.sub(out[3], p6)
        # z^7 -> -(z + z^4)
        out[1] = f.sub(out[1], p7)
        out[4] = f.sub(out[4], p7)
        # z^8 -> -(z^2 + z^5)
        out[2] = f.sub(out[2], p8)
        out[5] = f.sub(out[5], p8)
        # z^9 -> 1
        out[0] = f.add(out[0], p9)
        # z^10 -> z
        out[1] = f.add(out[1], p10)
        return ExtElement(self, out)

    # -- squaring -------------------------------------------------------------

    def sqr(self, a: ExtElement) -> ExtElement:
        """Squaring; the paper does not use a dedicated squaring formula."""
        if self._plain_base:
            return self._mul_fast(a, a)
        return self.mul_paper(a, a)

    # -- cyclotomic structure --------------------------------------------------

    def unit_group_order(self) -> int:
        """Order of the multiplicative group, p^6 - 1."""
        return self.base.p ** 6 - 1

    def torus_order(self) -> int:
        """Order of T6(Fp) = Phi_6(p) = p^2 - p + 1."""
        p = self.base.p
        return p * p - p + 1

    def cofactor_exponent(self) -> int:
        """(p^6 - 1) / Phi_6(p) — raising to this power projects into T6."""
        p = self.base.p
        return (p * p - 1) * (p * p + p + 1)

    def project_to_torus(self, a: ExtElement) -> ExtElement:
        """Map a unit of Fp6 onto T6(Fp) by powering with the cofactor."""
        if a.is_zero():
            raise ParameterError("zero is not a unit")
        return self.pow(a, self.cofactor_exponent())

    def is_in_torus(self, a: ExtElement) -> bool:
        """Membership test for T6(Fp): a^(p^2 - p + 1) == 1."""
        if a.is_zero():
            return False
        return self.pow(a, self.torus_order()).is_one()


def make_fp6(base: PrimeField) -> Fp6Field:
    """Construct the F1 representation Fp6 = Fp[z]/(z^6 + z^3 + 1)."""
    return Fp6Field(base)


def split_halves(a: ExtElement) -> Tuple[Tuple[int, int, int], Tuple[int, int, int]]:
    """Split an Fp6 element into its (A0, A1) halves with A = A0 + A1 z^3."""
    return a.coeffs[:3], a.coeffs[3:]
