"""The base prime field Fp.

All modular reductions in the library funnel through :class:`PrimeField`, so
that an operation-counting subclass (see :mod:`repro.field.opcount`) can
observe exactly how many Fp multiplications and additions a higher-level
routine performs — the quantity the paper's cost analysis is written in
(18M + 60A per Fp6 multiplication, and so on).

Since the backend refactor the field also carries a **word-level arithmetic
backend** (:mod:`repro.field.backend`): the default :class:`PlainBackend`
keeps the historical plain-integer fast path, while the Montgomery-resident
backends keep every element in Montgomery form across whole protocol runs.
Plain integers cross into the field's representation exactly once, through
:meth:`PrimeField.enter` (or the element/constant constructors, which call
it), and leave through :meth:`PrimeField.exit` at wire/encode boundaries.
The representation-linear operations (add/sub/neg/half) are shared; the
multiplicative ones delegate to the backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import FieldMismatchError, NotInvertibleError, ParameterError
from repro.exp.group import FieldExpGroup
from repro.exp.strategies import exponentiate
from repro.exp.trace import OpTrace
from repro.field.backend import get_backend
from repro.nt.modular import modinv, sqrt_mod_prime, legendre_symbol
from repro.nt.primality import is_probable_prime
from repro.nt.sampling import resolve_rng

if TYPE_CHECKING:  # pragma: no cover - typing only (post-PR 3, sampling
    # defaults route through resolve_rng; no runtime use of `random` remains)
    import random


class PrimeField:
    """The field of integers modulo a prime ``p``.

    The arithmetic methods (:meth:`add`, :meth:`mul`, ...) act on *resident*
    integers — reduced modulo ``p`` and, for a Montgomery backend, already in
    Montgomery form; :class:`FpElement` wraps them with operator syntax for
    user-facing code.  With the default plain backend "resident" simply means
    "reduced", and nothing about the historical behaviour changes.
    """

    def __init__(self, p: int, check_prime: bool = True, backend=None):
        if p < 2:
            raise ParameterError(f"field characteristic must be >= 2, got {p}")
        if check_prime and not is_probable_prime(p):
            raise ParameterError(f"{p} is not prime")
        self.p = p
        spec = get_backend(backend)
        self.backend_name = spec.name
        self.backend = spec.bind(p)
        #: The resident representation of 1 (``R mod p`` under Montgomery).
        self.one_value = self.backend.one
        if self.backend.rebind:
            if type(self) is not PrimeField:
                raise ParameterError(
                    f"{type(self).__name__} instruments the plain arithmetic "
                    "path and only supports the plain backend"
                )
            # Rebind the multiplicative (and, for counting backends, the
            # additive) operations to the backend's resident implementations.
            # Plain fields keep the class-level fast path below untouched.
            self.add = self.backend.add
            self.sub = self.backend.sub
            self.mul = self.backend.mul
            self.sqr = self.backend.sqr
            self.inv = self.backend.inv
            self.inv_many = self.backend.inv_many
            self.pow_many = self.backend.pow_many
            self.pow_many_shared_base = self.backend.pow_many_shared_base
        self._exp_group: Optional[FieldExpGroup] = None

    # -- representation boundary -------------------------------------------

    def enter(self, x: int) -> int:
        """Map a plain reduced integer into the field's representation."""
        return self.backend.enter(x)

    def exit(self, x: int) -> int:
        """Map a resident value back to its plain reduced integer."""
        return self.backend.exit(x)

    def embed(self, k: int) -> int:
        """Resident representation of the integer constant ``k`` (any sign)."""
        return self.backend.enter(k % self.p)

    # -- basic arithmetic on resident integers ------------------------------

    def add(self, a: int, b: int) -> int:
        """Return ``a + b mod p``."""
        s = a + b
        return s - self.p if s >= self.p else s

    def sub(self, a: int, b: int) -> int:
        """Return ``a - b mod p``."""
        d = a - b
        return d + self.p if d < 0 else d

    def neg(self, a: int) -> int:
        """Return ``-a mod p``."""
        return (self.p - a) if a else 0

    def mul(self, a: int, b: int) -> int:
        """Return ``a * b mod p``."""
        return a * b % self.p

    def sqr(self, a: int) -> int:
        """Return ``a^2 mod p`` (counted as a multiplication)."""
        return a * a % self.p

    def inv(self, a: int) -> int:
        """Return ``a^-1 mod p``."""
        return modinv(a, self.p)

    def inv_many(self, values) -> list:
        """Invert N resident values with 1 inversion + 3(N-1) multiplications.

        Montgomery's batch-inversion trick, phrased over :meth:`mul` and
        :meth:`inv` so an operation-counting subclass observes exactly the
        claimed cost; non-plain backends rebind this to the backend's own
        :meth:`~repro.field.backend.FieldOps.inv_many`.  A zero anywhere in
        the batch raises :class:`~repro.errors.NotInvertibleError` before
        any work is done.
        """
        values = list(values)
        n = len(values)
        if n == 0:
            return []
        if n == 1:
            return [self.inv(values[0])]
        for value in values:
            if value == 0:
                raise NotInvertibleError(0, self.p)
        mul = self.mul
        prefix = values[:]
        acc = prefix[0]
        for i in range(1, n):
            acc = mul(acc, values[i])
            prefix[i] = acc
        inv_acc = self.inv(acc)
        out = [0] * n
        for i in range(n - 1, 0, -1):
            out[i] = mul(inv_acc, prefix[i - 1])
            inv_acc = mul(inv_acc, values[i])
        out[0] = inv_acc
        return out

    def pow_many(self, bases, exponents) -> list:
        """Batch power: ``bases[i] ** exponents[i]`` over resident arrays.

        The batch twin of :meth:`pow` and the field-level mouth of the
        backend seam: non-plain backends rebind this to the backend's
        :meth:`~repro.field.backend.FieldOps.pow_many` (one ctypes call for
        the FIOS kernel), and the plain default loops the builtin ``pow``.
        Value-identical to N single :meth:`pow` calls by contract.
        """
        bases = list(bases)
        exponents = list(exponents)
        if len(bases) != len(exponents):
            raise ParameterError(
                f"pow_many: length mismatch ({len(bases)} vs {len(exponents)})"
            )
        pw = self.pow
        return [pw(b, e) for b, e in zip(bases, exponents)]

    def pow_many_shared_base(self, base, exponents) -> list:
        """Batch power of one resident base by many exponents.

        Backends amortize a shared fixed-base table (or a single native
        batch call) across the exponents; the plain default loops
        :meth:`pow`.  Same values as the loop, always.
        """
        pw = self.pow
        return [pw(base, e) for e in exponents]

    def exp_group(self) -> FieldExpGroup:
        """The multiplicative group Fp* as seen by :mod:`repro.exp`."""
        if self._exp_group is None:
            self._exp_group = FieldExpGroup(self)
        return self._exp_group

    def pow(
        self,
        a: int,
        e: int,
        strategy: str = "auto",
        trace: Optional[OpTrace] = None,
    ) -> int:
        """Return ``a^e mod p`` (``e`` may be negative).

        Delegates to the unified exponentiation engine when a ``strategy`` or
        ``trace`` is requested; the plain call keeps the backend's native
        power (Python's C-level ``pow``, or the resident Montgomery power —
        a single Fp power is not a loop worth recoding).
        """
        if trace is None and strategy == "auto":
            if self.backend.rebind:
                return self.backend.pow(a, e)
            if e < 0:
                return pow(self.inv(a % self.p), -e, self.p)
            return pow(a, e, self.p)
        return exponentiate(self.exp_group(), a % self.p, e, strategy=strategy, trace=trace)

    def half(self, a: int) -> int:
        """Return ``a / 2 mod p`` for odd ``p`` (representation-linear)."""
        return (a >> 1) if a % 2 == 0 else ((a + self.p) >> 1)

    # -- derived helpers ----------------------------------------------------

    def reduce(self, a: int) -> int:
        """Reduce an arbitrary *plain* integer into ``[0, p)``.

        A plain-value helper — it does not enter the representation; use
        :meth:`enter` / :meth:`embed` for that.
        """
        return a % self.p

    def sqrt(self, a: int) -> int:
        """Square root modulo ``p`` of a resident value (raises for
        non-residues); the result is resident again."""
        if self.backend.plain:
            return sqrt_mod_prime(a, self.p)
        return self.enter(sqrt_mod_prime(self.exit(a), self.p))

    def is_square(self, a: int) -> bool:
        """True when ``a`` is a quadratic residue (0 counts as a square)."""
        value = a if self.backend.plain else self.exit(a)
        return value % self.p == 0 or legendre_symbol(value, self.p) == 1

    def random_element(self, rng: Optional["random.Random"] = None) -> int:
        """Uniformly random element of the field.

        The draw is a plain integer (so seeded runs pick the same *logical*
        element under every backend) and is entered into the representation.
        """
        rng = resolve_rng(rng)
        return self.backend.enter(rng.randrange(self.p))

    def random_nonzero(self, rng: Optional["random.Random"] = None) -> int:
        """Uniformly random non-zero element of the field."""
        rng = resolve_rng(rng)
        return self.backend.enter(rng.randrange(1, self.p))

    # -- element factory ----------------------------------------------------

    def __call__(self, value: int) -> "FpElement":
        """Wrap a *plain* integer (any size/sign) as a field element."""
        return FpElement(self, self.backend.enter(value % self.p))

    def zero(self) -> "FpElement":
        return FpElement(self, 0)

    def one(self) -> "FpElement":
        return FpElement(self, self.one_value)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        # Equality includes the value representation (with R for Montgomery
        # residency), so elements of representation-incompatible fields trip
        # the FieldMismatchError guards instead of silently mixing.
        return (
            isinstance(other, PrimeField)
            and self.p == other.p
            and self.backend.representation_key == other.backend.representation_key
        )

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p, self.backend.representation_key))

    def __repr__(self) -> str:
        suffix = "" if self.backend_name == "plain" else f", backend={self.backend_name!r}"
        return f"PrimeField(p={self.p}{suffix})"


class FpElement:
    """A single element of a :class:`PrimeField`, with operator overloading.

    ``value`` is the *resident* integer; :meth:`__int__` and
    :meth:`to_plain` return the plain reduced integer regardless of backend.
    """

    __slots__ = ("field", "value")

    def __init__(self, field: PrimeField, value: int):
        self.field = field
        self.value = value % field.p

    def _coerce(self, other: object) -> "FpElement":
        if isinstance(other, FpElement):
            if other.field != self.field:
                raise FieldMismatchError("elements belong to different prime fields")
            return other
        if isinstance(other, int):
            return self.field(other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.add(self.value, other.value))

    __radd__ = __add__

    def __sub__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.sub(self.value, other.value))

    def __rsub__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.sub(other.value, self.value))

    def __neg__(self) -> "FpElement":
        return FpElement(self.field, self.field.neg(self.value))

    def __mul__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.mul(self.value, other.value))

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.mul(self.value, self.field.inv(other.value)))

    def __rtruediv__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.mul(other.value, self.field.inv(self.value)))

    def __pow__(self, exponent: int) -> "FpElement":
        return FpElement(self.field, self.field.pow(self.value, exponent))

    def inverse(self) -> "FpElement":
        """Multiplicative inverse."""
        return FpElement(self.field, self.field.inv(self.value))

    def sqrt(self) -> "FpElement":
        """A square root (raises for non-residues)."""
        return FpElement(self.field, self.field.sqrt(self.value))

    def is_zero(self) -> bool:
        return self.value == 0

    def to_plain(self) -> int:
        """The plain reduced integer this element represents."""
        return self.field.exit(self.value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.to_plain() == other % self.field.p
        return (
            isinstance(other, FpElement)
            and self.field == other.field
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.to_plain()))

    def __int__(self) -> int:
        return self.to_plain()

    def __repr__(self) -> str:
        return f"FpElement({self.to_plain()} mod {self.field.p})"
