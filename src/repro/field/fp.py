"""The base prime field Fp.

All modular reductions in the library funnel through :class:`PrimeField`, so
that an operation-counting subclass (see :mod:`repro.field.opcount`) can
observe exactly how many Fp multiplications and additions a higher-level
routine performs — the quantity the paper's cost analysis is written in
(18M + 60A per Fp6 multiplication, and so on).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import FieldMismatchError, ParameterError
from repro.exp.group import FieldExpGroup
from repro.exp.strategies import exponentiate
from repro.exp.trace import OpTrace
from repro.nt.modular import modinv, sqrt_mod_prime, legendre_symbol
from repro.nt.primality import is_probable_prime
from repro.nt.sampling import resolve_rng


class PrimeField:
    """The field of integers modulo a prime ``p``.

    The arithmetic methods (:meth:`add`, :meth:`mul`, ...) act on plain
    integers already reduced modulo ``p``; :class:`FpElement` wraps them with
    operator syntax for user-facing code.
    """

    def __init__(self, p: int, check_prime: bool = True):
        if p < 2:
            raise ParameterError(f"field characteristic must be >= 2, got {p}")
        if check_prime and not is_probable_prime(p):
            raise ParameterError(f"{p} is not prime")
        self.p = p
        self._exp_group: Optional[FieldExpGroup] = None

    # -- basic arithmetic on reduced integers ------------------------------

    def add(self, a: int, b: int) -> int:
        """Return ``a + b mod p``."""
        s = a + b
        return s - self.p if s >= self.p else s

    def sub(self, a: int, b: int) -> int:
        """Return ``a - b mod p``."""
        d = a - b
        return d + self.p if d < 0 else d

    def neg(self, a: int) -> int:
        """Return ``-a mod p``."""
        return (self.p - a) if a else 0

    def mul(self, a: int, b: int) -> int:
        """Return ``a * b mod p``."""
        return a * b % self.p

    def sqr(self, a: int) -> int:
        """Return ``a^2 mod p`` (counted as a multiplication)."""
        return a * a % self.p

    def inv(self, a: int) -> int:
        """Return ``a^-1 mod p``."""
        return modinv(a, self.p)

    def exp_group(self) -> FieldExpGroup:
        """The multiplicative group Fp* as seen by :mod:`repro.exp`."""
        if self._exp_group is None:
            self._exp_group = FieldExpGroup(self)
        return self._exp_group

    def pow(
        self,
        a: int,
        e: int,
        strategy: str = "auto",
        trace: Optional[OpTrace] = None,
    ) -> int:
        """Return ``a^e mod p`` (``e`` may be negative).

        Delegates to the unified exponentiation engine when a ``strategy`` or
        ``trace`` is requested; the plain call keeps Python's C-level ``pow``
        (a single Fp power is the platform's native operation, not a loop
        worth recoding).
        """
        if trace is None and strategy == "auto":
            if e < 0:
                return pow(self.inv(a % self.p), -e, self.p)
            return pow(a, e, self.p)
        return exponentiate(self.exp_group(), a % self.p, e, strategy=strategy, trace=trace)

    def half(self, a: int) -> int:
        """Return ``a / 2 mod p`` for odd ``p``."""
        return (a >> 1) if a % 2 == 0 else ((a + self.p) >> 1)

    # -- derived helpers ----------------------------------------------------

    def reduce(self, a: int) -> int:
        """Reduce an arbitrary integer into ``[0, p)``."""
        return a % self.p

    def sqrt(self, a: int) -> int:
        """Square root modulo ``p`` (raises for non-residues)."""
        return sqrt_mod_prime(a, self.p)

    def is_square(self, a: int) -> bool:
        """True when ``a`` is a quadratic residue (0 counts as a square)."""
        return a % self.p == 0 or legendre_symbol(a, self.p) == 1

    def random_element(self, rng: Optional[random.Random] = None) -> int:
        """Uniformly random element of the field."""
        rng = resolve_rng(rng)
        return rng.randrange(self.p)

    def random_nonzero(self, rng: Optional[random.Random] = None) -> int:
        """Uniformly random non-zero element of the field."""
        rng = resolve_rng(rng)
        return rng.randrange(1, self.p)

    # -- element factory ----------------------------------------------------

    def __call__(self, value: int) -> "FpElement":
        return FpElement(self, value % self.p)

    def zero(self) -> "FpElement":
        return FpElement(self, 0)

    def one(self) -> "FpElement":
        return FpElement(self, 1)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and self.p == other.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    def __repr__(self) -> str:
        return f"PrimeField(p={self.p})"


class FpElement:
    """A single element of a :class:`PrimeField`, with operator overloading."""

    __slots__ = ("field", "value")

    def __init__(self, field: PrimeField, value: int):
        self.field = field
        self.value = value % field.p

    def _coerce(self, other: object) -> "FpElement":
        if isinstance(other, FpElement):
            if other.field != self.field:
                raise FieldMismatchError("elements belong to different prime fields")
            return other
        if isinstance(other, int):
            return FpElement(self.field, other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.add(self.value, other.value))

    __radd__ = __add__

    def __sub__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.sub(self.value, other.value))

    def __rsub__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.sub(other.value, self.value))

    def __neg__(self) -> "FpElement":
        return FpElement(self.field, self.field.neg(self.value))

    def __mul__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.mul(self.value, other.value))

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.mul(self.value, self.field.inv(other.value)))

    def __rtruediv__(self, other: object) -> "FpElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.field.mul(other.value, self.field.inv(self.value)))

    def __pow__(self, exponent: int) -> "FpElement":
        return FpElement(self.field, self.field.pow(self.value, exponent))

    def inverse(self) -> "FpElement":
        """Multiplicative inverse."""
        return FpElement(self.field, self.field.inv(self.value))

    def sqrt(self) -> "FpElement":
        """A square root (raises for non-residues)."""
        return FpElement(self.field, self.field.sqrt(self.value))

    def is_zero(self) -> bool:
        return self.value == 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.value == other % self.field.p
        return (
            isinstance(other, FpElement)
            and self.field == other.field
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.value))

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"FpElement({self.value} mod {self.field.p})"
