"""Operation-counting prime field.

The paper's whole cost analysis is phrased in numbers of Fp multiplications
(M) and additions/subtractions (A): one Fp6 multiplication costs 18M + ~60A,
one Type-A Fp6 multiplication therefore needs 78 coprocessor round trips, and
so on.  :class:`CountingPrimeField` is a drop-in replacement for
:class:`~repro.field.fp.PrimeField` that records every M, A and inversion, so
tests can assert the 18M figure and the Fig. 1 operation structure can be
regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict

from repro.field.fp import PrimeField


@dataclass
class OperationCounts:
    """Tally of base-field operations."""

    mul: int = 0
    add: int = 0
    sub: int = 0
    inv: int = 0
    extra: Dict[str, int] = dataclass_field(default_factory=dict)

    @property
    def additions_total(self) -> int:
        """Additions plus subtractions — the paper's 'A'."""
        return self.add + self.sub

    @property
    def multiplications_total(self) -> int:
        """Multiplications/squarings — the paper's 'M'."""
        return self.mul

    def as_dict(self) -> Dict[str, int]:
        out = {"mul": self.mul, "add": self.add, "sub": self.sub, "inv": self.inv}
        out.update(self.extra)
        return out

    def reset(self) -> None:
        self.mul = self.add = self.sub = self.inv = 0
        self.extra.clear()

    def snapshot(self) -> "OperationCounts":
        return OperationCounts(self.mul, self.add, self.sub, self.inv, dict(self.extra))

    def __add__(self, other: "OperationCounts") -> "OperationCounts":
        extra = dict(self.extra)
        for key, value in other.extra.items():
            extra[key] = extra.get(key, 0) + value
        return OperationCounts(
            self.mul + other.mul,
            self.add + other.add,
            self.sub + other.sub,
            self.inv + other.inv,
            extra,
        )

    def __sub__(self, other: "OperationCounts") -> "OperationCounts":
        extra = dict(self.extra)
        for key, value in other.extra.items():
            extra[key] = extra.get(key, 0) - value
        return OperationCounts(
            self.mul - other.mul,
            self.add - other.add,
            self.sub - other.sub,
            self.inv - other.inv,
            extra,
        )

    def scaled(self, factor: int) -> "OperationCounts":
        """Every counter multiplied by ``factor`` (cost-model composition)."""
        return OperationCounts(
            self.mul * factor,
            self.add * factor,
            self.sub * factor,
            self.inv * factor,
            {key: value * factor for key, value in self.extra.items()},
        )

    def __repr__(self) -> str:
        return (
            f"OperationCounts(M={self.mul}, add={self.add}, sub={self.sub}, "
            f"A={self.additions_total}, inv={self.inv})"
        )


class CountingPrimeField(PrimeField):
    """A :class:`PrimeField` that counts M/A/inversion operations.

    Negation and reduction are free (they are free in the hardware as well —
    the coprocessor's modular-subtraction microcode handles them), while
    ``pow`` is charged as the square-and-multiply sequence it expands to.
    """

    def __init__(self, p: int, check_prime: bool = True, backend=None):
        # The counting field instruments the plain arithmetic path; the base
        # class rejects any resident backend for instrumented subclasses.
        super().__init__(p, check_prime=check_prime, backend=backend)
        self.counts = OperationCounts()

    def reset_counts(self) -> None:
        """Zero every counter."""
        self.counts.reset()

    def add(self, a: int, b: int) -> int:
        self.counts.add += 1
        return super().add(a, b)

    def sub(self, a: int, b: int) -> int:
        self.counts.sub += 1
        return super().sub(a, b)

    def mul(self, a: int, b: int) -> int:
        self.counts.mul += 1
        return super().mul(a, b)

    def sqr(self, a: int) -> int:
        self.counts.mul += 1
        return a * a % self.p

    def inv(self, a: int) -> int:
        self.counts.inv += 1
        return super().inv(a)

    def pow(self, a: int, e: int, strategy: str = "binary", trace=None) -> int:
        # Default to the binary strategy so counting stays faithful to the
        # square-and-multiply sequence the platform executes; every charged
        # operation flows through self.mul / self.sqr / self.inv.
        return super().pow(a, e, strategy=strategy, trace=trace)
