"""Generic extension fields Fp[t]/(f(t)).

The CEILIDH tower uses three concrete extensions (degrees 2, 3 and 6); all of
them are instances of this generic construction, which provides schoolbook
multiplication, inversion via the extended Euclidean algorithm, Frobenius
maps, norms and traces.  The degree-6 field adds the paper's specialised
18M multiplication on top (see :mod:`repro.field.fp6`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import FieldMismatchError, ParameterError
from repro.field import poly as P
from repro.field.fp import PrimeField
from repro.nt.sampling import resolve_rng


class ExtElement:
    """An element of an :class:`ExtensionField`, stored as a coefficient tuple.

    Coefficients are *resident* base-field values (see
    :mod:`repro.field.backend`): internal arithmetic constructs elements
    directly from resident coefficients, while plain integers enter the
    representation through :meth:`ExtensionField.__call__` /
    :meth:`ExtensionField.from_base`.
    """

    __slots__ = ("field", "coeffs")

    def __init__(self, field: "ExtensionField", coeffs: Sequence[int]):
        if len(coeffs) != field.degree:
            raise ParameterError(
                f"expected {field.degree} coefficients, got {len(coeffs)}"
            )
        self.field = field
        self.coeffs: Tuple[int, ...] = tuple(c % field.base.p for c in coeffs)

    @classmethod
    def _raw(cls, field: "ExtensionField", coeffs: Tuple[int, ...]) -> "ExtElement":
        """Wrap coefficients already reduced into ``[0, p)`` without checks.

        Hot-path constructor for arithmetic that guarantees reduction itself
        (the inline Fp6 multiplication); skips the per-coefficient ``% p``
        and the length validation of ``__init__``.
        """
        element = object.__new__(cls)
        element.field = field
        element.coeffs = coeffs
        return element

    # -- arithmetic ---------------------------------------------------------

    def _check(self, other: "ExtElement") -> None:
        if not isinstance(other, ExtElement) or other.field is not self.field:
            if isinstance(other, ExtElement) and other.field == self.field:
                return
            raise FieldMismatchError("elements belong to different extension fields")

    def __add__(self, other: "ExtElement") -> "ExtElement":
        self._check(other)
        return self.field.add(self, other)

    def __sub__(self, other: "ExtElement") -> "ExtElement":
        self._check(other)
        return self.field.sub(self, other)

    def __neg__(self) -> "ExtElement":
        return self.field.neg(self)

    def __mul__(self, other: "ExtElement") -> "ExtElement":
        self._check(other)
        return self.field.mul(self, other)

    def __truediv__(self, other: "ExtElement") -> "ExtElement":
        self._check(other)
        return self.field.mul(self, self.field.inv(other))

    def __pow__(self, exponent: int) -> "ExtElement":
        return self.field.pow(self, exponent)

    def inverse(self) -> "ExtElement":
        """Multiplicative inverse."""
        return self.field.inv(self)

    def frobenius(self, k: int = 1) -> "ExtElement":
        """Apply the Frobenius map ``a -> a^(p^k)``."""
        return self.field.frobenius(self, k)

    def conjugates(self) -> List["ExtElement"]:
        """All Galois conjugates (including the element itself)."""
        return [self.frobenius(k) for k in range(self.field.degree)]

    def norm(self) -> int:
        """Norm down to the base prime field."""
        return self.field.norm(self)

    def trace(self) -> int:
        """Trace down to the base prime field."""
        return self.field.trace(self)

    # -- predicates / conversions ------------------------------------------

    def is_zero(self) -> bool:
        return all(c == 0 for c in self.coeffs)

    def is_one(self) -> bool:
        return self.coeffs[0] == self.field.base.one_value and all(
            c == 0 for c in self.coeffs[1:]
        )

    def scalar_part(self) -> int:
        """The constant coefficient as a *resident* base-field value."""
        return self.coeffs[0]

    def in_base_field(self) -> bool:
        """True when every non-constant coefficient vanishes."""
        return all(c == 0 for c in self.coeffs[1:])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ExtElement)
            and self.field == other.field
            and self.coeffs == other.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.field.base.p, self.field.modulus_tuple, self.coeffs))

    def __repr__(self) -> str:
        terms = []
        for i, c in enumerate(self.coeffs):
            if c == 0:
                continue
            if i == 0:
                terms.append(str(c))
            elif i == 1:
                terms.append(f"{c}*{self.field.var}")
            else:
                terms.append(f"{c}*{self.field.var}^{i}")
        body = " + ".join(terms) if terms else "0"
        return f"<{body} in {self.field.name}>"


class ExtensionField:
    """The quotient ring Fp[t]/(f(t)) for an irreducible modulus ``f``."""

    def __init__(
        self,
        base: PrimeField,
        modulus: Sequence[int],
        name: str = "Fp^k",
        var: str = "t",
        check_irreducible: bool = True,
    ):
        # The modulus arrives as plain integer coefficients; enter them into
        # the base field's representation before any resident arithmetic.
        modulus = [base.enter(c % base.p) for c in P.trim(modulus)]
        if P.degree(modulus) < 1:
            raise ParameterError("modulus must have degree >= 1")
        if modulus[-1] != base.one_value:
            inv_lead = base.inv(modulus[-1])
            modulus = [base.mul(c, inv_lead) for c in modulus]
        if check_irreducible and not P.is_irreducible(base, modulus):
            raise ParameterError(f"modulus {modulus} is reducible over F_{base.p}")
        self.base = base
        self.modulus: List[int] = list(modulus)
        self.modulus_tuple = tuple(modulus)
        self.degree = P.degree(modulus)
        self.name = name
        self.var = var
        self._frobenius_matrices: dict = {}
        self._exp_group = None

    # -- element constructors ----------------------------------------------

    def __call__(self, coeffs: Sequence[int]) -> ExtElement:
        """Build an element from *plain* integer coefficients (any size/sign)."""
        base = self.base
        entered = [base.enter(c % base.p) for c in coeffs]
        return self._from_coeffs(entered)

    def _from_coeffs(self, coeffs: Sequence[int]) -> ExtElement:
        """Build an element from coefficients already *resident* in the base
        field (internal arithmetic and representation-aware callers)."""
        padded = list(coeffs) + [0] * (self.degree - len(coeffs))
        if len(padded) > self.degree:
            reduced = P.poly_mod(self.base, list(coeffs), self.modulus)
            padded = list(reduced) + [0] * (self.degree - len(reduced))
        return ExtElement(self, padded)

    def from_base(self, value: int) -> ExtElement:
        """Embed a plain Fp integer as a constant."""
        return self([value])

    def zero(self) -> ExtElement:
        return self([0])

    def one(self) -> ExtElement:
        return self([1])

    def generator(self) -> ExtElement:
        """The residue class of the variable ``t``."""
        return self([0, 1])

    def random_element(self, rng: Optional[random.Random] = None) -> ExtElement:
        rng = resolve_rng(rng)
        return self([rng.randrange(self.base.p) for _ in range(self.degree)])

    def random_nonzero(self, rng: Optional[random.Random] = None) -> ExtElement:
        while True:
            element = self.random_element(rng)
            if not element.is_zero():
                return element

    # -- arithmetic ---------------------------------------------------------

    def add(self, a: ExtElement, b: ExtElement) -> ExtElement:
        base = self.base
        return ExtElement(self, [base.add(x, y) for x, y in zip(a.coeffs, b.coeffs)])

    def sub(self, a: ExtElement, b: ExtElement) -> ExtElement:
        base = self.base
        return ExtElement(self, [base.sub(x, y) for x, y in zip(a.coeffs, b.coeffs)])

    def neg(self, a: ExtElement) -> ExtElement:
        base = self.base
        return ExtElement(self, [base.neg(x) for x in a.coeffs])

    def scalar_mul(self, a: ExtElement, c: int) -> ExtElement:
        """Multiply by the *plain* integer scalar ``c``."""
        base = self.base
        resident = base.embed(c)
        return ExtElement(self, [base.mul(x, resident) for x in a.coeffs])

    def mul(self, a: ExtElement, b: ExtElement) -> ExtElement:
        product = P.poly_mul(self.base, list(a.coeffs), list(b.coeffs))
        reduced = P.poly_mod(self.base, product, self.modulus)
        return self._from_coeffs(list(reduced))

    def sqr(self, a: ExtElement) -> ExtElement:
        return self.mul(a, a)

    def inv(self, a: ExtElement) -> ExtElement:
        if a.is_zero():
            raise ParameterError("cannot invert zero")
        inverse = P.poly_inverse_mod(self.base, list(a.coeffs), self.modulus)
        return self._from_coeffs(list(inverse))

    def inv_many(self, values) -> "list[ExtElement]":
        """Batch inversion (Montgomery's trick): 1 inversion + 3(N-1) products.

        The single polynomial-gcd inversion is the expensive step here, so
        the trick pays off even faster than in Fp.  Any zero in the batch
        raises :class:`ParameterError`, as :meth:`inv` would.
        """
        values = list(values)
        n = len(values)
        if n == 0:
            return []
        if n == 1:
            return [self.inv(values[0])]
        for value in values:
            if value.is_zero():
                raise ParameterError("cannot invert zero")
        prefix = values[:]
        acc = prefix[0]
        for i in range(1, n):
            acc = self.mul(acc, values[i])
            prefix[i] = acc
        inv_acc = self.inv(acc)
        out: "list[ExtElement]" = [inv_acc] * n
        for i in range(n - 1, 0, -1):
            out[i] = self.mul(inv_acc, prefix[i - 1])
            inv_acc = self.mul(inv_acc, values[i])
        out[0] = inv_acc
        return out

    def exp_group(self):
        """This field's unit group as seen by :mod:`repro.exp`."""
        if self._exp_group is None:
            from repro.exp.group import ExtensionExpGroup

            self._exp_group = ExtensionExpGroup(self)
        return self._exp_group

    def pow(
        self, a: ExtElement, e: int, strategy: str = "auto", trace=None
    ) -> ExtElement:
        """``a^e`` via the unified engine (sliding window by default)."""
        from repro.exp.strategies import exponentiate

        return exponentiate(self.exp_group(), a, e, strategy=strategy, trace=trace)

    def pow_many(
        self, bases, exponents, strategy: str = "auto", trace=None
    ) -> "list[ExtElement]":
        """Batch ``bases[i]^exponents[i]`` through the engine's batch entry.

        Shared-base runs amortize one fixed-base table (see
        :func:`repro.exp.strategies.exponentiate_many`); value-identical to
        N single :meth:`pow` calls, the ``inv_many`` contract.
        """
        from repro.exp.strategies import exponentiate_many

        return exponentiate_many(
            self.exp_group(), bases, exponents, strategy=strategy, trace=trace
        )

    def pow_many_shared_base(
        self, base, exponents, strategy: str = "auto", trace=None
    ) -> "list[ExtElement]":
        """``base^e`` for many exponents with one shared precomputation."""
        from repro.exp.strategies import exponentiate_shared_base

        return exponentiate_shared_base(
            self.exp_group(), base, exponents, strategy=strategy, trace=trace
        )

    # -- Galois structure ----------------------------------------------------

    def _frobenius_matrix(self, k: int) -> List[List[int]]:
        """Matrix (columns = images of basis powers) of ``a -> a^(p^k)``."""
        k %= self.degree
        if k in self._frobenius_matrices:
            return self._frobenius_matrices[k]
        p = self.base.p
        one = self.base.one_value
        # Image of t under Frobenius^k.
        t_image = P.poly_pow_mod(self.base, [0, one], p ** k, self.modulus)
        columns: List[List[int]] = []
        current: List[int] = [one]
        for _ in range(self.degree):
            padded = list(current) + [0] * (self.degree - len(current))
            columns.append(padded)
            current = P.poly_mod(
                self.base, P.poly_mul(self.base, current, t_image), self.modulus
            )
        self._frobenius_matrices[k] = columns
        return columns

    def frobenius(self, a: ExtElement, k: int = 1) -> ExtElement:
        """Apply ``a -> a^(p^k)`` using the cached linear map."""
        k %= self.degree
        if k == 0:
            return a
        columns = self._frobenius_matrix(k)
        base = self.base
        out = [0] * self.degree
        for j, coeff in enumerate(a.coeffs):
            if coeff == 0:
                continue
            column = columns[j]
            for i in range(self.degree):
                if column[i]:
                    out[i] = base.add(out[i], base.mul(coeff, column[i]))
        return ExtElement(self, out)

    def norm(self, a: ExtElement) -> int:
        """Norm to Fp: product of all conjugates, as a *plain* integer."""
        acc = self.one()
        for k in range(self.degree):
            acc = self.mul(acc, self.frobenius(a, k))
        if not acc.in_base_field():
            raise ParameterError("norm did not land in the base field (bug)")
        return self.base.exit(acc.scalar_part())

    def trace(self, a: ExtElement) -> int:
        """Trace to Fp: sum of all conjugates, as a *plain* integer."""
        acc = self.zero()
        for k in range(self.degree):
            acc = self.add(acc, self.frobenius(a, k))
        if not acc.in_base_field():
            raise ParameterError("trace did not land in the base field (bug)")
        return self.base.exit(acc.scalar_part())

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ExtensionField)
            and self.base == other.base
            and self.modulus_tuple == other.modulus_tuple
        )

    def __hash__(self) -> int:
        return hash(("ExtensionField", self.base.p, self.modulus_tuple))

    def __repr__(self) -> str:
        return f"{self.name}(p={self.base.p}, modulus={self.modulus})"
