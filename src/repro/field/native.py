"""Native arithmetic substrates for the ``native`` field backend.

Two substrates are probed, in order of preference:

* **gmpy2** — when the optional ``gmpy2`` package imports, residents are
  kept as ``mpz`` values and multiplication/inversion/exponentiation run on
  GMP's assembly kernels (``powmod`` backs the exp-engine fast path).  This
  is the order-of-magnitude lever on the headline moduli.
* **A ctypes FIOS Montgomery kernel** — a small C implementation of the
  paper's Algorithm 1 (Finely Integrated Operand Scanning, after
  Koc/Acar/Kaliski) over 64-bit limbs, compiled on demand with the system C
  compiler and loaded through :mod:`ctypes`.  Per-call FFI overhead makes a
  single product a loss against CPython's big-int fast path, so the kernel
  is exposed where the cost amortises: whole modular **exponentiations**
  run as one C call (the Montgomery square-and-multiply loop never leaves
  the kernel).  It is also the word-level twin of the pure-python
  :func:`repro.montgomery.fios._fios` reference and is differentially
  tested against it.

Neither substrate is required: :func:`resolve_substrate` reports what is
available, and the backend layer (:class:`repro.field.backend.NativeBackend`)
degrades to the pure-python plain path with a logged warning when both are
absent — ``REPRO_FIELD_BACKEND=native`` is therefore always safe to set.

Everything here deals in **plain reduced integers**; Montgomery residency is
internal to the C kernel (operands enter and leave per call), so the native
backend's values remain wire-compatible with the plain backend by
construction.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import subprocess
import sys
import tempfile
from typing import Dict, Optional, Tuple

__all__ = [
    "load_gmpy2",
    "load_fios_kernel",
    "resolve_substrate",
    "native_substrate_name",
    "FiosKernel",
    "KERNEL_ENV_VAR",
]

logger = logging.getLogger("repro.field.native")

#: Set to ``0``/``off`` to skip building the C kernel even when a compiler
#: exists (useful to pin CI legs to one substrate deterministically).
KERNEL_ENV_VAR = "REPRO_NATIVE_KERNEL"

_WORD_BITS = 64
_RADIX = 1 << _WORD_BITS
_MAX_WORDS = 66  # up to 4224-bit moduli; far beyond the headline sizes

#: FIOS Montgomery kernel: Algorithm 1 with 64-bit words.  The inner loop
#: mirrors the pure-python reference in ``repro.montgomery.fios._fios`` —
#: interleaved partial product and reduction with immediate carry
#: propagation (the ADD(t[j+1], C) step of Koc/Acar/Kaliski's FIOS) — so the
#: two implementations can be differentially tested word-for-word.
_KERNEL_SOURCE = r"""
#include <stdint.h>

typedef unsigned __int128 u128;

#define MAX_WORDS %(max_words)d

/* Add c into t[j], propagating the carry upward (FIOS "ADD" helper). */
static inline void add_at(uint64_t *t, int j, uint64_t c, int len) {
    while (c && j < len) {
        u128 acc = (u128)t[j] + c;
        t[j] = (uint64_t)acc;
        c = (uint64_t)(acc >> 64);
        j++;
    }
}

/* out = a * b * R^-1 mod m  (R = 2^(64n)); operands reduced mod m. */
void repro_fios_mont_mul(uint64_t *out, const uint64_t *a, const uint64_t *b,
                         const uint64_t *m, uint64_t m_prime, int n) {
    uint64_t t[MAX_WORDS + 2];
    int i, j;
    for (i = 0; i < n + 2; i++) t[i] = 0;
    for (i = 0; i < n; i++) {
        uint64_t bi = b[i], carry, s, mu;
        u128 acc = (u128)t[0] + (u128)a[0] * bi;
        s = (uint64_t)acc;
        add_at(t, 1, (uint64_t)(acc >> 64), n + 2);
        mu = s * m_prime;              /* mod 2^64 by truncation */
        acc = (u128)s + (u128)mu * m[0];
        carry = (uint64_t)(acc >> 64); /* low word is 0 by construction */
        for (j = 1; j < n; j++) {
            acc = (u128)t[j] + (u128)a[j] * bi + carry;
            s = (uint64_t)acc;
            add_at(t, j + 1, (uint64_t)(acc >> 64), n + 2);
            acc = (u128)s + (u128)mu * m[j];
            t[j - 1] = (uint64_t)acc;
            carry = (uint64_t)(acc >> 64);
        }
        acc = (u128)t[n] + carry;
        t[n - 1] = (uint64_t)acc;
        t[n] = t[n + 1] + (uint64_t)(acc >> 64);
        t[n + 1] = 0;
    }
    /* Conditional final subtraction into [0, m). */
    {
        uint64_t borrow = 0, diff[MAX_WORDS];
        int ge = t[n] != 0;
        for (i = 0; i < n; i++) {
            u128 acc = (u128)t[i] - m[i] - borrow;
            diff[i] = (uint64_t)acc;
            borrow = (uint64_t)((acc >> 64) & 1);
        }
        if (!ge) {
            /* t >= m exactly when the n-word subtraction did not borrow. */
            ge = !borrow;
        }
        for (i = 0; i < n; i++) out[i] = ge ? diff[i] : t[i];
        if (ge && t[n]) {
            /* t had the extra top bit: the single subtraction suffices
               because t < 2m always holds for reduced operands. */
        }
    }
}

/* out = base^exp mod m (plain in, plain out).
   r2 = R^2 mod m, r_mod_p = R mod m; exp scanned MSB-first. */
void repro_fios_powmod(uint64_t *out, const uint64_t *base,
                       const uint64_t *exp, int exp_bits,
                       const uint64_t *m, const uint64_t *r2,
                       const uint64_t *r_mod_p, uint64_t m_prime, int n) {
    uint64_t acc[MAX_WORDS], mb[MAX_WORDS], one[MAX_WORDS];
    int i;
    repro_fios_mont_mul(mb, base, r2, m, m_prime, n);   /* to Montgomery */
    for (i = 0; i < n; i++) acc[i] = r_mod_p[i];        /* 1 in Montgomery */
    for (i = exp_bits - 1; i >= 0; i--) {
        repro_fios_mont_mul(acc, acc, acc, m, m_prime, n);
        if ((exp[i / 64] >> (i %% 64)) & 1)
            repro_fios_mont_mul(acc, acc, mb, m, m_prime, n);
    }
    for (i = 0; i < n; i++) one[i] = 0;
    one[0] = 1;
    repro_fios_mont_mul(out, acc, one, m, m_prime, n);  /* from Montgomery */
}

/* count independent ladders against one modulus, back to back.
   bases/out are count x n words; exps is count x exp_stride words with the
   per-item significant bit count in exp_bits[k] (0 bits -> base^0 = 1).
   One call amortises the FFI setup across the whole batch the same way
   repro_fios_powmod amortises it across one ladder. */
void repro_fios_powmod_batch(uint64_t *out, const uint64_t *bases,
                             const uint64_t *exps, const int *exp_bits,
                             int count, int exp_stride,
                             const uint64_t *m, const uint64_t *r2,
                             const uint64_t *r_mod_p, uint64_t m_prime,
                             int n) {
    int k;
    for (k = 0; k < count; k++) {
        repro_fios_powmod(out + (uint64_t)k * n, bases + (uint64_t)k * n,
                          exps + (uint64_t)k * exp_stride, exp_bits[k],
                          m, r2, r_mod_p, m_prime, n);
    }
}
""" % {"max_words": _MAX_WORDS}


def _kernel_enabled() -> bool:
    value = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
    return value not in ("0", "off", "no", "false")


def _int_to_words(value: int, words: int) -> "ctypes.Array":
    return (ctypes.c_uint64 * words)(
        *[(value >> (_WORD_BITS * i)) & (_RADIX - 1) for i in range(words)]
    )


def _words_to_int(buffer) -> int:
    result = 0
    for i, word in enumerate(buffer):
        result |= word << (_WORD_BITS * i)
    return result


class FiosKernel:
    """ctypes wrapper around the compiled FIOS Montgomery kernel.

    Per-modulus constants (word count, ``-m^-1 mod 2^64``, ``R mod m``,
    ``R^2 mod m``) are derived once and cached, so repeated exponentiations
    against the same modulus — the serving workload — pay only the operand
    marshalling.
    """

    def __init__(self, lib: ctypes.CDLL, path: str):
        self._lib = lib
        self.path = path
        lib.repro_fios_mont_mul.argtypes = [
            ctypes.POINTER(ctypes.c_uint64)
        ] * 4 + [ctypes.c_uint64, ctypes.c_int]
        lib.repro_fios_mont_mul.restype = None
        lib.repro_fios_powmod.argtypes = [
            ctypes.POINTER(ctypes.c_uint64),  # out
            ctypes.POINTER(ctypes.c_uint64),  # base
            ctypes.POINTER(ctypes.c_uint64),  # exp
            ctypes.c_int,                     # exp_bits
            ctypes.POINTER(ctypes.c_uint64),  # m
            ctypes.POINTER(ctypes.c_uint64),  # r2
            ctypes.POINTER(ctypes.c_uint64),  # r_mod_p
            ctypes.c_uint64,                  # m_prime
            ctypes.c_int,                     # n
        ]
        lib.repro_fios_powmod.restype = None
        lib.repro_fios_powmod_batch.argtypes = [
            ctypes.POINTER(ctypes.c_uint64),  # out (count x n)
            ctypes.POINTER(ctypes.c_uint64),  # bases (count x n)
            ctypes.POINTER(ctypes.c_uint64),  # exps (count x exp_stride)
            ctypes.POINTER(ctypes.c_int),     # exp_bits (count)
            ctypes.c_int,                     # count
            ctypes.c_int,                     # exp_stride
            ctypes.POINTER(ctypes.c_uint64),  # m
            ctypes.POINTER(ctypes.c_uint64),  # r2
            ctypes.POINTER(ctypes.c_uint64),  # r_mod_p
            ctypes.c_uint64,                  # m_prime
            ctypes.c_int,                     # n
        ]
        lib.repro_fios_powmod_batch.restype = None
        self._domains: Dict[int, Tuple[int, int, object, object, object]] = {}

    def supports(self, modulus: int) -> bool:
        """Odd moduli up to the kernel's fixed limb budget."""
        return modulus % 2 == 1 and modulus.bit_length() <= _WORD_BITS * _MAX_WORDS

    def _domain(self, modulus: int):
        cached = self._domains.get(modulus)
        if cached is None:
            words = (modulus.bit_length() + _WORD_BITS - 1) // _WORD_BITS
            radix_n = 1 << (_WORD_BITS * words)
            m_prime = (-pow(modulus, -1, _RADIX)) % _RADIX
            cached = (
                words,
                m_prime,
                _int_to_words(modulus, words),
                _int_to_words((radix_n * radix_n) % modulus, words),
                _int_to_words(radix_n % modulus, words),
            )
            self._domains[modulus] = cached
        return cached

    def mont_mul(self, a: int, b: int, modulus: int) -> int:
        """``a * b * R^-1 mod modulus`` for reduced operands (FIOS, in C)."""
        words, m_prime, m_arr, _r2, _r = self._domain(modulus)
        out = (ctypes.c_uint64 * words)()
        self._lib.repro_fios_mont_mul(
            out, _int_to_words(a, words), _int_to_words(b, words),
            m_arr, m_prime, words,
        )
        return _words_to_int(out)

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        """``base^exponent mod modulus`` — the whole ladder in one C call."""
        if exponent < 0:
            raise ValueError("kernel powmod needs a non-negative exponent")
        words, m_prime, m_arr, r2_arr, r_arr = self._domain(modulus)
        base %= modulus
        if exponent == 0:
            return 1 % modulus
        exp_bits = exponent.bit_length()
        exp_words = (exp_bits + _WORD_BITS - 1) // _WORD_BITS
        out = (ctypes.c_uint64 * words)()
        self._lib.repro_fios_powmod(
            out, _int_to_words(base, words),
            _int_to_words(exponent, exp_words), exp_bits,
            m_arr, r2_arr, r_arr, m_prime, words,
        )
        return _words_to_int(out)

    def powmod_batch(self, bases, exponents, modulus: int) -> list:
        """N independent ``base^exp mod modulus`` ladders in **one** C call.

        Operands are flattened into contiguous word arrays (bases at ``n``
        words each, exponents at the batch-wide stride) and the kernel's
        ``repro_fios_powmod_batch`` runs every MSB-first ladder back to
        back — the per-call FFI setup is paid once for the whole batch.
        Index-aligned results, value-identical to looping :meth:`powmod`.
        """
        bases = list(bases)
        exponents = list(exponents)
        if len(bases) != len(exponents):
            raise ValueError("powmod_batch needs equal-length bases/exponents")
        for exponent in exponents:
            if exponent < 0:
                raise ValueError("kernel powmod needs a non-negative exponent")
        count = len(bases)
        if count == 0:
            return []
        words, m_prime, m_arr, r2_arr, r_arr = self._domain(modulus)
        exp_bits = [e.bit_length() for e in exponents]
        stride = max(1, (max(exp_bits) + _WORD_BITS - 1) // _WORD_BITS)
        mask = _RADIX - 1
        base_buf = (ctypes.c_uint64 * (count * words))()
        exp_buf = (ctypes.c_uint64 * (count * stride))()
        for k, (base, exponent) in enumerate(zip(bases, exponents)):
            base %= modulus
            offset = k * words
            for i in range(words):
                base_buf[offset + i] = (base >> (_WORD_BITS * i)) & mask
            offset = k * stride
            for i in range(stride):
                exp_buf[offset + i] = (exponent >> (_WORD_BITS * i)) & mask
        out = (ctypes.c_uint64 * (count * words))()
        self._lib.repro_fios_powmod_batch(
            out, base_buf, exp_buf, (ctypes.c_int * count)(*exp_bits),
            count, stride, m_arr, r2_arr, r_arr, m_prime, words,
        )
        results = []
        for k in range(count):
            value = 0
            offset = k * words
            for i in range(words):
                value |= out[offset + i] << (_WORD_BITS * i)
            results.append(value)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FiosKernel {self.path}>"


_GMPY2_CACHE: "Tuple[bool, object] | None" = None
_KERNEL_CACHE: "Tuple[bool, Optional[FiosKernel]] | None" = None


def load_gmpy2():
    """The ``gmpy2`` module, or ``None`` when it is not installed."""
    global _GMPY2_CACHE
    if _GMPY2_CACHE is None:
        try:
            import gmpy2  # type: ignore[import-not-found]

            _GMPY2_CACHE = (True, gmpy2)
        except ImportError:
            _GMPY2_CACHE = (True, None)
    return _GMPY2_CACHE[1]


def _compile_kernel() -> Optional[FiosKernel]:
    """Build (or reuse) the shared object and load it; ``None`` on failure."""
    digest = hashlib.sha256(_KERNEL_SOURCE.encode()).hexdigest()[:16]
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"repro-native-{getattr(os, 'geteuid', int)()}"
    )
    suffix = "dll" if sys.platform == "win32" else "so"
    lib_path = os.path.join(cache_dir, f"fios-{digest}.{suffix}")
    if not os.path.exists(lib_path):
        os.makedirs(cache_dir, exist_ok=True)
        source_path = os.path.join(cache_dir, f"fios-{digest}.c")
        scratch_path = f"{source_path}.tmp-{os.getpid()}"
        with open(scratch_path, "w") as handle:
            handle.write(_KERNEL_SOURCE)
        os.replace(scratch_path, source_path)  # racing writers stay whole
        compiler = os.environ.get("CC", "cc")
        build_path = lib_path + f".build-{os.getpid()}"
        command = [
            compiler, "-O2", "-shared", "-fPIC", source_path, "-o", build_path,
        ]
        result = subprocess.run(
            command, capture_output=True, text=True, timeout=120
        )
        if result.returncode != 0:
            logger.info("FIOS kernel build failed: %s", result.stderr.strip())
            return None
        os.replace(build_path, lib_path)  # atomic against concurrent builders
    return FiosKernel(ctypes.CDLL(lib_path), lib_path)


def load_fios_kernel() -> Optional[FiosKernel]:
    """The compiled FIOS kernel, built on first use; ``None`` when impossible.

    Failure is always soft (no compiler, sandboxed tempdir, unsupported
    platform): the caller falls back to the next substrate.  The probe runs
    once per process; a kernel that loads is self-checked against Python's
    ``pow`` before being handed out.
    """
    global _KERNEL_CACHE
    if _KERNEL_CACHE is None:
        kernel: Optional[FiosKernel] = None
        if _kernel_enabled():
            try:
                kernel = _compile_kernel()
                if kernel is not None:
                    # Differential sanity checks before trusting the build:
                    # one single ladder and one batch call (mixed exponent
                    # widths, including 0 and 1) against Python's pow.
                    p = (1 << 127) - 1
                    cases = [(3, p - 2), (2, 0), (5, 1), (p - 1, 1 << 70)]
                    expected = [pow(b, e, p) for b, e in cases]
                    if kernel.powmod(3, p - 2, p) != expected[0] or (
                        kernel.powmod_batch(
                            [b for b, _ in cases], [e for _, e in cases], p
                        )
                        != expected
                    ):
                        logger.warning("FIOS kernel self-check failed; disabled")
                        kernel = None
            except Exception as exc:  # noqa: BLE001 - availability probe
                logger.info("FIOS kernel unavailable: %s", exc)
                kernel = None
        _KERNEL_CACHE = (True, kernel)
    return _KERNEL_CACHE[1]


def resolve_substrate() -> Tuple[Optional[str], object]:
    """The best available native substrate: ``(name, handle)``.

    ``("gmpy2", <module>)`` when gmpy2 imports, else ``("fios-c", <kernel>)``
    when the C kernel built, else ``(None, None)``.
    """
    gmpy2 = load_gmpy2()
    if gmpy2 is not None:
        return "gmpy2", gmpy2
    kernel = load_fios_kernel()
    if kernel is not None:
        return "fios-c", kernel
    return None, None


def native_substrate_name() -> Optional[str]:
    """Name of the active native substrate, or ``None`` (pure-python only)."""
    return resolve_substrate()[0]
