"""The cubic subfield Fp3 = Fp[y]/(y^3 - 3y + 1).

The root y corresponds to zeta_9 + zeta_9^-1 (with zeta_9 a primitive ninth
root of unity), i.e. the trace of z from Fp6 down to Fp3 in the paper's F1
representation.  The polynomial is irreducible exactly when p is not
+-1 (mod 9) — in particular for the CEILIDH primes p = 2, 5 (mod 9).
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.field.extension import ExtensionField
from repro.field.fp import PrimeField

#: Coefficients of y^3 - 3y + 1, little-endian.
FP3_MODULUS = [1, -3, 0, 1]


def make_fp3(base: PrimeField) -> ExtensionField:
    """Construct Fp3 = Fp[y]/(y^3 - 3y + 1)."""
    if base.p % 9 in (1, 8):
        raise ParameterError(
            f"y^3 - 3y + 1 is reducible over F_{base.p}: need p != +-1 (mod 9)"
        )
    modulus = [c % base.p for c in FP3_MODULUS]
    return ExtensionField(base, modulus, name="Fp3", var="y", check_irreducible=False)
