"""Dense univariate polynomial arithmetic over a prime field.

Coefficients are *resident* field values reduced modulo ``p`` (plain
integers under the default backend, Montgomery representatives under a
resident backend — see :mod:`repro.field.backend`) and stored little-endian
(index = degree).  These helpers back the generic extension field
construction (multiplication with reduction, inversion via the extended
Euclidean algorithm) and the basis-change matrices of the tower
representations.  The only representation-sensitive constants are the
literal ones (the monic leading 1, the gcd seed polynomials), which are
taken from ``field.one_value``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import NotInvertibleError, ParameterError
from repro.field.fp import PrimeField

Poly = List[int]


def trim(coeffs: Sequence[int]) -> Poly:
    """Drop trailing zero coefficients (the zero polynomial becomes [])."""
    coeffs = list(coeffs)
    while coeffs and coeffs[-1] == 0:
        coeffs.pop()
    return coeffs


def degree(poly: Sequence[int]) -> int:
    """Degree of the polynomial; -1 for the zero polynomial."""
    return len(trim(poly)) - 1


def poly_add(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> Poly:
    """Coefficient-wise sum."""
    n = max(len(a), len(b))
    out = []
    for i in range(n):
        ai = a[i] if i < len(a) else 0
        bi = b[i] if i < len(b) else 0
        out.append(field.add(ai, bi))
    return trim(out)


def poly_sub(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> Poly:
    """Coefficient-wise difference."""
    n = max(len(a), len(b))
    out = []
    for i in range(n):
        ai = a[i] if i < len(a) else 0
        bi = b[i] if i < len(b) else 0
        out.append(field.sub(ai, bi))
    return trim(out)


def poly_scale(field: PrimeField, a: Sequence[int], c: int) -> Poly:
    """Multiply every coefficient by the *resident* scalar ``c``."""
    return trim([field.mul(x, c) for x in a])


def poly_mul(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> Poly:
    """Schoolbook product."""
    a, b = trim(a), trim(b)
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            if bj == 0:
                continue
            out[i + j] = field.add(out[i + j], field.mul(ai, bj))
    return trim(out)


def poly_divmod(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> Tuple[Poly, Poly]:
    """Quotient and remainder of ``a`` divided by ``b``."""
    a, b = trim(a), trim(b)
    if not b:
        raise ParameterError("polynomial division by zero")
    if len(a) < len(b):
        return [], a
    # Monic divisors (every field modulus used in the tower) need no leading
    # inversion or scaling, which keeps the operation counts honest.
    monic = b[-1] == field.one_value
    lead_inv = field.one_value if monic else field.inv(b[-1])
    remainder = list(a)
    quotient = [0] * (len(a) - len(b) + 1)
    for shift in range(len(a) - len(b), -1, -1):
        top = remainder[shift + len(b) - 1]
        coeff = top if monic else field.mul(top, lead_inv)
        if coeff == 0:
            continue
        quotient[shift] = coeff
        for i, bi in enumerate(b):
            remainder[shift + i] = field.sub(remainder[shift + i], field.mul(coeff, bi))
    return trim(quotient), trim(remainder)


def poly_mod(field: PrimeField, a: Sequence[int], modulus: Sequence[int]) -> Poly:
    """Remainder of ``a`` modulo ``modulus``."""
    return poly_divmod(field, a, modulus)[1]


def poly_egcd(
    field: PrimeField, a: Sequence[int], b: Sequence[int]
) -> Tuple[Poly, Poly, Poly]:
    """Extended gcd: returns monic ``(g, s, t)`` with ``s*a + t*b = g``."""
    r0, r1 = trim(a), trim(b)
    s0, s1 = [field.one_value], []
    t0, t1 = [], [field.one_value]
    while r1:
        q, r = poly_divmod(field, r0, r1)
        r0, r1 = r1, r
        s0, s1 = s1, poly_sub(field, s0, poly_mul(field, q, s1))
        t0, t1 = t1, poly_sub(field, t0, poly_mul(field, q, t1))
    if not r0:
        return [], s0, t0
    lead_inv = field.inv(r0[-1])
    return (
        poly_scale(field, r0, lead_inv),
        poly_scale(field, s0, lead_inv),
        poly_scale(field, t0, lead_inv),
    )


def poly_inverse_mod(field: PrimeField, a: Sequence[int], modulus: Sequence[int]) -> Poly:
    """Inverse of ``a`` modulo ``modulus`` (both polynomials)."""
    g, s, _ = poly_egcd(field, a, modulus)
    if degree(g) != 0:
        raise NotInvertibleError(0, field.p)
    return poly_mod(field, s, modulus)


def poly_pow_mod(
    field: PrimeField,
    a: Sequence[int],
    e: int,
    modulus: Sequence[int],
    strategy: str = "auto",
    trace=None,
) -> Poly:
    """Compute ``a^e mod modulus`` through the unified exponentiation engine.

    The default sliding-window path matters here: the irreducibility test
    raises to ``p^d``-sized exponents, where windowing saves a third of the
    polynomial products over plain square-and-multiply.
    """
    from repro.exp.group import PolyModExpGroup
    from repro.exp.strategies import exponentiate

    if e < 0:
        a = poly_inverse_mod(field, a, modulus)
        e = -e
    base = poly_mod(field, list(a), modulus)
    group = PolyModExpGroup(field, modulus)
    return list(exponentiate(group, base, e, strategy=strategy, trace=trace))


def poly_eval(field: PrimeField, a: Sequence[int], x: int) -> int:
    """Evaluate the polynomial at the field element ``x`` (Horner)."""
    acc = 0
    for coeff in reversed(trim(a)):
        acc = field.add(field.mul(acc, x), coeff)
    return acc


def is_irreducible(field: PrimeField, poly: Sequence[int]) -> bool:
    """Rabin irreducibility test for a polynomial over Fp."""
    poly = trim(poly)
    d = degree(poly)
    if d <= 0:
        return False
    if d == 1:
        return True
    p = field.p
    x: Poly = [0, field.one_value]
    # x^(p^d) = x mod poly and gcd(x^(p^(d/q)) - x, poly) = 1 for prime q | d.
    xq = poly_pow_mod(field, x, p ** d, poly)
    if trim(poly_sub(field, xq, x)):
        return False
    d_factors = set()
    n = d
    f = 2
    while f * f <= n:
        if n % f == 0:
            d_factors.add(f)
            while n % f == 0:
                n //= f
        f += 1
    if n > 1:
        d_factors.add(n)
    for q in d_factors:
        xq = poly_pow_mod(field, x, p ** (d // q), poly)
        diff = poly_sub(field, xq, x)
        g, _, _ = poly_egcd(field, diff, poly)
        if degree(g) != 0:
            return False
    return True
