"""The tower representation F2 = Fp3[x]/(x^2 + x + 1) and the tau maps.

Fig. 1 of the paper shows two representations of Fp6: the direct sextic
extension F1 (used for the exponentiation arithmetic) and the tower F2
(used by the compression maps rho/psi, which need the quadratic structure
over Fp3).  This module implements the tower, arithmetic in it, and the
linear isomorphisms tau: F1 -> F2 and tau^-1: F2 -> F1.

The change of basis uses the identities (z = zeta_9 a root of z^6+z^3+1):

* ``x = z^3``          (primitive cube root of unity),
* ``y = z + z^-1 = z - z^2 - z^5``  (so y^3 - 3y + 1 = 0).

The F2 basis over Fp is {1, y, y^2, x, x*y, x*y^2}; expressing each basis
vector in the z-basis gives a 6x6 matrix over Fp whose inverse provides the
reverse map.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import FieldMismatchError, ParameterError
from repro.field import poly as P
from repro.field.extension import ExtElement, ExtensionField
from repro.field.fp import PrimeField
from repro.field.fp3 import make_fp3
from repro.field.fp6 import Fp6Field


class TowerElement:
    """An element a + b*x of F2 with a, b in Fp3 and x^2 + x + 1 = 0."""

    __slots__ = ("tower", "a", "b")

    def __init__(self, tower: "TowerFp6", a: ExtElement, b: ExtElement):
        self.tower = tower
        self.a = a
        self.b = b

    def _check(self, other: "TowerElement") -> None:
        if not isinstance(other, TowerElement) or other.tower.fp3 != self.tower.fp3:
            raise FieldMismatchError("tower elements belong to different towers")

    def __add__(self, other: "TowerElement") -> "TowerElement":
        self._check(other)
        return TowerElement(self.tower, self.a + other.a, self.b + other.b)

    def __sub__(self, other: "TowerElement") -> "TowerElement":
        self._check(other)
        return TowerElement(self.tower, self.a - other.a, self.b - other.b)

    def __neg__(self) -> "TowerElement":
        return TowerElement(self.tower, -self.a, -self.b)

    def __mul__(self, other: "TowerElement") -> "TowerElement":
        self._check(other)
        return self.tower.mul(self, other)

    def __truediv__(self, other: "TowerElement") -> "TowerElement":
        self._check(other)
        return self.tower.mul(self, self.tower.inv(other))

    def __pow__(self, e: int) -> "TowerElement":
        return self.tower.pow(self, e)

    def conjugate(self) -> "TowerElement":
        """Conjugation over Fp3 (x -> x^2 = -1 - x): a + b*x -> (a - b) - b*x."""
        return TowerElement(self.tower, self.a - self.b, -self.b)

    def norm_to_fp3(self) -> ExtElement:
        """Norm to Fp3: a^2 - a*b + b^2."""
        a, b = self.a, self.b
        return a * a - a * b + b * b

    def is_zero(self) -> bool:
        return self.a.is_zero() and self.b.is_zero()

    def is_one(self) -> bool:
        return self.a.is_one() and self.b.is_zero()

    def is_fp3(self) -> bool:
        """True when the element lies in the subfield Fp3 (no x component)."""
        return self.b.is_zero()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TowerElement)
            and self.tower.fp3 == other.tower.fp3
            and self.a == other.a
            and self.b == other.b
        )

    def __hash__(self) -> int:
        return hash((self.a, self.b))

    def __repr__(self) -> str:
        return f"<({self.a.coeffs}) + ({self.b.coeffs})*x in F2>"


class TowerFp6:
    """The representation F2 = Fp3[x]/(x^2 + x + 1)."""

    def __init__(self, base: PrimeField):
        if base.p % 3 != 2:
            raise ParameterError("the tower needs p = 2 (mod 3)")
        self.base = base
        self.fp3 = make_fp3(base)
        self._exp_group = None

    # -- constructors ---------------------------------------------------------

    def element(self, a: ExtElement, b: Optional[ExtElement] = None) -> TowerElement:
        if b is None:
            b = self.fp3.zero()
        return TowerElement(self, a, b)

    def from_fp3(self, a: ExtElement) -> TowerElement:
        return TowerElement(self, a, self.fp3.zero())

    def from_base(self, value: int) -> TowerElement:
        return TowerElement(self, self.fp3.from_base(value), self.fp3.zero())

    def zero(self) -> TowerElement:
        return TowerElement(self, self.fp3.zero(), self.fp3.zero())

    def one(self) -> TowerElement:
        return TowerElement(self, self.fp3.one(), self.fp3.zero())

    def x(self) -> TowerElement:
        """The adjoined cube root of unity x."""
        return TowerElement(self, self.fp3.zero(), self.fp3.one())

    def random_element(self, rng: Optional[random.Random] = None) -> TowerElement:
        return TowerElement(
            self, self.fp3.random_element(rng), self.fp3.random_element(rng)
        )

    # -- arithmetic -----------------------------------------------------------

    def mul(self, u: TowerElement, v: TowerElement) -> TowerElement:
        """(a + bx)(c + dx) with x^2 = -1 - x (Karatsuba: 3 Fp3 products)."""
        a, b, c, d = u.a, u.b, v.a, v.b
        ac = a * c
        bd = b * d
        cross = (a + b) * (c + d) - ac - bd  # = ad + bc
        # x^2 = -(1 + x):  result = ac - bd + (cross - bd) x
        return TowerElement(self, ac - bd, cross - bd)

    def inv(self, u: TowerElement) -> TowerElement:
        """Inverse via the norm to Fp3: u^-1 = conj(u) / N(u)."""
        if u.is_zero():
            raise ParameterError("cannot invert zero")
        norm = u.norm_to_fp3()
        norm_inv = norm.inverse()
        conj = u.conjugate()
        return TowerElement(self, conj.a * norm_inv, conj.b * norm_inv)

    def inv_many(self, values) -> "list[TowerElement]":
        """Batch inversion (Montgomery's trick): 1 inversion + 3(N-1) products.

        The one remaining :meth:`inv` bottoms out in a single Fp3
        polynomial-gcd inversion, so a batch of N tower inversions costs one
        gcd instead of N.  Any zero raises :class:`ParameterError`, as
        :meth:`inv` would.
        """
        values = list(values)
        n = len(values)
        if n == 0:
            return []
        if n == 1:
            return [self.inv(values[0])]
        for value in values:
            if value.is_zero():
                raise ParameterError("cannot invert zero")
        prefix = values[:]
        acc = prefix[0]
        for i in range(1, n):
            acc = self.mul(acc, values[i])
            prefix[i] = acc
        inv_acc = self.inv(acc)
        out: "list[TowerElement]" = [inv_acc] * n
        for i in range(n - 1, 0, -1):
            out[i] = self.mul(inv_acc, prefix[i - 1])
            inv_acc = self.mul(inv_acc, values[i])
        out[0] = inv_acc
        return out

    def exp_group(self):
        """The tower's unit group as seen by :mod:`repro.exp`."""
        if self._exp_group is None:
            from repro.exp.group import TowerExpGroup

            self._exp_group = TowerExpGroup(self)
        return self._exp_group

    def pow(
        self, u: TowerElement, e: int, strategy: str = "auto", trace=None
    ) -> TowerElement:
        """``u^e`` via the unified engine (sliding window by default)."""
        from repro.exp.strategies import exponentiate

        return exponentiate(self.exp_group(), u, e, strategy=strategy, trace=trace)

    def pow_many(
        self, bases, exponents, strategy: str = "auto", trace=None
    ) -> "list[TowerElement]":
        """Batch ``bases[i]^exponents[i]`` through the engine's batch entry.

        The tower's cheap Frobenius inverse makes wNAF the single-call
        default; shared-base runs instead amortize one fixed-base table
        across the batch.  Value-identical to N single :meth:`pow` calls.
        """
        from repro.exp.strategies import exponentiate_many

        return exponentiate_many(
            self.exp_group(), bases, exponents, strategy=strategy, trace=trace
        )

    def pow_many_shared_base(
        self, base, exponents, strategy: str = "auto", trace=None
    ) -> "list[TowerElement]":
        """``base^e`` for many exponents with one shared precomputation."""
        from repro.exp.strategies import exponentiate_shared_base

        return exponentiate_shared_base(
            self.exp_group(), base, exponents, strategy=strategy, trace=trace
        )

    def frobenius_p3(self, u: TowerElement) -> TowerElement:
        """The Frobenius of Fp6 over Fp3 (same as conjugation over Fp3)."""
        return u.conjugate()


class F1ToF2Map:
    """The isomorphism tau: F1 -> F2 and its inverse (Fig. 1's tau, tau^-1).

    Both directions are Fp-linear; the matrices are built once from the
    relations x = z^3 and y = z - z^2 - z^5.
    """

    def __init__(self, fp6: Fp6Field, tower: Optional[TowerFp6] = None):
        if not isinstance(fp6, Fp6Field):
            raise ParameterError("F1ToF2Map needs the F1 representation of Fp6")
        self.fp6 = fp6
        self.base = fp6.base
        self.tower = tower or TowerFp6(fp6.base)
        if self.tower.base != self.base:
            raise FieldMismatchError("tower and Fp6 live over different primes")
        self._matrix_f2_to_f1 = self._build_f2_to_f1_matrix()
        self._matrix_f1_to_f2 = _invert_matrix(self.base, self._matrix_f2_to_f1)

    # -- basis-change matrices -------------------------------------------------

    def _build_f2_to_f1_matrix(self) -> List[List[int]]:
        """Columns = z-basis coordinates of {1, y, y^2, x, xy, xy^2}."""
        f = self.base
        modulus = self.fp6.modulus
        one_v = f.one_value
        # y = z - z^2 - z^5 and x = z^3, as polynomials in z (coefficients
        # resident in the base field's representation).
        y_poly = [0, one_v, f.neg(one_v), 0, 0, f.neg(one_v)]
        x_poly = [0, 0, 0, one_v]
        one = [one_v]
        y2_poly = P.poly_mod(f, P.poly_mul(f, y_poly, y_poly), modulus)
        basis_polys = [
            one,
            y_poly,
            y2_poly,
            x_poly,
            P.poly_mod(f, P.poly_mul(f, x_poly, y_poly), modulus),
            P.poly_mod(f, P.poly_mul(f, x_poly, y2_poly), modulus),
        ]
        columns = []
        for poly in basis_polys:
            padded = list(poly) + [0] * (6 - len(poly))
            columns.append(padded[:6])
        return columns

    # -- conversions -------------------------------------------------------------

    def to_f2(self, a: ExtElement) -> TowerElement:
        """tau: convert an F1 element (z-basis) to the tower representation."""
        coords = _apply_matrix(self.base, self._matrix_f1_to_f2, list(a.coeffs))
        fp3 = self.tower.fp3
        # The coordinates are already resident base-field values.
        return TowerElement(self.tower, fp3._from_coeffs(coords[0:3]), fp3._from_coeffs(coords[3:6]))

    def to_f1(self, u: TowerElement) -> ExtElement:
        """tau^-1: convert a tower element back to the F1 (z-basis) form."""
        coords = list(u.a.coeffs) + list(u.b.coeffs)
        z_coords = _apply_matrix(self.base, self._matrix_f2_to_f1, coords)
        return self.fp6._from_coeffs(z_coords)


def _apply_matrix(
    field: PrimeField, columns: List[List[int]], vector: Sequence[int]
) -> List[int]:
    """Multiply the column-matrix by a coordinate vector."""
    n = len(columns)
    out = [0] * n
    for j, coeff in enumerate(vector):
        if coeff == 0:
            continue
        column = columns[j]
        for i in range(n):
            if column[i]:
                out[i] = field.add(out[i], field.mul(coeff, column[i]))
    return out


def _invert_matrix(field: PrimeField, columns: List[List[int]]) -> List[List[int]]:
    """Invert a column-major matrix over Fp by Gauss-Jordan elimination."""
    n = len(columns)
    one_v = field.one_value
    # Convert to row-major augmented matrix [M | I].
    rows = [[columns[j][i] for j in range(n)] + [one_v if k == i else 0 for k in range(n)]
            for i in range(n)]
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if rows[r][col] != 0), None)
        if pivot_row is None:
            raise ParameterError("basis-change matrix is singular (bug)")
        rows[col], rows[pivot_row] = rows[pivot_row], rows[col]
        inv_pivot = field.inv(rows[col][col])
        rows[col] = [field.mul(v, inv_pivot) for v in rows[col]]
        for r in range(n):
            if r == col or rows[r][col] == 0:
                continue
            factor = rows[r][col]
            rows[r] = [
                field.sub(v, field.mul(factor, w)) for v, w in zip(rows[r], rows[col])
            ]
    # Extract the right half back into column-major order.
    inverse_columns = [[rows[i][n + j] for i in range(n)] for j in range(n)]
    return inverse_columns
