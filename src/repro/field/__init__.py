"""Finite-field tower used by CEILIDH.

The paper works with the representation F1 = Fp6 = Fp[z]/(z^6 + z^3 + 1) and
the tower representation F2 = Fp3[x]/(x^2 + x + 1) with Fp3 = Fp[y]/(y^3-3y+1),
for primes p = 2 or 5 (mod 9).  This package provides:

* :class:`~repro.field.fp.PrimeField` / :class:`~repro.field.fp.FpElement` —
  the base prime field,
* generic extension fields built from a modulus polynomial
  (:mod:`repro.field.extension`),
* the concrete fields :func:`~repro.field.fp2.make_fp2`,
  :func:`~repro.field.fp3.make_fp3`, :func:`~repro.field.fp6.make_fp6`
  (with the paper's 18M + ~60A multiplication),
* the tower representation F2 and the tau / tau^-1 conversion maps
  (:mod:`repro.field.towers`),
* an operation-counting prime field for reproducing the operation structure
  of Fig. 1 (:mod:`repro.field.opcount`).
"""

from repro.field.backend import (
    MontgomeryBackend,
    PlainBackend,
    WordCountingBackend,
    WordOpStream,
    get_backend,
)
from repro.field.fp import PrimeField, FpElement
from repro.field.extension import ExtensionField, ExtElement
from repro.field.fp2 import make_fp2
from repro.field.fp3 import make_fp3
from repro.field.fp6 import make_fp6, Fp6Field
from repro.field.towers import TowerFp6, TowerElement, F1ToF2Map
from repro.field.opcount import CountingPrimeField, OperationCounts

__all__ = [
    "PlainBackend",
    "MontgomeryBackend",
    "WordCountingBackend",
    "WordOpStream",
    "get_backend",
    "PrimeField",
    "FpElement",
    "ExtensionField",
    "ExtElement",
    "make_fp2",
    "make_fp3",
    "make_fp6",
    "Fp6Field",
    "TowerFp6",
    "TowerElement",
    "F1ToF2Map",
    "CountingPrimeField",
    "OperationCounts",
]
