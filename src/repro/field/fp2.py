"""The quadratic subfield Fp2 = Fp[x]/(x^2 + x + 1).

For CEILIDH primes (p = 2 or 5 mod 9, hence p = 2 mod 3) the polynomial
x^2 + x + 1 is irreducible, and its root x is a primitive cube root of unity
— the image of z^3 under the embedding into Fp6 = Fp[z]/(z^6 + z^3 + 1).

:class:`Fp2Field` overrides the generic schoolbook multiplication with the
three-product Karatsuba form the platform microcodes
(:func:`repro.soc.sequences.xtr_fp2_multiplication_program`):

    t0 = a0*b0,  t1 = a1*b1,  t2 = (a0+a1)*(b0+b1)
    c0 = t0 - t1,  c1 = ((t2 - t0) - t1) - t1        (using x^2 = -1 - x)

— 3 multiplications plus 2 additions and 4 subtractions, executed in exactly
the order of the level-2 sequence so that measured word-operation streams
match the analytic composition operation for operation.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.field.extension import ExtElement, ExtensionField
from repro.field.fp import PrimeField


class Fp2Field(ExtensionField):
    """Fp2 with the platform's 3M Karatsuba multiplication."""

    def __init__(self, base: PrimeField):
        if base.p % 3 != 2:
            raise ParameterError(
                f"x^2 + x + 1 is reducible over F_{base.p}: need p = 2 (mod 3)"
            )
        super().__init__(base, [1, 1, 1], name="Fp2", var="x", check_irreducible=False)

    def mul(self, a: ExtElement, b: ExtElement) -> ExtElement:
        f = self.base
        a0, a1 = a.coeffs
        b0, b1 = b.coeffs
        sa = f.add(a0, a1)
        sb = f.add(b0, b1)
        t0 = f.mul(a0, b0)
        t1 = f.mul(a1, b1)
        t2 = f.mul(sa, sb)
        c0 = f.sub(t0, t1)
        # cross term a0*b1 + a1*b0 = t2 - t0 - t1; x^2 = -1 - x folds t1 in
        # once more for the x coefficient.
        c1 = f.sub(f.sub(f.sub(t2, t0), t1), t1)
        return ExtElement(self, (c0, c1))

    def sqr(self, a: ExtElement) -> ExtElement:
        return self.mul(a, a)

    def mul_schoolbook(self, a: ExtElement, b: ExtElement) -> ExtElement:
        """The generic 4M schoolbook product, kept as a cross-check."""
        return super().mul(a, b)


def make_fp2(base: PrimeField) -> ExtensionField:
    """Construct Fp2 = Fp[x]/(x^2 + x + 1).

    Raises :class:`ParameterError` when p = 1 (mod 3), in which case the
    cyclotomic polynomial splits and the quotient is not a field.
    """
    return Fp2Field(base)
