"""The quadratic subfield Fp2 = Fp[x]/(x^2 + x + 1).

For CEILIDH primes (p = 2 or 5 mod 9, hence p = 2 mod 3) the polynomial
x^2 + x + 1 is irreducible, and its root x is a primitive cube root of unity
— the image of z^3 under the embedding into Fp6 = Fp[z]/(z^6 + z^3 + 1).
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.field.extension import ExtensionField
from repro.field.fp import PrimeField


def make_fp2(base: PrimeField) -> ExtensionField:
    """Construct Fp2 = Fp[x]/(x^2 + x + 1).

    Raises :class:`ParameterError` when p = 1 (mod 3), in which case the
    cyclotomic polynomial splits and the quotient is not a field.
    """
    if base.p % 3 != 2:
        raise ParameterError(
            f"x^2 + x + 1 is reducible over F_{base.p}: need p = 2 (mod 3)"
        )
    return ExtensionField(
        base, [1, 1, 1], name="Fp2", var="x", check_irreducible=False
    )
