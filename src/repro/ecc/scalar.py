"""Scalar multiplication strategies — thin wrappers over :mod:`repro.exp`.

The paper's 160-bit ECC timing uses the plain double-and-add loop over
Jacobian coordinates (Table 3: ~160 doublings + ~80 additions at the Type-B
cost of Table 2).  All strategies now run on the unified engine with the
Jacobian group adapter; point negation is free, so the engine's default is
wNAF (~n/5 additions instead of n/2), and Shamir double-scalar
multiplication backs ECDSA-style ``u1*G + u2*Q`` verification.  Counts are
emitted as the unified :class:`~repro.exp.trace.OpTrace`, with the
historical ``ScalarMultCount`` name kept as an additive-vocabulary subclass.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParameterError
from repro.exp.group import JacobianExpGroup
from repro.exp.strategies import (
    check_window_bits,
    double_exponentiate as _double_exponentiate,
    exponentiate as _exponentiate,
    exponentiate_many as _exponentiate_many,
    exponentiate_shared_base as _exponentiate_shared_base,
)
from repro.exp.trace import ScalarMultCount
from repro.ecc.point import INFINITY, AffinePoint

__all__ = [
    "ScalarMultCount",
    "scalar_mult",
    "scalar_mult_many",
    "scalar_mult_shared_point",
    "scalar_mult_binary",
    "scalar_mult_naf",
    "scalar_mult_wnaf",
    "scalar_mult_window",
    "scalar_mult_ladder",
    "double_scalar_mult",
]

#: Strategy names accepted by :func:`scalar_mult`.
SCALAR_STRATEGIES = ("auto", "binary", "naf", "wnaf", "sliding", "window", "ladder")


def _run(
    point: AffinePoint,
    scalar: int,
    strategy: str,
    count: Optional[ScalarMultCount],
    window_bits: Optional[int] = None,
) -> AffinePoint:
    if window_bits is not None:
        check_window_bits(window_bits)  # reject bad widths even for trivial scalars
    if scalar == 0 or point.is_infinity():
        return INFINITY
    group = JacobianExpGroup(point.curve)
    result = _exponentiate(
        group,
        point.to_jacobian(),
        scalar,
        strategy=strategy,
        trace=count,
        window_bits=window_bits,
    )
    return result.to_affine()


def scalar_mult_many(
    points,
    scalars,
    strategy: str = "auto",
    count: Optional[ScalarMultCount] = None,
    window_bits: Optional[int] = None,
) -> "list[AffinePoint]":
    """N same-curve scalar multiplications sharing ONE affine conversion.

    Each product runs through the unified engine exactly as
    :func:`scalar_mult` would (same strategy, same trace tallies), but the
    Jacobian results are converted together via
    :func:`repro.ecc.point.to_affine_many` — 1 field inversion + 3(N-1)
    multiplications instead of N inversions.  Zero scalars and infinite
    inputs yield :data:`~repro.ecc.point.INFINITY` without joining the batch.
    """
    from repro.ecc.point import to_affine_many

    points = list(points)
    scalars = list(scalars)
    if len(points) != len(scalars):
        raise ParameterError("scalar_mult_many needs one scalar per point")
    if window_bits is not None:
        check_window_bits(window_bits)
    results: "list[Optional[AffinePoint]]" = [None] * len(points)
    pending = []
    positions = []
    for i, (point, scalar) in enumerate(zip(points, scalars)):
        if scalar == 0 or point.is_infinity():
            results[i] = INFINITY
            continue
        pending.append((point, scalar))
        positions.append(i)
    if pending:
        # One group object serves the whole (same-curve) batch; its ops
        # delegate to the points, so this matches per-item construction.
        group = JacobianExpGroup(pending[0][0].curve)
        jacobians = _exponentiate_many(
            group,
            [point.to_jacobian() for point, _ in pending],
            [scalar for _, scalar in pending],
            strategy=strategy,
            trace=count,
            window_bits=window_bits,
        )
        for i, affine in zip(positions, to_affine_many(jacobians)):
            results[i] = affine
    return results


def scalar_mult_shared_point(
    point: AffinePoint,
    scalars,
    strategy: str = "auto",
    count: Optional[ScalarMultCount] = None,
    window_bits: Optional[int] = None,
) -> "list[AffinePoint]":
    """One point, many scalars — the coalesced client phase on a curve.

    A single fixed-base doubling chain over the point (built once, sized by
    the widest scalar) serves every product, and the Jacobian results share
    one affine conversion.  Point values are identical to N
    :func:`scalar_mult` calls; only the operation schedule changes.
    """
    from repro.ecc.point import to_affine_many

    scalars = list(scalars)
    if window_bits is not None:
        check_window_bits(window_bits)
    results: "list[Optional[AffinePoint]]" = [None] * len(scalars)
    positions = [i for i, s in enumerate(scalars) if s != 0]
    if point.is_infinity():
        return [INFINITY] * len(scalars)
    for i, scalar in enumerate(scalars):
        if scalar == 0:
            results[i] = INFINITY
    if positions:
        group = JacobianExpGroup(point.curve)
        jacobians = _exponentiate_shared_base(
            group,
            point.to_jacobian(),
            [scalars[i] for i in positions],
            strategy=strategy,
            trace=count,
            window_bits=window_bits,
        )
        for i, affine in zip(positions, to_affine_many(jacobians)):
            results[i] = affine
    return results


def scalar_mult_binary(
    point: AffinePoint, scalar: int, count: Optional[ScalarMultCount] = None
) -> AffinePoint:
    """Left-to-right double-and-add in Jacobian coordinates (paper's strategy)."""
    return _run(point, scalar, "binary", count)


def scalar_mult_naf(
    point: AffinePoint, scalar: int, count: Optional[ScalarMultCount] = None
) -> AffinePoint:
    """Signed-digit (NAF) double-and-add: ~n/3 additions instead of n/2."""
    return _run(point, scalar, "naf", count)


def scalar_mult_wnaf(
    point: AffinePoint,
    scalar: int,
    window_bits: Optional[int] = None,
    count: Optional[ScalarMultCount] = None,
) -> AffinePoint:
    """Width-w NAF with an odd-multiple table: ~n/(w+1) additions.

    The default fast path — point negation is free, so the signed digits
    cost nothing beyond the table."""
    return _run(point, scalar, "wnaf", count, window_bits)


def scalar_mult_window(
    point: AffinePoint,
    scalar: int,
    window_bits: int = 4,
    count: Optional[ScalarMultCount] = None,
) -> AffinePoint:
    """Fixed-window scalar multiplication with a 2^w-entry table."""
    return _run(point, scalar, "window", count, window_bits)


def scalar_mult_ladder(
    point: AffinePoint, scalar: int, count: Optional[ScalarMultCount] = None
) -> AffinePoint:
    """Montgomery ladder over Jacobian coordinates (regular operation pattern)."""
    return _run(point, scalar, "ladder", count)


def double_scalar_mult(
    point_a: AffinePoint,
    scalar_a: int,
    point_b: AffinePoint,
    scalar_b: int,
    count: Optional[ScalarMultCount] = None,
) -> AffinePoint:
    """Shamir/Straus simultaneous multiplication ``a*P + b*Q``.

    One shared doubling chain over max(bits(a), bits(b)) instead of two —
    the standard trick for ECDSA verification's ``u1*G + u2*Q``.
    """
    if point_a.is_infinity() or scalar_a == 0:
        return _run(point_b, scalar_b, "auto", count)
    if point_b.is_infinity() or scalar_b == 0:
        return _run(point_a, scalar_a, "auto", count)
    if point_a.curve != point_b.curve:
        raise ParameterError("points lie on different curves")
    group = JacobianExpGroup(point_a.curve)
    result = _double_exponentiate(
        group,
        point_a.to_jacobian(),
        scalar_a,
        point_b.to_jacobian(),
        scalar_b,
        trace=count,
    )
    return result.to_affine()


def scalar_mult(
    point: AffinePoint,
    scalar: int,
    strategy: str = "auto",
    count: Optional[ScalarMultCount] = None,
) -> AffinePoint:
    """Dispatch on the strategy name (auto, binary, naf, wnaf, sliding, window, ladder).

    ``auto`` resolves to wNAF for cryptographic scalar sizes — measurably
    fewer point additions than the paper's double-and-add at 160 bits."""
    if strategy not in SCALAR_STRATEGIES:
        raise ParameterError(f"unknown scalar multiplication strategy {strategy!r}")
    return _run(point, scalar, strategy, count)
