"""Scalar multiplication strategies.

The paper's 160-bit ECC timing uses the plain double-and-add loop over
Jacobian coordinates (Table 3: ~160 doublings + ~80 additions at the Type-B
cost of Table 2); NAF, windowed and Montgomery-ladder variants are provided
for the ablation benchmark and for the protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ParameterError
from repro.ecc.point import INFINITY, AffinePoint, JacobianPoint


@dataclass
class ScalarMultCount:
    """Point-operation tally of one scalar multiplication."""

    doublings: int = 0
    additions: int = 0

    @property
    def total(self) -> int:
        return self.doublings + self.additions


def scalar_mult_binary(
    point: AffinePoint, scalar: int, count: Optional[ScalarMultCount] = None
) -> AffinePoint:
    """Left-to-right double-and-add in Jacobian coordinates (paper's strategy)."""
    if scalar < 0:
        return scalar_mult_binary(-point, -scalar, count)
    if scalar == 0 or point.is_infinity():
        return INFINITY
    base = point.to_jacobian()
    acc = base
    for bit in bin(scalar)[3:]:
        acc = acc.double()
        if count is not None:
            count.doublings += 1
        if bit == "1":
            acc = acc.add(base)
            if count is not None:
                count.additions += 1
    return acc.to_affine()


def _naf_digits(scalar: int):
    digits = []
    while scalar > 0:
        if scalar & 1:
            digit = 2 - (scalar % 4)
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def scalar_mult_naf(
    point: AffinePoint, scalar: int, count: Optional[ScalarMultCount] = None
) -> AffinePoint:
    """Signed-digit (NAF) double-and-add: ~n/3 additions instead of n/2."""
    if scalar < 0:
        return scalar_mult_naf(-point, -scalar, count)
    if scalar == 0 or point.is_infinity():
        return INFINITY
    base = point.to_jacobian()
    base_neg = (-point).to_jacobian()
    digits = _naf_digits(scalar)
    acc = JacobianPoint(point.curve, 1, 1, 0)
    for digit in reversed(digits):
        if not acc.is_infinity():
            acc = acc.double()
            if count is not None:
                count.doublings += 1
        if digit == 1:
            acc = acc.add(base)
            if count is not None:
                count.additions += 1
        elif digit == -1:
            acc = acc.add(base_neg)
            if count is not None:
                count.additions += 1
    return acc.to_affine()


def scalar_mult_window(
    point: AffinePoint,
    scalar: int,
    window_bits: int = 4,
    count: Optional[ScalarMultCount] = None,
) -> AffinePoint:
    """Fixed-window scalar multiplication with a 2^w-entry table."""
    if not 1 <= window_bits <= 8:
        raise ParameterError("window width must be between 1 and 8 bits")
    if scalar < 0:
        return scalar_mult_window(-point, -scalar, window_bits, count)
    if scalar == 0 or point.is_infinity():
        return INFINITY
    base = point.to_jacobian()
    table = [JacobianPoint(point.curve, 1, 1, 0), base]
    for _ in range((1 << window_bits) - 2):
        table.append(table[-1].add(base))
        if count is not None:
            count.additions += 1
    digits = []
    e = scalar
    while e:
        digits.append(e & ((1 << window_bits) - 1))
        e >>= window_bits
    digits.reverse()
    acc = table[digits[0]]
    for digit in digits[1:]:
        for _ in range(window_bits):
            acc = acc.double()
            if count is not None:
                count.doublings += 1
        if digit:
            acc = acc.add(table[digit])
            if count is not None:
                count.additions += 1
    return acc.to_affine()


def scalar_mult_ladder(
    point: AffinePoint, scalar: int, count: Optional[ScalarMultCount] = None
) -> AffinePoint:
    """Montgomery ladder over Jacobian coordinates (regular operation pattern)."""
    if scalar < 0:
        return scalar_mult_ladder(-point, -scalar, count)
    if scalar == 0 or point.is_infinity():
        return INFINITY
    r0 = JacobianPoint(point.curve, 1, 1, 0)
    r1 = point.to_jacobian()
    for bit in bin(scalar)[2:]:
        if bit == "1":
            r0 = r0.add(r1)
            r1 = r1.double()
        else:
            r1 = r0.add(r1)
            r0 = r0.double()
        if count is not None:
            count.doublings += 1
            count.additions += 1
    return r0.to_affine()


def scalar_mult(point: AffinePoint, scalar: int, strategy: str = "binary") -> AffinePoint:
    """Dispatch on the strategy name (binary, naf, window, ladder)."""
    strategies = {
        "binary": scalar_mult_binary,
        "naf": scalar_mult_naf,
        "ladder": scalar_mult_ladder,
    }
    if strategy == "window":
        return scalar_mult_window(point, scalar)
    try:
        return strategies[strategy](point, scalar)
    except KeyError:
        raise ParameterError(f"unknown scalar multiplication strategy {strategy!r}") from None
