"""Elliptic-curve cryptography over prime fields.

The paper's platform also runs 160-bit prime-field ECC: point addition and
doubling are level-2 sequences of the same modular multiplications and
additions used by the torus, and a scalar multiplication is the level-1 loop
driving them.  This package provides the reference group arithmetic (affine
and Jacobian), scalar multiplication strategies, named curves with full
self-validation and toy curves for exhaustive testing.
"""

from repro.ecc.curve import WeierstrassCurve
from repro.ecc.point import AffinePoint, JacobianPoint, INFINITY
from repro.ecc.scalar import (
    ScalarMultCount,
    double_scalar_mult,
    scalar_mult,
    scalar_mult_binary,
    scalar_mult_naf,
    scalar_mult_wnaf,
    scalar_mult_ladder,
    scalar_mult_window,
)
from repro.ecc.curves import (
    NamedCurve,
    NAMED_CURVES,
    get_curve,
    validate_named_curve,
    generate_toy_curve,
)
from repro.ecc.ecdh import EcdhKeyPair, ecdh_generate, ecdh_shared_secret, ecdsa_sign, ecdsa_verify
from repro.ecc.encoding import decode_point, encode_point, point_size_bytes

__all__ = [
    "WeierstrassCurve",
    "AffinePoint",
    "JacobianPoint",
    "INFINITY",
    "ScalarMultCount",
    "scalar_mult",
    "scalar_mult_binary",
    "scalar_mult_naf",
    "scalar_mult_wnaf",
    "scalar_mult_ladder",
    "scalar_mult_window",
    "double_scalar_mult",
    "NamedCurve",
    "NAMED_CURVES",
    "get_curve",
    "validate_named_curve",
    "generate_toy_curve",
    "EcdhKeyPair",
    "ecdh_generate",
    "ecdh_shared_secret",
    "ecdsa_sign",
    "ecdsa_verify",
    "encode_point",
    "decode_point",
    "point_size_bytes",
]
