"""Named and generated curves.

The paper benchmarks "160-bit ECC" without naming a curve; the standard
160-bit prime-field curve of that era is SECG's secp160r1, which is what the
ECC examples and Table 3 benchmark use here.  secp192r1 (NIST P-192) and
secp256k1 are included for the bandwidth/scaling comparisons.  Every named
curve is *self-validated* in code (prime field, generator on the curve, prime
group order inside the Hasse interval, n*G = O), so the library never relies
on the transcription being taken on faith.

For exhaustive unit tests, :func:`generate_toy_curve` builds curves over tiny
prime fields and determines the group order by brute-force point counting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ParameterError
from repro.field.fp import PrimeField
from repro.nt.primality import is_probable_prime
from repro.ecc.curve import WeierstrassCurve
from repro.ecc.point import AffinePoint
from repro.ecc.scalar import scalar_mult_binary


@dataclass(frozen=True)
class NamedCurve:
    """A named curve: domain parameters plus a distinguished base point."""

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    order: int
    cofactor: int

    def build(self, backend=None) -> Tuple[WeierstrassCurve, AffinePoint]:
        """Instantiate the curve object and its base point.

        ``backend`` selects the field-arithmetic substrate (see
        :mod:`repro.field.backend`); the named domain parameters are plain
        integers and enter the representation here.
        """
        field = PrimeField(self.p, check_prime=False, backend=backend)
        curve = WeierstrassCurve(field, self.a, self.b)
        generator = AffinePoint(
            curve, field.enter(self.gx), field.enter(self.gy)
        )
        return curve, generator

    @property
    def bits(self) -> int:
        return self.p.bit_length()


SECP160R1 = NamedCurve(
    name="secp160r1",
    p=2 ** 160 - 2 ** 31 - 1,
    a=2 ** 160 - 2 ** 31 - 1 - 3,
    b=0x1C97BEFC54BD7A8B65ACF89F81D4D4ADC565FA45,
    gx=0x4A96B5688EF573284664698968C38BB913CBFC82,
    gy=0x23A628553168947D59DCC912042351377AC5FB32,
    order=0x0100000000000000000001F4C8F927AED3CA752257,
    cofactor=1,
)

SECP192R1 = NamedCurve(
    name="secp192r1",
    p=2 ** 192 - 2 ** 64 - 1,
    a=2 ** 192 - 2 ** 64 - 1 - 3,
    b=0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1,
    gx=0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012,
    gy=0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811,
    order=0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831,
    cofactor=1,
)

SECP256K1 = NamedCurve(
    name="secp256k1",
    p=2 ** 256 - 2 ** 32 - 977,
    a=0,
    b=7,
    gx=0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798,
    gy=0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8,
    order=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141,
    cofactor=1,
)

NAMED_CURVES: Dict[str, NamedCurve] = {
    c.name: c for c in (SECP160R1, SECP192R1, SECP256K1)
}


def get_curve(name: str) -> NamedCurve:
    """Look up a named curve."""
    try:
        return NAMED_CURVES[name]
    except KeyError:
        raise ParameterError(
            f"unknown curve {name!r}; available: {sorted(NAMED_CURVES)}"
        ) from None


def validate_named_curve(named: NamedCurve) -> None:
    """Full self-validation; raises :class:`ParameterError` on any failure.

    Because the order is verified to be a prime inside the Hasse interval and
    to annihilate the generator, the check constitutes a proof that ``order``
    really is the order of the generator (and, with cofactor 1, of the whole
    group).
    """
    if not is_probable_prime(named.p):
        raise ParameterError(f"{named.name}: p is not prime")
    if not is_probable_prime(named.order):
        raise ParameterError(f"{named.name}: group order is not prime")
    curve, generator = named.build()
    if not curve.is_on_curve(named.gx, named.gy):
        raise ParameterError(f"{named.name}: generator is not on the curve")
    trace = named.p + 1 - named.order * named.cofactor
    if trace * trace > 4 * named.p:
        raise ParameterError(f"{named.name}: order violates the Hasse bound")
    if not scalar_mult_binary(generator, named.order).is_infinity():
        raise ParameterError(f"{named.name}: order * G is not the identity")


def generate_toy_curve(
    p: int, rng: Optional[random.Random] = None, require_prime_order: bool = False
) -> NamedCurve:
    """Build a random curve over a tiny prime field with a known group order.

    The group order is obtained by exhaustive counting (so ``p`` must be
    small), and the returned base point has order equal to the largest prime
    factor of the group order.  Used by tests that need a completely
    verifiable group of manageable size.
    """
    if p > 20_000:
        raise ParameterError("toy curves are limited to p <= 20000")
    if not is_probable_prime(p) or p <= 3:
        raise ParameterError("toy curves need a prime p > 3")
    rng = rng or random.Random(p)
    field = PrimeField(p, check_prime=False)
    from repro.nt.factor import factorize

    for _ in range(2000):
        a = rng.randrange(p)
        b = rng.randrange(p)
        try:
            curve = WeierstrassCurve(field, a, b)
        except ParameterError:
            continue
        order = curve.count_points_naive()
        factors = factorize(order)
        largest = max(factors)
        if require_prime_order and largest != order:
            continue
        cofactor = order // largest
        # Find a point of order exactly `largest`.
        for _ in range(200):
            x, y = curve.random_point(rng)
            point = AffinePoint(curve, x, y)
            candidate = scalar_mult_binary(point, cofactor)
            if candidate.is_infinity():
                continue
            if scalar_mult_binary(candidate, largest).is_infinity():
                return NamedCurve(
                    name=f"toy-{p}",
                    p=p,
                    a=a,
                    b=b,
                    gx=field.exit(candidate.x),
                    gy=field.exit(candidate.y),
                    order=largest,
                    cofactor=cofactor,
                )
    raise ParameterError(f"could not build a toy curve over F_{p}")
