"""SEC1 wire encodings for elliptic-curve points.

The bandwidth half of the paper's comparison needs ECC messages in their
standard transmitted form.  SEC1 defines two: the uncompressed encoding
``0x04 || X || Y`` (what the legacy examples always used) and the compressed
encoding ``0x02/0x03 || X`` that sends only the X coordinate plus the parity
of Y — the elliptic-curve analogue of the torus compression rho, at half the
uncompressed size plus one byte.  Decompression solves the curve equation
with a modular square root and picks the root of the right parity.
"""

from __future__ import annotations

from repro.errors import NotOnCurveError, ParameterError
from repro.nt.modular import sqrt_mod_prime
from repro.ecc.curves import NamedCurve
from repro.ecc.point import AffinePoint

__all__ = ["point_size_bytes", "encode_point", "decode_point"]


def _field_byte_length(p: int) -> int:
    return (p.bit_length() + 7) // 8


def point_size_bytes(named: NamedCurve, compressed: bool = False) -> int:
    """Bytes on the wire for one SEC1-encoded point."""
    width = _field_byte_length(named.p)
    return 1 + width if compressed else 1 + 2 * width


def encode_point(point: AffinePoint, compressed: bool = False) -> bytes:
    """SEC1 encoding of a finite point (infinity is not a wire value here).

    The coordinates exit the field's representation here, so the wire bytes
    (and the compressed parity bit) are identical under every backend.
    """
    if point.is_infinity():
        raise ParameterError("the point at infinity has no SEC1 wire encoding")
    field = point.curve.field
    width = _field_byte_length(field.p)
    x_plain = field.exit(point.x)
    y_plain = field.exit(point.y)
    x_bytes = x_plain.to_bytes(width, "big")
    if not compressed:
        return b"\x04" + x_bytes + y_plain.to_bytes(width, "big")
    prefix = b"\x03" if y_plain & 1 else b"\x02"
    return prefix + x_bytes


def decode_point(named: NamedCurve, data: bytes, curve=None) -> AffinePoint:
    """Inverse of :func:`encode_point`; validates curve membership.

    Accepts both SEC1 forms.  Compressed points are lifted by solving
    ``y^2 = x^3 + ax + b`` with a Tonelli-Shanks square root; a non-residue
    right-hand side (an X that is not the abscissa of any curve point) raises
    :class:`~repro.errors.NotOnCurveError`.

    ``curve`` optionally supplies a prebuilt curve object (the scheme layer
    passes its backend-built curve so decoded points live in the same
    representation as the rest of the run); wire coordinates enter that
    curve's field representation here.
    """
    if not data:
        raise ParameterError("empty point encoding")
    if curve is None:
        curve, _ = named.build()
    field = curve.field
    width = _field_byte_length(named.p)
    prefix = data[0]
    if prefix == 0x04:
        if len(data) != 1 + 2 * width:
            raise ParameterError(
                f"uncompressed point must be {1 + 2 * width} bytes, got {len(data)}"
            )
        x = int.from_bytes(data[1 : 1 + width], "big")
        y = int.from_bytes(data[1 + width :], "big")
        if x >= named.p or y >= named.p:
            raise ParameterError("encoded coordinate exceeds the field size")
        # Membership checked by the constructor on the resident coordinates.
        return AffinePoint(curve, field.enter(x), field.enter(y))
    if prefix in (0x02, 0x03):
        if len(data) != 1 + width:
            raise ParameterError(
                f"compressed point must be {1 + width} bytes, got {len(data)}"
            )
        x_plain = int.from_bytes(data[1:], "big")
        if x_plain >= named.p:
            raise ParameterError("encoded coordinate exceeds the field size")
        x = field.enter(x_plain)
        rhs = field.add(field.mul(field.sqr(x), x), field.add(field.mul(curve.a, x), curve.b))
        try:
            y_plain = sqrt_mod_prime(field.exit(rhs), named.p)
        except ParameterError:
            raise NotOnCurveError(
                f"x = {x_plain} is not the abscissa of a curve point"
            ) from None
        if (y_plain & 1) != (prefix & 1):
            y_plain = named.p - y_plain
        return AffinePoint(curve, x, field.enter(y_plain))
    raise ParameterError(f"unknown SEC1 prefix 0x{prefix:02x}")
