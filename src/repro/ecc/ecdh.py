"""ECDH key agreement and ECDSA signatures.

These protocols are not themselves evaluated by the paper (it times the bare
scalar multiplication), but a platform that claims to "support ECC over prime
fields" needs them to be usable, and the examples compare CEILIDH key
agreement against ECDH message sizes end to end.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.audit.annotations import Secret
from repro.errors import ParameterError, SignatureError
from repro.exp.trace import ScalarMultCount
from repro.nt.modular import modinv
from repro.nt.sampling import resolve_rng, sample_exponent
from repro.ecc.curves import NamedCurve
from repro.ecc.point import AffinePoint
from repro.ecc.scalar import (
    double_scalar_mult,
    scalar_mult,
    scalar_mult_many,
    scalar_mult_shared_point,
)


@dataclass
class EcdhKeyPair:
    """An EC key pair: private scalar and public point."""

    curve: NamedCurve
    private: Secret[int]
    public: AffinePoint

    def public_bytes(self, compressed: bool = False) -> bytes:
        """SEC1 encoding, uncompressed ``0x04 || X || Y`` by default."""
        from repro.ecc.encoding import encode_point

        return encode_point(self.public, compressed=compressed)


def ecdh_generate(
    named: NamedCurve,
    rng: Optional[random.Random] = None,
    count: Optional[ScalarMultCount] = None,
) -> EcdhKeyPair:
    """Generate a key pair on a named curve.

    (The scheme layer does not route through here — its keygen runs from a
    cached fixed-base table on its backend-built generator.)
    """
    rng = resolve_rng(rng)
    _, generator = named.build()
    private = sample_exponent(named.order, rng)
    public = scalar_mult(generator, private, count=count)
    return EcdhKeyPair(curve=named, private=private, public=public)


def ecdh_shared_secret(
    own: EcdhKeyPair,
    peer_public: AffinePoint,
    count: Optional[ScalarMultCount] = None,
) -> bytes:
    """X-coordinate of the shared point (plain), fixed width big-endian."""
    shared = scalar_mult(peer_public, own.private, count=count)
    if shared.is_infinity():
        raise ParameterError("degenerate ECDH shared point")
    width = (own.curve.p.bit_length() + 7) // 8
    return shared.curve.field.exit(shared.x).to_bytes(width, "big")


def ecdh_shared_secret_many(
    own: EcdhKeyPair,
    peer_publics,
    count: Optional[ScalarMultCount] = None,
) -> "list[bytes]":
    """:func:`ecdh_shared_secret` against N peers, batching the inversions.

    The N scalar multiplications run as usual; the N Jacobian->affine
    conversions collapse to one field inversion via
    :func:`~repro.ecc.scalar.scalar_mult_many`.  Wire bytes are identical
    to N single calls.
    """
    peer_publics = list(peer_publics)
    shareds = scalar_mult_many(
        peer_publics, [own.private] * len(peer_publics), count=count
    )
    width = (own.curve.p.bit_length() + 7) // 8
    secrets = []
    for shared in shareds:
        if shared.is_infinity():
            raise ParameterError("degenerate ECDH shared point")
        secrets.append(shared.curve.field.exit(shared.x).to_bytes(width, "big"))
    return secrets


def ecdh_shared_secret_with_many(
    owns,
    peer_public: AffinePoint,
    count: Optional[ScalarMultCount] = None,
) -> "list[bytes]":
    """Shared secrets of N own keys against **one** peer point.

    The coalesced client phase: every session multiplies the same peer
    point, so one fixed-base doubling chain
    (:func:`~repro.ecc.scalar.scalar_mult_shared_point`) and one batched
    affine conversion serve the whole batch.  Wire bytes are identical to N
    :func:`ecdh_shared_secret` calls.
    """
    owns = list(owns)
    if not owns:
        return []
    shareds = scalar_mult_shared_point(
        peer_public, [own.private for own in owns], count=count
    )
    width = (owns[0].curve.p.bit_length() + 7) // 8
    secrets = []
    for shared in shareds:
        if shared.is_infinity():
            raise ParameterError("degenerate ECDH shared point")
        secrets.append(shared.curve.field.exit(shared.x).to_bytes(width, "big"))
    return secrets


def _hash_to_int(message: bytes, order: int) -> int:
    digest = hashlib.sha256(message).digest()
    value = int.from_bytes(digest, "big")
    excess = value.bit_length() - order.bit_length()
    if excess > 0:
        value >>= excess
    return value % order


def ecdsa_sign(
    own: EcdhKeyPair,
    message: bytes,
    rng: Optional[random.Random] = None,
    count: Optional[ScalarMultCount] = None,
    generator: Optional[AffinePoint] = None,
) -> Tuple[int, int]:
    """ECDSA signature (r, s) with a SHA-256 message digest."""
    rng = resolve_rng(rng)
    named = own.curve
    if generator is None:
        _, generator = named.build()
    e = _hash_to_int(message, named.order)
    for _ in range(64):
        k = sample_exponent(named.order, rng)
        point = scalar_mult(generator, k, count=count)
        r = point.curve.field.exit(point.x) % named.order
        if r == 0:
            continue
        s = modinv(k, named.order) * (e + r * own.private) % named.order
        if s == 0:  # audit: allow[CT101] DSA-mandated rejection of zero s; the retry is protocol-visible
            continue
        return r, s
    raise SignatureError("could not produce an ECDSA signature")  # pragma: no cover


def ecdsa_verify(
    named: NamedCurve,
    public: AffinePoint,
    message: bytes,
    signature: Tuple[int, int],
    count: Optional[ScalarMultCount] = None,
    generator: Optional[AffinePoint] = None,
) -> bool:
    """Verify an ECDSA signature."""
    r, s = signature
    if not (1 <= r < named.order and 1 <= s < named.order):
        return False
    if generator is None:
        _, generator = named.build()
    e = _hash_to_int(message, named.order)
    w = modinv(s, named.order)
    u1 = e * w % named.order
    u2 = r * w % named.order
    # Shamir double-scalar multiplication: one shared doubling chain.
    point = double_scalar_mult(generator, u1, public, u2, count=count)
    if point.is_infinity():
        return False
    return point.curve.field.exit(point.x) % named.order == r
