"""Prime-field ECC under the unified PKC layer.

The adapter speaks SEC1 bytes over the existing ECDH/ECDSA entry points and
adds the hybrid encryption leg (hashed-ElGamal / ECIES-style: ephemeral ECDH
+ XOR keystream + confirmation tag) the cross-scheme comparison needs.  Key
generation and ECIES ephemerals run from a cached fixed-base table on the
generator — the same amortisation CEILIDH applies to its generator powers,
which is what makes the batched serving benchmark an apples-to-apples
comparison.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.errors import DecryptionError, ParameterError, ReproError
from repro.exp.group import JacobianExpGroup
from repro.exp.strategies import FixedBaseTable
from repro.exp.trace import OpTrace
from repro.nt.sampling import resolve_rng, sample_exponent
from repro.pkc.base import (
    ENCRYPTION,
    KEY_AGREEMENT,
    SIGNATURE,
    TAG_BYTES,
    PkcScheme,
    SchemeKeyPair,
    decode_scalar_pair,
    encode_scalar_pair,
    kdf,
    open_body,
    seal_body,
)
from repro.pkc.profile import canonical_exponent
from repro.ecc.curves import NamedCurve
from repro.ecc.ecdh import (
    EcdhKeyPair,
    ecdh_shared_secret,
    ecdh_shared_secret_many,
    ecdh_shared_secret_with_many,
    ecdsa_sign,
    ecdsa_verify,
)
from repro.ecc.encoding import decode_point, encode_point, point_size_bytes
from repro.ecc.point import AffinePoint, to_affine_many
from repro.ecc.scalar import scalar_mult_binary

__all__ = ["EcdhScheme"]


class EcdhScheme(PkcScheme):
    """ECDH + ECIES + ECDSA on a named curve as a registry scheme.

    ``compressed`` selects the SEC1 form used for public keys and ciphertext
    ephemerals; the default matches the library's historical uncompressed
    examples.
    """

    capabilities = frozenset({KEY_AGREEMENT, ENCRYPTION, SIGNATURE})
    headline_operation = "ECC scalar multiplication (Jacobian, double-and-add)"

    def __init__(
        self,
        curve: NamedCurve,
        name: Optional[str] = None,
        security_bits: int = 80,
        paper_ms: Optional[float] = None,
        compressed: bool = False,
        backend=None,
    ):
        from repro.field.backend import get_backend

        self.field_backend = get_backend(backend)
        self.curve = curve
        self.name = name or curve.name
        self.bit_length = curve.p.bit_length()
        self.security_bits = security_bits
        self.paper_ms = paper_ms
        self.compressed = compressed
        self._curve_obj, self._generator = curve.build(backend=self.field_backend)
        self._exp_group = JacobianExpGroup(self._curve_obj)
        self._generator_table: Optional[FixedBaseTable] = None
        self._scalar_width = (curve.order.bit_length() + 7) // 8

    # -- fixed-base generator powers ------------------------------------------------

    def _table(self) -> FixedBaseTable:
        if self._generator_table is None:
            self._generator_table = FixedBaseTable(
                self._exp_group,
                self._generator.to_jacobian(),
                self.curve.order.bit_length(),
            )
        return self._generator_table

    def generator_power(self, exponent: int, trace: Optional[OpTrace] = None) -> AffinePoint:
        """``exponent * G`` from a cached fixed-base table (amortised doublings)."""
        return self._table().power(exponent, trace=trace).to_affine()

    def generator_powers(
        self, exponents, trace: Optional[OpTrace] = None
    ) -> "list[AffinePoint]":
        """N fixed-base powers sharing ONE batch affine conversion."""
        table = self._table()
        return to_affine_many(
            table.power(exponent, trace=trace) for exponent in exponents
        )

    # -- keys -------------------------------------------------------------------

    def keygen(
        self, rng: Optional[random.Random] = None, trace: Optional[OpTrace] = None
    ) -> SchemeKeyPair:
        private = sample_exponent(self.curve.order, rng)
        public = self.generator_power(private, trace=trace)
        keypair = EcdhKeyPair(curve=self.curve, private=private, public=public)
        return SchemeKeyPair(
            scheme=self.name,
            public_wire=encode_point(public, compressed=self.compressed),
            native=keypair,
        )

    def keygen_many(
        self,
        count: int,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> "list[SchemeKeyPair]":
        """N key pairs whose public points share one batch affine conversion.

        RNG draws happen in the same order as N :meth:`keygen` calls, so a
        seeded batch produces byte-identical wire keys.
        """
        privates = [sample_exponent(self.curve.order, rng) for _ in range(count)]
        publics = self.generator_powers(privates, trace=trace)
        return [
            SchemeKeyPair(
                scheme=self.name,
                public_wire=encode_point(public, compressed=self.compressed),
                native=EcdhKeyPair(curve=self.curve, private=private, public=public),
            )
            for private, public in zip(privates, publics)
        ]

    def public_key_size(self) -> int:
        return point_size_bytes(self.curve, compressed=self.compressed)

    def decode_public(self, data: bytes) -> AffinePoint:
        return decode_point(self.curve, data, curve=self._curve_obj)

    def encode_public(self, public: AffinePoint) -> bytes:
        return encode_point(public, compressed=self.compressed)

    # -- key agreement -----------------------------------------------------------

    def key_agreement(
        self,
        own: SchemeKeyPair,
        peer_public: bytes,
        info: bytes = b"",
        length: int = 32,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        peer = decode_point(self.curve, peer_public, curve=self._curve_obj)
        shared = ecdh_shared_secret(own.native, peer, count=trace)
        return kdf(shared, info, length)

    def key_agreement_many(
        self,
        own: SchemeKeyPair,
        peer_publics,
        info: bytes = b"",
        length: int = 32,
        trace: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """N key agreements against one private key, batching the inversions."""
        peers = [
            decode_point(self.curve, peer, curve=self._curve_obj)
            for peer in peer_publics
        ]
        shareds = ecdh_shared_secret_many(own.native, peers, count=trace)
        return [kdf(shared, info, length) for shared in shareds]

    def key_agreement_with_many(
        self,
        owns,
        peer_public: bytes,
        info: bytes = b"",
        length: int = 32,
        trace: Optional[OpTrace] = None,
    ) -> "list[bytes]":
        """N own keys against one peer point: the point is decoded once and
        a shared fixed-base doubling chain serves the batch (byte-identical
        to looping :meth:`key_agreement`)."""
        peer = decode_point(self.curve, peer_public, curve=self._curve_obj)
        shareds = ecdh_shared_secret_with_many(
            [own.native for own in owns], peer, count=trace
        )
        return [kdf(shared, info, length) for shared in shareds]

    # -- hybrid encryption (hashed ElGamal over the curve) ----------------------------

    def encrypt(
        self,
        recipient_public: bytes,
        plaintext: bytes,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        rng = resolve_rng(rng)
        recipient = decode_point(self.curve, recipient_public, curve=self._curve_obj)
        ephemeral_scalar = sample_exponent(self.curve.order, rng)
        ephemeral = self.generator_power(ephemeral_scalar, trace=trace)
        ephemeral_keypair = EcdhKeyPair(
            curve=self.curve, private=ephemeral_scalar, public=ephemeral
        )
        shared = ecdh_shared_secret(ephemeral_keypair, recipient, count=trace)
        body, tag = seal_body(shared, b"ecies", plaintext)
        return encode_point(ephemeral, compressed=self.compressed) + tag + body

    def decrypt(
        self, own: SchemeKeyPair, ciphertext: bytes, trace: Optional[OpTrace] = None
    ) -> bytes:
        point_bytes = self.public_key_size()
        header = point_bytes + TAG_BYTES
        if len(ciphertext) < header:
            raise ParameterError(f"ciphertext shorter than the {header}-byte ECIES header")
        try:
            ephemeral = decode_point(self.curve, ciphertext[:point_bytes], curve=self._curve_obj)
        except ReproError as exc:
            raise DecryptionError("malformed ephemeral point") from exc
        tag = ciphertext[point_bytes:header]
        body = ciphertext[header:]
        shared = ecdh_shared_secret(own.native, ephemeral, count=trace)
        return open_body(shared, b"ecies", body, tag)

    # -- signatures -----------------------------------------------------------------

    def sign(
        self,
        own: SchemeKeyPair,
        message: bytes,
        rng: Optional[random.Random] = None,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        r, s = ecdsa_sign(own.native, message, rng, count=trace, generator=self._generator)
        return encode_scalar_pair(r, s, self._scalar_width)

    def verify(
        self,
        public: bytes,
        message: bytes,
        signature: bytes,
        trace: Optional[OpTrace] = None,
    ) -> bool:
        scalars = decode_scalar_pair(signature, self._scalar_width)
        if scalars is None:
            return False
        try:
            public_point = decode_point(self.curve, public, curve=self._curve_obj)
        except ReproError:
            return False
        return ecdsa_verify(
            self.curve, public_point, message, scalars, count=trace,
            generator=self._generator,
        )

    # -- platform projection ---------------------------------------------------------

    def headline_exponentiation(self, trace: OpTrace) -> None:
        """One double-and-add scalar multiplication (the 9.4 ms row)."""
        scalar_mult_binary(
            self._generator, canonical_exponent(self.curve.order.bit_length()), count=trace
        )

    def platform_cycles_per_operation(self, platform) -> Tuple[int, int]:
        pa_cost, pd_cost = platform.ecc_point_costs(self.curve.p)
        # A "squaring" is a point doubling, a "multiplication" a point addition.
        return pd_cost.type_b_cycles, pa_cost.type_b_cycles

    def headline_modulus(self) -> int:
        return self.curve.p
