"""Short Weierstrass curves y^2 = x^3 + a*x + b over a prime field."""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.errors import NotOnCurveError, ParameterError
from repro.field.fp import PrimeField
from repro.nt.sampling import resolve_rng


class WeierstrassCurve:
    """The curve y^2 = x^3 + a*x + b over Fp (p > 3)."""

    def __init__(self, field: PrimeField, a: int, b: int):
        if field.p <= 3:
            raise ParameterError("short Weierstrass form needs p > 3")
        self.field = field
        # Domain parameters arrive as plain integers; the stored coefficients
        # are resident in the field's representation.
        self.a = field.enter(a % field.p)
        self.b = field.enter(b % field.p)
        if self.discriminant() == 0:
            raise ParameterError("singular curve: 4a^3 + 27b^2 = 0")

    def discriminant(self) -> int:
        """-16 (4a^3 + 27b^2) up to the factor -16 (only zero-ness matters)."""
        f = self.field
        return f.add(
            f.mul(f.embed(4), f.mul(self.a, f.mul(self.a, self.a))),
            f.mul(f.embed(27), f.mul(self.b, self.b)),
        )

    def j_invariant(self) -> int:
        """The j-invariant 1728 * 4a^3 / (4a^3 + 27b^2), as a plain integer."""
        f = self.field
        a_cubed_4 = f.mul(f.embed(4), f.mul(self.a, f.mul(self.a, self.a)))
        return f.exit(f.mul(f.mul(f.embed(1728), a_cubed_4), f.inv(self.discriminant())))

    def right_hand_side(self, x: int) -> int:
        """x^3 + a*x + b."""
        f = self.field
        return f.add(f.add(f.mul(f.mul(x, x), x), f.mul(self.a, x)), self.b)

    def is_on_curve(self, x: int, y: int) -> bool:
        """Check the affine equation."""
        f = self.field
        return f.mul(y, y) == self.right_hand_side(x)

    def lift_x(self, x: int) -> Tuple[int, int]:
        """The two affine points with abscissa ``x`` (raises for non-residues)."""
        f = self.field
        rhs = self.right_hand_side(x)
        if not f.is_square(rhs):
            raise NotOnCurveError(f"x = {x} is not the abscissa of a rational point")
        y = f.sqrt(rhs)
        return y, f.neg(y)

    def random_point(self, rng: Optional[random.Random] = None) -> Tuple[int, int]:
        """A uniformly-ish random affine point (random x until the rhs is a square)."""
        rng = resolve_rng(rng)
        while True:
            # Plain draw entered into the representation, so seeded runs pick
            # the same logical point under every backend.
            x = self.field.enter(rng.randrange(self.field.p))
            rhs = self.right_hand_side(x)
            if self.field.is_square(rhs):
                y = self.field.sqrt(rhs)
                if rng.randrange(2):  # audit: allow[CT101] coin flip picks the sign of a point that is published anyway
                    y = self.field.neg(y)
                return x, y

    def count_points_naive(self) -> int:
        """Exhaustive point count #E(Fp) including infinity (tiny fields only)."""
        if self.field.p > 100_000:
            raise ParameterError("naive point counting is limited to p <= 100000")
        f = self.field
        count = 1  # point at infinity
        for x_plain in range(f.p):
            rhs = self.right_hand_side(f.enter(x_plain))
            if rhs == 0:
                count += 1
            elif f.is_square(rhs):
                count += 2
        return count

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, WeierstrassCurve)
            and self.field == other.field
            and self.a == other.a
            and self.b == other.b
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.a, self.b))

    def __repr__(self) -> str:
        return f"WeierstrassCurve(p~2^{self.field.p.bit_length()}, a={self.a}, b={self.b})"
