"""Elliptic-curve points: affine and Jacobian-projective representations.

The Jacobian formulas are the ones the platform's level-2 point-operation
sequences implement (general addition: 12M + 4S, general doubling with the
``a * Z^4`` term: ~6M + 6S in Fp); keeping the reference arithmetic in the
same coordinate system lets the microcoded sequences be validated against it
value-for-value.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import NotOnCurveError, ParameterError
from repro.ecc.curve import WeierstrassCurve


class AffinePoint:
    """An affine point (x, y) on a curve, or the point at infinity."""

    __slots__ = ("curve", "x", "y", "infinity")

    def __init__(
        self,
        curve: Optional[WeierstrassCurve],
        x: int = 0,
        y: int = 0,
        infinity: bool = False,
        check: bool = True,
    ):
        self.curve = curve
        self.infinity = infinity
        if infinity:
            self.x = 0
            self.y = 0
            return
        if curve is None:
            raise ParameterError("finite points need a curve")
        self.x = x % curve.field.p
        self.y = y % curve.field.p
        if check and not curve.is_on_curve(self.x, self.y):
            raise NotOnCurveError(f"({x}, {y}) does not satisfy the curve equation")

    # -- group law (affine, with inversions) -----------------------------------

    def __neg__(self) -> "AffinePoint":
        if self.infinity:
            return self
        return AffinePoint(self.curve, self.x, self.curve.field.neg(self.y), check=False)

    def __add__(self, other: "AffinePoint") -> "AffinePoint":
        if self.infinity:
            return other
        if other.infinity:
            return self
        if self.curve != other.curve:
            raise ParameterError("points lie on different curves")
        f = self.curve.field
        if self.x == other.x:
            if f.add(self.y, other.y) == 0:
                return INFINITY
            # Doubling.  Small-constant multiples are addition chains, as the
            # platform's modular-add microcode computes them.
            xx = f.mul(self.x, self.x)
            numerator = f.add(f.add(f.add(xx, xx), xx), self.curve.a)
            denominator = f.add(self.y, self.y)
        else:
            numerator = f.sub(other.y, self.y)
            denominator = f.sub(other.x, self.x)
        slope = f.mul(numerator, f.inv(denominator))
        x3 = f.sub(f.sub(f.mul(slope, slope), self.x), other.x)
        y3 = f.sub(f.mul(slope, f.sub(self.x, x3)), self.y)
        return AffinePoint(self.curve, x3, y3, check=False)

    def __sub__(self, other: "AffinePoint") -> "AffinePoint":
        return self + (-other)

    def __mul__(self, scalar: int) -> "AffinePoint":
        from repro.ecc.scalar import scalar_mult

        return scalar_mult(self, scalar)

    __rmul__ = __mul__

    def double(self) -> "AffinePoint":
        return self + self

    # -- conversions -------------------------------------------------------------

    def to_jacobian(self) -> "JacobianPoint":
        if self.infinity:
            return JacobianPoint(self.curve, 1, 1, 0)
        # Z = 1 must be resident in the field's representation.
        return JacobianPoint(self.curve, self.x, self.y, self.curve.field.one_value)

    def xy(self) -> Tuple[int, int]:
        if self.infinity:
            raise ParameterError("the point at infinity has no affine coordinates")
        return self.x, self.y

    def is_infinity(self) -> bool:
        return self.infinity

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffinePoint):
            return NotImplemented
        if self.infinity or other.infinity:
            return self.infinity and other.infinity
        return self.curve == other.curve and self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self.infinity:
            return hash("ecc-infinity")
        return hash((self.curve.field.p, self.x, self.y))

    def __repr__(self) -> str:
        if self.infinity:
            return "AffinePoint(infinity)"
        return f"AffinePoint({self.x}, {self.y})"


#: The point at infinity (usable with any curve).
INFINITY = AffinePoint(None, infinity=True, check=False)


class JacobianPoint:
    """A point in Jacobian coordinates (X : Y : Z), with x = X/Z^2, y = Y/Z^3."""

    __slots__ = ("curve", "x", "y", "z")

    def __init__(self, curve: WeierstrassCurve, x: int, y: int, z: int):
        self.curve = curve
        p = curve.field.p
        self.x = x % p
        self.y = y % p
        self.z = z % p

    def is_infinity(self) -> bool:
        return self.z == 0

    # -- group law (inversion-free) ------------------------------------------------

    def double(self) -> "JacobianPoint":
        """General Jacobian doubling (includes the a*Z^4 term).

        Small-constant multiples (2S, 3XX, 8YYYY, 2YZ) are computed as
        addition chains — exactly the MA operations of
        :func:`repro.soc.sequences.ecc_point_doubling_program` — so the
        executed Fp operation stream matches the platform sequence
        (10 MM + 13 MA/MS) and stays valid under every field backend.
        """
        f = self.curve.field
        if self.is_infinity() or self.y == 0:
            return JacobianPoint(self.curve, 1, 1, 0)
        xx = f.mul(self.x, self.x)                      # X^2
        yy = f.mul(self.y, self.y)                      # Y^2
        yyyy = f.mul(yy, yy)                            # Y^4
        zz = f.mul(self.z, self.z)                      # Z^2
        t0 = f.mul(self.x, yy)                          # X*Y^2
        t1 = f.add(t0, t0)
        s = f.add(t1, t1)                               # 4*X*Y^2
        zz2 = f.mul(zz, zz)                             # Z^4
        m = f.add(f.add(f.add(xx, xx), xx), f.mul(self.curve.a, zz2))
        x3 = f.sub(f.mul(m, m), f.add(s, s))
        y4_2 = f.add(yyyy, yyyy)
        y4_4 = f.add(y4_2, y4_2)
        y3 = f.sub(f.mul(m, f.sub(s, x3)), f.add(y4_4, y4_4))
        t10 = f.mul(self.y, self.z)
        z3 = f.add(t10, t10)
        return JacobianPoint(self.curve, x3, y3, z3)

    def add(self, other: "JacobianPoint") -> "JacobianPoint":
        """General Jacobian addition (handles doubling and inverse cases)."""
        if self.is_infinity():
            return other
        if other.is_infinity():
            return self
        f = self.curve.field
        z1z1 = f.mul(self.z, self.z)
        z2z2 = f.mul(other.z, other.z)
        u1 = f.mul(self.x, z2z2)
        u2 = f.mul(other.x, z1z1)
        s1 = f.mul(self.y, f.mul(other.z, z2z2))
        s2 = f.mul(other.y, f.mul(self.z, z1z1))
        if u1 == u2:
            if s1 != s2:
                return JacobianPoint(self.curve, 1, 1, 0)
            return self.double()
        h = f.sub(u2, u1)
        r = f.sub(s2, s1)
        hh = f.mul(h, h)
        hhh = f.mul(h, hh)
        v = f.mul(u1, hh)
        x3 = f.sub(f.sub(f.mul(r, r), hhh), f.add(v, v))
        y3 = f.sub(f.mul(r, f.sub(v, x3)), f.mul(s1, hhh))
        z3 = f.mul(h, f.mul(self.z, other.z))
        return JacobianPoint(self.curve, x3, y3, z3)

    def __add__(self, other: "JacobianPoint") -> "JacobianPoint":
        return self.add(other)

    def __neg__(self) -> "JacobianPoint":
        return JacobianPoint(self.curve, self.x, self.curve.field.neg(self.y), self.z)

    # -- conversions ------------------------------------------------------------------

    def to_affine(self) -> AffinePoint:
        if self.is_infinity():
            return INFINITY
        f = self.curve.field
        z_inv = f.inv(self.z)
        z_inv2 = f.mul(z_inv, z_inv)
        x = f.mul(self.x, z_inv2)
        y = f.mul(self.y, f.mul(z_inv2, z_inv))
        return AffinePoint(self.curve, x, y, check=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JacobianPoint):
            return NotImplemented
        if self.is_infinity() or other.is_infinity():
            return self.is_infinity() and other.is_infinity()
        # Compare in the projective sense: X1*Z2^2 == X2*Z1^2 etc.
        f = self.curve.field
        z1z1 = f.mul(self.z, self.z)
        z2z2 = f.mul(other.z, other.z)
        if f.mul(self.x, z2z2) != f.mul(other.x, z1z1):
            return False
        return f.mul(self.y, f.mul(other.z, z2z2)) == f.mul(other.y, f.mul(self.z, z1z1))

    def __repr__(self) -> str:
        return f"JacobianPoint({self.x} : {self.y} : {self.z})"


def to_affine_many(points) -> "list[AffinePoint]":
    """Convert N Jacobian points (one curve) to affine with ONE field inversion.

    :meth:`JacobianPoint.to_affine` pays a modular inversion per point; for a
    batch of same-curve points Montgomery's trick
    (:meth:`~repro.field.fp.PrimeField.inv_many`) trades the N inversions for
    1 inversion + 3(N-1) multiplications over the Z coordinates.  Points at
    infinity pass through as :data:`INFINITY` and do not join the batch.
    This is the exit funnel the batched serving and bench paths route every
    per-session point output through.
    """
    points = list(points)
    results: "list[AffinePoint]" = [INFINITY] * len(points)
    finite = [(i, pt) for i, pt in enumerate(points) if not pt.is_infinity()]
    if not finite:
        return results
    f = finite[0][1].curve.field
    z_invs = f.inv_many([pt.z for _, pt in finite])
    for (i, pt), z_inv in zip(finite, z_invs):
        z_inv2 = f.mul(z_inv, z_inv)
        x = f.mul(pt.x, z_inv2)
        y = f.mul(pt.y, f.mul(z_inv2, z_inv))
        results[i] = AffinePoint(pt.curve, x, y, check=False)
    return results
