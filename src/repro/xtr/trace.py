"""XTR trace arithmetic.

An order-q subgroup element g of Fp6* (q | p^2 - p + 1) is represented by its
trace to Fp2:

    c_n = Tr_{Fp6/Fp2}(g^n) = g^n + g^(n*p^2) + g^(n*p^4)  in Fp2.

The conjugates g, g^(p^2), g^(p^4) are the roots of
``X^3 - c_1 X^2 + c_1^p X - 1``, so the traces satisfy the third-order linear
recurrence ``c_(n+3) = c_1 c_(n+2) - c_1^p c_(n+1) + c_n`` together with the
doubling/addition identities

    c_(2n)   = c_n^2 - 2 c_n^p,
    c_(m+n)  = c_m c_n - c_n^p c_(m-n) + c_(m-2n),
    c_(-n)   = c_n^p.

Exponentiation walks the exponent bits with the triple
``S_k = (c_(k-1), c_k, c_(k+1))`` exactly as in Lenstra-Verheul; each step
costs a handful of Fp2 multiplications, which is what makes XTR competitive
with CEILIDH (the comparison the paper cites).  Every identity used here is
cross-checked in the tests against direct Fp6 computation of the traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ParameterError
from repro.exp.trace import OpTrace
from repro.field.extension import ExtElement, ExtensionField
from repro.field.fp import PrimeField
from repro.field.fp2 import make_fp2
from repro.field.fp6 import Fp6Field, make_fp6
from repro.field.towers import F1ToF2Map, TowerFp6
from repro.nt.sampling import sample_exponent
from repro.torus.params import TorusParameters


@dataclass(frozen=True)
class XtrTrace:
    """A subgroup element in XTR representation: the Fp2 value Tr(g^n)."""

    coefficients: Tuple[int, int]

    def as_tuple(self) -> Tuple[int, int]:
        return self.coefficients


class XtrContext:
    """Trace arithmetic for one CEILIDH/XTR parameter set.

    The context carries the Fp2 field, the Frobenius (conjugation) map and the
    exponentiation ladder; it also knows how to compute traces directly from
    Fp6 elements, which the tests use to validate the recurrences and which
    applications use to derive an XTR representation of a torus element.
    """

    def __init__(self, params: TorusParameters, backend=None):
        self.params = params
        self._backend = backend
        self.fp = PrimeField(params.p, check_prime=False, backend=backend)
        self.fp2: ExtensionField = make_fp2(self.fp)
        self._fp6: Optional[Fp6Field] = None
        self._tower: Optional[TowerFp6] = None
        self._map: Optional[F1ToF2Map] = None
        self._generator_trace: Optional[XtrTrace] = None

    # -- Fp2 helpers --------------------------------------------------------------

    def _conjugate(self, a: ExtElement) -> ExtElement:
        """The Frobenius a -> a^p on Fp2: x -> x^2 = -1 - x."""
        a0, a1 = a.coeffs
        f = self.fp
        return self.fp2._from_coeffs([f.sub(a0, a1), f.neg(a1)])

    def element(self, coefficients: Tuple[int, int]) -> ExtElement:
        """Build an Fp2 element from *plain* trace coefficients."""
        return self.fp2(list(coefficients))

    def trace_value(self, element: ExtElement) -> XtrTrace:
        """Read an Fp2 element out as a (plain-coefficient) trace value."""
        f = self.fp
        return XtrTrace(coefficients=tuple(f.exit(c) for c in element.coeffs))

    # -- direct traces from Fp6 (reference path) -------------------------------------

    @property
    def fp6(self) -> Fp6Field:
        if self._fp6 is None:
            self._fp6 = make_fp6(self.fp)
            self._tower = TowerFp6(self.fp)
            self._map = F1ToF2Map(self._fp6, self._tower)
        return self._fp6

    def trace_of_fp6(self, value: ExtElement) -> XtrTrace:
        """Tr_{Fp6/Fp2} of an Fp6 element (direct computation, 3 conjugates)."""
        fp6 = self.fp6
        total = fp6.zero()
        for k in (0, 2, 4):
            total = fp6.add(total, fp6.frobenius(value, k))
        tower_value = self._map.to_f2(total)
        if not tower_value.a.in_base_field() or not tower_value.b.in_base_field():
            raise ParameterError("trace did not land in Fp2 (element not in Fp6?)")
        f = self.fp
        return XtrTrace(
            coefficients=(
                f.exit(tower_value.a.scalar_part()),
                f.exit(tower_value.b.scalar_part()),
            )
        )

    def generator_trace(self) -> XtrTrace:
        """Trace of the canonical order-q subgroup generator (shared with the torus)."""
        if self._generator_trace is None:
            from repro.torus.t6 import T6Group

            group = T6Group(self.params, backend=self._backend)
            self._generator_trace = self.trace_of_fp6(group.generator().value)
        return self._generator_trace

    # -- the XTR exponentiation ladder --------------------------------------------------

    def exponentiate(
        self, base_trace: XtrTrace, exponent: int, trace: Optional[OpTrace] = None
    ) -> XtrTrace:
        """Compute Tr(g^exponent) from c = Tr(g) using the LV triple ladder.

        ``trace``, when given, tallies the Fp2 multiplications of the ladder
        in the unified :class:`~repro.exp.trace.OpTrace` vocabulary: every
        :meth:`_double_trace` is one Fp2 squaring, every :meth:`_mixed` is two
        general Fp2 multiplications.  (The ladder has no single group
        operation the way torus/RSA/ECC do, so the counted unit here is the
        Fp2 multiplication — the quantity Lenstra-Verheul's own cost analysis
        is written in.)
        """
        if exponent < 0:
            # c_(-n) = c_n^p
            positive = self.exponentiate(base_trace, -exponent, trace=trace)
            return self.trace_value(self._conjugate(self.element(positive.coefficients)))
        fp2 = self.fp2
        c1 = self.element(base_trace.coefficients)
        c1_conj = self._conjugate(c1)
        three = fp2.from_base(3)

        if exponent == 0:
            return self.trace_value(three)
        if exponent == 1:
            return base_trace
        if exponent == 2:
            return self.trace_value(self._double_trace(c1, trace))

        # Triple S_k = (c_(k-1), c_k, c_(k+1)), starting at k = 1.
        c_prev, c_cur, c_next = three, c1, self._double_trace(c1, trace)
        k = 1
        for bit in bin(exponent)[3:]:
            c2k_minus_1 = self._mixed(c_prev, c_cur, c_next, c1_conj, conj_last=True, trace=trace)
            c2k = self._double_trace(c_cur, trace)
            c2k_plus_1 = self._mixed(c_next, c_cur, c_prev, c1, conj_last=True, trace=trace)
            if bit == "0":
                c_prev, c_cur, c_next = c2k_minus_1, c2k, c2k_plus_1
                k = 2 * k
            else:
                c2k_plus_2 = self._double_trace(c_next, trace)
                c_prev, c_cur, c_next = c2k, c2k_plus_1, c2k_plus_2
                k = 2 * k + 1
        if k != exponent:  # pragma: no cover - ladder invariant
            raise ParameterError("XTR ladder lost track of the exponent")
        return self.trace_value(c_cur)

    def _double_trace(self, c_n: ExtElement, trace: Optional[OpTrace] = None) -> ExtElement:
        """c_(2n) = c_n^2 - 2 c_n^p.

        The doubling of the conjugate is an addition (the platform's MA
        microcode), not a scalar multiplication, so the executed operation
        stream matches :func:`repro.soc.sequences.xtr_double_step_program`.
        """
        fp2 = self.fp2
        square = fp2.mul(c_n, c_n)
        conj = self._conjugate(c_n)
        twice_conj = fp2.add(conj, conj)
        if trace is not None:
            trace.squarings += 1
        return fp2.sub(square, twice_conj)

    def _mixed(
        self,
        c_a: ExtElement,
        c_k: ExtElement,
        c_b: ExtElement,
        c_factor: ExtElement,
        conj_last: bool,
        trace: Optional[OpTrace] = None,
    ) -> ExtElement:
        """The off-by-one products of the ladder.

        Computes ``c_a * c_k - c_factor * c_k^p + c_b^p`` which instantiates
        both c_(2k-1) (with c_a = c_(k-1), c_b = c_(k+1), c_factor = c_1^p)
        and c_(2k+1) (with c_a = c_(k+1), c_b = c_(k-1), c_factor = c_1).
        """
        fp2 = self.fp2
        term1 = fp2.mul(c_a, c_k)
        term2 = fp2.mul(c_factor, self._conjugate(c_k))
        term3 = self._conjugate(c_b) if conj_last else c_b
        if trace is not None:
            trace.multiplications += 2
        return fp2.add(fp2.sub(term1, term2), term3)

    # -- operation counting ------------------------------------------------------------

    def ladder_multiplication_count(self, exponent_bits: int) -> int:
        """Fp2 multiplications per exponentiation (4 per bit in this ladder).

        Each Fp2 multiplication is 3-4 Fp multiplications, so an XTR
        exponentiation costs roughly 12-16 Fp multiplications per exponent
        bit, versus 18 * 1.5 = 27 for CEILIDH's binary method — the flavour of
        trade-off reported by Granger, Page and Stam.
        """
        return 4 * exponent_bits

    def random_exponent(self, rng: Optional[random.Random] = None) -> int:
        return sample_exponent(self.params.q, rng)
