"""XTR under the unified PKC layer.

XTR ships exactly what Lenstra-Verheul defined and the repo implements: a
trace-based Diffie-Hellman.  The adapter advertises the single
``key-agreement`` capability — the generic comparison loop reads that and
skips the other protocols without any XTR-specific branch — and transmits
public values in the existing two-coefficient Fp2 encoding (the same ~2 log p
bits as a compressed CEILIDH element).

The headline operation is one full trace-ladder exponentiation.  Its
:class:`~repro.exp.trace.OpTrace` counts Fp2 multiplications (one "squaring"
per ``c_2n`` step, two general multiplications per off-by-one product), and
the platform projection prices each through the 3 MM + 6 MA/MS Karatsuba
sequence of :func:`repro.soc.sequences.xtr_fp2_multiplication_program` under
the Type-B hierarchy.  The paper cites this comparison rather than running
it, so the row carries no ``paper_ms``.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.exp.trace import OpTrace
from repro.pkc.base import KEY_AGREEMENT, PkcScheme, SchemeKeyPair
from repro.pkc.profile import canonical_exponent
from repro.torus.params import TorusParameters
from repro.xtr.keyagreement import XtrSystem
from repro.xtr.trace import XtrTrace

__all__ = ["XtrScheme"]


class XtrScheme(PkcScheme):
    """XTR trace Diffie-Hellman as a registry scheme."""

    capabilities = frozenset({KEY_AGREEMENT})
    headline_operation = "XTR trace-ladder exponentiation (Fp2 multiplications)"

    def __init__(
        self,
        params: "TorusParameters | str" = "ceilidh-170",
        name: Optional[str] = None,
        security_bits: int = 80,
        paper_ms: Optional[float] = None,
        backend=None,
    ):
        from repro.field.backend import get_backend

        self.field_backend = get_backend(backend)
        self.system = XtrSystem(params, backend=self.field_backend)
        self.params = self.system.params
        self.name = name or f"xtr-{self.params.p_bits}"
        self.bit_length = self.params.p_bits
        self.security_bits = security_bits
        self.paper_ms = paper_ms

    # -- keys -------------------------------------------------------------------

    def keygen(
        self, rng: Optional[random.Random] = None, trace: Optional[OpTrace] = None
    ) -> SchemeKeyPair:
        keypair = self.system.generate_keypair(rng, count=trace)
        return SchemeKeyPair(
            scheme=self.name,
            public_wire=self.system.encode_trace(keypair.public),
            native=keypair,
        )

    def public_key_size(self) -> int:
        return self.system.public_size_bytes()

    def decode_public(self, data: bytes) -> XtrTrace:
        return self.system.decode_trace(data)

    def encode_public(self, public: XtrTrace) -> bytes:
        return self.system.encode_trace(public)

    # -- key agreement -----------------------------------------------------------

    def key_agreement(
        self,
        own: SchemeKeyPair,
        peer_public: bytes,
        info: bytes = b"",
        length: int = 32,
        trace: Optional[OpTrace] = None,
    ) -> bytes:
        peer = self.system.decode_trace(peer_public)
        return self.system.derive_key(own.native, peer, info=info, length=length, count=trace)

    # -- platform projection ---------------------------------------------------------

    def headline_exponentiation(self, trace: OpTrace) -> None:
        """One ``p_bits``-bit trace-ladder exponentiation from Tr(g)."""
        self.system.context.exponentiate(
            self.system.context.generator_trace(),
            canonical_exponent(self.bit_length),
            trace=trace,
        )

    def platform_cycles_per_operation(self, platform) -> Tuple[int, int]:
        """Per-unit costs from the ladder's *step* sequences.

        A counted "squaring" is one ``c_2n`` double step (its own level-2
        sequence); a counted "multiplication" is half of a mixed step, whose
        sequence computes two of the off-by-one products' Fp2
        multiplications per issue.  Charging the full step sequences — with
        the conjugations and additions between the Karatsuba products —
        rather than a bare Fp2 multiplication keeps the analytic projection
        equal to what the ladder's executed word-operation stream measures.
        """
        dbl, mixed = platform.xtr_step_costs(self.params.p)
        return dbl.type_b_cycles, (mixed.type_b_cycles + 1) // 2

    def headline_modulus(self) -> int:
        return self.params.p

    def headline_sequence_count(self, trace: OpTrace) -> int:
        # Each mixed-step sequence yields two counted multiplications.
        return trace.squarings + (trace.multiplications + 1) // 2
