"""XTR — the trace-based sibling of CEILIDH.

The paper motivates CEILIDH by comparison with XTR (Lenstra-Verheul), citing
Granger, Page and Stam's "A comparison of CEILIDH and XTR" (reference [5]):
both systems work in the same order-q subgroup of Fp6* (q | p^2 - p + 1), but
XTR represents an element by its trace over Fp2 — one Fp2 value, a factor-3
compression like CEILIDH's — and exponentiates with third-order
Lucas-sequence style recurrences instead of full Fp6 arithmetic.

This package implements XTR over the same parameter sets as the torus package
(the subgroup is literally the same), so the library can reproduce the
CEILIDH-versus-XTR comparison the paper leans on: identical bandwidth,
different per-exponentiation operation counts.
"""

from repro.xtr.trace import XtrContext, XtrTrace
from repro.xtr.keyagreement import XtrKeyPair, XtrSystem

__all__ = ["XtrContext", "XtrTrace", "XtrKeyPair", "XtrSystem"]
