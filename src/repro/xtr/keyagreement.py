"""XTR key agreement (Diffie-Hellman over traces).

Alice and Bob share the public trace c = Tr(g); each picks a secret exponent
and publishes Tr(g^a) / Tr(g^b) — a single Fp2 value, the same ~2 log p bits
of bandwidth as a compressed CEILIDH element.  The shared secret Tr(g^(ab))
is computed by running the trace ladder on the peer's public value, because
the recurrences only ever reference the base trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.audit.annotations import Secret
from repro.errors import ParameterError
from repro.exp.trace import OpTrace
from repro.nt.sampling import sample_exponent
from repro.torus.params import TorusParameters, get_parameters
from repro.xtr.trace import XtrContext, XtrTrace


@dataclass
class XtrKeyPair:
    """An XTR key pair: secret exponent and public trace."""

    private: Secret[int]
    public: XtrTrace


class XtrSystem:
    """XTR Diffie-Hellman over a CEILIDH parameter set (same subgroup)."""

    def __init__(self, params: TorusParameters | str = "ceilidh-170", backend=None):
        if isinstance(params, str):
            params = get_parameters(params)
        self.params = params
        self.context = XtrContext(params, backend=backend)

    def generate_keypair(
        self, rng: Optional[random.Random] = None, count: Optional[OpTrace] = None
    ) -> XtrKeyPair:
        private = sample_exponent(self.params.q, rng)
        public = self.context.exponentiate(
            self.context.generator_trace(), private, trace=count
        )
        return XtrKeyPair(private=private, public=public)

    def shared_trace(
        self, own: XtrKeyPair, peer_public: XtrTrace, count: Optional[OpTrace] = None
    ) -> XtrTrace:
        """Tr(g^(ab)) computed from the peer's public trace."""
        return self.context.exponentiate(peer_public, own.private, trace=count)

    def derive_key(
        self,
        own: XtrKeyPair,
        peer_public: XtrTrace,
        info: bytes = b"",
        length: int = 32,
        count: Optional[OpTrace] = None,
    ) -> bytes:
        """Shared trace followed by a SHA-256 counter-mode KDF."""
        from repro.pkc.base import kdf

        shared = self.shared_trace(own, peer_public, count=count)
        return kdf(self.encode_trace(shared), info, length)

    def encode_trace(self, trace: XtrTrace) -> bytes:
        """Fixed-width big-endian encoding of the two Fp coefficients."""
        width = (self.params.p.bit_length() + 7) // 8
        a, b = trace.coefficients
        if not (0 <= a < self.params.p and 0 <= b < self.params.p):
            raise ParameterError("trace coefficients out of range")
        return a.to_bytes(width, "big") + b.to_bytes(width, "big")

    def decode_trace(self, data: bytes) -> XtrTrace:
        width = (self.params.p.bit_length() + 7) // 8
        if len(data) != 2 * width:
            raise ParameterError(f"an encoded trace is {2 * width} bytes, got {len(data)}")
        a = int.from_bytes(data[:width], "big")
        b = int.from_bytes(data[width:], "big")
        if a >= self.params.p or b >= self.params.p:
            raise ParameterError("encoded coefficient exceeds the field size")
        return XtrTrace(coefficients=(a, b))

    def public_size_bytes(self) -> int:
        """Bytes on the wire per public value (same as compressed CEILIDH)."""
        return 2 * ((self.params.p.bit_length() + 7) // 8)
