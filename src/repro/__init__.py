"""Reproduction of "FPGA Design for Algebraic Tori-Based Public-Key Cryptography".

Fan, Batina, Sakiyama and Verbauwhede (DATE 2008) implement the CEILIDH
torus-based cryptosystem, prime-field ECC and RSA on a MicroBlaze-controlled
multicore FPGA coprocessor.  This package rebuilds the whole stack in Python:

* :mod:`repro.nt`, :mod:`repro.field` — number theory and the Fp / Fp2 / Fp3 /
  Fp6 tower (with the paper's 18M Fp6 multiplication),
* :mod:`repro.exp` — the unified exponentiation engine: one strategy kernel
  (binary, NAF, wNAF, sliding/fixed window, Montgomery ladder, fixed-base
  tables, Shamir double exponentiation) powering the field, torus,
  Montgomery/RSA and ECC layers,
* :mod:`repro.montgomery` — FIOS Montgomery multiplication and the multi-core
  carry-local schedule of Fig. 5,
* :mod:`repro.torus` — T6(Fp), the factor-3 compression maps and the CEILIDH
  protocols (the paper's primary subject),
* :mod:`repro.ecc`, :mod:`repro.rsa` — the two baselines of Table 3,
* :mod:`repro.pkc` — the unified protocol layer: one KeyAgreement /
  PublicKeyEncryption / Signature interface and a string-keyed registry
  (``get_scheme("ceilidh-170")``, ``"ecdh-p160"``, ``"rsa-1024"``,
  ``"xtr-170"``) with uniform Table 3 profiling and batched serving runs,
* :mod:`repro.serve` — the online serving layer: an asyncio TCP server
  speaking a framed wire protocol over the registry schemes, a batching
  request scheduler with bounded-queue backpressure and thread/process
  worker pools, and a concurrent load-generator client
  (``python -m repro.serve serve|load``),
* :mod:`repro.soc` — the cycle-accurate platform simulator (7-instruction
  cores, single-port DataRAM, Type-A/Type-B hierarchies, MicroBlaze interface
  cost model, area model),
* :mod:`repro.analysis` — regeneration of every table and figure.
"""

__version__ = "1.0.0"

from repro import errors
from repro.pkc import available_schemes, build_profile, get_scheme
from repro.torus.ceilidh import CeilidhSystem
from repro.torus.params import get_parameters, generate_parameters
from repro.torus.t6 import T6Group
from repro.soc.system import Platform, PlatformConfig

__all__ = [
    "__version__",
    "errors",
    "CeilidhSystem",
    "get_parameters",
    "generate_parameters",
    "T6Group",
    "Platform",
    "PlatformConfig",
    "get_scheme",
    "available_schemes",
    "build_profile",
]
