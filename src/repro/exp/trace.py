"""The unified operation trace emitted by every exponentiation strategy.

The paper's cost story reduces torus exponentiation, RSA and ECC scalar
multiplication to the same shape — a loop of group squarings/doublings and
general multiplications/additions — so one tally type serves all of them.
:class:`OpTrace` replaces the three historical per-layer dataclasses
(``ExponentiationCount`` on the torus, ``ExponentiationTrace`` in the
Montgomery domain, ``ScalarMultCount`` on curves), which survive as thin
subclasses for backwards compatibility.

For additive groups (elliptic curves) the same counters are readable and
writable under the names ``doublings`` / ``additions``; a squaring *is* a
doubling, a general multiplication *is* a point addition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.field.opcount import OperationCounts


@dataclass
class OpTrace:
    """Tally of group operations performed by one exponentiation.

    ``squarings`` and ``multiplications`` are the two quantities the paper's
    Tables 2-3 are written in; ``inversions`` counts base/table inversions
    (free on the torus via Frobenius and on curves via negation, so they are
    kept out of :attr:`total`).
    """

    squarings: int = 0
    multiplications: int = 0
    inversions: int = 0

    # -- additive-notation aliases (ECC vocabulary) -------------------------

    @property
    def doublings(self) -> int:
        """Alias of :attr:`squarings` for additively-written groups."""
        return self.squarings

    @doublings.setter
    def doublings(self, value: int) -> None:
        self.squarings = value

    @property
    def additions(self) -> int:
        """Alias of :attr:`multiplications` for additively-written groups."""
        return self.multiplications

    @additions.setter
    def additions(self, value: int) -> None:
        self.multiplications = value

    # -- aggregate views ----------------------------------------------------

    @property
    def total(self) -> int:
        """Squarings plus general multiplications (the Table 3 quantity)."""
        return self.squarings + self.multiplications

    def as_dict(self) -> Dict[str, int]:
        return {
            "squarings": self.squarings,
            "multiplications": self.multiplications,
            "inversions": self.inversions,
        }

    def reset(self) -> None:
        self.squarings = self.multiplications = self.inversions = 0

    def merge(self, other: "OpTrace") -> None:
        """Accumulate another trace into this one in place."""
        self.squarings += other.squarings
        self.multiplications += other.multiplications
        self.inversions += other.inversions

    def __add__(self, other: "OpTrace") -> "OpTrace":
        return OpTrace(
            self.squarings + other.squarings,
            self.multiplications + other.multiplications,
            self.inversions + other.inversions,
        )

    def __sub__(self, other: "OpTrace") -> "OpTrace":
        return OpTrace(
            self.squarings - other.squarings,
            self.multiplications - other.multiplications,
            self.inversions - other.inversions,
        )

    # -- interop with the base-field tally ----------------------------------

    def to_operation_counts(
        self,
        mul_cost: Optional["OperationCounts"] = None,
        sqr_cost: Optional["OperationCounts"] = None,
        inv_cost: Optional["OperationCounts"] = None,
    ) -> "OperationCounts":
        """Expand the group-operation tally into base-field Fp operations.

        ``mul_cost`` / ``sqr_cost`` / ``inv_cost`` give the Fp cost of one
        group multiplication / squaring / inversion (e.g. the paper's
        18M + ~60A per Fp6 multiplication).  With no costs given, each group
        multiplication and squaring is charged as one Fp multiplication —
        the right default for exponentiation directly over Fp.
        """
        from repro.field.opcount import OperationCounts

        if mul_cost is None:
            mul_cost = OperationCounts(mul=1)
        if sqr_cost is None:
            sqr_cost = mul_cost
        out = mul_cost.scaled(self.multiplications) + sqr_cost.scaled(self.squarings)
        if inv_cost is not None:
            out = out + inv_cost.scaled(self.inversions)
        return out


class ExponentiationCount(OpTrace):
    """Backwards-compatible torus-layer name for :class:`OpTrace`."""


class ExponentiationTrace(OpTrace):
    """Backwards-compatible Montgomery-layer name for :class:`OpTrace`."""


class ScalarMultCount(OpTrace):
    """Backwards-compatible ECC-layer name; constructed in additive terms."""

    def __init__(self, doublings: int = 0, additions: int = 0, inversions: int = 0):
        super().__init__(
            squarings=doublings, multiplications=additions, inversions=inversions
        )
