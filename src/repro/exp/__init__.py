"""The unified exponentiation engine.

Every public-key operation the paper costs out — torus exponentiation
(CEILIDH), RSA in the Montgomery domain, ECC scalar multiplication — is one
exponentiation loop over some group.  This package provides that loop once:

* :mod:`repro.exp.group` — the minimal :class:`Group` protocol plus adapters
  for each arithmetic layer (Fp, extension fields, the F2 tower, polynomial
  quotient rings, T6(Fp), the Montgomery domain and Jacobian ECC),
* :mod:`repro.exp.strategies` — the strategy registry (binary, NAF, wNAF,
  sliding window, fixed window, Montgomery ladder, fixed-base tables and
  Shamir double exponentiation) behind :func:`exponentiate`,
* :mod:`repro.exp.trace` — the single :class:`OpTrace` tally all strategies
  emit, which the per-layer counting dataclasses now subclass.

The per-layer public functions (``exponentiate_binary``, ``scalar_mult_*``,
``montgomery_exponent`` ...) remain available as thin wrappers.
"""

from repro.exp.group import (
    ExtensionExpGroup,
    FieldExpGroup,
    Group,
    JacobianExpGroup,
    MontgomeryExpGroup,
    PolyModExpGroup,
    TorusExpGroup,
    TowerExpGroup,
)
from repro.exp.strategies import (
    STRATEGIES,
    FixedBaseTable,
    available_strategies,
    default_window_bits,
    double_exponentiate,
    expected_counts,
    exponentiate,
    exponentiate_many,
    exponentiate_shared_base,
    get_strategy,
    naf_digits,
    register_strategy,
    select_strategy,
    wnaf_digits,
)
from repro.exp.trace import OpTrace

__all__ = [
    "Group",
    "FieldExpGroup",
    "ExtensionExpGroup",
    "TowerExpGroup",
    "PolyModExpGroup",
    "TorusExpGroup",
    "MontgomeryExpGroup",
    "JacobianExpGroup",
    "OpTrace",
    "STRATEGIES",
    "available_strategies",
    "register_strategy",
    "get_strategy",
    "select_strategy",
    "default_window_bits",
    "exponentiate",
    "exponentiate_many",
    "exponentiate_shared_base",
    "double_exponentiate",
    "expected_counts",
    "FixedBaseTable",
    "naf_digits",
    "wnaf_digits",
]
