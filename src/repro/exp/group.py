"""The minimal group interface the exponentiation engine computes over.

Every public-key operation the paper measures is an exponentiation in *some*
group: Fp* (field powers), Fp6*/the tower (CEILIDH arithmetic), T6(Fp) (the
compressed torus), the Montgomery domain mod N (RSA), and E(Fp) (ECC, written
additively).  A :class:`Group` adapter names the three operations the engine
needs — composition, squaring/doubling and inversion — plus a
``cheap_inverse`` flag: on the torus inversion is one (free) Frobenius map and
on a curve it is a sign flip, which is what makes signed-digit recodings (NAF,
wNAF) profitable there.

Adapters deliberately lazy-import the layers they wrap so that the engine
package itself has no dependency on any arithmetic layer (the field layer
imports the engine, not vice versa).
"""

from __future__ import annotations

from typing import Any, Sequence


class Group:
    """Abstract multiplicative-notation group over opaque elements.

    Subclasses supply :meth:`identity`, :meth:`op` and (if supported)
    :meth:`inverse`; :meth:`square` defaults to ``op(a, a)`` but should be
    overridden when the layer has a dedicated (or dedicatedly *counted*)
    squaring.
    """

    #: Human-readable name used in reprs and error messages.
    name: str = "group"

    #: True when inversion is (nearly) free — a Frobenius application on the
    #: torus, a Y-coordinate negation on a curve — so signed-digit strategies
    #: cost nothing extra.
    cheap_inverse: bool = False

    def identity(self) -> Any:
        raise NotImplementedError

    def op(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def square(self, a: Any) -> Any:
        return self.op(a, a)

    def inverse(self, a: Any) -> Any:
        raise NotImplementedError(f"{self.name} does not support inversion")

    def is_identity(self, a: Any) -> bool:
        return a == self.identity()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class FieldExpGroup(Group):
    """Fp* through a :class:`~repro.field.fp.PrimeField` (plain or counting).

    Elements are reduced integers; routing ``square`` through ``field.sqr``
    keeps the counting subclass's one-multiplication charge per squaring.
    """

    def __init__(self, field):
        self.field = field
        self.name = f"Fp(p={field.p})"

    def identity(self) -> int:
        # ``one_value`` is the field's *resident* 1 (R mod p under a
        # Montgomery backend); bare fields predating the backend layer
        # fall back to the literal.
        return getattr(self.field, "one_value", 1)

    def op(self, a: int, b: int) -> int:
        return self.field.mul(a, b)

    def square(self, a: int) -> int:
        return self.field.sqr(a)

    def inverse(self, a: int) -> int:
        return self.field.inv(a)

    def is_identity(self, a: int) -> bool:
        return a == self.identity()


class ExtensionExpGroup(Group):
    """The unit group of an :class:`~repro.field.extension.ExtensionField`.

    Also covers :class:`~repro.field.fp6.Fp6Field`, whose overridden ``mul``
    is the paper's 18M algorithm.
    """

    def __init__(self, field):
        self.field = field
        self.name = f"{field.name}(p={field.base.p})*"

    def identity(self):
        return self.field.one()

    def op(self, a, b):
        return self.field.mul(a, b)

    def square(self, a):
        return self.field.sqr(a)

    def inverse(self, a):
        return self.field.inv(a)

    def is_identity(self, a) -> bool:
        return a.is_one()


class TowerExpGroup(Group):
    """The unit group of the F2 tower representation (Fp3[x]/(x^2+x+1))."""

    def __init__(self, tower):
        self.tower = tower
        self.name = f"F2(p={tower.base.p})*"

    def identity(self):
        return self.tower.one()

    def op(self, a, b):
        return self.tower.mul(a, b)

    def inverse(self, a):
        return self.tower.inv(a)

    def is_identity(self, a) -> bool:
        return a.is_one()


class PolyModExpGroup(Group):
    """(Fp[t]/(m))* on raw little-endian coefficient lists.

    Backs :func:`repro.field.poly.poly_pow_mod`; elements are the plain
    ``Poly`` lists that module works with.
    """

    def __init__(self, field, modulus: Sequence[int]):
        from repro.field import poly as P

        self._P = P
        self.field = field
        self.modulus = list(modulus)
        self.name = f"Fp[t]/(deg {P.degree(self.modulus)})"

    def identity(self):
        return [getattr(self.field, "one_value", 1)]

    def op(self, a, b):
        P = self._P
        return P.poly_mod(self.field, P.poly_mul(self.field, a, b), self.modulus)

    def inverse(self, a):
        return self._P.poly_inverse_mod(self.field, a, self.modulus)

    def is_identity(self, a) -> bool:
        return self._P.trim(a) == self.identity()


class TorusExpGroup(Group):
    """T6(Fp) on :class:`~repro.torus.t6.TorusElement` values.

    Inversion is one Frobenius application (``alpha^-1 = alpha^(p^3)``), so
    ``cheap_inverse`` is set and the engine's auto-selection picks wNAF.
    """

    cheap_inverse = True

    def __init__(self, group):
        from repro.torus.t6 import TorusElement

        self._TorusElement = TorusElement
        self.group = group
        self.fp6 = group.fp6
        self.name = f"T6(p={group.params.p})"

    def identity(self):
        return self.group.identity()

    def op(self, a, b):
        # Engine operands are always elements of this one group, so the
        # cross-group validation of TorusElement.__mul__ is skipped here —
        # one Fp6 multiplication and a raw wrap per group operation.
        return self._TorusElement(self.group, self.fp6.mul(a.value, b.value))

    def square(self, a):
        return self._TorusElement(self.group, self.fp6.sqr(a.value))

    def inverse(self, a):
        return a.inverse()

    def is_identity(self, a) -> bool:
        return a.is_identity()


class MontgomeryExpGroup(Group):
    """(Z/N)* on Montgomery-domain residues of a ``MontgomeryDomain``.

    Callers convert in and out of the domain; every engine operation is one
    Montgomery multiplication, the unit the platform's RSA timing counts.
    """

    def __init__(self, domain):
        self.domain = domain
        self.name = f"Mont(N~2^{domain.modulus.bit_length()})"

    def identity(self) -> int:
        return self.domain.one()

    def op(self, a: int, b: int) -> int:
        return self.domain.mont_mul(a, b)

    def square(self, a: int) -> int:
        return self.domain.mont_sqr(a)

    def inverse(self, a: int) -> int:
        from repro.nt.modular import modinv

        domain = self.domain
        return domain.to_montgomery(modinv(domain.from_montgomery(a), domain.modulus))

    def is_identity(self, a: int) -> bool:
        return a == self.domain.one()


class JacobianExpGroup(Group):
    """E(Fp) in Jacobian coordinates, written multiplicatively for the engine.

    ``op`` is point addition, ``square`` is the dedicated doubling formula and
    ``inverse`` is negation (free), so signed recodings apply.
    """

    cheap_inverse = True

    def __init__(self, curve):
        from repro.ecc.point import JacobianPoint

        self._JacobianPoint = JacobianPoint
        self.curve = curve
        self.name = f"E(Fp(p={curve.field.p}))"

    def identity(self):
        return self._JacobianPoint(self.curve, 1, 1, 0)

    def op(self, a, b):
        return a.add(b)

    def square(self, a):
        return a.double()

    def inverse(self, a):
        return -a

    def is_identity(self, a) -> bool:
        return a.is_infinity()
