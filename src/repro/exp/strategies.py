"""The strategy kernel: every exponentiation loop in the library, once.

Each strategy takes a :class:`~repro.exp.group.Group`, a base element and a
non-negative exponent, optionally records group operations into an
:class:`~repro.exp.trace.OpTrace`, and returns the power.  The same eight
strategies therefore serve field powers, torus exponentiation, Montgomery/RSA
exponentiation and ECC scalar multiplication:

=================  ==========================================================
``binary``         left-to-right square-and-multiply (the paper's strategy)
``naf``            signed non-adjacent form, ~n/3 multiplications
``wnaf``           width-w NAF with odd-power table, ~n/(w+1) multiplications
``sliding``        sliding window over an odd-power table (no inversions)
``window``         fixed 2^w-entry window (the historical windowed variant)
``ladder``         Montgomery ladder (regular pattern, side-channel shape)
``fixed_base``     full precomputed power table, zero online squarings
``shamir``         Shamir/Straus simultaneous double exponentiation
=================  ==========================================================

Signed strategies pay one inversion per distinct negative digit value, which
is free exactly where the paper exploits it (torus Frobenius, point negation);
:func:`select_strategy` uses the group's ``cheap_inverse`` flag to pick wNAF
there and the inversion-free sliding window elsewhere.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import ParameterError
from repro.exp.group import Group
from repro.exp.trace import OpTrace

Strategy = Callable[..., Any]

#: Name -> strategy function.  Populated by :func:`register_strategy`.
STRATEGIES: Dict[str, Strategy] = {}


def register_strategy(name: str) -> Callable[[Strategy], Strategy]:
    def wrap(fn: Strategy) -> Strategy:
        STRATEGIES[name] = fn
        return fn

    return wrap


def get_strategy(name: str) -> Strategy:
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ParameterError(
            f"unknown exponentiation strategy {name!r}; "
            f"available: {', '.join(available_strategies())}"
        ) from None


def available_strategies() -> List[str]:
    return sorted(STRATEGIES)


# ---------------------------------------------------------------------------
# Trace bookkeeping and recoding helpers.
# ---------------------------------------------------------------------------


def _sq(trace: Optional[OpTrace]) -> None:
    if trace is not None:
        trace.squarings += 1


def _mul(trace: Optional[OpTrace]) -> None:
    if trace is not None:
        trace.multiplications += 1


def _inv(trace: Optional[OpTrace]) -> None:
    if trace is not None:
        trace.inversions += 1


def naf_digits(exponent: int) -> List[int]:
    """Non-adjacent form, least-significant digit first, digits in {-1, 0, 1}."""
    digits: List[int] = []
    while exponent > 0:
        if exponent & 1:
            digit = 2 - (exponent % 4)
            exponent -= digit
        else:
            digit = 0
        digits.append(digit)
        exponent >>= 1
    return digits


def wnaf_digits(exponent: int, width: int) -> List[int]:
    """Width-``w`` NAF, least-significant first; non-zero digits are odd and
    lie in ``(-2^(w-1), 2^(w-1))``, with at least ``w-1`` zeros between them."""
    if width < 2:
        return naf_digits(exponent)
    digits: List[int] = []
    modulus = 1 << width
    half = 1 << (width - 1)
    while exponent > 0:
        if exponent & 1:
            digit = exponent % modulus
            if digit >= half:
                digit -= modulus
            exponent -= digit
        else:
            digit = 0
        digits.append(digit)
        exponent >>= 1
    return digits


def default_window_bits(exponent_bits: int) -> int:
    """Window width minimising table-build plus per-digit multiplications."""
    if exponent_bits < 24:
        return 2
    if exponent_bits < 80:
        return 3
    if exponent_bits < 240:
        return 4
    if exponent_bits < 768:
        return 5
    return 6


def check_window_bits(window_bits: int) -> None:
    if not 1 <= window_bits <= 8:
        raise ParameterError("window width must be between 1 and 8 bits")


def _odd_power_table(
    group: Group, base: Any, limit: int, trace: Optional[OpTrace]
) -> Dict[int, Any]:
    """Precompute ``{1: g, 3: g^3, ..., limit: g^limit}`` for odd ``limit >= 1``."""
    table = {1: base}
    if limit >= 3:
        square = group.square(base)
        _sq(trace)
        current = base
        for k in range(3, limit + 1, 2):
            current = group.op(current, square)
            _mul(trace)
            table[k] = current
    return table


# ---------------------------------------------------------------------------
# Strategies.  All take exponent >= 0 (the front door handles negatives).
# ---------------------------------------------------------------------------


@register_strategy("binary")
def exp_binary(
    group: Group, base: Any, exponent: int, trace: Optional[OpTrace] = None, **_: Any
) -> Any:
    """Left-to-right square-and-multiply: n-1 squarings, popcount-1 products."""
    if exponent == 0:
        return group.identity()
    result = base
    for bit in bin(exponent)[3:]:
        result = group.square(result)
        _sq(trace)
        if bit == "1":
            result = group.op(result, base)
            _mul(trace)
    return result


def _signed_digit_walk(
    group: Group,
    digits: List[int],
    lookup: Callable[[int], Any],
    trace: Optional[OpTrace],
) -> Any:
    """Left-to-right walk over signed digits (most-significant first).

    The accumulator stays un-materialised (``None``) until the first non-zero
    digit, so leading squarings of the identity are neither performed nor
    counted — matching how the historical per-layer loops behaved.
    """
    result = None
    for digit in digits:
        if result is not None:
            result = group.square(result)
            _sq(trace)
        if digit:
            operand = lookup(digit)
            if result is None:
                result = operand
            else:
                result = group.op(result, operand)
                _mul(trace)
    return group.identity() if result is None else result


@register_strategy("naf")
def exp_naf(
    group: Group, base: Any, exponent: int, trace: Optional[OpTrace] = None, **_: Any
) -> Any:
    """Signed-digit (NAF) recoding: ~n/3 general multiplications.

    Pays one base inversion, which is free where ``cheap_inverse`` holds (the
    torus's Frobenius, point negation on a curve).
    """
    if exponent == 0:
        return group.identity()
    digits = naf_digits(exponent)
    inverse = None
    if any(d < 0 for d in digits):
        inverse = group.inverse(base)
        _inv(trace)
    return _signed_digit_walk(
        group,
        list(reversed(digits)),
        lambda d: base if d > 0 else inverse,
        trace,
    )


@register_strategy("wnaf")
def exp_wnaf(
    group: Group,
    base: Any,
    exponent: int,
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
    **_: Any,
) -> Any:
    """Width-w NAF with a table of odd powers: ~n/(w+1) multiplications."""
    if window_bits is None:
        window_bits = max(2, default_window_bits(exponent.bit_length()))
    check_window_bits(window_bits)
    if exponent == 0:
        return group.identity()
    digits = wnaf_digits(exponent, window_bits)
    largest = max((abs(d) for d in digits if d), default=1)
    table = _odd_power_table(group, base, largest, trace)
    negatives: Dict[int, Any] = {}

    def lookup(digit: int) -> Any:
        if digit > 0:
            return table[digit]
        cached = negatives.get(-digit)
        if cached is None:
            cached = group.inverse(table[-digit])
            _inv(trace)
            negatives[-digit] = cached
        return cached

    return _signed_digit_walk(group, list(reversed(digits)), lookup, trace)


@register_strategy("sliding")
def exp_sliding(
    group: Group,
    base: Any,
    exponent: int,
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
    **_: Any,
) -> Any:
    """Sliding window over odd powers — the inversion-free fast path."""
    if window_bits is None:
        window_bits = default_window_bits(exponent.bit_length())
    check_window_bits(window_bits)
    if exponent == 0:
        return group.identity()
    if window_bits == 1:
        return exp_binary(group, base, exponent, trace)
    bits = bin(exponent)[2:]
    # First pass: recode into (chunk, width) events — chunk 0 is one squaring,
    # an odd chunk is `width` squarings then one table multiplication.
    events: List[tuple] = []
    i = 0
    while i < len(bits):
        if bits[i] == "0":
            events.append((0, 1))
            i += 1
            continue
        # Longest window starting here that ends in a 1 (so the chunk is odd).
        j = min(i + window_bits, len(bits))
        while bits[j - 1] == "0":
            j -= 1
        events.append((int(bits[i:j], 2), j - i))
        i = j
    # Size the table by the largest chunk that actually occurs, so sparse
    # exponents (e.g. RSA's 65537) never pay for unused entries.
    largest = max(chunk for chunk, _width in events)
    table = _odd_power_table(group, base, largest, trace)
    result = None
    for chunk, width in events:
        if chunk == 0:
            result = group.square(result)
            _sq(trace)
        elif result is None:
            result = table[chunk]
        else:
            for _unused in range(width):
                result = group.square(result)
                _sq(trace)
            result = group.op(result, table[chunk])
            _mul(trace)
    return result


@register_strategy("window")
def exp_window(
    group: Group,
    base: Any,
    exponent: int,
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
    **_: Any,
) -> Any:
    """Fixed 2^w-entry window (the historical windowed variant of each layer)."""
    if window_bits is None:
        window_bits = default_window_bits(exponent.bit_length())
    check_window_bits(window_bits)
    if exponent == 0:
        return group.identity()
    table = [group.identity(), base]
    for _unused in range((1 << window_bits) - 2):
        table.append(group.op(table[-1], base))
        _mul(trace)
    digits: List[int] = []
    e = exponent
    mask = (1 << window_bits) - 1
    while e:
        digits.append(e & mask)
        e >>= window_bits
    digits.reverse()
    result = table[digits[0]]
    for digit in digits[1:]:
        for _unused in range(window_bits):
            result = group.square(result)
            _sq(trace)
        if digit:
            result = group.op(result, table[digit])
            _mul(trace)
    return result


@register_strategy("ladder")
def exp_ladder(
    group: Group, base: Any, exponent: int, trace: Optional[OpTrace] = None, **_: Any
) -> Any:
    """Montgomery ladder: one squaring and one multiplication per bit."""
    if exponent == 0:
        return group.identity()
    r0 = group.identity()
    r1 = base
    for bit in bin(exponent)[2:]:
        if bit == "1":
            r0 = group.op(r0, r1)
            r1 = group.square(r1)
        else:
            r1 = group.op(r0, r1)
            r0 = group.square(r0)
        _sq(trace)
        _mul(trace)
    return r0


@register_strategy("fixed_base")
def exp_fixed_base(
    group: Group, base: Any, exponent: int, trace: Optional[OpTrace] = None, **_: Any
) -> Any:
    """One-shot fixed-base strategy: build the table, then use it.

    Only sensible through the registry for cost comparisons; real fixed-base
    users keep a :class:`FixedBaseTable` across many exponentiations so the
    squaring chain is paid once.
    """
    table = FixedBaseTable(group, base, max(1, exponent.bit_length()), trace=trace)
    return table.power(exponent, trace=trace)


# ---------------------------------------------------------------------------
# Fixed-base precomputation.
# ---------------------------------------------------------------------------


class FixedBaseTable:
    """Precomputed powers ``g^(2^i)`` of a fixed base.

    Building the table costs ``max_bits - 1`` squarings once; afterwards each
    ``power`` call needs only ~popcount(e) - 1 general multiplications and
    *zero* squarings — the classic trade for generator exponentiations in key
    generation, CEILIDH/ECDH key agreement and Schnorr commitments.
    """

    def __init__(
        self,
        group: Group,
        base: Any,
        max_bits: int,
        trace: Optional[OpTrace] = None,
    ):
        if max_bits < 1:
            raise ParameterError("fixed-base table needs max_bits >= 1")
        self.group = group
        self.base = base
        self._powers: List[Any] = [base]
        self._extend(max_bits, trace)

    def _extend(self, max_bits: int, trace: Optional[OpTrace] = None) -> None:
        while len(self._powers) < max_bits:
            self._powers.append(self.group.square(self._powers[-1]))
            _sq(trace)

    @property
    def max_bits(self) -> int:
        return len(self._powers)

    def power(self, exponent: int, trace: Optional[OpTrace] = None) -> Any:
        """``base^exponent`` using only stored doublings."""
        group = self.group
        if exponent < 0:
            result = self.power(-exponent, trace)
            _inv(trace)
            return group.inverse(result)
        if exponent == 0:
            return group.identity()
        self._extend(exponent.bit_length(), trace)
        result = None
        index = 0
        e = exponent
        while e:
            if e & 1:
                if result is None:
                    result = self._powers[index]
                else:
                    result = group.op(result, self._powers[index])
                    _mul(trace)
            e >>= 1
            index += 1
        return result


# ---------------------------------------------------------------------------
# Front door.
# ---------------------------------------------------------------------------


def select_strategy(group: Group, exponent: int) -> str:
    """Default strategy choice: binary for tiny exponents, then wNAF where
    inversion is free and sliding window elsewhere."""
    if exponent.bit_length() <= 16:
        return "binary"
    return "wnaf" if group.cheap_inverse else "sliding"


def exponentiate(
    group: Group,
    base: Any,
    exponent: int,
    strategy: str = "auto",
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
) -> Any:
    """Compute ``base^exponent`` in ``group`` with the named strategy.

    Negative exponents invert the base once (cheap on the torus and on
    curves) and proceed with ``-exponent``.  ``strategy="auto"`` delegates to
    :func:`select_strategy`.
    """
    if exponent < 0:
        base = group.inverse(base)
        _inv(trace)
        exponent = -exponent
    if strategy == "auto":
        strategy = select_strategy(group, exponent)
    fn = get_strategy(strategy)
    return fn(group, base, exponent, trace=trace, window_bits=window_bits)


def double_exponentiate(
    group: Group,
    base_a: Any,
    exponent_a: int,
    base_b: Any,
    exponent_b: int,
    trace: Optional[OpTrace] = None,
) -> Any:
    """Shamir/Straus simultaneous exponentiation: ``a^ea * b^eb``.

    One shared squaring chain over ``max(bits(ea), bits(eb))`` plus at most
    one multiplication per bit (expected 3/4), against the two full chains of
    independent exponentiations — the trick behind ECDSA-style
    ``u1*G + u2*Q`` verification.
    """
    if exponent_a < 0:
        base_a = group.inverse(base_a)
        _inv(trace)
        exponent_a = -exponent_a
    if exponent_b < 0:
        base_b = group.inverse(base_b)
        _inv(trace)
        exponent_b = -exponent_b
    if exponent_a == 0:
        return exponentiate(group, base_b, exponent_b, trace=trace)
    if exponent_b == 0:
        return exponentiate(group, base_a, exponent_a, trace=trace)
    both = None  # a*b, built lazily on the first shared digit column
    result = None
    for shift in range(max(exponent_a.bit_length(), exponent_b.bit_length()) - 1, -1, -1):
        if result is not None:
            result = group.square(result)
            _sq(trace)
        bit_a = (exponent_a >> shift) & 1
        bit_b = (exponent_b >> shift) & 1
        if not (bit_a or bit_b):
            continue
        if bit_a and bit_b:
            if both is None:
                both = group.op(base_a, base_b)
                _mul(trace)
            operand = both
        else:
            operand = base_a if bit_a else base_b
        if result is None:
            result = operand
        else:
            result = group.op(result, operand)
            _mul(trace)
    return group.identity() if result is None else result


# ---------------------------------------------------------------------------
# Closed-form expected costs (analytical models, ablations, Table 3).
# ---------------------------------------------------------------------------


def expected_counts(
    strategy: str, exponent_bits: int, window_bits: Optional[int] = None
) -> OpTrace:
    """Expected squaring/multiplication counts for a random ``n``-bit exponent.

    The ``binary``, ``naf`` and ``window`` forms reproduce the historical
    torus closed forms used by the Table 3 cost model; the others follow the
    standard averages (wNAF/sliding: ~n/(w+1) window hits plus the odd-power
    table of 2^(w-1) - 1 products and one squaring).
    """
    n = exponent_bits
    if n < 1:
        raise ParameterError("exponent_bits must be positive")
    if strategy == "binary":
        return OpTrace(squarings=n - 1, multiplications=(n - 1) // 2)
    if strategy == "naf":
        return OpTrace(squarings=n, multiplications=n // 3)
    w = window_bits if window_bits is not None else default_window_bits(n)
    check_window_bits(w)
    if strategy == "window":
        return OpTrace(squarings=n, multiplications=n // w + (1 << w) - 2)
    if strategy == "wnaf":
        table = (1 << max(w - 1, 1)) - 1
        return OpTrace(squarings=n + 1, multiplications=n // (w + 1) + table // 2)
    if strategy == "sliding":
        table = (1 << (w - 1)) - 1
        return OpTrace(squarings=n + 1, multiplications=n // (w + 1) + table)
    if strategy == "ladder":
        return OpTrace(squarings=n, multiplications=n)
    if strategy == "fixed_base":
        return OpTrace(squarings=0, multiplications=max(n // 2 - 1, 0))
    if strategy == "shamir":
        return OpTrace(squarings=n, multiplications=3 * n // 4 + 1)
    raise ParameterError(f"unknown strategy {strategy!r}")
