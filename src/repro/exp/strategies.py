"""The strategy kernel: every exponentiation loop in the library, once.

Each strategy takes a :class:`~repro.exp.group.Group`, a base element and a
non-negative exponent, optionally records group operations into an
:class:`~repro.exp.trace.OpTrace`, and returns the power.  The same eight
strategies therefore serve field powers, torus exponentiation, Montgomery/RSA
exponentiation and ECC scalar multiplication:

=================  ==========================================================
``binary``         left-to-right square-and-multiply (the paper's strategy)
``naf``            signed non-adjacent form, ~n/3 multiplications
``wnaf``           width-w NAF with odd-power table, ~n/(w+1) multiplications
``sliding``        sliding window over an odd-power table (no inversions)
``window``         fixed 2^w-entry window (the historical windowed variant)
``ladder``         Montgomery ladder (regular pattern, side-channel shape)
``fixed_base``     full precomputed power table, zero online squarings
``shamir``         Shamir/Straus simultaneous double exponentiation
=================  ==========================================================

Signed strategies pay one inversion per distinct negative digit value, which
is free exactly where the paper exploits it (torus Frobenius, point negation);
:func:`select_strategy` uses the group's ``cheap_inverse`` flag to pick wNAF
there and the inversion-free sliding window elsewhere.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ParameterError
from repro.exp.group import Group
from repro.exp.trace import OpTrace

Strategy = Callable[..., Any]

#: Name -> strategy function.  Populated by :func:`register_strategy`.
STRATEGIES: Dict[str, Strategy] = {}


def register_strategy(name: str) -> Callable[[Strategy], Strategy]:
    def wrap(fn: Strategy) -> Strategy:
        STRATEGIES[name] = fn
        return fn

    return wrap


def get_strategy(name: str) -> Strategy:
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ParameterError(
            f"unknown exponentiation strategy {name!r}; "
            f"available: {', '.join(available_strategies())}"
        ) from None


def available_strategies() -> List[str]:
    return sorted(STRATEGIES)


# ---------------------------------------------------------------------------
# Trace bookkeeping and recoding helpers.
# ---------------------------------------------------------------------------


def _bound_ops(group: Group, trace: Optional[OpTrace]):
    """Bind this run's (square, op, inverse) callables exactly once.

    This is the engine's null-trace fast path: with ``trace=None`` the
    strategies call the group's bound methods directly — no per-operation
    ``if trace is not None`` branch, no counting closure, zero bookkeeping.
    With a trace, each callable increments the tally and delegates, so
    traced and untraced runs execute the *same* group operations in the
    same order and return identical elements.
    """
    if trace is None:
        return group.square, group.op, group.inverse

    group_square, group_op, group_inverse = group.square, group.op, group.inverse

    def square(a: Any) -> Any:
        trace.squarings += 1
        return group_square(a)

    def op(a: Any, b: Any) -> Any:
        trace.multiplications += 1
        return group_op(a, b)

    def inverse(a: Any) -> Any:
        trace.inversions += 1
        return group_inverse(a)

    return square, op, inverse


def naf_digits(exponent: int) -> List[int]:
    """Non-adjacent form, least-significant digit first, digits in {-1, 0, 1}."""
    digits: List[int] = []
    while exponent > 0:
        if exponent & 1:
            digit = 2 - (exponent % 4)
            exponent -= digit
        else:
            digit = 0
        digits.append(digit)
        exponent >>= 1
    return digits


def wnaf_digits(exponent: int, width: int) -> List[int]:
    """Width-``w`` NAF, least-significant first; non-zero digits are odd and
    lie in ``(-2^(w-1), 2^(w-1))``, with at least ``w-1`` zeros between them."""
    if width < 2:
        return naf_digits(exponent)
    digits: List[int] = []
    modulus = 1 << width
    half = 1 << (width - 1)
    while exponent > 0:
        if exponent & 1:
            digit = exponent % modulus
            if digit >= half:
                digit -= modulus
            exponent -= digit
        else:
            digit = 0
        digits.append(digit)
        exponent >>= 1
    return digits


def wnaf_recoding(exponent: int, width: int) -> Tuple[int, ...]:
    """Width-w NAF recoding, most-significant digit first.

    Deliberately **not** memoised: wNAF is the default path for secret
    exponents (ephemerals, signature nonces, server keys), and a
    process-wide cache keyed by exponent would retain every secret it ever
    saw for the life of the process.  Recoding is pure integer work —
    well under 1% of a protocol session — so the fixed-base tables (built
    from the *public* generator) carry the per-key amortisation instead.
    """
    return tuple(reversed(wnaf_digits(exponent, width)))


def default_window_bits(exponent_bits: int) -> int:
    """Window width minimising table-build plus per-digit multiplications."""
    if exponent_bits < 24:
        return 2
    if exponent_bits < 80:
        return 3
    if exponent_bits < 240:
        return 4
    if exponent_bits < 768:
        return 5
    return 6


def check_window_bits(window_bits: int) -> None:
    if not 1 <= window_bits <= 8:
        raise ParameterError("window width must be between 1 and 8 bits")


def _odd_power_table(square, op, base: Any, limit: int) -> Dict[int, Any]:
    """Precompute ``{1: g, 3: g^3, ..., limit: g^limit}`` for odd ``limit >= 1``."""
    table = {1: base}
    if limit >= 3:
        base_squared = square(base)
        current = base
        for k in range(3, limit + 1, 2):
            current = op(current, base_squared)
            table[k] = current
    return table


# ---------------------------------------------------------------------------
# Strategies.  All take exponent >= 0 (the front door handles negatives).
# ---------------------------------------------------------------------------


@register_strategy("binary")
def exp_binary(
    group: Group, base: Any, exponent: int, trace: Optional[OpTrace] = None, **_: Any
) -> Any:
    """Left-to-right square-and-multiply: n-1 squarings, popcount-1 products."""
    if exponent == 0:
        return group.identity()
    square, op, _ = _bound_ops(group, trace)
    result = base
    for bit in bin(exponent)[3:]:
        result = square(result)
        if bit == "1":
            result = op(result, base)
    return result


def _signed_digit_walk(
    group: Group,
    square,
    op,
    digits,
    lookup: Callable[[int], Any],
) -> Any:
    """Left-to-right walk over signed digits (most-significant first).

    The accumulator stays un-materialised (``None``) until the first non-zero
    digit, so leading squarings of the identity are neither performed nor
    counted — matching how the historical per-layer loops behaved.
    """
    result = None
    for digit in digits:
        if result is not None:
            result = square(result)
        if digit:
            operand = lookup(digit)
            if result is None:
                result = operand
            else:
                result = op(result, operand)
    return group.identity() if result is None else result


@register_strategy("naf")
def exp_naf(
    group: Group, base: Any, exponent: int, trace: Optional[OpTrace] = None, **_: Any
) -> Any:
    """Signed-digit (NAF) recoding: ~n/3 general multiplications.

    Pays one base inversion, which is free where ``cheap_inverse`` holds (the
    torus's Frobenius, point negation on a curve).
    """
    if exponent == 0:
        return group.identity()
    square, op, inv = _bound_ops(group, trace)
    digits = naf_digits(exponent)
    inverse = None
    if any(d < 0 for d in digits):
        inverse = inv(base)
    return _signed_digit_walk(
        group,
        square,
        op,
        reversed(digits),
        lambda d: base if d > 0 else inverse,
    )


@register_strategy("wnaf")
def exp_wnaf(
    group: Group,
    base: Any,
    exponent: int,
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
    **_: Any,
) -> Any:
    """Width-w NAF with a table of odd powers: ~n/(w+1) multiplications.

    The recoding is recomputed per call on purpose — see
    :func:`wnaf_recoding` for why memoising it would retain secret
    exponents process-wide.
    """
    if window_bits is None:
        window_bits = max(2, default_window_bits(exponent.bit_length()))
    check_window_bits(window_bits)
    if exponent == 0:
        return group.identity()
    square, op, inv = _bound_ops(group, trace)
    digits = wnaf_recoding(exponent, window_bits)
    largest = max((abs(d) for d in digits if d), default=1)
    table = _odd_power_table(square, op, base, largest)
    negatives: Dict[int, Any] = {}

    def lookup(digit: int) -> Any:
        if digit > 0:
            return table[digit]
        cached = negatives.get(-digit)
        if cached is None:
            cached = inv(table[-digit])
            negatives[-digit] = cached
        return cached

    return _signed_digit_walk(group, square, op, digits, lookup)


@register_strategy("sliding")
def exp_sliding(
    group: Group,
    base: Any,
    exponent: int,
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
    **_: Any,
) -> Any:
    """Sliding window over odd powers — the inversion-free fast path."""
    if window_bits is None:
        window_bits = default_window_bits(exponent.bit_length())
    check_window_bits(window_bits)
    if exponent == 0:
        return group.identity()
    if window_bits == 1:
        return exp_binary(group, base, exponent, trace)
    square, op, _ = _bound_ops(group, trace)
    bits = bin(exponent)[2:]
    # First pass: recode into (chunk, width) events — chunk 0 is one squaring,
    # an odd chunk is `width` squarings then one table multiplication.
    events: List[tuple] = []
    i = 0
    while i < len(bits):
        if bits[i] == "0":
            events.append((0, 1))
            i += 1
            continue
        # Longest window starting here that ends in a 1 (so the chunk is odd).
        j = min(i + window_bits, len(bits))
        while bits[j - 1] == "0":
            j -= 1
        events.append((int(bits[i:j], 2), j - i))
        i = j
    # Size the table by the largest chunk that actually occurs, so sparse
    # exponents (e.g. RSA's 65537) never pay for unused entries.
    largest = max(chunk for chunk, _width in events)
    table = _odd_power_table(square, op, base, largest)
    result = None
    for chunk, width in events:
        if chunk == 0:
            result = square(result)
        elif result is None:
            result = table[chunk]
        else:
            for _unused in range(width):
                result = square(result)
            result = op(result, table[chunk])
    return result


@register_strategy("window")
def exp_window(
    group: Group,
    base: Any,
    exponent: int,
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
    **_: Any,
) -> Any:
    """Fixed 2^w-entry window (the historical windowed variant of each layer)."""
    if window_bits is None:
        window_bits = default_window_bits(exponent.bit_length())
    check_window_bits(window_bits)
    if exponent == 0:
        return group.identity()
    square, op, _ = _bound_ops(group, trace)
    table = [group.identity(), base]
    for _unused in range((1 << window_bits) - 2):
        table.append(op(table[-1], base))
    digits: List[int] = []
    e = exponent
    mask = (1 << window_bits) - 1
    while e:
        digits.append(e & mask)
        e >>= window_bits
    digits.reverse()
    result = table[digits[0]]
    for digit in digits[1:]:
        for _unused in range(window_bits):
            result = square(result)
        if digit:
            result = op(result, table[digit])
    return result


@register_strategy("ladder")
def exp_ladder(
    group: Group, base: Any, exponent: int, trace: Optional[OpTrace] = None, **_: Any
) -> Any:
    """Montgomery ladder: one squaring and one multiplication per bit."""
    if exponent == 0:
        return group.identity()
    square, op, _ = _bound_ops(group, trace)
    r0 = group.identity()
    r1 = base
    for bit in bin(exponent)[2:]:
        if bit == "1":
            r0 = op(r0, r1)
            r1 = square(r1)
        else:
            r1 = op(r0, r1)
            r0 = square(r0)
    return r0


@register_strategy("fixed_base")
def exp_fixed_base(
    group: Group, base: Any, exponent: int, trace: Optional[OpTrace] = None, **_: Any
) -> Any:
    """One-shot fixed-base strategy: build the table, then use it.

    Only sensible through the registry for cost comparisons; real fixed-base
    users keep a :class:`FixedBaseTable` across many exponentiations so the
    squaring chain is paid once.
    """
    table = FixedBaseTable(group, base, max(1, exponent.bit_length()), trace=trace)
    return table.power(exponent, trace=trace)


# ---------------------------------------------------------------------------
# Fixed-base precomputation.
# ---------------------------------------------------------------------------


class FixedBaseTable:
    """Precomputed powers ``g^(2^i)`` of a fixed base.

    Building the table costs ``max_bits - 1`` squarings once; afterwards each
    ``power`` call needs only ~popcount(e) - 1 general multiplications and
    *zero* squarings — the classic trade for generator exponentiations in key
    generation, CEILIDH/ECDH key agreement and Schnorr commitments.
    """

    def __init__(
        self,
        group: Group,
        base: Any,
        max_bits: int,
        trace: Optional[OpTrace] = None,
    ):
        if max_bits < 1:
            raise ParameterError("fixed-base table needs max_bits >= 1")
        self.group = group
        self.base = base
        self._powers: List[Any] = [base]
        self._extend(max_bits, trace)

    def _extend(self, max_bits: int, trace: Optional[OpTrace] = None) -> None:
        if len(self._powers) >= max_bits:
            return
        square, _, _ = _bound_ops(self.group, trace)
        while len(self._powers) < max_bits:
            self._powers.append(square(self._powers[-1]))

    @property
    def max_bits(self) -> int:
        return len(self._powers)

    def power(self, exponent: int, trace: Optional[OpTrace] = None) -> Any:
        """``base^exponent`` using only stored doublings."""
        group = self.group
        if exponent < 0:
            result = self.power(-exponent, trace)
            _, _, inv = _bound_ops(group, trace)
            return inv(result)
        if exponent == 0:
            return group.identity()
        self._extend(exponent.bit_length(), trace)
        _, op, _ = _bound_ops(group, trace)
        powers = self._powers
        result = None
        index = 0
        e = exponent
        while e:
            if e & 1:
                if result is None:
                    result = powers[index]
                else:
                    result = op(result, powers[index])
            e >>= 1
            index += 1
        return result


# ---------------------------------------------------------------------------
# Front door.
# ---------------------------------------------------------------------------


def select_strategy(group: Group, exponent: int) -> str:
    """Default strategy choice: binary for tiny exponents, then wNAF where
    inversion is free and sliding window elsewhere."""
    if exponent.bit_length() <= 16:
        return "binary"
    return "wnaf" if group.cheap_inverse else "sliding"


def exponentiate(
    group: Group,
    base: Any,
    exponent: int,
    strategy: str = "auto",
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
) -> Any:
    """Compute ``base^exponent`` in ``group`` with the named strategy.

    Negative exponents invert the base once (cheap on the torus and on
    curves) and proceed with ``-exponent``.  ``strategy="auto"`` delegates to
    :func:`select_strategy`.
    """
    if exponent < 0:
        _, _, inv = _bound_ops(group, trace)
        base = inv(base)
        exponent = -exponent
    if strategy == "auto":
        strategy = select_strategy(group, exponent)
    fn = get_strategy(strategy)
    return fn(group, base, exponent, trace=trace, window_bits=window_bits)


def _batch_api_enabled() -> bool:
    # Lazy import: repro.field imports this module at package init, so a
    # top-level import of repro.field.backend here would be circular.
    from repro.field.backend import batch_api_enabled

    return batch_api_enabled()


#: Below this exponent width a shared table cannot beat plain binary.
_SHARED_TABLE_MIN_BITS = 17


def exponentiate_shared_base(
    group: Group,
    base: Any,
    exponents,
    strategy: str = "auto",
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
) -> List[Any]:
    """``base^e`` for one base and many exponents, sharing the precomputation.

    With two or more wide exponents (and the batch API enabled) one
    :class:`FixedBaseTable` — ``max_bits`` squarings, paid once — serves the
    whole batch, so each element costs only ~popcount multiplications: the
    multiplicative analogue of ``inv_many``'s one-inversion trick.  Exact
    group arithmetic makes the results value-identical to looping
    :func:`exponentiate`, which remains the fallback for short batches,
    tiny exponents and ``REPRO_BATCH_API=off``.
    """
    exponents = [int(e) for e in exponents]
    if len(exponents) >= 2 and _batch_api_enabled():
        max_bits = max(abs(e).bit_length() for e in exponents)
        if max_bits >= _SHARED_TABLE_MIN_BITS:
            table = FixedBaseTable(group, base, max_bits, trace=trace)
            return [table.power(e, trace=trace) for e in exponents]
    return [
        exponentiate(
            group, base, e, strategy=strategy, trace=trace, window_bits=window_bits
        )
        for e in exponents
    ]


def exponentiate_many(
    group: Group,
    bases,
    exponents,
    strategy: str = "auto",
    trace: Optional[OpTrace] = None,
    window_bits: Optional[int] = None,
) -> List[Any]:
    """Index-aligned batch ``bases[i]^exponents[i]`` in one engine call.

    The batch front door: runs of items sharing a base (the serve
    scheduler's per-(scheme, kind) groups all exponentiate one server key or
    one generator) are detected and funnelled through
    :func:`exponentiate_shared_base`; everything else — distinct bases,
    short batches, ``REPRO_BATCH_API=off`` — takes the per-item
    :func:`exponentiate` path with its strategy tables built per call.
    Byte-identical to N single calls by contract.
    """
    bases = list(bases)
    exponents = [int(e) for e in exponents]
    if len(bases) != len(exponents):
        raise ParameterError(
            f"exponentiate_many: length mismatch ({len(bases)} vs {len(exponents)})"
        )
    if len(bases) < 2 or not _batch_api_enabled():
        return [
            exponentiate(
                group, b, e, strategy=strategy, trace=trace, window_bits=window_bits
            )
            for b, e in zip(bases, exponents)
        ]

    def _same(a: Any, b: Any) -> bool:
        if a is b:
            return True
        try:
            return bool(a == b)
        except Exception:  # pragma: no cover - exotic element types
            return False

    groups: List[List[Any]] = []  # [base, [indices]]
    for index, base in enumerate(bases):
        for entry in groups:
            if _same(entry[0], base):
                entry[1].append(index)
                break
        else:
            groups.append([base, [index]])
    results: List[Any] = [None] * len(bases)
    for base, indices in groups:
        batch = exponentiate_shared_base(
            group,
            base,
            [exponents[i] for i in indices],
            strategy=strategy,
            trace=trace,
            window_bits=window_bits,
        )
        for i, value in zip(indices, batch):
            results[i] = value
    return results


def double_exponentiate(
    group: Group,
    base_a: Any,
    exponent_a: int,
    base_b: Any,
    exponent_b: int,
    trace: Optional[OpTrace] = None,
) -> Any:
    """Shamir/Straus simultaneous exponentiation: ``a^ea * b^eb``.

    One shared squaring chain over ``max(bits(ea), bits(eb))`` plus at most
    one multiplication per bit (expected 3/4), against the two full chains of
    independent exponentiations — the trick behind ECDSA-style
    ``u1*G + u2*Q`` verification.
    """
    square, op, inv = _bound_ops(group, trace)
    if exponent_a < 0:
        base_a = inv(base_a)
        exponent_a = -exponent_a
    if exponent_b < 0:
        base_b = inv(base_b)
        exponent_b = -exponent_b
    if exponent_a == 0:
        return exponentiate(group, base_b, exponent_b, trace=trace)
    if exponent_b == 0:
        return exponentiate(group, base_a, exponent_a, trace=trace)
    both = None  # a*b, built lazily on the first shared digit column
    result = None
    for shift in range(max(exponent_a.bit_length(), exponent_b.bit_length()) - 1, -1, -1):
        if result is not None:
            result = square(result)
        bit_a = (exponent_a >> shift) & 1
        bit_b = (exponent_b >> shift) & 1
        if not (bit_a or bit_b):
            continue
        if bit_a and bit_b:
            if both is None:
                both = op(base_a, base_b)
            operand = both
        else:
            operand = base_a if bit_a else base_b
        if result is None:
            result = operand
        else:
            result = op(result, operand)
    return group.identity() if result is None else result


# ---------------------------------------------------------------------------
# Closed-form expected costs (analytical models, ablations, Table 3).
# ---------------------------------------------------------------------------


def expected_counts(
    strategy: str, exponent_bits: int, window_bits: Optional[int] = None
) -> OpTrace:
    """Expected squaring/multiplication counts for a random ``n``-bit exponent.

    The ``binary``, ``naf`` and ``window`` forms reproduce the historical
    torus closed forms used by the Table 3 cost model; the others follow the
    standard averages (wNAF/sliding: ~n/(w+1) window hits plus the odd-power
    table of 2^(w-1) - 1 products and one squaring).
    """
    n = exponent_bits
    if n < 1:
        raise ParameterError("exponent_bits must be positive")
    if strategy == "binary":
        return OpTrace(squarings=n - 1, multiplications=(n - 1) // 2)
    if strategy == "naf":
        return OpTrace(squarings=n, multiplications=n // 3)
    w = window_bits if window_bits is not None else default_window_bits(n)
    check_window_bits(w)
    if strategy == "window":
        return OpTrace(squarings=n, multiplications=n // w + (1 << w) - 2)
    if strategy == "wnaf":
        table = (1 << max(w - 1, 1)) - 1
        return OpTrace(squarings=n + 1, multiplications=n // (w + 1) + table // 2)
    if strategy == "sliding":
        table = (1 << (w - 1)) - 1
        return OpTrace(squarings=n + 1, multiplications=n // (w + 1) + table)
    if strategy == "ladder":
        return OpTrace(squarings=n, multiplications=n)
    if strategy == "fixed_base":
        return OpTrace(squarings=0, multiplications=max(n // 2 - 1, 0))
    if strategy == "shamir":
        return OpTrace(squarings=n, multiplications=3 * n // 4 + 1)
    raise ParameterError(f"unknown strategy {strategy!r}")
