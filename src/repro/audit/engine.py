"""The audit driver: collect files, run the passes, apply suppressions.

Pipeline for one invocation:

1. **Collect** every ``*.py`` under the scanned root (default
   ``src/repro``), parse each to an AST, tokenize for ``# audit:``
   markers.  Unparseable files become ``AUD001`` findings rather than
   crashing the run.
2. **Pass A** — harvest the cross-file vocabulary (``Secret[...]``
   annotations, ``# audit: secret`` markers) with
   :func:`repro.audit.taint.collect_vocabulary`.
3. **Pass B** — per module: run the taint rounds, then every rule in
   :data:`repro.audit.rules.ALL_RULES`.
4. **Suppress** — findings on a line covered by a matching
   ``# audit: allow[RULE] reason`` flip to ``suppressed``.  Marker
   problems surface as findings themselves: unknown rule ids (``AUD002``),
   missing reasons (``AUD003``), and — in strict mode — allows that
   suppressed nothing (``AUD004``).

Baseline matching is the caller's concern (:mod:`repro.audit.baseline`):
the engine reports what is true of the tree, the baseline records what has
been accepted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple

from repro.audit.annotations import MarkerSet, parse_markers
from repro.audit.rules import ALL_RULES, RULE_IDS, Finding
from repro.audit.taint import analyze_module, collect_vocabulary

__all__ = ["AuditResult", "run_audit", "default_root"]


@dataclass
class AuditResult:
    """Everything one run concluded."""

    root: str
    findings: List[Finding] = field(default_factory=list)
    modules_scanned: int = 0
    rules_run: int = 0

    def by_status(self, status: str) -> List[Finding]:
        return [f for f in self.findings if f.status == status]

    @property
    def new(self) -> List[Finding]:
        return self.by_status("new")


def default_root(start: Path | None = None) -> Path:
    """Locate ``src/repro`` from the package location or a start dir."""
    here = Path(__file__).resolve()
    candidate = here.parents[1]  # .../src/repro
    if candidate.name == "repro":
        return candidate
    base = (start or Path.cwd()).resolve()
    for parent in [base, *base.parents]:
        probe = parent / "src" / "repro"
        if probe.is_dir():
            return probe
    return base


def collect_files(root: Path) -> List[Path]:
    return sorted(
        path for path in root.rglob("*.py") if "__pycache__" not in path.parts
    )


def run_audit(root: Path, strict: bool = False) -> AuditResult:
    """Audit every Python file under ``root``."""
    root = root.resolve()
    result = AuditResult(root=str(root), rules_run=len(ALL_RULES))
    parsed: List[Tuple[str, ast.AST, MarkerSet]] = []

    for path in collect_files(root):
        rel = path.relative_to(root).as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.findings.append(
                Finding(
                    rule="AUD001",
                    path=rel,
                    line=getattr(exc, "lineno", 0) or 0,
                    col=0,
                    message=f"source failed to parse: {exc}",
                    context="<module>",
                )
            )
            continue
        parsed.append((rel, tree, parse_markers(source)))

    result.modules_scanned = len(parsed)
    vocab = collect_vocabulary(parsed)

    for rel, tree, markers in parsed:
        module = analyze_module(rel, tree, markers, vocab)
        for rule in ALL_RULES:
            for finding in rule.run(module):
                for marker in markers.allows_for(finding.line, finding.rule):
                    marker.used = True
                    finding.status = "suppressed"
                result.findings.append(finding)
        result.findings.extend(_marker_findings(rel, markers, strict))

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def _marker_findings(rel: str, markers: MarkerSet, strict: bool) -> List[Finding]:
    """AUD002/AUD003/AUD004: the markers themselves under review."""
    findings: List[Finding] = []
    for marker in markers.markers:
        if marker.kind != "allow":
            continue
        unknown = [rule for rule in marker.rules if rule not in RULE_IDS]
        if unknown:
            findings.append(
                Finding(
                    rule="AUD002",
                    path=rel,
                    line=marker.line,
                    col=0,
                    message=(
                        "allow marker names unknown rule id(s): "
                        + ", ".join(unknown)
                    ),
                    context="<marker>",
                )
            )
        if not marker.rules:
            findings.append(
                Finding(
                    rule="AUD002",
                    path=rel,
                    line=marker.line,
                    col=0,
                    message="allow marker must name the rule(s) it suppresses: "
                    "# audit: allow[CT103] reason",
                    context="<marker>",
                )
            )
        if not marker.reason:
            findings.append(
                Finding(
                    rule="AUD003",
                    path=rel,
                    line=marker.line,
                    col=0,
                    message="allow marker without a reason; a suppression is a "
                    "reviewed decision — say why",
                    context="<marker>",
                )
            )
    if strict:
        for marker in markers.unused_allows():
            findings.append(
                Finding(
                    rule="AUD004",
                    path=rel,
                    line=marker.line,
                    col=0,
                    message=(
                        "allow marker suppressed nothing "
                        f"(rules: {', '.join(marker.rules) or '<none>'}); "
                        "remove it or fix the rule id/line placement"
                    ),
                    context="<marker>",
                )
            )
    return findings
