"""``python -m repro.audit`` — the CLI gate.

Exit codes: ``0`` clean (no new findings), ``1`` new findings (or marker
problems), ``2`` usage error.  CI runs ``python -m repro.audit --strict``
so an allow marker that stops matching anything also fails the gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.audit.baseline import apply_baseline, load_baseline, save_baseline
from repro.audit.engine import default_root, run_audit
from repro.audit.report import render_json, render_text
from repro.audit.rules import rule_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.audit",
        description="Secret-flow / constant-time static analyzer for repro.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="directory to scan (default: the installed src/repro tree)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: AUDIT_baseline.json beside src/)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept the current findings: rewrite the baseline and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on allow markers that suppress nothing (AUD004)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        metavar="PATH",
        help="write the JSON report (with summary block) to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--show-accepted",
        action="store_true",
        help="include baselined and suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    try:
        options = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    if options.list_rules:
        for rule_id, title in rule_table():
            print(f"{rule_id}  {title}")
        return 0

    root = (options.root or default_root()).resolve()
    if not root.is_dir():
        print(f"audit: no such directory: {root}", file=sys.stderr)
        return 2

    baseline_path = options.baseline
    if baseline_path is None:
        # src/repro -> repo root; fall back beside the scanned tree.
        candidate = root.parent.parent / "AUDIT_baseline.json"
        baseline_path = (
            candidate if root.parent.name == "src" else root / "AUDIT_baseline.json"
        )

    result = run_audit(root, strict=options.strict)

    if options.update_baseline:
        count = save_baseline(baseline_path, result.findings)
        apply_baseline(result.findings, load_baseline(baseline_path))
        print(f"audit: baseline rewritten with {count} accepted findings "
              f"-> {baseline_path}")
        print(render_text(result, show_accepted=options.show_accepted))
        return 0

    if not options.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"audit: {exc}", file=sys.stderr)
            return 2
        apply_baseline(result.findings, baseline)

    if options.json is not None:
        document = render_json(result)
        if str(options.json) == "-":
            sys.stdout.write(document)
        else:
            options.json.write_text(document, encoding="utf-8")

    print(render_text(result, show_accepted=options.show_accepted))
    return 1 if result.new else 0


if __name__ == "__main__":
    sys.exit(main())
